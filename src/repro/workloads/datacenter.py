"""Datacenter-snapshot generator — the substitution for the paper's
"real data from actual datacenters".

The paper evaluated on proprietary snapshots of production search
clusters.  This generator reproduces the structural properties that make
such snapshots hard for a rebalancer (see DESIGN.md §3):

* **Heterogeneous fleet** — machines drawn from a small set of hardware
  generations with different capacity profiles.
* **Heavy-tailed, correlated shard demands** — CPU demand follows query
  popularity (Zipf); RAM tracks the hot index portion (correlated with
  CPU); disk follows a lognormal postings-size distribution, only weakly
  correlated with popularity.
* **Drifted placement** — the placement was balanced *for an older query
  mix*; popularity then drifted (some shards heated up, others cooled
  down), so the snapshot is imbalanced even though no one placed it
  badly.  This is the canonical way search clusters become imbalanced.
* **High tightness** — production clusters run hot (70–90% utilization),
  which is precisely the regime where transient resource constraints bind
  and exchange machines pay off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_fraction, check_positive
from repro.cluster import (
    DEFAULT_SCHEMA,
    ClusterState,
    Machine,
    MachineClass,
    ResourceSchema,
    Shard,
)
from repro.workloads.synthetic import waterfill_scale

__all__ = ["DatacenterConfig", "generate_datacenter", "DEFAULT_MACHINE_MIX"]


#: Three hardware generations, loosely modelled on successive server
#: generations: each adds CPU and RAM faster than disk.
DEFAULT_MACHINE_MIX: tuple[tuple[MachineClass, float], ...] = (
    (MachineClass("gen1", np.array([48.0, 128.0, 2000.0])), 0.3),
    (MachineClass("gen2", np.array([64.0, 192.0, 3000.0])), 0.5),
    (MachineClass("gen3", np.array([96.0, 384.0, 4000.0])), 0.2),
)


@dataclass(frozen=True)
class DatacenterConfig:
    """Parameters of a datacenter snapshot.

    Attributes
    ----------
    num_machines:
        Fleet size.
    shards_per_machine:
        Average shards per machine (total shards = product).
    target_utilization:
        Tightness after popularity drift, on the binding dimension.
    popularity_alpha:
        Zipf exponent of shard query popularity.
    drift:
        In [0, 1]: fraction of popularity mass that moved since the
        placement was made.  0 reproduces a balanced cluster; production
        snapshots correspond to 0.2–0.5.
    machine_mix:
        Sequence of ``(MachineClass, weight)`` pairs.
    seed:
        RNG seed.
    """

    num_machines: int = 100
    shards_per_machine: int = 12
    target_utilization: float = 0.8
    popularity_alpha: float = 1.0
    drift: float = 0.35
    machine_mix: tuple[tuple[MachineClass, float], ...] = DEFAULT_MACHINE_MIX
    schema: ResourceSchema = DEFAULT_SCHEMA
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("num_machines", self.num_machines)
        check_positive("shards_per_machine", self.shards_per_machine)
        check_positive("target_utilization", self.target_utilization)
        check_positive("popularity_alpha", self.popularity_alpha)
        check_fraction("drift", self.drift)
        if not self.machine_mix:
            raise ValueError("machine_mix must be non-empty")
        total = sum(w for _, w in self.machine_mix)
        if total <= 0:
            raise ValueError("machine_mix weights must sum to > 0")

    @property
    def num_shards(self) -> int:
        return self.num_machines * self.shards_per_machine


def _sample_machines(cfg: DatacenterConfig, rng: np.random.Generator) -> list[Machine]:
    classes = [c for c, _ in cfg.machine_mix]
    weights = np.array([w for _, w in cfg.machine_mix], dtype=np.float64)
    weights /= weights.sum()
    picks = rng.choice(len(classes), size=cfg.num_machines, p=weights)
    return [classes[k].stamp(i) for i, k in enumerate(picks)]


def _shard_demands(
    cfg: DatacenterConfig, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Returns (old_demand, new_demand, sizes): (n, d) matrices before and
    after popularity drift, plus migration byte sizes."""
    n = cfg.num_shards
    d = cfg.schema.dims
    if d < 3:
        raise ValueError("datacenter generator requires the (cpu, ram, disk) schema")

    # Popularity before and after the drift.
    ranks = np.arange(1, n + 1, dtype=np.float64)
    pop_old = ranks ** (-cfg.popularity_alpha)
    rng.shuffle(pop_old)
    pop_old /= pop_old.sum()
    # Drift: re-draw a fresh popularity vector and blend.
    pop_fresh = ranks ** (-cfg.popularity_alpha)
    rng.shuffle(pop_fresh)
    pop_fresh /= pop_fresh.sum()
    pop_new = (1.0 - cfg.drift) * pop_old + cfg.drift * pop_fresh

    # Disk: lognormal postings size, weakly linked to popularity.
    disk = rng.lognormal(mean=0.0, sigma=0.6, size=n) * (0.5 + 0.5 * n * pop_old)
    # RAM: hot index portion ~ popularity with noise, plus a base floor.
    ram_noise = rng.uniform(0.8, 1.2, size=n)
    # CPU: proportional to current popularity with noise.
    cpu_noise = rng.uniform(0.8, 1.2, size=n)

    def build(pop: np.ndarray) -> np.ndarray:
        cpu = pop * cpu_noise
        ram = (0.3 * disk / disk.sum() + 0.7 * pop) * ram_noise
        out = np.stack([cpu, ram, disk / disk.sum()], axis=1)
        return out

    old = build(pop_old)
    new = build(pop_new)
    return old, new, disk


def generate_datacenter(cfg: DatacenterConfig) -> ClusterState:
    """Generate a drifted datacenter snapshot.

    The placement is computed to be balanced under the *old* demands
    (longest-processing-time greedy per dimension-max), then the *new*
    demands are installed — producing the realistic situation of a
    well-placed cluster that the workload has since walked away from.
    """
    rng = np.random.default_rng(cfg.seed)
    machines = _sample_machines(cfg, rng)
    capacity = np.stack([m.capacity for m in machines])
    old, new, disk = _shard_demands(cfg, rng)

    # Scale both demand epochs so the *new* epoch hits target utilization
    # per dimension, capping any single shard at 30% of the smallest
    # machine so the snapshot stays packable (water-filling preserves the
    # target total despite the cap).
    min_cap = capacity.min(axis=0)
    total_cap = capacity.sum(axis=0)
    for k in range(old.shape[1]):
        target = cfg.target_utilization * total_cap[k]
        shard_cap = 0.3 * min_cap[k]
        new[:, k] = waterfill_scale(new[:, k], target, shard_cap)
        old[:, k] = waterfill_scale(old[:, k], target, shard_cap)

    # Balanced placement for the old epoch: greedy LPT on normalized load.
    order = np.argsort(-old.sum(axis=1))
    loads = np.zeros_like(capacity)
    assign = np.empty(cfg.num_shards, dtype=np.int64)
    for j in order:
        util_after = ((loads + old[j]) / capacity).max(axis=1)
        i = int(np.argmin(util_after))
        assign[j] = i
        loads[i] += old[j]

    sizes = new[:, cfg.schema.index("disk")]
    shards = [
        Shard(id=j, demand=new[j], schema=cfg.schema, size_bytes=float(sizes[j]))
        for j in range(cfg.num_shards)
    ]
    return ClusterState(machines, shards, assign)
