"""The search objective.

The IP model's objective (peak utilization + move cost) is exact but flat:
many assignments share the same peak, giving local search no gradient.
The search objective therefore adds a small smoothing term (mean squared
per-machine peak utilization) and penalty terms that let the LNS walk
through mildly infeasible states while being pushed firmly back:

``value = peak
        + smooth_weight   · mean_i(peak_util_i²)
        + move_penalty    · moved_bytes / total_bytes
        + overload_penalty· Σ_i,k relu(load−cap)/cap
        + vacancy_penalty · max(0, R − #vacant)``

With default weights the peak term dominates; the smoothing term only
orders states with equal peaks, and both penalties are large enough that
no feasible state is ever beaten by an infeasible one in practice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_non_negative
from repro.cluster import ClusterState

__all__ = ["ObjectiveWeights", "Objective", "IncrementalObjective"]


@dataclass(frozen=True)
class ObjectiveWeights:
    """Weights of the search objective (see module docstring)."""

    move_penalty: float = 0.002
    smooth_weight: float = 0.05
    overload_penalty: float = 10.0
    vacancy_penalty: float = 2.0
    #: Penalty per (machine, logical shard) replica-anti-affinity
    #: violation; replicas of one logical shard must not colocate.
    replica_penalty: float = 5.0

    def __post_init__(self) -> None:
        check_non_negative("move_penalty", self.move_penalty)
        check_non_negative("smooth_weight", self.smooth_weight)
        check_non_negative("overload_penalty", self.overload_penalty)
        check_non_negative("vacancy_penalty", self.vacancy_penalty)
        check_non_negative("replica_penalty", self.replica_penalty)


class Objective:
    """Callable objective bound to an episode's initial assignment.

    Parameters
    ----------
    initial_assignment:
        ``a0`` — used for the moved-bytes term.
    sizes:
        Per-shard migration bytes.
    required_returns:
        ``R`` — vacant machines owed at the end.
    weights:
        Term weights.

    The instance is immutable and cheap to call: one vectorized pass over
    the ``(m, d)`` load matrix per evaluation.
    """

    def __init__(
        self,
        initial_assignment: np.ndarray,
        sizes: np.ndarray,
        *,
        required_returns: int = 0,
        weights: ObjectiveWeights | None = None,
    ) -> None:
        self.a0 = np.asarray(initial_assignment, dtype=np.int64).copy()
        self.sizes = np.asarray(sizes, dtype=np.float64)
        if self.a0.shape != self.sizes.shape:
            raise ValueError("initial_assignment and sizes must have equal length")
        check_non_negative("required_returns", required_returns)
        self.required_returns = int(required_returns)
        self.weights = weights or ObjectiveWeights()
        self._total_bytes = float(self.sizes.sum()) or 1.0

    # ------------------------------------------------------------------ API
    def __call__(self, state: ClusterState) -> float:
        """Objective value of *state* (lower is better)."""
        return self.components(state)["value"]

    def components(self, state: ClusterState) -> dict[str, float]:
        """All objective terms, for reporting and tests."""
        w = self.weights
        util = state.loads / state.capacity  # capacities are > 0
        machine_peak = util.max(axis=1)
        peak = float(machine_peak.max())
        smooth = float(np.mean(machine_peak**2))

        assign = state.assignment_view()
        moved = float(self.sizes[assign != self.a0].sum()) / self._total_bytes

        over = np.maximum(util - 1.0, 0.0)
        overload = float(over.sum())

        vacant = state.num_vacant_in_service
        shortfall = max(0, self.required_returns - vacant)
        conflicts = state.replica_conflict_count if state.replica_groups else 0

        value = (
            peak
            + w.smooth_weight * smooth
            + w.move_penalty * moved
            + w.overload_penalty * overload
            + w.vacancy_penalty * shortfall
            + w.replica_penalty * conflicts
        )
        return {
            "value": value,
            "peak": peak,
            "smooth": smooth,
            "moved_fraction": moved,
            "overload": overload,
            "vacancy_shortfall": float(shortfall),
            "replica_conflicts": float(conflicts),
        }

    def is_feasible(self, state: ClusterState, *, atol: float = 1e-9) -> bool:
        """Hard feasibility: within capacity, fully assigned, R vacancies."""
        if not state.is_fully_assigned():
            return False
        if not state.is_within_capacity(atol=atol):
            return False
        if state.replica_groups and state.has_replica_conflicts():
            return False
        return state.num_vacant_in_service >= self.required_returns


class IncrementalObjective:
    """Cache-backed evaluator producing *exactly* :class:`Objective`'s value.

    :class:`ClusterState` maintains per-machine peaks, vacancy, and
    replica-conflict counters as move deltas (see the "Delta evaluation
    contract" in docs/ARCHITECTURE.md); this wrapper reads those caches
    instead of recomputing them, so an evaluation after ``k`` moves costs
    O(k·d + m + n) instead of O(m·d + n + replica groups) of Python-level
    work.  Every term is computed with element-wise arithmetic identical
    to :meth:`Objective.components`, so the two agree **bitwise** — the
    delta-evaluated search walks the exact trajectory the copy-based
    search walked.

    Parameters
    ----------
    base:
        The reference :class:`Objective` (supplies ``a0``, sizes, weights,
        required returns — and the from-scratch recompute).
    cross_check:
        Debug flag: recompute every term via ``base.components`` on each
        evaluation and raise ``AssertionError`` on any mismatch.  Slow;
        meant for tests and for validating custom operators.
    """

    def __init__(self, base: Objective, *, cross_check: bool = False) -> None:
        self.base = base
        self.cross_check = bool(cross_check)

    # Pass-throughs so the wrapper is a drop-in for Objective.
    @property
    def a0(self) -> np.ndarray:
        return self.base.a0

    @property
    def sizes(self) -> np.ndarray:
        return self.base.sizes

    @property
    def required_returns(self) -> int:
        return self.base.required_returns

    @property
    def weights(self) -> ObjectiveWeights:
        return self.base.weights

    def __call__(self, state: ClusterState) -> float:
        return self.components(state)["value"]

    def components(self, state: ClusterState) -> dict[str, float]:
        """All objective terms, bitwise-equal to ``base.components``."""
        base = self.base
        w = base.weights
        # Block-max peak: bitwise-equal to machine_peak.max() (float max
        # is exact) but only rescans blocks containing touched machines.
        peak = state.peak_utilization()
        machine_peak = state.machine_peak_utilization_view()
        smooth = float(np.mean(machine_peak**2))

        assign = state.assignment_view()
        moved = float(base.sizes[assign != base.a0].sum()) / base._total_bytes

        # Zero-overload is the common case; detect it from the peak the
        # state already maintains.  peak <= 1.0 means every fl(util)
        # <= 1.0, so the full relu-sum is exactly 0.0; peak > 1.0 means
        # some entry exceeds 1.0 and the sum is computed in full.  (A
        # load marginally above capacity whose fl(util) rounds to 1.0
        # contributes relu = 0.0 either way, so this gate is bitwise
        # equivalent to comparing loads against capacity.)
        if peak > 1.0:
            util = state.loads / state.capacity
            overload = float(np.maximum(util - 1.0, 0.0).sum())
        else:
            overload = 0.0

        shortfall = max(0, base.required_returns - state.num_vacant_in_service)
        conflicts = state.replica_conflict_count if state.replica_groups else 0

        value = (
            peak
            + w.smooth_weight * smooth
            + w.move_penalty * moved
            + w.overload_penalty * overload
            + w.vacancy_penalty * shortfall
            + w.replica_penalty * conflicts
        )
        out = {
            "value": value,
            "peak": peak,
            "smooth": smooth,
            "moved_fraction": moved,
            "overload": overload,
            "vacancy_shortfall": float(shortfall),
            "replica_conflicts": float(conflicts),
        }
        if self.cross_check:
            ref = base.components(state)
            for key, got in out.items():
                if got != ref[key]:
                    raise AssertionError(
                        f"IncrementalObjective diverged from Objective on "
                        f"{key!r}: delta={got!r} full={ref[key]!r}"
                    )
        return out

    def is_feasible(self, state: ClusterState, *, atol: float = 1e-9) -> bool:
        """Hard feasibility, identical to ``base.is_feasible`` (which now
        also reads the incremental caches)."""
        return self.base.is_feasible(state, atol=atol)
