"""Unit and property tests for ClusterState.

The property tests pin the invariants every algorithm relies on:
load conservation under arbitrary move sequences, and agreement between
incremental load updates and a from-scratch recomputation.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import UNASSIGNED, ClusterState, Machine, Shard


def small_cluster(m=3, n=6, cap=10.0, dem=1.0):
    machines = Machine.homogeneous(m, cap)
    shards = Shard.uniform(n, dem)
    assignment = [j % m for j in range(n)]
    return ClusterState(machines, shards, assignment)


class TestConstruction:
    def test_round_robin_loads(self):
        state = small_cluster()
        np.testing.assert_allclose(state.loads, 2.0)
        assert state.num_machines == 3
        assert state.num_shards == 6

    def test_default_assignment_is_unassigned(self):
        state = ClusterState(Machine.homogeneous(2, 5.0), Shard.uniform(3, 1.0))
        assert list(state.assignment) == [UNASSIGNED] * 3
        np.testing.assert_allclose(state.loads, 0.0)

    def test_requires_machines_and_shards(self):
        with pytest.raises(ValueError, match="at least one machine"):
            ClusterState([], Shard.uniform(1, 1.0))
        with pytest.raises(ValueError, match="at least one shard"):
            ClusterState(Machine.homogeneous(1, 1.0), [])

    def test_rejects_nondense_machine_ids(self):
        machines = [Machine(id=1, capacity=np.ones(3))]
        with pytest.raises(ValueError, match="dense"):
            ClusterState(machines, Shard.uniform(1, 1.0))

    def test_rejects_mixed_schemas(self):
        from repro.cluster import ResourceSchema

        machines = Machine.homogeneous(1, 1.0)
        odd = Shard(id=0, demand=np.ones(2), schema=ResourceSchema(("cpu", "ram")))
        with pytest.raises(ValueError, match="schema"):
            ClusterState(machines, [odd])

    def test_rejects_out_of_range_assignment(self):
        with pytest.raises(ValueError, match="unknown machines"):
            ClusterState(Machine.homogeneous(2, 5.0), Shard.uniform(2, 1.0), [0, 5])

    def test_rejects_wrong_length_assignment(self):
        with pytest.raises(ValueError, match="shape"):
            ClusterState(Machine.homogeneous(2, 5.0), Shard.uniform(2, 1.0), [0])

    def test_overloaded_input_is_accepted(self):
        # Rebalancer inputs may violate capacity; construction must not reject.
        state = ClusterState(
            Machine.homogeneous(2, 1.0), Shard.uniform(4, 1.0), [0, 0, 0, 0]
        )
        assert not state.is_within_capacity()
        assert list(state.overloaded_machines()) == [0]


class TestMutation:
    def test_move_updates_loads_incrementally(self):
        state = small_cluster()
        src = state.move(0, 2)
        assert src == 0
        assert state.machine_of(0) == 2
        np.testing.assert_allclose(state.loads[:, 0], [1.0, 2.0, 3.0])

    def test_unassign_then_assign(self):
        state = small_cluster()
        state.unassign(0)
        assert state.machine_of(0) == UNASSIGNED
        assert list(state.unassigned_shards()) == [0]
        state.assign_shard(0, 1)
        assert state.machine_of(0) == 1

    def test_double_assign_rejected(self):
        state = small_cluster()
        with pytest.raises(ValueError, match="already on machine"):
            state.assign_shard(0, 1)

    def test_assign_unknown_machine_rejected(self):
        state = small_cluster()
        state.unassign(0)
        with pytest.raises(ValueError, match="unknown machine"):
            state.assign_shard(0, 99)

    def test_unassign_unassigned_is_noop(self):
        state = ClusterState(Machine.homogeneous(1, 5.0), Shard.uniform(1, 1.0))
        assert state.unassign(0) == UNASSIGNED

    def test_apply_assignment_recomputes(self):
        state = small_cluster()
        state.apply_assignment(np.zeros(6, dtype=np.int64))
        np.testing.assert_allclose(state.loads[:, 0], [6.0, 0.0, 0.0])


class TestQueries:
    def test_utilization_and_peak(self):
        state = small_cluster(cap=4.0)
        np.testing.assert_allclose(state.utilization(), 0.5)
        assert state.peak_utilization() == 0.5

    def test_headroom(self):
        state = small_cluster(cap=4.0)
        np.testing.assert_allclose(state.headroom(), 2.0)

    def test_machine_shards(self):
        state = small_cluster()
        assert list(state.machine_shards(0)) == [0, 3]

    def test_shard_counts_and_vacancy(self):
        state = ClusterState(
            Machine.homogeneous(3, 10.0), Shard.uniform(2, 1.0), [0, 0]
        )
        assert list(state.shard_counts()) == [2, 0, 0]
        assert list(state.vacant_machines()) == [1, 2]

    def test_fits_accounts_for_current_placement(self):
        state = ClusterState(Machine.homogeneous(2, 1.0), Shard.uniform(2, 1.0), [0, 1])
        assert state.fits(0, 0)  # already there, machine exactly full
        assert not state.fits(0, 1)  # target already full

    def test_mean_utilization(self):
        state = small_cluster(m=2, n=4, cap=4.0, dem=1.0)
        np.testing.assert_allclose(state.mean_utilization(), 0.5)

    def test_is_fully_assigned(self):
        state = small_cluster()
        assert state.is_fully_assigned()
        state.unassign(0)
        assert not state.is_fully_assigned()


class TestCopyAndExtend:
    def test_copy_is_independent(self):
        state = small_cluster()
        dup = state.copy()
        dup.move(0, 2)
        assert state.machine_of(0) == 0
        assert dup.machine_of(0) == 2

    def test_copy_shares_descriptions(self):
        state = small_cluster()
        dup = state.copy()
        assert dup.machines is state.machines
        assert dup.capacity is state.capacity

    def test_with_extra_machines_appends_and_preserves(self):
        state = small_cluster()
        extra = Machine(id=0, capacity=np.full(3, 20.0), exchange=True)
        grown = state.with_extra_machines([extra])
        assert grown.num_machines == 4
        assert grown.machines[3].id == 3
        assert grown.machines[3].exchange
        np.testing.assert_allclose(grown.loads[:3], state.loads)
        assert list(grown.exchange_mask) == [False, False, False, True]


# --------------------------------------------------------------------------
# Property tests
# --------------------------------------------------------------------------

@st.composite
def cluster_and_moves(draw):
    m = draw(st.integers(min_value=1, max_value=6))
    n = draw(st.integers(min_value=1, max_value=20))
    dems = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    machines = Machine.homogeneous(m, 100.0)
    shards = [Shard(id=j, demand=np.full(3, d)) for j, d in enumerate(dems)]
    assignment = draw(
        st.lists(st.integers(min_value=0, max_value=m - 1), min_size=n, max_size=n)
    )
    moves = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=m - 1),
            ),
            max_size=30,
        )
    )
    return machines, shards, assignment, moves


@given(cluster_and_moves())
@settings(max_examples=60, deadline=None)
def test_property_loads_match_recompute_after_moves(data):
    """Incremental load updates always agree with a from-scratch recompute."""
    machines, shards, assignment, moves = data
    state = ClusterState(machines, shards, assignment)
    for shard_id, dst in moves:
        state.move(shard_id, dst)
    fresh = ClusterState(machines, shards, state.assignment)
    np.testing.assert_allclose(state.loads, fresh.loads, atol=1e-9)


class TestSoAMirrors:
    def test_loads_by_dim_tracks_mutations(self):
        state = small_cluster()
        assert state.loads_by_dim().flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(state.loads_by_dim(), state.loads.T)
        state.move(0, 2)
        state.unassign(1)
        state.assign_shard(1, 1)
        np.testing.assert_array_equal(state.loads_by_dim(), state.loads.T)
        state.validate()

    def test_loads_by_dim_restored_by_rollback(self):
        state = small_cluster()
        before = state.loads_by_dim().copy()
        state.begin()
        state.move(0, 2)
        state.unassign_many([1, 2])
        state.rollback()
        np.testing.assert_array_equal(state.loads_by_dim(), before)
        state.validate()

    def test_capacity_mirrors_shared_across_copies(self):
        state = small_cluster()
        inv = state.inv_capacity_by_dim()
        np.testing.assert_array_equal(inv, (1.0 / state.capacity).T)
        clone = state.copy()
        assert clone.capacity_by_dim() is state.capacity_by_dim()
        assert clone.inv_capacity_by_dim() is inv

    def test_block_max_peak_after_partial_updates(self):
        # Exercise the segmented block-max: dirty one machine, read the
        # peak, then dirty another and read again — both reads must equal
        # the full recompute.
        state = small_cluster(m=5, n=10, cap=10.0, dem=2.0)
        for shard, dst in ((0, 4), (1, 3), (2, 4)):
            state.move(shard, dst)
            expected = float((state.loads / state.capacity).max())
            assert state.peak_utilization() == expected
        state.validate()


@given(cluster_and_moves())
@settings(max_examples=60, deadline=None)
def test_property_total_load_is_conserved(data):
    """Moves never create or destroy demand."""
    machines, shards, assignment, moves = data
    state = ClusterState(machines, shards, assignment)
    before = state.loads.sum(axis=0).copy()
    for shard_id, dst in moves:
        state.move(shard_id, dst)
    np.testing.assert_allclose(state.loads.sum(axis=0), before, atol=1e-9)
    np.testing.assert_allclose(before, state.total_demand(), atol=1e-9)
