"""The scenario registry: named parametric generator families.

Every family is a registered ``(ScenarioSpec) -> ClusterState`` function
with a declared, typed parameter schema.  The registry is the single
enumeration surface for instances: the CLI lists it, the experiment
suites look specs up in it, and the scenario matrix sweeps it.

Seeding contract
----------------
A family's builder receives ``(params, seed)`` and must derive **all**
randomness from that seed — either by passing it straight into one of
the workload configs (which construct ``default_rng(seed)``, i.e. a
``SeedSequence``-seeded generator) or, when independent streams are
needed, by spawning children from ``numpy.random.SeedSequence(seed)``.
Equal resolved spec ⇒ byte-identical instance, on any host, any worker
count, any process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.cluster import ClusterState
from repro.scenarios.spec import ParamSpec, ScenarioSpec, canonical_params, spec_hash

__all__ = [
    "ScenarioFamily",
    "SCENARIOS",
    "register_scenario",
    "get_family",
    "list_families",
    "resolve_params",
    "resolve",
    "generate_instance",
]

#: Builder signature: (resolved params, seed) -> instance.
Builder = Callable[[Mapping[str, Any], int], ClusterState]


@dataclass(frozen=True)
class ScenarioFamily:
    """One registered generator family.

    Attributes
    ----------
    name:
        Registry key (kebab-case).
    summary:
        One-line description for listings.
    params:
        Declared parameter schema, in display order.
    builder:
        The generator function (see module docstring for the contract).
    """

    name: str
    summary: str
    params: tuple[ParamSpec, ...]
    builder: Builder

    def param(self, name: str) -> ParamSpec:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(name)

    def defaults(self) -> dict[str, Any]:
        return {p.name: p.default for p in self.params}


#: name -> family; populated by ``repro.scenarios.families`` at import.
SCENARIOS: dict[str, ScenarioFamily] = {}


def register_scenario(
    name: str, summary: str, params: tuple[ParamSpec, ...]
) -> Callable[[Builder], Builder]:
    """Decorator registering *builder* as scenario family *name*."""
    names = [p.name for p in params]
    if len(set(names)) != len(names):
        raise ValueError(f"scenario {name!r}: duplicate parameter names in {names}")

    def deco(builder: Builder) -> Builder:
        if name in SCENARIOS:
            raise ValueError(f"scenario {name!r} is already registered")
        SCENARIOS[name] = ScenarioFamily(
            name=name, summary=summary, params=params, builder=builder
        )
        return builder

    return deco


def get_family(name: str) -> ScenarioFamily:
    """Look a family up; unknown names list what is available."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None


def list_families() -> list[ScenarioFamily]:
    """All registered families, sorted by name."""
    return [SCENARIOS[name] for name in sorted(SCENARIOS)]


def resolve_params(
    family: ScenarioFamily, overrides: Mapping[str, Any]
) -> dict[str, Any]:
    """Resolve *overrides* against the family schema.

    Unknown keys raise with the legal parameter names; known keys are
    coerced to their declared type and range-checked.  The result is the
    complete parameter mapping (defaults filled in), canonically sorted.
    """
    known = {p.name for p in family.params}
    unknown = sorted(set(overrides) - known)
    if unknown:
        raise ValueError(
            f"scenario {family.name!r}: unknown parameter(s) {unknown}; "
            f"declared: {sorted(known)}"
        )
    resolved = family.defaults()
    for key, value in overrides.items():
        resolved[key] = family.param(key).coerce(value)
    return canonical_params(resolved)


def resolve(spec: ScenarioSpec) -> tuple[ScenarioFamily, dict[str, Any], str]:
    """Validate *spec* fully: returns (family, resolved params, hash)."""
    family = get_family(spec.scenario)
    resolved = resolve_params(family, spec.params)
    return family, resolved, spec_hash(spec.scenario, resolved, spec.seed)


def generate_instance(spec: ScenarioSpec) -> ClusterState:
    """Generate the instance a spec describes (the registry's main entry).

    Deterministic: equal specs (after canonicalization) produce
    byte-identical :class:`ClusterState` objects.
    """
    family, resolved, _ = resolve(spec)
    return family.builder(resolved, int(spec.seed))
