"""The shipped scenario families.

Seven registered generator families (see docs/ARCHITECTURE.md, "Scenario
registry", for the schema and seeding contract):

``zipf-popularity``
    Zipfian shard popularity with parametric skew — the canonical search
    workload; wraps :class:`repro.workloads.SyntheticConfig` so legacy
    hand-registered zipf instances map 1:1 onto specs.
``correlated-demand``
    Correlated multi-dimensional demand with a parametric correlation
    coefficient and demand distribution (uniform or zipf).
``capacity-headroom``
    Headroom sweep: ``headroom`` (1 − tightness) is *the* parameter, so
    a matrix axis over it reproduces the paper's tightness sweeps.
``heterogeneous-generations``
    Mixed hardware generations (capacity/speed tiers) with drifted
    placement — parametric version of the datacenter snapshot generator.
``multi-tenant``
    Several tenants sharing one pool: per-tenant heat multipliers over
    intra-tenant zipf demand, so load is blocky-correlated by owner.
``failure-storm``
    Machine-loss waves layered on a base instance: victims are drained
    and taken offline wave by wave, survivors absorb the orphans.
``replicated-shards``
    Anti-affine replica groups over the synthetic substrate; wraps
    :class:`repro.workloads.ReplicatedConfig`.

Every family derives all randomness from the spec seed — either passed
straight into a workload config (whose generators construct
``default_rng(seed)``) or through ``SeedSequence(seed).spawn`` children
when independent streams are needed.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

import numpy as np

from repro.cluster import ClusterState, MachineClass
from repro.scenarios.registry import register_scenario
from repro.scenarios.spec import ParamSpec
from repro.workloads.datacenter import (
    DEFAULT_MACHINE_MIX,
    DatacenterConfig,
    generate_datacenter,
)
from repro.workloads.replicated import ReplicatedConfig, generate_replicated
from repro.workloads.synthetic import (
    SyntheticConfig,
    _lpt_placement,
    _repair_feasibility,
    generate,
    waterfill_scale,
)

__all__: list[str] = []  # families register themselves; nothing to re-export


def _shape_params(
    *, machines: int = 20, spm: int = 8, util: float = 0.75, skew: float = 0.5
) -> tuple[ParamSpec, ...]:
    """The fleet-shape parameters every synthetic-substrate family shares."""
    return (
        ParamSpec("num_machines", "int", machines, low=1, high=100_000,
                  doc="fleet size"),
        ParamSpec("shards_per_machine", "int", spm, low=1, high=1_000,
                  doc="shards per machine (total shards = product)"),
        ParamSpec("target_utilization", "float", util, low=0.05, high=0.98,
                  doc="total demand / total capacity (tightness)"),
        ParamSpec("placement_skew", "float", skew, low=0.0, high=0.99,
                  doc="initial-placement imbalance (0 = balanced)"),
    )


# --------------------------------------------------------------------- zipf
@register_scenario(
    "zipf-popularity",
    "zipfian shard popularity with parametric skew (canonical search workload)",
    _shape_params()
    + (
        ParamSpec("zipf_alpha", "float", 1.1, low=0.2, high=3.0,
                  doc="power-law exponent of shard popularity"),
        ParamSpec("max_shard_fraction", "float", 0.3, low=0.05, high=0.9,
                  doc="largest share of one machine a single shard may demand"),
        ParamSpec("dim_correlation", "float", 0.8, low=0.0, high=1.0,
                  doc="cross-dimension demand correlation"),
    ),
)
def _build_zipf(params: Mapping[str, Any], seed: int) -> ClusterState:
    return generate(
        SyntheticConfig(
            num_machines=params["num_machines"],
            shards_per_machine=params["shards_per_machine"],
            target_utilization=params["target_utilization"],
            demand_dist="zipf",
            zipf_alpha=params["zipf_alpha"],
            dim_correlation=params["dim_correlation"],
            placement_skew=params["placement_skew"],
            max_shard_fraction=params["max_shard_fraction"],
            seed=seed,
        )
    )


# --------------------------------------------------------- correlated demand
@register_scenario(
    "correlated-demand",
    "correlated multi-dimensional demand with parametric correlation",
    _shape_params()
    + (
        ParamSpec("dim_correlation", "float", 0.8, low=0.0, high=1.0,
                  doc="1 = dimensions perfectly proportional, 0 = independent"),
        ParamSpec("demand_dist", "str", "uniform", choices=("uniform", "zipf"),
                  doc="per-shard magnitude distribution"),
        ParamSpec("max_shard_fraction", "float", 0.3, low=0.05, high=0.9,
                  doc="largest share of one machine a single shard may demand"),
    ),
)
def _build_correlated(params: Mapping[str, Any], seed: int) -> ClusterState:
    return generate(
        SyntheticConfig(
            num_machines=params["num_machines"],
            shards_per_machine=params["shards_per_machine"],
            target_utilization=params["target_utilization"],
            demand_dist=params["demand_dist"],
            dim_correlation=params["dim_correlation"],
            placement_skew=params["placement_skew"],
            max_shard_fraction=params["max_shard_fraction"],
            seed=seed,
        )
    )


# ---------------------------------------------------------- capacity headroom
@register_scenario(
    "capacity-headroom",
    "headroom sweep: tightness = 1 - headroom, for matrix axes over slack",
    (
        ParamSpec("num_machines", "int", 20, low=1, high=100_000,
                  doc="fleet size"),
        ParamSpec("shards_per_machine", "int", 8, low=1, high=1_000,
                  doc="shards per machine"),
        ParamSpec("headroom", "float", 0.2, low=0.02, high=0.9,
                  doc="capacity slack; target utilization = 1 - headroom"),
        ParamSpec("placement_skew", "float", 0.5, low=0.0, high=0.99,
                  doc="initial-placement imbalance"),
        ParamSpec("demand_dist", "str", "zipf", choices=("uniform", "zipf"),
                  doc="per-shard magnitude distribution"),
        ParamSpec("max_shard_fraction", "float", 0.35, low=0.05, high=0.9,
                  doc="largest share of one machine a single shard may demand"),
    ),
)
def _build_headroom(params: Mapping[str, Any], seed: int) -> ClusterState:
    return generate(
        SyntheticConfig(
            num_machines=params["num_machines"],
            shards_per_machine=params["shards_per_machine"],
            target_utilization=1.0 - params["headroom"],
            demand_dist=params["demand_dist"],
            placement_skew=params["placement_skew"],
            max_shard_fraction=params["max_shard_fraction"],
            seed=seed,
        )
    )


# --------------------------------------------------- heterogeneous generations
def _geometric_mix(tiers: int, capacity_step: float) -> tuple[tuple[MachineClass, float], ...]:
    """Synthesize *tiers* hardware generations as a geometric capacity
    ladder (CPU/RAM grow by ``capacity_step`` per generation, disk by
    its square root — newer servers add compute faster than spindles),
    weighted toward the middle generations like a real fleet."""
    base = np.array([48.0, 128.0, 2000.0])
    mix = []
    for t in range(tiers):
        cap = base * np.array(
            [capacity_step**t, capacity_step**t, math.sqrt(capacity_step) ** t]
        )
        # Triangular weights: mid-life generations dominate the fleet.
        weight = 1.0 + min(t, tiers - 1 - t)
        mix.append((MachineClass(f"gen{t + 1}", cap), float(weight)))
    return tuple(mix)


@register_scenario(
    "heterogeneous-generations",
    "mixed hardware generations (capacity tiers) with drifted placement",
    (
        ParamSpec("num_machines", "int", 100, low=1, high=100_000,
                  doc="fleet size"),
        ParamSpec("shards_per_machine", "int", 12, low=1, high=1_000,
                  doc="average shards per machine"),
        ParamSpec("target_utilization", "float", 0.8, low=0.05, high=0.98,
                  doc="tightness after popularity drift"),
        ParamSpec("drift", "float", 0.35, low=0.0, high=1.0,
                  doc="popularity mass moved since placement"),
        ParamSpec("popularity_alpha", "float", 1.0, low=0.2, high=3.0,
                  doc="zipf exponent of query popularity"),
        ParamSpec("tiers", "int", 0, low=0, high=8,
                  doc="hardware generations; 0 = calibrated 3-gen production mix"),
        ParamSpec("capacity_step", "float", 1.5, low=1.0, high=4.0,
                  doc="per-generation CPU/RAM capacity multiplier (tiers > 0)"),
    ),
)
def _build_generations(params: Mapping[str, Any], seed: int) -> ClusterState:
    tiers = params["tiers"]
    mix = DEFAULT_MACHINE_MIX if tiers == 0 else _geometric_mix(
        tiers, params["capacity_step"]
    )
    return generate_datacenter(
        DatacenterConfig(
            num_machines=params["num_machines"],
            shards_per_machine=params["shards_per_machine"],
            target_utilization=params["target_utilization"],
            popularity_alpha=params["popularity_alpha"],
            drift=params["drift"],
            machine_mix=mix,
            seed=seed,
        )
    )


# ---------------------------------------------------------------- multi-tenant
@register_scenario(
    "multi-tenant",
    "several tenants sharing one pool; load is blocky-correlated by owner",
    (
        ParamSpec("num_machines", "int", 30, low=2, high=100_000,
                  doc="machines in the shared pool"),
        ParamSpec("tenants", "int", 4, low=1, high=64,
                  doc="tenants sharing the pool"),
        ParamSpec("shards_per_tenant", "int", 40, low=1, high=10_000,
                  doc="shards each tenant owns"),
        ParamSpec("target_utilization", "float", 0.75, low=0.05, high=0.98,
                  doc="pool-wide tightness across all tenants"),
        ParamSpec("tenant_skew", "float", 0.6, low=0.0, high=0.99,
                  doc="how unevenly load splits across tenants (0 = even)"),
        ParamSpec("zipf_alpha", "float", 1.1, low=0.2, high=3.0,
                  doc="intra-tenant shard popularity exponent"),
        ParamSpec("placement_skew", "float", 0.5, low=0.0, high=0.99,
                  doc="initial-placement imbalance"),
        ParamSpec("max_shard_fraction", "float", 0.3, low=0.05, high=0.9,
                  doc="largest share of one machine a single shard may demand"),
    ),
)
def _build_multi_tenant(params: Mapping[str, Any], seed: int) -> ClusterState:
    from repro.cluster import Machine, Shard
    from repro.cluster.resources import DEFAULT_SCHEMA

    machine_capacity = 100.0
    m = params["num_machines"]
    tenants = params["tenants"]
    per_tenant = params["shards_per_tenant"]
    n = tenants * per_tenant
    d = DEFAULT_SCHEMA.dims

    root = np.random.SeedSequence(seed)
    demand_rng, share_rng, place_rng = (
        np.random.default_rng(child) for child in root.spawn(3)
    )

    # Tenant load shares: Dirichlet with low concentration = skewed pool.
    concentration = max(1e-3, 10.0 * (1.0 - params["tenant_skew"]))
    shares = share_rng.dirichlet(np.full(tenants, concentration))

    # Intra-tenant zipf magnitudes, scaled by the tenant's pool share.
    alpha = params["zipf_alpha"]
    ranks = np.arange(1, per_tenant + 1, dtype=np.float64)
    mags = np.empty(n)
    for t in range(tenants):
        tenant_mags = ranks ** (-alpha)
        demand_rng.shuffle(tenant_mags)
        tenant_mags = np.maximum(tenant_mags, tenant_mags.max() * 1e-3)
        tenant_mags *= shares[t] / tenant_mags.sum()
        mags[t * per_tenant : (t + 1) * per_tenant] = tenant_mags

    # Per-dimension noise around the shared magnitude (as in synthetic).
    noise = demand_rng.uniform(0.5, 1.5, size=(n, d))
    per_dim = mags[:, None] * (0.8 + 0.2 * noise)
    total_capacity = m * machine_capacity
    cap = params["max_shard_fraction"] * machine_capacity
    demands = np.empty_like(per_dim)
    for k in range(d):
        demands[:, k] = waterfill_scale(
            per_dim[:, k], params["target_utilization"] * total_capacity, cap
        )

    machines = Machine.homogeneous(m, machine_capacity, cls="multi-tenant")
    shards = [Shard(id=j, demand=demands[j]) for j in range(n)]
    capacity = np.stack([mach.capacity for mach in machines])
    # Dirichlet-weighted skewed placement (as in the synthetic family),
    # sized to the tenant shard count, then repaired to feasibility.
    skew = params["placement_skew"]
    if skew == 0.0:
        assign = _lpt_placement(demands, capacity)
    else:
        weight_conc = max(1e-3, 10.0 * (1.0 - skew))
        weights = place_rng.dirichlet(np.full(m, weight_conc))
        assign = place_rng.choice(m, size=n, p=weights)
        assign = _repair_feasibility(assign, demands, capacity, place_rng)
    return ClusterState(machines, shards, assign)


# --------------------------------------------------------------- failure storm
@register_scenario(
    "failure-storm",
    "machine-loss waves on a base instance; survivors absorb the orphans",
    _shape_params(util=0.7)
    + (
        ParamSpec("waves", "int", 2, low=1, high=16,
                  doc="failure waves applied in sequence"),
        ParamSpec("loss_fraction", "float", 0.1, low=0.01, high=0.4,
                  doc="fraction of the original fleet lost per wave"),
        ParamSpec("reassign_orphans", "bool", True,
                  doc="greedily re-place orphaned shards on survivors "
                      "(False leaves them unassigned for recovery studies)"),
        ParamSpec("zipf_alpha", "float", 1.1, low=0.2, high=3.0,
                  doc="shard popularity exponent of the base instance"),
    ),
)
def _build_failure_storm(params: Mapping[str, Any], seed: int) -> ClusterState:
    root = np.random.SeedSequence(seed)
    base_seed_seq, storm_seed_seq = root.spawn(2)
    state = generate(
        SyntheticConfig(
            num_machines=params["num_machines"],
            shards_per_machine=params["shards_per_machine"],
            target_utilization=params["target_utilization"],
            demand_dist="zipf",
            zipf_alpha=params["zipf_alpha"],
            placement_skew=params["placement_skew"],
            seed=int(base_seed_seq.generate_state(1)[0]),
        )
    )
    storm_rng = np.random.default_rng(storm_seed_seq)
    m = state.num_machines
    per_wave = max(1, int(round(params["loss_fraction"] * m)))
    orphans: list[int] = []
    for _ in range(params["waves"]):
        alive = np.flatnonzero(~state.offline_mask)
        # Never kill the whole fleet: keep at least one machine serving.
        victims = storm_rng.choice(
            alive, size=min(per_wave, alive.size - 1), replace=False
        )
        for i in sorted(int(v) for v in victims):
            for j in state.machine_shards(i).tolist():
                state.unassign(int(j))
                orphans.append(int(j))
            state.set_offline(i)
    if params["reassign_orphans"]:
        # Greedy best-fit by post-insert peak: survivors absorb the
        # orphans even when that overloads them — the storm's aftermath
        # is exactly the imbalanced state a rebalancer receives.
        alive = np.flatnonzero(~state.offline_mask)
        demand = state.demand
        capacity = state.capacity
        for j in sorted(orphans, key=lambda j: -float(demand[j].sum())):
            util_after = (
                (state.loads[alive] + demand[j]) / capacity[alive]
            ).max(axis=1)
            state.assign_shard(j, int(alive[int(np.argmin(util_after))]))
    return state


# ---------------------------------------------------------------- demand drift
@register_scenario(
    "demand-drift",
    "hotspot-shift + flash-crowd demand over a stale placement (controller studies)",
    _shape_params(machines=16, spm=6, util=0.75, skew=0.0)
    + (
        ParamSpec("zipf_alpha", "float", 1.1, low=0.2, high=3.0,
                  doc="shard popularity exponent at placement time"),
        ParamSpec("hotspot_shift", "float", 0.3, low=0.0, high=0.9,
                  doc="popularity mass moved onto the hot set since placement"),
        ParamSpec("hotspot_fraction", "float", 0.1, low=0.01, high=0.5,
                  doc="fraction of shards forming the drifted hot set"),
        ParamSpec("flash_multiplier", "float", 1.0, low=1.0, high=50.0,
                  doc="demand multiplier on the flash-crowd shards (1 = none)"),
        ParamSpec("flash_fraction", "float", 0.02, low=0.0, high=0.2,
                  doc="fraction of shards hit by the flash crowd"),
        ParamSpec("max_shard_fraction", "float", 0.35, low=0.05, high=0.9,
                  doc="largest share of one machine a single shard may demand"),
    ),
)
def _build_demand_drift(params: Mapping[str, Any], seed: int) -> ClusterState:
    """Placement is computed for yesterday's workload; demand is today's.

    A base zipf instance is generated (balanced or skewed placement per
    ``placement_skew``), then the *demand* alone is rewritten: a seeded
    hotspot shift moves ``hotspot_shift`` of the popularity mass onto a
    random hot set, and an optional flash crowd multiplies a small shard
    set on top.  Every dimension is re-waterfilled to the original
    tightness with the per-shard cap, so the instance stays comparable
    across parameters — only *where* the load sits changes.  The result
    is the canonical continuous-rebalancing input: a placement that was
    right once and a workload that has moved on.
    """
    from repro.online.drift import apply_demands

    root = np.random.SeedSequence(seed)
    base_ss, hot_ss, flash_ss = root.spawn(3)
    state = generate(
        SyntheticConfig(
            num_machines=params["num_machines"],
            shards_per_machine=params["shards_per_machine"],
            target_utilization=params["target_utilization"],
            demand_dist="zipf",
            zipf_alpha=params["zipf_alpha"],
            placement_skew=params["placement_skew"],
            max_shard_fraction=params["max_shard_fraction"],
            seed=int(base_ss.generate_state(1)[0]),
        )
    )
    n = state.num_shards
    demand = state.demand.copy()

    # Hotspot shift: move a fraction of each dimension's mass onto a
    # random hot set, distributed zipf-style within it (a few shards get
    # most of the surge, like a trending query cluster).
    shift = params["hotspot_shift"]
    if shift > 0.0:
        hot_rng = np.random.default_rng(hot_ss)
        k = max(1, int(round(params["hotspot_fraction"] * n)))
        hot = hot_rng.choice(n, size=k, replace=False)
        surge = np.arange(1, k + 1, dtype=np.float64) ** (-params["zipf_alpha"])
        hot_rng.shuffle(surge)
        surge /= surge.sum()
        totals = demand.sum(axis=0)
        demand *= 1.0 - shift
        demand[hot] += shift * surge[:, None] * totals[None, :]

    # Flash crowd: multiply a small random shard set across the board.
    flash_mult = params["flash_multiplier"]
    if flash_mult > 1.0 and params["flash_fraction"] > 0.0:
        flash_rng = np.random.default_rng(flash_ss)
        fk = max(1, int(round(params["flash_fraction"] * n)))
        flash = flash_rng.choice(n, size=fk, replace=False)
        demand[flash] *= flash_mult

    # Re-waterfill every dimension to the original tightness with the
    # per-shard cap, so tightness is a controlled variable.
    cap_per_machine = state.capacity.mean(axis=0)
    for dim in range(state.dims):
        demand[:, dim] = waterfill_scale(
            demand[:, dim],
            params["target_utilization"] * state.capacity[:, dim].sum(),
            params["max_shard_fraction"] * cap_per_machine[dim],
        )
    return apply_demands(state, demand)


# ------------------------------------------------------------ replicated shards
@register_scenario(
    "replicated-shards",
    "anti-affine replica groups over the synthetic substrate",
    _shape_params(util=0.7)
    + (
        ParamSpec("replication_factor", "int", 2, low=1, high=8,
                  doc="replicas per logical shard (anti-affine)"),
        ParamSpec("zipf_alpha", "float", 1.1, low=0.2, high=3.0,
                  doc="logical-shard popularity exponent"),
        ParamSpec("max_shard_fraction", "float", 0.3, low=0.05, high=0.9,
                  doc="largest share of one machine a single shard may demand"),
    ),
)
def _build_replicated(params: Mapping[str, Any], seed: int) -> ClusterState:
    return generate_replicated(
        ReplicatedConfig(
            base=SyntheticConfig(
                num_machines=params["num_machines"],
                shards_per_machine=params["shards_per_machine"],
                target_utilization=params["target_utilization"],
                demand_dist="zipf",
                zipf_alpha=params["zipf_alpha"],
                placement_skew=params["placement_skew"],
                max_shard_fraction=params["max_shard_fraction"],
                seed=seed,
            ),
            replication_factor=params["replication_factor"],
        )
    )
