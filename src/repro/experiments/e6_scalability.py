"""E6 — runtime scaling (paper analogue: the scalability figure).

Wall-clock per LNS iteration as instance size grows.  The per-iteration
cost of SRA is dominated by the repair's O(q·m·d) score maintenance, so
time per iteration should grow roughly linearly in n (q is a fraction of
n) times m.
"""

from __future__ import annotations

import time

from repro.experiments.common import make_sra
from repro.experiments.harness import register
from repro.workloads import scaling_suite


@register("e6")
def run(fast: bool = True) -> list[dict]:
    sizes = ((20, 6), (50, 6), (100, 6)) if fast else ((20, 6), (50, 6), (100, 6), (200, 6), (400, 6))
    iterations = 200 if fast else 500
    rows = []
    for name, state in scaling_suite(sizes=sizes):
        sra = make_sra(iterations, seed=1)
        started = time.perf_counter()
        result = sra.rebalance(state)
        elapsed = time.perf_counter() - started
        rows.append(
            {
                "instance": name,
                "machines": state.num_machines,
                "shards": state.num_shards,
                "iterations": result.iterations,
                "runtime_s": elapsed,
                "ms_per_iter": 1e3 * elapsed / max(result.iterations, 1),
                "peak_after": result.peak_after,
            }
        )
    return rows
