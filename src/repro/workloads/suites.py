"""Named instance suites used by the experiment harness.

Each suite is a list of ``(name, ClusterState)`` pairs generated from
fixed seeds, so every benchmark run sees byte-identical instances.  The
suites mirror the two data sources of the paper's evaluation: synthetic
data (uniform and Zipf) and datacenter snapshots (our substitution for
the production data, see DESIGN.md §3).
"""

from __future__ import annotations

from typing import Iterable

from repro.cluster import ClusterState
from repro.workloads.datacenter import DatacenterConfig, generate_datacenter
from repro.workloads.synthetic import SyntheticConfig, generate

__all__ = [
    "small_suite",
    "synthetic_suite",
    "tight_suite",
    "datacenter_suite",
    "scaling_suite",
]


def small_suite(seeds: Iterable[int] = (0, 1, 2)) -> list[tuple[str, ClusterState]]:
    """Tiny instances solvable exactly by the MILP backend (E9)."""
    out: list[tuple[str, ClusterState]] = []
    for seed in seeds:
        for m, spm in ((4, 4), (6, 4), (8, 3)):
            cfg = SyntheticConfig(
                num_machines=m,
                shards_per_machine=spm,
                target_utilization=0.7,
                demand_dist="zipf",
                placement_skew=0.5,
                seed=seed,
            )
            out.append((f"small-m{m}n{cfg.num_shards}-s{seed}", generate(cfg)))
    return out


def synthetic_suite(
    utilizations: Iterable[float] = (0.6, 0.75, 0.9),
    seeds: Iterable[int] = (0, 1, 2),
    *,
    num_machines: int = 50,
    shards_per_machine: int = 6,
) -> list[tuple[str, ClusterState]]:
    """The main synthetic comparison suite (E1, E3).

    ``shards_per_machine=6`` and ``max_shard_fraction=0.35`` follow
    production search-shard sizing (tens of GB per shard, a handful per
    machine); big shards are what make the transient constraint bind and
    separate the algorithms — see DESIGN.md §3.
    """
    out: list[tuple[str, ClusterState]] = []
    for dist in ("uniform", "zipf"):
        for util in utilizations:
            for seed in seeds:
                cfg = SyntheticConfig(
                    num_machines=num_machines,
                    shards_per_machine=shards_per_machine,
                    target_utilization=util,
                    demand_dist=dist,  # type: ignore[arg-type]
                    placement_skew=0.55,
                    max_shard_fraction=0.35,
                    seed=seed,
                )
                out.append((f"{dist}-u{util:.2f}-s{seed}", generate(cfg)))
    return out


def tight_suite(seeds: Iterable[int] = (0, 1, 2)) -> list[tuple[str, ClusterState]]:
    """Stringent-resource instances where transient constraints bind (E2, E7)."""
    out: list[tuple[str, ClusterState]] = []
    for seed in seeds:
        cfg = SyntheticConfig(
            num_machines=40,
            shards_per_machine=6,
            target_utilization=0.88,
            demand_dist="zipf",
            placement_skew=0.5,
            max_shard_fraction=0.35,
            seed=seed,
        )
        out.append((f"tight-u0.88-s{seed}", generate(cfg)))
    return out


def datacenter_suite(seeds: Iterable[int] = (0, 1, 2)) -> list[tuple[str, ClusterState]]:
    """Drifted datacenter snapshots — the "real data" stand-in (E5)."""
    out: list[tuple[str, ClusterState]] = []
    for seed in seeds:
        for m, drift in ((80, 0.3), (120, 0.4)):
            cfg = DatacenterConfig(
                num_machines=m,
                shards_per_machine=12,
                target_utilization=0.8,
                drift=drift,
                seed=seed,
            )
            out.append((f"dc-m{m}-d{drift:.1f}-s{seed}", generate_datacenter(cfg)))
    return out


def scaling_suite(
    sizes: Iterable[tuple[int, int]] = ((20, 10), (50, 10), (100, 10), (200, 10), (400, 10)),
    seed: int = 0,
) -> list[tuple[str, ClusterState]]:
    """Increasing-size instances for the runtime scaling study (E6)."""
    out: list[tuple[str, ClusterState]] = []
    for m, spm in sizes:
        cfg = SyntheticConfig(
            num_machines=m,
            shards_per_machine=spm,
            target_utilization=0.8,
            demand_dist="zipf",
            placement_skew=0.5,
            seed=seed,
        )
        out.append((f"scale-m{m}-n{cfg.num_shards}", generate(cfg)))
    return out
