"""Load-imbalance metrics.

All metrics operate on a cluster's per-machine peak utilization vector
(worst dimension per machine), the quantity that governs both QoS
headroom and fan-out tail latency:

* **peak** — the paper's primary objective (max over machines);
* **CV** — coefficient of variation, a scale-free spread measure;
* **Jain index** — fairness in (1/m, 1]; 1 = perfectly even;
* **imbalance ratio** — peak / mean, ≥ 1; 1 = perfectly even.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster import ClusterState

__all__ = [
    "coefficient_of_variation",
    "jain_index",
    "imbalance_ratio",
    "ImbalanceReport",
    "imbalance_report",
]


def coefficient_of_variation(values: np.ndarray) -> float:
    """std / mean (0 for a constant vector; 0 mean ⇒ 0 by convention)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("values must be non-empty")
    mean = values.mean()
    if mean == 0:
        return 0.0
    return float(values.std() / mean)


def jain_index(values: np.ndarray) -> float:
    """Jain's fairness index: (Σx)² / (n·Σx²) ∈ (1/n, 1]."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("values must be non-empty")
    denom = values.size * float((values**2).sum())
    if denom == 0:
        return 1.0
    return float(values.sum() ** 2 / denom)


def imbalance_ratio(values: np.ndarray) -> float:
    """max / mean, ≥ 1 for non-degenerate inputs."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("values must be non-empty")
    mean = values.mean()
    if mean == 0:
        return 1.0
    return float(values.max() / mean)


@dataclass(frozen=True)
class ImbalanceReport:
    """Snapshot of a cluster's balance."""

    peak_utilization: float
    mean_peak_utilization: float
    cv: float
    jain: float
    ratio: float
    overloaded_machines: int
    vacant_machines: int

    def row(self) -> dict[str, float]:
        return {
            "peak": self.peak_utilization,
            "mean": self.mean_peak_utilization,
            "cv": self.cv,
            "jain": self.jain,
            "ratio": self.ratio,
            "overloaded": self.overloaded_machines,
            "vacant": self.vacant_machines,
        }


def imbalance_report(state: ClusterState) -> ImbalanceReport:
    """Compute all balance metrics for *state*."""
    peaks = state.machine_peak_utilization()
    return ImbalanceReport(
        peak_utilization=float(peaks.max()),
        mean_peak_utilization=float(peaks.mean()),
        cv=coefficient_of_variation(peaks),
        jain=jain_index(peaks),
        ratio=imbalance_ratio(peaks),
        overloaded_machines=int(len(state.overloaded_machines())),
        vacant_machines=int(len(state.vacant_machines())),
    )
