"""SRA — the Shard Reassignment Algorithm (the paper's contribution).

SRA couples the ALNS engine with the exchange semantics:

1. the working cluster already contains the borrowed machines (vacant);
2. the objective carries the vacancy-return constraint as a penalty, so
   the search is pulled toward states with ``R`` empty machines;
3. a candidate may only become the incumbent best if (a) it satisfies
   hard capacity, (b) the exchange ledger can be settled on it, and
   (c) a transient-feasible migration schedule exists (staging through
   spare machines allowed) — the *feasibility coupling*;
4. the returned plan includes the staged migration schedule and the
   ledger settlement, so a result is an executable artifact, not just a
   target assignment.

Ablation switches (experiment E10) expose each design decision.
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.cluster import ClusterState, ExchangeLedger
from repro.algorithms.baselines import LocalSearchRebalancer
from repro.migration import StagingPlanner, WaveScheduler, diff_moves
from repro.algorithms.base import RebalanceResult, Rebalancer, finalize_result
from repro.algorithms.budget import MigrationBudget
from repro.algorithms.destroy import (
    DEFAULT_DESTROY_OPS,
    BudgetLocalityBias,
    DestroyOperator,
    random_removal,
    shaw_removal,
    worst_machine_removal,
)
from repro.algorithms.lns import AlnsEngine, IncumbentChannel
from repro.algorithms.objective import IncrementalObjective, Objective
from repro.algorithms.repair import DEFAULT_REPAIR_OPS, RepairOperator
from repro.algorithms.sra_config import SRAConfig

__all__ = ["SRA", "SRAConfig", "MigrationBudget"]


class SRA(Rebalancer):
    """Large-neighborhood-search shard reassignment with resource exchange.

    Usage::

        grown, ledger = ExchangeLedger.borrow(state, exchange_machines)
        result = SRA(SRAConfig(seed=1)).rebalance(grown, ledger)

    Without a ledger SRA degenerates to a plain LNS rebalancer over the
    given machines (useful as the no-exchange ablation).
    """

    name = "sra"

    def __init__(
        self,
        config: SRAConfig | None = None,
        *,
        exchange: "IncumbentChannel | None" = None,
    ) -> None:
        self.config = config or SRAConfig()
        #: Cooperative incumbent channel handed through to the engine
        #: (installed by ``run_sra_restarts`` on portfolio members; None
        #: for the ordinary blind search).
        self.exchange = exchange

    # ------------------------------------------------------------------ API
    def rebalance(
        self,
        state: ClusterState,
        ledger: ExchangeLedger | None = None,
        *,
        warm_start: "np.ndarray | None" = None,
    ) -> RebalanceResult:
        """Solve one episode.

        ``warm_start`` seeds the search from an explicit assignment (the
        serving placement of a continuous controller, a previous round's
        incumbent, ...) instead of ``state.assignment``.  The *objective
        reference* stays ``state.assignment`` regardless: move penalties,
        the migration plan, and any ``migration_budget`` are measured
        against the placement the cluster is actually serving from, so a
        warm-started round still returns an executable delta.  Passing
        ``warm_start=state.assignment`` (or ``None``) is bitwise-identical
        to the historical cold solve — the warm-start contract pinned by
        the parity tests.
        """
        cfg = self.config
        if cfg.restarts > 1:
            if warm_start is not None:
                raise ValueError(
                    "warm_start requires restarts == 1: the restart fan-out "
                    "seeds each restart from the published instance state"
                )
            # Best-of-K independent restarts, fanned across the worker
            # pool sized by alns.n_workers (see repro.parallel).
            from repro.parallel import run_sra_restarts

            report = run_sra_restarts(
                state,
                ledger,
                config=cfg,
                restarts=cfg.restarts,
                n_workers=cfg.alns.n_workers,
                cooperative=cfg.cooperative,
                exchange_period=cfg.exchange_period,
            )
            return report.best
        started = time.perf_counter()  # repro: allow-wall-clock (runtime reporting)
        required = ledger.required_returns if ledger is not None else 0

        objective = Objective(
            state.assignment,
            state.sizes,
            required_returns=required,
            weights=cfg.weights,
        )
        planner = StagingPlanner(
            WaveScheduler(),
            max_hops_per_shard=cfg.max_hops_per_shard,
        )
        budget = cfg.migration_budget
        if budget is not None and not budget.bounded:
            budget = None
        reference = state.assignment_view()
        sizes = state.sizes

        def within_budget(candidate: ClusterState) -> bool:
            assert budget is not None
            moved = candidate.assignment_view() != reference
            return budget.admits(
                int(np.count_nonzero(moved)), float(sizes[moved].sum())
            )

        def best_filter(candidate: ClusterState) -> bool:
            if budget is not None and not within_budget(candidate):
                return False
            if not cfg.feasibility_coupling:
                return objective.is_feasible(candidate)
            if not objective.is_feasible(candidate):
                return False
            if ledger is not None and not ledger.is_satisfiable(candidate):
                return False
            moves = diff_moves(state, candidate.assignment_view())
            if not moves:
                return True
            plan = planner.plan(state, candidate.assignment)
            if not plan.feasible:
                return False
            # The authoritative byte cap: what the executor would actually
            # transfer, staging hops included.
            if (
                budget is not None
                and budget.max_bytes is not None
                and plan.schedule.total_bytes() > budget.max_bytes
            ):
                return False
            return True

        # Pin R designated-return machines (blocked = kept empty) so every
        # intermediate state satisfies the exchange contract structurally;
        # the exchange_swap_removal operator searches over which machines
        # those are.  Prefer borrowed machines as the initial designees.
        work = state.copy()
        if warm_start is not None:
            warm = np.asarray(warm_start, dtype=np.int64)
            if warm.shape != (state.num_shards,):
                raise ValueError(
                    f"warm_start must have shape ({state.num_shards},), "
                    f"got {warm.shape}"
                )
            work.apply_assignment(warm)
        if required > 0:
            vacant = list(work.vacant_machines())
            if len(vacant) < required:
                # Continuous release rounds (borrow nothing, owe R) start
                # from a fully occupied fleet where no machine can be
                # blocked and exchange_swap_removal has no designee to
                # swap — the contract would be structurally unreachable.
                # Drain the cheapest machines so the search starts live.
                _drain_machines(work, required - len(vacant))
                vacant = list(work.vacant_machines())
            preferred = [m for m in (ledger.borrowed_ids if ledger else ()) if m in vacant]
            rest = [m for m in vacant if m not in set(preferred)]
            for mid in (preferred + rest)[:required]:
                work.block_machine(int(mid))

        engine = AlnsEngine(
            cfg.alns, self._destroy_ops(budget, reference, sizes), self._repair_ops()
        )
        initial_valid = objective.is_feasible(work) and (
            ledger is None or ledger.is_satisfiable(work)
        )
        tracer = obs.current().tracer
        with tracer.span(
            "sra.search", required_returns=required, seed=cfg.alns.seed
        ):
            outcome = engine.run(
                work,
                IncrementalObjective(objective, cross_check=cfg.debug_cross_check),
                best_filter=best_filter,
                initial_is_valid_best=initial_valid,
                exchange=self.exchange,
            )

        target = (
            outcome.best_assignment
            if outcome.best_assignment is not None
            else state.assignment
        )
        if outcome.best_assignment is not None and cfg.polish:
            with tracer.span("sra.polish", steps=cfg.polish_steps) as polish_span:
                polished = self._polish(state, outcome.best_assignment, ledger, required)
                kept = objective(polished) < outcome.best_objective - 1e-12 and (
                    best_filter(polished)
                )
                polish_span.set("kept", kept)
                if kept:
                    target = polished.assignment
        result = finalize_result(
            self.name,
            state,
            target,
            ledger=ledger,
            planner=planner,
            started_at=started,
            iterations=outcome.iterations,
            history=outcome.history,
        )
        if outcome.best_assignment is None:
            # Nothing valid was found (e.g. impossible vacancy contract);
            # report the no-op but flag infeasibility of the contract.
            result.feasible = False
        return result

    # ------------------------------------------------------------- internal
    def _polish(
        self,
        state: ClusterState,
        best: "np.ndarray",
        ledger: ExchangeLedger | None,
        required: int,
    ) -> ClusterState:
        """Steepest-descent move/swap polish of the incumbent.

        Designated-return machines (any ``required`` vacant machines of
        the incumbent, borrowed ones first) are blocked so the descent
        cannot spend them.
        """
        polished = state.copy()
        polished.apply_assignment(best)
        if required > 0:
            vacant = list(polished.vacant_machines())
            preferred = [
                m for m in (ledger.borrowed_ids if ledger else ()) if m in vacant
            ]
            rest = [m for m in vacant if m not in set(preferred)]
            for mid in (preferred + rest)[:required]:
                polished.block_machine(int(mid))
        ls = LocalSearchRebalancer(seed=self.config.alns.seed)
        ls.improve_in_place(
            polished,
            np.random.default_rng(self.config.alns.seed),
            max_steps=self.config.polish_steps,
        )
        return polished

    def _destroy_ops(
        self,
        budget: MigrationBudget | None = None,
        reference: "np.ndarray | None" = None,
        sizes: "np.ndarray | None" = None,
    ) -> tuple[DestroyOperator, ...]:
        if self.config.use_vacancy_removal:
            ops: tuple[DestroyOperator, ...] = DEFAULT_DESTROY_OPS
        else:
            # Ablation: no vacancy-minting and no designee swapping.
            ops = (random_removal, worst_machine_removal, shaw_removal)
        if budget is None or reference is None or sizes is None:
            return ops
        # Bounded episode: every operator explores within budget (see
        # BudgetLocalityBias).  The portfolio shape — and hence the
        # roulette RNG stream — is unchanged; only removal targets shift
        # once the working state reaches the budget boundary.
        return tuple(
            BudgetLocalityBias(op, reference, sizes, budget) for op in ops
        )

    def _repair_ops(self) -> tuple[RepairOperator, ...]:
        return DEFAULT_REPAIR_OPS


def _drain_machines(work: ClusterState, count: int) -> None:
    """Vacate the *count* least-utilized open machines of *work* in place.

    Support for continuous release rounds: when the ledger owes more
    returns than there are vacant machines, the designee-blocking prelude
    has nothing to block and ``exchange_swap_removal`` (which only swaps
    an *existing* designee) can never establish the contract.  This
    drains the cheapest occupied machines greedily — each shard, largest
    first, to the open machine with the most summed headroom — producing
    a valid (not necessarily feasible) start the search then repacks.
    Fully deterministic: ties resolve to the lowest machine id.
    """
    blocked = work.blocked_mask | work.offline_mask
    counts = work.shard_counts_view()
    occupied = np.flatnonzero(~blocked & (counts > 0))
    if occupied.size <= count:
        # Impossible contract (no machine would be left to host the
        # drained shards): leave the state untouched — the search then
        # reports the episode infeasible, the historical behaviour.
        return
    util = (work.loads[occupied] / work.capacity[occupied]).sum(axis=1)
    victims = occupied[np.argsort(util, kind="stable")[:count]]
    # Destinations: open machines that are neither a victim nor already
    # vacant (existing vacancies are the other designees — keep them so).
    banned = blocked.copy()
    banned[victims] = True
    banned[counts == 0] = True
    for victim in victims:
        members = work.machine_shards(int(victim))
        members = members[np.argsort(-work.demand[members].sum(axis=1), kind="stable")]
        for shard in members:
            head = work.headroom().sum(axis=1)
            head[banned] = -np.inf
            work.move(int(shard), int(np.argmax(head)))
