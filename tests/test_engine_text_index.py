"""Tests for tokenization, corpus generation and the inverted index."""

import numpy as np
import pytest

from repro.engine import (
    CorpusConfig,
    Document,
    InvertedIndex,
    Query,
    generate_corpus,
    generate_queries,
    tokenize,
)


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Hello, World! 42") == ["hello", "world", "42"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_punctuation_only(self):
        assert tokenize("!!! --- ???") == []


class TestDocument:
    def test_from_text(self):
        doc = Document.from_text(3, "The quick brown fox")
        assert doc.doc_id == 3
        assert doc.tokens == ("the", "quick", "brown", "fox")
        assert len(doc) == 4

    def test_empty_doc_rejected(self):
        with pytest.raises(ValueError, match="at least one token"):
            Document(0, ())

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError, match="doc_id"):
            Document(-1, ("a",))


class TestQuery:
    def test_from_text(self):
        assert Query.from_text("Foo BAR").terms == ("foo", "bar")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Query(())
        with pytest.raises(ValueError, match="no tokens"):
            Query.from_text("!!!")


class TestCorpusGeneration:
    def test_shapes_and_determinism(self):
        cfg = CorpusConfig(num_docs=50, vocab_size=200, seed=3)
        a = generate_corpus(cfg)
        b = generate_corpus(cfg)
        assert len(a) == 50
        assert [d.tokens for d in a] == [d.tokens for d in b]

    def test_zipf_head_terms_dominate(self):
        cfg = CorpusConfig(num_docs=200, vocab_size=500, seed=1)
        docs = generate_corpus(cfg)
        counts: dict[str, int] = {}
        for d in docs:
            for t in d.tokens:
                counts[t] = counts.get(t, 0) + 1
        total = sum(counts.values())
        head = sum(counts.get(f"t{k}", 0) for k in range(10))
        assert head / total > 0.2  # top-10 of 500 terms carry >20% of mass

    def test_doc_lengths_positive(self):
        docs = generate_corpus(CorpusConfig(num_docs=30, seed=2))
        assert all(len(d) >= 1 for d in docs)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            CorpusConfig(num_docs=0)


class TestQueryGeneration:
    def test_count_and_term_bounds(self):
        cfg = CorpusConfig(num_docs=10, vocab_size=100, seed=0)
        qs = generate_queries(cfg, 25, terms_per_query=(1, 3))
        assert len(qs) == 25
        assert all(1 <= len(q.terms) <= 3 for q in qs)

    def test_deterministic(self):
        cfg = CorpusConfig(num_docs=10, vocab_size=100, seed=0)
        assert generate_queries(cfg, 5) == generate_queries(cfg, 5)

    def test_invalid_term_range(self):
        cfg = CorpusConfig(seed=0)
        with pytest.raises(ValueError, match="terms_per_query"):
            generate_queries(cfg, 5, terms_per_query=(3, 1))

    def test_explicit_seed_used_verbatim(self):
        # An explicit seed fully determines the stream, regardless of the
        # corpus seed.
        a = generate_queries(CorpusConfig(seed=0), 10, seed=42)
        b = generate_queries(CorpusConfig(seed=99), 10, seed=42)
        assert a == b

    def test_default_seed_derives_from_corpus_seed(self):
        # seed=None derives cfg.seed + 104729 — the parenthesization that
        # distinguishes it from (cfg.seed + 104729 if seed is None else seed).
        cfg = CorpusConfig(seed=7)
        assert generate_queries(cfg, 10) == generate_queries(cfg, 10, seed=7 + 104729)
        # Different corpus seeds therefore yield different default streams.
        assert generate_queries(cfg, 10) != generate_queries(CorpusConfig(seed=8), 10)


def hand_corpus():
    return [
        Document.from_text(0, "apple banana apple"),
        Document.from_text(1, "banana cherry"),
        Document.from_text(2, "cherry cherry cherry"),
    ]


class TestInvertedIndex:
    def test_build_counts(self):
        ix = InvertedIndex.build(hand_corpus())
        assert ix.num_docs == 3
        assert ix.num_terms == 3
        assert ix.avg_doc_length == pytest.approx((3 + 2 + 3) / 3)

    def test_postings_content(self):
        ix = InvertedIndex.build(hand_corpus())
        p = ix.postings("banana")
        np.testing.assert_array_equal(p.doc_ids, [0, 1])
        np.testing.assert_array_equal(p.term_freqs, [1, 1])
        p = ix.postings("apple")
        np.testing.assert_array_equal(p.doc_ids, [0])
        np.testing.assert_array_equal(p.term_freqs, [2])

    def test_oov_term(self):
        ix = InvertedIndex.build(hand_corpus())
        assert ix.postings("durian") is None
        assert ix.document_frequency("durian") == 0

    def test_doc_length_lookup(self):
        ix = InvertedIndex.build(hand_corpus())
        assert ix.doc_length(2) == 3
        with pytest.raises(KeyError, match="unknown doc_id"):
            ix.doc_length(99)

    def test_duplicate_doc_id_rejected(self):
        docs = [Document.from_text(0, "a"), Document.from_text(0, "b")]
        with pytest.raises(ValueError, match="duplicate"):
            InvertedIndex.build(docs)

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError, match="zero documents"):
            InvertedIndex.build([])

    def test_total_postings_and_size(self):
        ix = InvertedIndex.build(hand_corpus())
        # apple:1 doc, banana:2 docs, cherry:2 docs -> 5 entries
        assert ix.total_postings() == 5
        assert ix.size_bytes() > 16 * 5

    def test_nondense_doc_ids_supported(self):
        docs = [Document.from_text(10, "x y"), Document.from_text(99, "y z")]
        ix = InvertedIndex.build(docs)
        np.testing.assert_array_equal(ix.doc_ids(), [10, 99])
