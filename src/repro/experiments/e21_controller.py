"""E21 — continuous rebalancing under demand drift (ISSUE 9's "E19", extension).

Study A (drift controllers, simulated execution): demand-drift scenarios
evolved by :class:`PopularityDrift` on the event runtime, four
controllers compared — ``never`` / ``threshold`` / ``always`` (cold
full-solve episodes) and ``incremental`` (EWMA drift detector gating
warm-started, move-budgeted SRA rounds with cooldown).  Reported per
run: the time integral of peak utilization over the horizon (the
balance actually delivered *while serving*, lower is better) and the
total bytes migrated (the price paid).  Claim: the incremental
controller matches or beats the threshold policy's utilization integral
at a strictly lower byte cost — many small warm rounds track drift more
cheaply than few cold full solves.

Study B (exchange-pool sizing, instant execution): the incremental
controller draws loaner machines from a finite
:class:`~repro.pool.MachinePool` under a
:class:`~repro.cluster.exchange.PoolSizingPolicy` (borrow on overload,
hold, release when quiet) versus the fixed borrow-per-episode baseline.
Reported: ``machine_rounds`` — the standing loan integrated over control
rounds — against the balance held.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple

from repro.algorithms import SRA, AlnsConfig, MigrationBudget, SRAConfig
from repro.cluster import PoolSizingPolicy
from repro.experiments.common import scenario_instance
from repro.experiments.harness import register
from repro.migration import BandwidthModel
from repro.online import PopularityDrift
from repro.pool import MachinePool
from repro.runtime import (
    ClusterHandle,
    DriftDetectorConfig,
    DriftProcess,
    IncrementalRebalanceController,
    RebalanceController,
    Runtime,
    ServingFleet,
)
from repro.workloads import make_exchange_machines

#: Drift scenario variants of Study A: (label, demand-drift params).
SCENARIOS: Tuple[Tuple[str, Dict[str, Any]], ...] = (
    ("hotspot-shift", {"hotspot_shift": 0.35, "target_utilization": 0.68}),
    (
        "flash-crowd",
        {
            "hotspot_shift": 0.1,
            "flash_multiplier": 8.0,
            "flash_fraction": 0.05,
            "target_utilization": 0.68,
        },
    ),
)

_EPOCH_LENGTH = 60.0
_CHECK_INTERVAL = 15.0
_SAMPLE_INTERVAL = 5.0
_THRESHOLD = 0.9
_DRIFT = 0.1
_DRIFT_TARGET = 0.68
_HOT_THRESHOLD = 0.78


class _PeakSampler:
    """Runtime process sampling the cluster peak on a fixed grid."""

    def __init__(self, handle: ClusterHandle, *, interval: float, horizon: float) -> None:
        self.handle = handle
        self.interval = interval
        self.horizon = horizon
        self.samples: List[Tuple[float, float]] = []

    def start(self, rt: Runtime) -> None:
        rt.at(rt.now, self._tick)

    def _tick(self, rt: Runtime) -> None:
        self.samples.append((rt.now, self.handle.state.peak_utilization()))
        nxt = rt.now + self.interval
        if nxt <= self.horizon:
            rt.at(nxt, self._tick)


def _util_integral(samples: List[Tuple[float, float]], horizon: float) -> float:
    """Left-Riemann integral of the sampled peak over [0, horizon]."""
    total = 0.0
    for (t0, p0), (t1, _p1) in zip(samples, samples[1:]):
        total += p0 * (t1 - t0)
    if samples and horizon > samples[-1][0]:
        total += samples[-1][1] * (horizon - samples[-1][0])
    return total


def _run_drift_controller(
    scenario_params: Mapping[str, Any],
    controller: str,
    *,
    seed: int,
    epochs: int,
    iterations: int,
    budget_moves: int,
) -> Dict[str, Any]:
    state = scenario_instance("demand-drift", dict(scenario_params), seed=seed)
    handle = ClusterHandle(state)
    cpu = state.schema.index("cpu")
    fleet = ServingFleet(state.capacity[:, cpu] * 2e5)
    location = state.assignment_view().copy()
    horizon = epochs * _EPOCH_LENGTH

    rt = Runtime()
    rt.add(
        DriftProcess(
            handle,
            PopularityDrift(
                drift=_DRIFT, target_utilization=_DRIFT_TARGET, seed=100 + seed
            ),
            epochs=epochs,
            epoch_length=_EPOCH_LENGTH,
        )
    )
    common: Dict[str, Any] = dict(
        execution="simulated",
        fleet=fleet,
        location=location,
        bandwidth=BandwidthModel(bandwidth=2e8),
        check_interval=_CHECK_INTERVAL,
        horizon=horizon,
    )
    if controller == "incremental":
        ctrl: RebalanceController = IncrementalRebalanceController(
            handle,
            SRA(
                SRAConfig(
                    alns=AlnsConfig(iterations=iterations, seed=1),
                    migration_budget=MigrationBudget(max_moves=budget_moves),
                )
            ),
            detector_config=DriftDetectorConfig(
                hot_threshold=_HOT_THRESHOLD, slope_threshold=0.002
            ),
            cooldown=_CHECK_INTERVAL,
            **common,
        )
    else:
        ctrl = RebalanceController(
            handle,
            SRA(SRAConfig(alns=AlnsConfig(iterations=iterations, seed=1))),
            policy=controller,
            threshold=_THRESHOLD,
            **common,
        )
    sampler = _PeakSampler(handle, interval=_SAMPLE_INTERVAL, horizon=horizon)
    rt.add(ctrl)
    rt.add(sampler)
    rt.run()

    total_bytes = 0.0
    for episode in ctrl.episodes:
        total_bytes += float(episode["bytes_moved"])
    return {
        "study": "A",
        "controller": controller,
        "seed": seed,
        "util_integral": _util_integral(sampler.samples, horizon),
        "mean_peak": _util_integral(sampler.samples, horizon) / horizon,
        "total_bytes": total_bytes,
        "episodes": len(ctrl.episodes),
        "feasible_episodes": sum(1 for e in ctrl.episodes if e["feasible"]),
        "total_moves": sum(int(e["moves"]) for e in ctrl.episodes),
        "final_peak": handle.state.peak_utilization(),
    }


def _run_pool_policy(
    policy: str, *, seed: int, epochs: int, iterations: int, pool_size: int
) -> Dict[str, Any]:
    state = scenario_instance("demand-drift", {}, seed=seed)
    handle = ClusterHandle(state)
    horizon = epochs * _EPOCH_LENGTH

    rt = Runtime()
    rt.add(
        DriftProcess(
            handle,
            PopularityDrift(drift=0.3, target_utilization=0.75, seed=100 + seed),
            epochs=epochs,
            epoch_length=_EPOCH_LENGTH,
        )
    )
    pool: MachinePool | None = None
    manager = None
    if policy == "pool-sized":
        pool = MachinePool(make_exchange_machines(state, pool_size))
        ctrl: RebalanceController = IncrementalRebalanceController(
            handle,
            SRA(SRAConfig(alns=AlnsConfig(iterations=iterations, seed=1))),
            detector_config=DriftDetectorConfig(
                hot_threshold=0.85, slope_threshold=0.002
            ),
            pool=pool,
            pool_policy=PoolSizingPolicy(
                borrow_above=0.85, release_below=0.72, min_hold_rounds=4
            ),
            execution="instant",
            check_interval=_CHECK_INTERVAL,
            horizon=horizon,
        )
        manager = ctrl.pool_manager
    else:  # fixed-budget: borrow 2, return 2, every firing episode
        ctrl = RebalanceController(
            handle,
            SRA(SRAConfig(alns=AlnsConfig(iterations=iterations, seed=1))),
            policy="threshold",
            threshold=_THRESHOLD,
            exchange_budget=2,
            execution="instant",
            check_interval=_CHECK_INTERVAL,
            horizon=horizon,
        )
    sampler = _PeakSampler(handle, interval=_SAMPLE_INTERVAL, horizon=horizon)
    rt.add(ctrl)
    rt.add(sampler)
    rt.run()

    feasible = sum(1 for e in ctrl.episodes if e["feasible"])
    if manager is not None:
        machine_rounds = manager.machine_rounds
        machines_borrowed = sum(h["borrowed"] for h in manager.history)
        on_loan_end = manager.on_loan
    else:
        # A fixed-budget loan spans exactly its episode's control round.
        machine_rounds = 2 * feasible
        machines_borrowed = 2 * feasible
        on_loan_end = 0
    return {
        "study": "B",
        "policy": policy,
        "seed": seed,
        "util_integral": _util_integral(sampler.samples, horizon),
        "mean_peak": _util_integral(sampler.samples, horizon) / horizon,
        "episodes": len(ctrl.episodes),
        "feasible_episodes": feasible,
        "machine_rounds": machine_rounds,
        "machines_borrowed": machines_borrowed,
        "on_loan_end": on_loan_end,
        "fleet_end": handle.state.num_machines,
        "final_peak": handle.state.peak_utilization(),
    }


@register("e21")
def run(fast: bool = True) -> list[dict]:
    epochs = 8 if fast else 12
    iterations = 200 if fast else 500
    seeds = (0,) if fast else (0, 1)
    rows: list[dict] = []
    for seed in seeds:
        for label, params in SCENARIOS:
            for controller in ("never", "threshold", "always", "incremental"):
                row = _run_drift_controller(
                    params,
                    controller,
                    seed=seed,
                    epochs=epochs,
                    iterations=iterations,
                    budget_moves=16,
                )
                rows.append({"scenario": label, **row})
        for policy in ("fixed-budget", "pool-sized"):
            rows.append(
                _run_pool_policy(
                    policy,
                    seed=seed,
                    epochs=epochs,
                    iterations=iterations,
                    pool_size=4,
                )
            )
    return rows
