"""Parallel SRA restarts: shared-memory pool, blind or cooperative.

LNS restarts share nothing, so K restarts scale across processes
trivially — the companion resource-equivalence-classes argument (see
PAPERS.md) for treating local search as embarrassingly restartable.
Restart ``k`` runs the configured SRA with seed
``spawn_seeds(master_seed, K)[k]``, so the restart set is a pure
function of the master seed: the same K restarts run with 1, 2 or 8
workers produce bitwise-identical per-restart results, and the winner
is selected by a deterministic rule over the task-ordered results
(feasibility first, then peak utilization, then move count — the same
rule :class:`~repro.algorithms.PortfolioRebalancer` uses).

The multi-worker fan-out runs on a **persistent** pool over
**shared-memory state** (``use_shm=True``, the default): the parent
publishes the instance once via :func:`repro.parallel.shm.publish_state`
and each worker attaches at spawn, so a restart task pickles only its
config — not tens of thousands of machine/shard dataclasses.  This is
what turned the pool from a slowdown (BENCH_alns.json historically
recorded 0.70x at 2 workers on m50) into a speedup on instances large
enough to amortize the worker spawn.

``cooperative=True`` upgrades blind best-of-K to a portfolio: restarts
periodically publish/adopt incumbents through a shared best-solution
slot (:class:`repro.parallel.shm.IncumbentSlot`), in the spirit of
token-based portfolio load balancing (Comte, PAPERS.md).  Cooperative
results depend on worker *timing* and are therefore not reproducible
across runs or worker counts — exchange events are recorded via
``repro.obs`` (``alns.exchange.*``) for auditing.  The serial
cooperative portfolio (``n_workers=1``) runs restarts sequentially
against an in-process slot and *is* deterministic: restart ``k`` warm
starts from the best of restarts ``0..k-1``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Sequence

from repro.parallel.runner import ParallelRunner, TaskResult, TaskSpec
from repro.parallel.seeds import spawn_seeds
from repro.parallel.shm import (
    AttachedState,
    IncumbentExchange,
    IncumbentHandle,
    IncumbentSlot,
    StateHandle,
    attach_incumbent,
    attach_state,
    local_incumbent_exchange,
    publish_state,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sra imports us)
    from repro.algorithms.base import RebalanceResult
    from repro.algorithms.sra_config import SRAConfig
    from repro.cluster import ClusterState, ExchangeLedger

__all__ = ["RestartReport", "run_sra_restarts"]


@dataclass
class RestartReport:
    """Outcome of a restart fan-out.

    ``best`` carries a copy of the winning restart's result with
    ``iterations`` re-totalled across every successful restart (the work
    actually spent); the winner's own row in ``results`` keeps its
    per-restart iteration count.  ``results`` keeps every per-restart
    row, failures included, in restart order.
    """

    best: "RebalanceResult"
    results: list[TaskResult]
    seeds: tuple[int, ...]

    @property
    def num_failed(self) -> int:
        return sum(1 for r in self.results if not r.ok)


# Worker-process globals, installed once per worker by ``_init_worker``
# (persistent-pool initializer).  Tasks consult them instead of carrying
# the state / exchange through pickled task args.
_WORKER_STATE: AttachedState | None = None
_WORKER_EXCHANGE: IncumbentExchange | None = None


def _init_worker(
    state_handle: StateHandle | None,
    slot_handle: IncumbentHandle | None,
    lock: Any,
    period: int,
) -> None:
    """Persistent-pool initializer: attach shared segments once.

    Runs in the worker process at spawn.  The lock arrives through
    ``Process`` creation (``multiprocessing`` primitives cannot cross
    task pipes).  Attach-only: the parent owns both segments' unlink.
    """
    global _WORKER_STATE, _WORKER_EXCHANGE
    _WORKER_STATE = attach_state(state_handle) if state_handle is not None else None
    _WORKER_EXCHANGE = (
        attach_incumbent(slot_handle, lock, period) if slot_handle is not None else None
    )


def _run_one(
    config: "SRAConfig", state: "ClusterState", ledger: "ExchangeLedger | None"
) -> "RebalanceResult":
    """One restart over an explicitly passed (pickled) state."""
    from repro.algorithms.sra import SRA

    exchange = None if _WORKER_EXCHANGE is None else _WORKER_EXCHANGE.clone()
    return SRA(config, exchange=exchange).rebalance(state, ledger)


def _run_one_shared(
    config: "SRAConfig", ledger: "ExchangeLedger | None"
) -> "RebalanceResult":
    """One restart over the worker's attached shared-memory state."""
    from repro.algorithms.sra import SRA

    attached = _WORKER_STATE
    if attached is None:
        raise RuntimeError("shared-state task ran in a worker without _init_worker")
    exchange = None if _WORKER_EXCHANGE is None else _WORKER_EXCHANGE.clone()
    return SRA(config, exchange=exchange).rebalance(attached.state, ledger)


def _run_one_cooperative(
    config: "SRAConfig",
    state: "ClusterState",
    ledger: "ExchangeLedger | None",
    exchange: IncumbentExchange,
) -> "RebalanceResult":
    """One serial-portfolio restart (in-process exchange, never pickled)."""
    from repro.algorithms.sra import SRA

    return SRA(config, exchange=exchange.clone()).rebalance(state, ledger)


def run_sra_restarts(
    state: "ClusterState",
    ledger: "ExchangeLedger | None" = None,
    *,
    config: "SRAConfig",
    restarts: int,
    n_workers: int = 1,
    timeout_s: float | None = None,
    use_shm: bool = True,
    cooperative: bool = False,
    exchange_period: int = 50,
) -> RestartReport:
    """Run *restarts* SRA searches; return the best result.

    Each restart gets its spawned seed and ``restarts=1, n_workers=1,
    cooperative=False`` (so a restart never recursively fans out).
    With ``n_workers > 1`` the fan-out runs on a persistent worker pool;
    ``use_shm`` (default) additionally publishes *state* to shared
    memory so tasks stop pickling it — blind-mode results stay
    bitwise-identical to the serial path either way.  ``cooperative``
    switches blind best-of-K to portfolio search with incumbent
    exchange every *exchange_period* iterations (see module docstring
    for the determinism caveat).  Raises ``RuntimeError`` when every
    restart failed.
    """
    if restarts < 1:
        raise ValueError(f"restarts must be >= 1, got {restarts}")
    seeds = spawn_seeds(config.alns.seed, restarts)
    configs = [
        replace(config, seed=seed, restarts=1, n_workers=1, cooperative=False)
        for seed in seeds
    ]

    if n_workers == 1:
        if cooperative:
            exchange = local_incumbent_exchange(
                state.num_shards, state.num_machines, exchange_period
            )
            specs = [
                TaskSpec(
                    fn=_run_one_cooperative,
                    args=(cfg, state, ledger, exchange),
                    name=f"sra.restart[{k}]",
                    seed=seed,
                )
                for k, (cfg, seed) in enumerate(zip(configs, seeds, strict=True))
            ]
        else:
            specs = [
                TaskSpec(
                    fn=_run_one,
                    args=(cfg, state, ledger),
                    name=f"sra.restart[{k}]",
                    seed=seed,
                )
                for k, (cfg, seed) in enumerate(zip(configs, seeds, strict=True))
            ]
        results = ParallelRunner(1, timeout_s=timeout_s).run(specs)
        return _select(results, seeds, restarts)

    shared = publish_state(state) if use_shm else None
    slot = (
        IncumbentSlot(state.num_shards, state.num_machines) if cooperative else None
    )
    runner = ParallelRunner(
        n_workers,
        timeout_s=timeout_s,
        persistent=True,
        initializer=_init_worker,
        initargs=(
            shared.handle if shared is not None else None,
            slot.handle if slot is not None else None,
            slot.lock if slot is not None else None,
            exchange_period,
        ),
    )
    if shared is not None:
        specs = [
            TaskSpec(
                fn=_run_one_shared,
                args=(cfg, ledger),
                name=f"sra.restart[{k}]",
                seed=seed,
            )
            for k, (cfg, seed) in enumerate(zip(configs, seeds, strict=True))
        ]
    else:
        specs = [
            TaskSpec(
                fn=_run_one,
                args=(cfg, state, ledger),
                name=f"sra.restart[{k}]",
                seed=seed,
            )
            for k, (cfg, seed) in enumerate(zip(configs, seeds, strict=True))
        ]
    try:
        results = runner.run(specs)
    finally:
        runner.close()
        if shared is not None:
            shared.close()
            shared.unlink()
        if slot is not None:
            slot.close()
            slot.unlink()
    return _select(results, seeds, restarts)


def _select(
    results: list[TaskResult], seeds: tuple[int, ...], restarts: int
) -> RestartReport:
    """Deterministic winner selection + iteration re-totalling."""
    succeeded = [r for r in results if r.ok]
    if not succeeded:
        errors = "; ".join(f"{r.name}: {r.error}" for r in results)
        raise RuntimeError(f"all {restarts} SRA restarts failed ({errors})")
    best_row = min(succeeded, key=_selection_key)
    # A *copy* of the winning result carries the fan-out-wide iteration
    # total; mutating best_row.value in place would corrupt the winner's
    # own row in ``results`` (it used to, see tests/test_parallel_pool.py).
    best: "RebalanceResult" = replace(
        best_row.value, iterations=sum(r.value.iterations for r in succeeded)
    )
    return RestartReport(best=best, results=results, seeds=seeds)


def _selection_key(row: TaskResult) -> tuple[bool, float, int]:
    result: "RebalanceResult" = row.value
    return (not result.feasible, result.peak_after, result.num_moves)


def restart_seeds(config: "SRAConfig", restarts: int) -> Sequence[int]:
    """The per-restart seeds a fan-out of *restarts* would use."""
    return spawn_seeds(config.alns.seed, restarts)
