"""Serving impact of an in-progress migration.

Rebalancing is not free while it runs: every machine that sends or
receives shard copies spends NIC bandwidth and CPU cycles on the
transfer.  This module converts a migration plan into per-machine
**background load** fractions for the serving simulator, so the latency
cost of the migration window itself becomes measurable (experiment E15).

Model: during the migration window (the plan's makespan), machine ``m``
is busy transferring for ``transfer_seconds(m) / makespan`` of the time;
while actively transferring it loses ``transfer_overhead`` of its serving
capacity (copy checksumming, page-cache pressure, NIC interrupts).  The
average derating over the window is the product of the two — a
deliberately simple, conservative model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_fraction, check_positive
from repro.cluster import ClusterState
from repro.migration import BandwidthModel, PlanResult
from repro.simulate.des import ServingConfig, ServingReport, simulate_serving
from repro.simulate.workprofile import WorkProfile

__all__ = ["migration_background_load", "MigrationWindowReport", "simulate_migration_window"]


def migration_background_load(
    plan: PlanResult,
    num_machines: int,
    *,
    bandwidth: BandwidthModel | None = None,
    transfer_overhead: float = 0.3,
) -> dict[int, float]:
    """Per-machine serving-capacity derating during the migration window.

    Returns ``{machine: fraction}`` for machines with non-zero transfer
    activity; fractions are in [0, transfer_overhead].
    """
    check_fraction("transfer_overhead", transfer_overhead)
    model = bandwidth or BandwidthModel()
    cost = model.cost(plan.schedule, num_machines)
    if cost.makespan_seconds <= 0:
        return {}
    transfer_seconds = np.zeros(num_machines)
    for mv in plan.schedule.all_moves():
        transfer_seconds[mv.src] += mv.bytes / model.bandwidth
        transfer_seconds[mv.dst] += mv.bytes / model.bandwidth
    busy_fraction = np.minimum(transfer_seconds / cost.makespan_seconds, 1.0)
    out = {
        int(m): float(transfer_overhead * busy_fraction[m])
        for m in np.flatnonzero(busy_fraction > 0)
    }
    return out


@dataclass(frozen=True)
class MigrationWindowReport:
    """Latency before, during and after a rebalancing migration."""

    before: ServingReport
    during: ServingReport
    after: ServingReport
    makespan_seconds: float

    def rows(self) -> list[dict]:
        """Table rows for the experiment harness."""
        out = []
        for phase, rep in (
            ("before", self.before),
            ("during", self.during),
            ("after", self.after),
        ):
            lat = rep.latency
            out.append(
                {
                    "phase": phase,
                    "p50_ms": 1e3 * lat.p50,
                    "p95_ms": 1e3 * lat.p95,
                    "p99_ms": 1e3 * lat.p99,
                    "mean_ms": 1e3 * lat.mean,
                    "peak_busy": rep.peak_busy_fraction,
                }
            )
        return out


def simulate_migration_window(
    initial: ClusterState,
    final_assignment: np.ndarray,
    plan: PlanResult,
    profile: WorkProfile,
    config: ServingConfig,
    *,
    bandwidth: BandwidthModel | None = None,
    transfer_overhead: float = 0.3,
    shard_to_engine_shard: list[int] | None = None,
) -> MigrationWindowReport:
    """Three-phase serving simulation around a migration.

    * **before** — initial placement, no background load;
    * **during** — initial placement (conservative: shards serve from
      their source until the copy lands) plus transfer derating;
    * **after** — final placement, no background load.

    All three phases replay the same arrival process (same seed), so
    differences are attributable to placement and derating only.
    """
    check_positive("transfer_overhead", transfer_overhead)
    model = bandwidth or BandwidthModel()
    load = migration_background_load(
        plan,
        initial.num_machines,
        bandwidth=model,
        transfer_overhead=transfer_overhead,
    )
    before = simulate_serving(initial, profile, shard_to_engine_shard, config)
    during_cfg = ServingConfig(
        arrival_rate=config.arrival_rate,
        duration=config.duration,
        postings_per_cpu_second=config.postings_per_cpu_second,
        seed=config.seed,
        background_load=load,
    )
    during = simulate_serving(initial, profile, shard_to_engine_shard, during_cfg)
    final = initial.copy()
    final.apply_assignment(final_assignment)
    after = simulate_serving(final, profile, shard_to_engine_shard, config)
    makespan = model.cost(plan.schedule, initial.num_machines).makespan_seconds
    return MigrationWindowReport(
        before=before, during=during, after=after, makespan_seconds=makespan
    )
