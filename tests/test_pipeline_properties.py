"""Whole-pipeline property tests.

These pin the end-to-end contract of the library on randomized inputs:
whatever the instance, a feasible facade episode yields (1) a
capacity-respecting final state, (2) an executable transient-safe
schedule that lands exactly on the reported assignment, (3) a settled
exchange contract, and (4) internally consistent metrics.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import AlnsConfig, SRA, SRAConfig
from repro.cluster import ExchangeLedger
from repro.core import ResourceExchangeRebalancer
from repro.workloads import SyntheticConfig, generate, make_exchange_machines


def replay(state, schedule):
    """Execute a wave schedule, asserting transient safety; final state."""
    sim = state.copy()
    for wave in schedule.waves:
        inflight = np.zeros_like(sim.loads)
        for mv in wave:
            assert sim.machine_of(mv.shard_id) == mv.src
            inflight[mv.dst] += sim.demand[mv.shard_id]
        assert np.all(sim.loads + inflight <= sim.capacity + 1e-9)
        for mv in wave:
            sim.move(mv.shard_id, mv.dst)
    return sim


@given(
    seed=st.integers(min_value=0, max_value=300),
    util=st.sampled_from([0.6, 0.75, 0.85]),
    budget=st.integers(min_value=0, max_value=2),
)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_property_full_episode_contract(seed, util, budget):
    state = generate(
        SyntheticConfig(
            num_machines=8,
            shards_per_machine=5,
            target_utilization=util,
            placement_skew=0.5,
            max_shard_fraction=0.35,
            seed=seed,
        )
    )
    rebalancer = ResourceExchangeRebalancer(
        SRA(SRAConfig(alns=AlnsConfig(iterations=120, seed=seed))),
        exchange_machines=budget,
    )
    report = rebalancer.run(state)
    if not report.feasible:
        return  # nothing to verify; infeasibility is a legitimate outcome

    grown, ledger = ExchangeLedger.borrow(state, make_exchange_machines(state, budget))
    final = grown.copy()
    final.apply_assignment(report.result.target_assignment)

    # (1) capacity respected, all shards placed
    assert final.is_fully_assigned()
    assert final.is_within_capacity()

    # (2) plan executes to exactly the reported assignment
    landed = replay(grown, report.result.plan.schedule)
    np.testing.assert_array_equal(landed.assignment, report.result.target_assignment)

    # (3) exchange contract: R machines vacant and selectable
    assert ledger.is_satisfiable(final)
    assert report.returned == budget

    # (4) metric consistency
    assert report.after.peak_utilization == pytest.approx(final.peak_utilization())
    assert report.migration.num_moves == int(
        np.sum(report.result.target_assignment != grown.assignment)
    )
    assert report.after.peak_utilization <= report.before.peak_utilization + 1e-9
