"""E4 — LNS convergence (convergence figure analogue).

Shape claims: the best-so-far objective is non-increasing and most of
the improvement lands in the first quarter of the iteration budget.
"""

from collections import defaultdict

from repro.experiments import REGISTRY, is_full_run
from repro.experiments.ascii_chart import line_chart


def test_e4_convergence(benchmark, save_table, save_figure):
    rows = benchmark.pedantic(
        REGISTRY["e4"], kwargs={"fast": not is_full_run()}, rounds=1, iterations=1
    )
    save_table("e4", rows, "E4 — best objective vs iteration (per seed)")

    by_seed = defaultdict(list)
    for r in rows:
        by_seed[r["seed"]].append(r)
    save_figure(
        "e4",
        line_chart(
            {
                f"seed {seed}": [(r["iteration"], r["best_objective"]) for r in series]
                for seed, series in by_seed.items()
            },
            title="E4 — best objective vs iteration",
            x_label="iteration",
            y_label="objective",
        ),
    )
    for seed, series in by_seed.items():
        series.sort(key=lambda r: r["iteration"])
        objs = [r["best_objective"] for r in series]
        assert all(a >= b - 1e-12 for a, b in zip(objs, objs[1:])), f"seed {seed}"
        total_drop = objs[0] - objs[-1]
        assert total_drop > 0, f"seed {seed} never improved"
        quarter = next(
            r["best_objective"]
            for r in series
            if r["iteration"] >= series[-1]["iteration"] // 4
        )
        early_drop = objs[0] - quarter
        assert early_drop >= 0.5 * total_drop, (
            f"seed {seed}: early drop {early_drop:.4f} of total {total_drop:.4f}"
        )
