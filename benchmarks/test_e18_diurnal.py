"""E18 — tail latency across the diurnal cycle (extension).

Shape claims: before rebalancing, peak-hour p99 is far worse than
off-peak p99 (the imbalance only bites under load); after rebalancing
the peak-hour p99 drops by a large factor and the day flattens.
"""

from collections import defaultdict

from repro.experiments import REGISTRY, is_full_run
from repro.experiments.ascii_chart import line_chart


def test_e18_diurnal(benchmark, save_table, save_figure):
    rows = benchmark.pedantic(
        REGISTRY["e18"], kwargs={"fast": not is_full_run()}, rounds=1, iterations=1
    )
    save_table("e18", rows, "E18 — latency by time-of-day bucket")
    save_figure(
        "e18",
        line_chart(
            {
                label: [
                    (r["bucket"], r["p99_ms"]) for r in rows if r["placement"] == label
                ]
                for label in ("before", "after-sra")
            },
            title="E18 — p99 by time-of-day bucket",
            x_label="bucket",
            y_label="p99 ms",
        ),
    )

    by_label = defaultdict(dict)
    for r in rows:
        by_label[r["placement"]][r["bucket"]] = r
    before, after = by_label["before"], by_label["after-sra"]

    def peak_bucket(d):
        return max(d.values(), key=lambda r: r["qps"])

    def trough_bucket(d):
        return min(d.values(), key=lambda r: r["qps"])

    # Traffic really is diurnal.
    assert peak_bucket(before)["qps"] > 2.0 * trough_bucket(before)["qps"]
    # The imbalance bites at peak hour.
    assert peak_bucket(before)["p99_ms"] > 2.0 * trough_bucket(before)["p99_ms"]
    # Rebalancing fixes the peak hour.
    assert peak_bucket(after)["p99_ms"] < 0.6 * peak_bucket(before)["p99_ms"]

    # The live execution (migration run wave-by-wave on the event
    # runtime, starting 30% into the day) starts the day exactly on the
    # imbalanced placement, pays a latency penalty in the buckets where
    # transfers are in flight, and is rebalanced afterwards.
    live = by_label.get("live-sra")
    if live:
        assert live[0]["p99_ms"] == before[0]["p99_ms"]  # bitwise pre-migration
        migrating = [r for r in live.values() if r.get("migrating") == "yes"]
        assert migrating, "migration window fell outside every bucket"
        for r in migrating:
            assert r["p99_ms"] >= after[r["bucket"]]["p99_ms"]
