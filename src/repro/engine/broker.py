"""Fan-out query broker.

The broker is the aggregator node of a partitioned search engine: a query
is sent to **every** shard, each shard returns its local top-k, and the
broker merges them into the global top-k.  Fan-out is why load balance
governs tail latency — the query is as slow as its slowest shard, so one
overloaded machine drags the p99 of *every* query (the paper's
motivation; measured in experiment E8).

:class:`BrokerResponse` carries per-shard work counters so the
discrete-event simulator can charge realistic service times.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro._validation import check_positive
from repro.engine.scoring import ScoredDoc
from repro.engine.sharding import ShardedIndex
from repro.engine.text import Query

__all__ = ["BrokerResponse", "SearchBroker"]


@dataclass(frozen=True)
class BrokerResponse:
    """Merged results plus per-shard cost accounting.

    ``shard_work[s]`` is the number of postings shard ``s`` traversed —
    the unit the simulator converts into service time.
    """

    results: tuple[ScoredDoc, ...]
    shard_work: tuple[int, ...]

    @property
    def total_work(self) -> int:
        return sum(self.shard_work)


class SearchBroker:
    """Scatter-gather search over a :class:`ShardedIndex`."""

    def __init__(self, index: ShardedIndex) -> None:
        self.index = index

    def search(self, query: Query, k: int = 10) -> BrokerResponse:
        """Global top-*k*: union of per-shard top-k, merged by score.

        Per-shard top-k + merge is exact for document-partitioned indexes
        (every document lives in exactly one shard).
        """
        check_positive("k", k)
        heap: list[tuple[float, int, ScoredDoc]] = []
        work: list[int] = []
        counter = 0
        for scorer in self.index.scorers:
            local, w = scorer.search(query, k=k)
            work.append(w)
            for doc in local:
                counter += 1
                if len(heap) < k:
                    heapq.heappush(heap, (doc.score, counter, doc))
                elif doc.score > heap[0][0]:
                    heapq.heapreplace(heap, (doc.score, counter, doc))
        merged = sorted((item[2] for item in heap), key=lambda d: -d.score)
        return BrokerResponse(results=tuple(merged), shard_work=tuple(work))
