"""Exact and relaxed solvers for the IP model.

:class:`MilpSolver` drives ``scipy.optimize.milp`` (HiGHS) on the matrices
from :mod:`repro.model.formulation`.  It is practical for the small
instances of experiment E9 (a few hundred binaries) and serves as ground
truth for SRA's optimality-gap measurements and tests.

:func:`lp_relaxation_bound` solves the continuous relaxation — a valid
lower bound on the optimum for any instance size, used to report gaps on
instances too large to solve exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.cluster import ClusterState
from repro.model.formulation import BuiltModel, ModelConfig, build_model

__all__ = ["MilpResult", "MilpSolver", "lp_relaxation_bound"]


@dataclass(frozen=True)
class MilpResult:
    """Outcome of an exact solve.

    Attributes
    ----------
    status:
        ``"optimal"``, ``"infeasible"``, ``"timeout"`` (feasible but not
        proven optimal within the time budget) or ``"failed"``.
    assignment:
        Decoded shard→machine array (present unless infeasible/failed).
    objective:
        Objective value in the paper's form (z + λ·moved-bytes term).
    peak_utilization:
        The ``z`` component alone.
    vacant_machines:
        Machines with ``y[i] = 1`` in the solution.
    """

    status: str
    assignment: np.ndarray | None
    objective: float
    peak_utilization: float
    vacant_machines: tuple[int, ...]

    @property
    def ok(self) -> bool:
        return self.status in ("optimal", "timeout") and self.assignment is not None


class MilpSolver:
    """Exact solver for the shard reassignment IP (HiGHS backend).

    Parameters
    ----------
    config:
        Model knobs (vacancy returns, move penalty).
    time_limit:
        Wall-clock budget in seconds handed to HiGHS.
    mip_gap:
        Relative optimality gap at which HiGHS may stop early.
    """

    def __init__(
        self,
        config: ModelConfig | None = None,
        *,
        time_limit: float = 60.0,
        mip_gap: float = 1e-4,
    ) -> None:
        if time_limit <= 0:
            raise ValueError(f"time_limit must be > 0, got {time_limit}")
        if mip_gap < 0:
            raise ValueError(f"mip_gap must be >= 0, got {mip_gap}")
        self.config = config or ModelConfig()
        self.time_limit = time_limit
        self.mip_gap = mip_gap

    def solve(self, state: ClusterState) -> MilpResult:
        """Solve the reassignment IP for *state*."""
        model = build_model(state, self.config)
        constraints = [
            optimize.LinearConstraint(model.A_ub, -np.inf, model.b_ub),
            optimize.LinearConstraint(model.A_eq, model.b_eq, model.b_eq),
        ]
        res = optimize.milp(
            c=model.c,
            constraints=constraints,
            integrality=model.integrality,
            bounds=optimize.Bounds(model.lower, model.upper),
            options={
                "time_limit": self.time_limit,
                "mip_rel_gap": self.mip_gap,
                "disp": False,
            },
        )
        return self._decode(model, res)

    def _decode(self, model: BuiltModel, res) -> MilpResult:
        if res.x is None:
            status = "infeasible" if res.status == 2 else "failed"
            return MilpResult(
                status=status,
                assignment=None,
                objective=np.inf,
                peak_utilization=np.inf,
                vacant_machines=(),
            )
        status = "optimal" if res.status == 0 else "timeout"
        assignment = model.extract_assignment(res.x)
        z = float(res.x[model.z_index])
        y = res.x[model.num_shards * model.num_machines : model.z_index]
        vacant = tuple(int(i) for i in np.flatnonzero(y > 0.5))
        objective = float(res.fun) + model.objective_offset
        return MilpResult(
            status=status,
            assignment=assignment,
            objective=objective,
            peak_utilization=z,
            vacant_machines=vacant,
        )


def lp_relaxation_bound(state: ClusterState, config: ModelConfig | None = None) -> float:
    """Objective lower bound from the LP relaxation (any instance size)."""
    model = build_model(state, config or ModelConfig())
    res = optimize.linprog(
        c=model.c,
        A_ub=model.A_ub,
        b_ub=model.b_ub,
        A_eq=model.A_eq,
        b_eq=model.b_eq,
        bounds=np.stack([model.lower, model.upper], axis=1),
        method="highs",
    )
    if not res.success:
        return -np.inf
    return float(res.fun) + model.objective_offset
