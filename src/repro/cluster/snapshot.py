"""Cluster snapshot (de)serialization.

Snapshots are plain dicts (JSON-compatible) so that instances can be saved
alongside experiment results and replayed byte-for-byte.  The format is
versioned; loaders reject unknown versions rather than guessing.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.cluster.machine import Machine
from repro.cluster.resources import ResourceSchema
from repro.cluster.shard import Shard
from repro.cluster.state import ClusterState

__all__ = ["to_dict", "from_dict", "save_json", "load_json", "SNAPSHOT_VERSION"]

SNAPSHOT_VERSION = 1


def to_dict(state: ClusterState) -> dict[str, Any]:
    """Serialize *state* to a JSON-compatible dict."""
    return {
        "version": SNAPSHOT_VERSION,
        "schema": list(state.schema.names),
        "machines": [
            {
                "id": mach.id,
                "capacity": mach.capacity.tolist(),
                "cls": mach.cls,
                "exchange": bool(mach.exchange),
            }
            for mach in state.machines
        ],
        "shards": [
            {
                "id": sh.id,
                "demand": sh.demand.tolist(),
                "size_bytes": float(sh.size_bytes),
                "replica_of": int(sh.replica_of),
            }
            for sh in state.shards
        ],
        "assignment": state.assignment.tolist(),
        "offline": np.flatnonzero(state.offline_mask).tolist(),
        "blocked": np.flatnonzero(state.blocked_mask & ~state.offline_mask).tolist(),
    }


def from_dict(data: dict[str, Any]) -> ClusterState:
    """Rebuild a :class:`ClusterState` from :func:`to_dict` output."""
    version = data.get("version")
    if version != SNAPSHOT_VERSION:
        raise ValueError(f"unsupported snapshot version {version!r}")
    schema = ResourceSchema(tuple(data["schema"]))
    machines = [
        Machine(
            id=int(m["id"]),
            capacity=np.asarray(m["capacity"], dtype=np.float64),
            schema=schema,
            cls=str(m.get("cls", "default")),
            exchange=bool(m.get("exchange", False)),
        )
        for m in data["machines"]
    ]
    shards = [
        Shard(
            id=int(s["id"]),
            demand=np.asarray(s["demand"], dtype=np.float64),
            schema=schema,
            size_bytes=float(s.get("size_bytes", -1.0)),
            replica_of=int(s.get("replica_of", -1)),
        )
        for s in data["shards"]
    ]
    state = ClusterState(machines, shards, data["assignment"])
    # Older snapshots (pre scenario registry) carry no mask fields; both
    # default to empty so they round-trip unchanged.
    for machine_id in data.get("offline", []):
        state.set_offline(int(machine_id))
    for machine_id in data.get("blocked", []):
        state.block_machine(int(machine_id))
    return state


def save_json(state: ClusterState, path: str | Path) -> None:
    """Write *state* to *path* as JSON."""
    Path(path).write_text(json.dumps(to_dict(state)))


def load_json(path: str | Path) -> ClusterState:
    """Read a snapshot previously written by :func:`save_json`."""
    return from_dict(json.loads(Path(path).read_text()))
