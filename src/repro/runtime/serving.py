"""Query arrival process: trace- or Poisson-driven fan-out serving.

A :class:`QueryArrivalProcess` replays a prepared arrival schedule
(arrival times plus sampled profile rows) against a
:class:`~repro.runtime.machines.ServingFleet`.  Each arrival fans one
task per cluster shard out to the machine *currently hosting* that shard
— the shard→machine array is shared with the migration executor, so a
shard starts serving from its destination the instant its copy lands,
rather than being window-averaged.

Arrival generation (RNG semantics) stays with the caller: the
``simulate_serving`` facade draws arrivals exactly as the legacy DES did,
and the CLI/experiments hand in diurnal traces from
:mod:`repro.simulate.traces`.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.runtime.kernel import Runtime
from repro.runtime.machines import QueryRecord, ServingFleet

__all__ = ["QueryArrivalProcess"]


class QueryArrivalProcess:
    """Feeds measured-profile queries into the fleet, one arrival event each.

    Parameters
    ----------
    fleet:
        The serving machines.
    location:
        (num_cluster_shards,) shard → machine array.  Read at every
        arrival; the migration executor mutates it as waves complete.
    work:
        (num_queries, num_engine_shards) measured work matrix.
    mapping:
        (num_cluster_shards,) cluster shard → engine shard column map.
    arrival_times:
        Sorted arrival times in seconds.
    query_rows:
        (num_arrivals,) row of ``work`` each arrival replays.
    """

    def __init__(
        self,
        fleet: ServingFleet,
        location: np.ndarray,
        work: np.ndarray,
        mapping: np.ndarray,
        arrival_times: np.ndarray,
        query_rows: np.ndarray,
    ) -> None:
        if arrival_times.shape != query_rows.shape:
            raise ValueError("arrival_times and query_rows must be parallel arrays")
        if location.shape[0] != mapping.shape[0]:
            raise ValueError("location and mapping must cover the same cluster shards")
        self._fleet = fleet
        self._location = location
        self._work = work
        self._mapping = mapping
        self._times = arrival_times
        self._rows = query_rows
        self._num_shards = int(mapping.shape[0])
        self._next = 0
        self.records: List[QueryRecord] = []

    def start(self, rt: Runtime) -> None:
        if self._times.size:
            rt.at(float(self._times[0]), self._on_arrival)

    def _on_arrival(self, rt: Runtime) -> None:
        i = self._next
        t = self._times[i]
        record = QueryRecord(t)
        row = self._work[self._rows[i]]
        mapping = self._mapping
        location = self._location
        machines = self._fleet.machines
        for j in range(self._num_shards):
            w = row[mapping[j]]
            if w <= 0:
                continue
            machines[location[j]].enqueue(t, w, record)
        self.records.append(record)
        self._next = i + 1
        if self._next < self._times.size:
            rt.at(float(self._times[self._next]), self._on_arrival)

    # ---------------------------------------------------------------- results
    def latencies(self) -> np.ndarray:
        """Per-query latencies in arrival order (flush the fleet first)."""
        return np.array(
            [r.finish_max - r.arrival for r in self.records], dtype=np.float64
        )

    @property
    def queries_completed(self) -> int:
        return len(self.records)
