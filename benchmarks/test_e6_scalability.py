"""E6 — runtime scaling (scalability figure analogue).

Shape claim: per-iteration cost grows sub-quadratically with instance
size (the removal cap bounds repair cost, so the growth is driven by the
O(m) parts of scoring).
"""

from repro.experiments import REGISTRY, is_full_run


def test_e6_scalability(benchmark, save_table):
    rows = benchmark.pedantic(
        REGISTRY["e6"], kwargs={"fast": not is_full_run()}, rounds=1, iterations=1
    )
    save_table("e6", rows, "E6 — SRA runtime vs instance size")

    rows = sorted(rows, key=lambda r: r["shards"])
    assert len(rows) >= 3
    for r in rows:
        assert r["ms_per_iter"] > 0
        assert r["peak_after"] <= 1.0
    smallest, largest = rows[0], rows[-1]
    size_ratio = largest["shards"] / smallest["shards"]
    time_ratio = largest["ms_per_iter"] / smallest["ms_per_iter"]
    assert time_ratio < size_ratio**2, (
        f"per-iteration cost grew {time_ratio:.1f}x for a {size_ratio:.1f}x size step"
    )
