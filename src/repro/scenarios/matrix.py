"""Scenario × algorithm matrix runner.

``run_matrix`` crosses a list of :class:`ScenarioSpec` with a list of
algorithm names and runs every cell — generate the instance, run the
algorithm, summarize — on the :class:`repro.parallel.ParallelRunner`
(crash isolation, per-cell timeouts, obs merge, deterministic ordering
for any worker count).

Cell rows are **deterministic by construction**: they carry only values
derived from the instance and the algorithm's proposal (peaks, moves,
feasibility, spec hash), never wall-clock readings — wall-clock lives in
the ``index.json`` manifest's ``duration_s``, which is the one field a
rerun may legitimately change.  That is what lets CI rerun a cell and
require bitwise-identical rows (the determinism gate in ci.yml).

``save_matrix`` writes one ``<cell>.json`` + ``<cell>.txt`` row table
per cell plus an ``index.json`` manifest keyed by cell id
(``<scenario>-<spec_hash>__<algorithm>``) — the same artifact layout the
experiment driver uses, so CI uploads both identically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro.parallel.runner import ParallelRunner, TaskSpec
from repro.scenarios.registry import generate_instance, resolve
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "ALGORITHMS",
    "MatrixCell",
    "cell_id",
    "run_matrix",
    "run_cell",
    "save_matrix",
    "smoke_specs",
]


def _make_sra(seed: int, iterations: int):
    from repro.algorithms import SRA, AlnsConfig, SRAConfig

    return SRA(SRAConfig(alns=AlnsConfig(iterations=iterations, seed=seed)))


def _make_portfolio(seed: int, iterations: int):
    from repro.algorithms import AlnsConfig, PortfolioRebalancer, SRAConfig

    return PortfolioRebalancer(
        SRAConfig(alns=AlnsConfig(iterations=iterations, seed=seed)), runs=2
    )


def _make_greedy(seed: int, iterations: int):
    from repro.algorithms import GreedyRebalancer

    return GreedyRebalancer()


def _make_local_search(seed: int, iterations: int):
    from repro.algorithms import LocalSearchRebalancer

    return LocalSearchRebalancer(seed=seed)


def _make_noop(seed: int, iterations: int):
    from repro.algorithms import NoopRebalancer

    return NoopRebalancer()


#: Algorithm axis: name -> factory(seed, iterations) -> Rebalancer.
ALGORITHMS: dict[str, Callable[[int, int], Any]] = {
    "sra": _make_sra,
    "portfolio": _make_portfolio,
    "greedy": _make_greedy,
    "local-search": _make_local_search,
    "noop": _make_noop,
}


@dataclass
class MatrixCell:
    """One (scenario spec, algorithm) cell's outcome."""

    cell: str
    scenario: str
    algorithm: str
    spec: ScenarioSpec
    spec_hash: str
    rows: list[dict[str, Any]]
    ok: bool
    error: str | None
    duration_s: float


def cell_id(spec: ScenarioSpec, algorithm: str) -> str:
    """Stable artifact key: ``<scenario>-<spec_hash>__<algorithm>``."""
    _, _, digest = resolve(spec)
    return f"{spec.scenario}-{digest}__{algorithm}"


def run_cell(
    spec_doc: Mapping[str, Any], algorithm: str, iterations: int
) -> list[dict[str, Any]]:
    """Run one matrix cell; module-level so the pool can pickle it.

    Returns the cell's deterministic row table (no wall-clock fields).
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; available: {sorted(ALGORITHMS)}"
        )
    spec = ScenarioSpec.from_dict(spec_doc)
    _, resolved, digest = resolve(spec)
    state = generate_instance(spec)
    rebalancer = ALGORITHMS[algorithm](spec.seed, iterations)
    result = rebalancer.rebalance(state)
    return [
        {
            "scenario": spec.scenario,
            "spec_hash": digest,
            "seed": int(spec.seed),
            "algorithm": algorithm,
            "machines": state.num_machines,
            "shards": state.num_shards,
            "offline_machines": int(state.offline_mask.sum()),
            "peak_before": float(result.peak_before),
            "peak_after": float(result.peak_after),
            "moves": int(result.num_moves),
            "feasible": bool(result.feasible),
            "iterations": int(result.iterations),
        }
    ]


def run_matrix(
    specs: Sequence[ScenarioSpec],
    algorithms: Sequence[str],
    *,
    iterations: int = 400,
    n_workers: int = 1,
    timeout_s: float | None = None,
) -> list[MatrixCell]:
    """Run the full scenario × algorithm cross product.

    Cells come back in ``(spec order) × (algorithm order)`` regardless
    of worker count or completion order; a crashed or timed-out cell
    yields ``ok=False`` with an empty row table and does not abort the
    rest of the matrix.
    """
    unknown = [a for a in algorithms if a not in ALGORITHMS]
    if unknown:
        raise ValueError(
            f"unknown algorithm(s) {unknown!r}; available: {sorted(ALGORITHMS)}"
        )
    cells: list[tuple[ScenarioSpec, str, str]] = []
    for spec in specs:
        resolve(spec)  # fail fast on bad specs, before any worker spawns
        for algorithm in algorithms:
            cells.append((spec, algorithm, cell_id(spec, algorithm)))
    tasks = [
        TaskSpec(
            fn=run_cell,
            args=(spec.to_dict(), algorithm, iterations),
            name=f"matrix:{key}",
        )
        for spec, algorithm, key in cells
    ]
    results = ParallelRunner(n_workers, timeout_s=timeout_s).run(tasks)
    out: list[MatrixCell] = []
    for (spec, algorithm, key), res in zip(cells, results, strict=True):
        _, _, digest = resolve(spec)
        out.append(
            MatrixCell(
                cell=key,
                scenario=spec.scenario,
                algorithm=algorithm,
                spec=spec,
                spec_hash=digest,
                rows=list(res.value) if res.ok else [],
                ok=res.ok,
                error=res.error,
                duration_s=res.duration_s,
            )
        )
    return out


def save_matrix(cells: Sequence[MatrixCell], out_dir: str | Path) -> Path:
    """Write per-cell row tables (``.json`` + ``.txt``) and ``index.json``."""
    from repro.experiments import format_table

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    index: dict[str, Any] = {}
    for cell in cells:
        index[cell.cell] = {
            "scenario": cell.scenario,
            "algorithm": cell.algorithm,
            "spec": cell.spec.to_dict(),
            "spec_hash": cell.spec_hash,
            "ok": cell.ok,
            "rows": len(cell.rows),
            "duration_s": cell.duration_s,
            "error": cell.error,
        }
        (out / f"{cell.cell}.json").write_text(
            json.dumps(cell.rows, indent=2, default=str) + "\n", encoding="utf-8"
        )
        (out / f"{cell.cell}.txt").write_text(
            format_table(cell.rows, title=f"matrix cell {cell.cell}") + "\n",
            encoding="utf-8",
        )
    (out / "index.json").write_text(
        json.dumps(index, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return out


def smoke_specs(seed: int = 0) -> list[ScenarioSpec]:
    """The small spec set the CI scenario-matrix smoke job sweeps.

    Four families at deliberately tiny scale, so the whole matrix
    (4 scenarios × 2 algorithms by default) finishes in well under a
    minute while still exercising heterogeneous fleets, failure storms
    and multi-tenant pools end to end.
    """
    return [
        ScenarioSpec(
            "zipf-popularity",
            {"num_machines": 10, "shards_per_machine": 5, "placement_skew": 0.6},
            seed=seed,
        ),
        ScenarioSpec(
            "heterogeneous-generations",
            {"num_machines": 12, "shards_per_machine": 6, "drift": 0.4},
            seed=seed,
        ),
        ScenarioSpec(
            "multi-tenant",
            {"num_machines": 10, "tenants": 3, "shards_per_tenant": 15},
            seed=seed,
        ),
        ScenarioSpec(
            "failure-storm",
            {"num_machines": 12, "shards_per_machine": 4, "waves": 1},
            seed=seed,
        ),
    ]
