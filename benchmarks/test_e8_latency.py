"""E8 — serving latency before/after rebalancing (QoS figure analogue).

Shape claims: rebalancing cuts peak machine utilization, and the tail
latency (p95/p99) of fan-out queries drops with it — by a large factor,
since queueing delay diverges near saturation.
"""

from repro.experiments import REGISTRY, is_full_run


def test_e8_latency(benchmark, save_table):
    rows = benchmark.pedantic(
        REGISTRY["e8"], kwargs={"fast": not is_full_run()}, rounds=1, iterations=1
    )
    save_table("e8", rows, "E8 — query latency before/after rebalancing (DES)")

    by_label = {r["placement"]: r for r in rows}
    before, after = by_label["before"], by_label["after-sra"]
    assert before["queries"] == after["queries"] > 0
    assert after["peak_util"] < before["peak_util"]
    assert after["p99_ms"] < before["p99_ms"]
    assert after["p95_ms"] < before["p95_ms"]
    assert after["mean_ms"] < before["mean_ms"]
    # Near-saturation queueing: the tail improvement is large, not marginal.
    assert after["p99_ms"] < 0.8 * before["p99_ms"]
