"""repro.obs — zero-dependency episode observability.

Two first-class primitives (see docs/ARCHITECTURE.md, "Observability"):

* :class:`Tracer` — structured spans (nestable, wall-clock, counters)
  and events, exportable as JSONL;
* :class:`MetricsRegistry` — counters, gauges and fixed-bucket
  histograms, exportable as one JSON document.

Both default to disabled no-op singletons; library code reads the
ambient bundle via :func:`current` and pays nothing until a caller
activates a real one (``with obs.observed() as o: ...`` or the CLI's
``--trace`` / ``--metrics`` flags).
"""

from repro.obs.context import (
    NULL_OBS,
    Obs,
    activate,
    current,
    deactivate,
    observed,
)
from repro.obs.metrics import (
    LATENCY_EDGES_S,
    NULL_REGISTRY,
    UTILIZATION_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    iter_spans,
    read_jsonl,
)

__all__ = [
    "Obs",
    "NULL_OBS",
    "current",
    "activate",
    "deactivate",
    "observed",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "read_jsonl",
    "iter_spans",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_EDGES_S",
    "UTILIZATION_EDGES",
]
