"""The search objective.

The IP model's objective (peak utilization + move cost) is exact but flat:
many assignments share the same peak, giving local search no gradient.
The search objective therefore adds a small smoothing term (mean squared
per-machine peak utilization) and penalty terms that let the LNS walk
through mildly infeasible states while being pushed firmly back:

``value = peak
        + smooth_weight   · mean_i(peak_util_i²)
        + move_penalty    · moved_bytes / total_bytes
        + overload_penalty· Σ_i,k relu(load−cap)/cap
        + vacancy_penalty · max(0, R − #vacant)``

With default weights the peak term dominates; the smoothing term only
orders states with equal peaks, and both penalties are large enough that
no feasible state is ever beaten by an infeasible one in practice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_non_negative
from repro.cluster import ClusterState

__all__ = ["ObjectiveWeights", "Objective"]


@dataclass(frozen=True)
class ObjectiveWeights:
    """Weights of the search objective (see module docstring)."""

    move_penalty: float = 0.002
    smooth_weight: float = 0.05
    overload_penalty: float = 10.0
    vacancy_penalty: float = 2.0
    #: Penalty per (machine, logical shard) replica-anti-affinity
    #: violation; replicas of one logical shard must not colocate.
    replica_penalty: float = 5.0

    def __post_init__(self) -> None:
        check_non_negative("move_penalty", self.move_penalty)
        check_non_negative("smooth_weight", self.smooth_weight)
        check_non_negative("overload_penalty", self.overload_penalty)
        check_non_negative("vacancy_penalty", self.vacancy_penalty)
        check_non_negative("replica_penalty", self.replica_penalty)


class Objective:
    """Callable objective bound to an episode's initial assignment.

    Parameters
    ----------
    initial_assignment:
        ``a0`` — used for the moved-bytes term.
    sizes:
        Per-shard migration bytes.
    required_returns:
        ``R`` — vacant machines owed at the end.
    weights:
        Term weights.

    The instance is immutable and cheap to call: one vectorized pass over
    the ``(m, d)`` load matrix per evaluation.
    """

    def __init__(
        self,
        initial_assignment: np.ndarray,
        sizes: np.ndarray,
        *,
        required_returns: int = 0,
        weights: ObjectiveWeights | None = None,
    ) -> None:
        self.a0 = np.asarray(initial_assignment, dtype=np.int64).copy()
        self.sizes = np.asarray(sizes, dtype=np.float64)
        if self.a0.shape != self.sizes.shape:
            raise ValueError("initial_assignment and sizes must have equal length")
        check_non_negative("required_returns", required_returns)
        self.required_returns = int(required_returns)
        self.weights = weights or ObjectiveWeights()
        self._total_bytes = float(self.sizes.sum()) or 1.0

    # ------------------------------------------------------------------ API
    def __call__(self, state: ClusterState) -> float:
        """Objective value of *state* (lower is better)."""
        return self.components(state)["value"]

    def components(self, state: ClusterState) -> dict[str, float]:
        """All objective terms, for reporting and tests."""
        w = self.weights
        util = state.loads / state.capacity  # capacities are > 0
        machine_peak = util.max(axis=1)
        peak = float(machine_peak.max())
        smooth = float(np.mean(machine_peak**2))

        assign = state.assignment_view()
        moved = float(self.sizes[assign != self.a0].sum()) / self._total_bytes

        over = np.maximum(util - 1.0, 0.0)
        overload = float(over.sum())

        vacant = int(np.sum((state.shard_counts() == 0) & ~state.offline_mask))
        shortfall = max(0, self.required_returns - vacant)
        conflicts = len(state.replica_conflicts()) if state.replica_groups else 0

        value = (
            peak
            + w.smooth_weight * smooth
            + w.move_penalty * moved
            + w.overload_penalty * overload
            + w.vacancy_penalty * shortfall
            + w.replica_penalty * conflicts
        )
        return {
            "value": value,
            "peak": peak,
            "smooth": smooth,
            "moved_fraction": moved,
            "overload": overload,
            "vacancy_shortfall": float(shortfall),
            "replica_conflicts": float(conflicts),
        }

    def is_feasible(self, state: ClusterState, *, atol: float = 1e-9) -> bool:
        """Hard feasibility: within capacity, fully assigned, R vacancies."""
        if not state.is_fully_assigned():
            return False
        if not state.is_within_capacity(atol=atol):
            return False
        if state.replica_groups and state.has_replica_conflicts():
            return False
        vacant = int(np.sum((state.shard_counts() == 0) & ~state.offline_mask))
        return vacant >= self.required_returns
