"""Single-server FCFS machines whose speeds are piecewise-constant.

Each :class:`FCFSMachine` serves tasks in enqueue order at its current
``speed`` (work units per second).  Speeds may change at simulated-time
events — a migration wave derating the endpoints of in-flight copies,
for example — and the machine re-times its pending tasks when they do.
Between speed changes the machine is analytic: a task's start/finish are
computed in closed form at enqueue, so no completion events are needed
and the constant-speed case degenerates to exactly the arithmetic of the
legacy serving loop.

**Bitwise contract** (relied on by the ``simulate_serving`` facade's
equivalence gate): with a constant speed, :meth:`FCFSMachine.enqueue`
performs, per task and in enqueue order::

    start = max(now, free_at)
    service = work / speed
    free_at = start + service
    busy_time += service

— the identical float operations, in the identical order, as the
pre-refactor ``simulate_serving`` inner loop, so latencies and busy
times are bit-for-bit reproductions.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List

import numpy as np

from repro._validation import check_positive

__all__ = ["QueryRecord", "FCFSMachine", "ServingFleet"]


class QueryRecord:
    """Completion bookkeeping for one fan-out query.

    ``finish_max`` starts at the arrival time and folds in task finish
    times as they are finalized; the query's latency is their difference.
    """

    __slots__ = ("arrival", "finish_max")

    def __init__(self, arrival: float) -> None:
        self.arrival = arrival
        self.finish_max = arrival

    def complete(self, finish: float) -> None:
        if finish > self.finish_max:
            self.finish_max = finish

    @property
    def latency(self) -> float:
        return self.finish_max - self.arrival


class _Task:
    """One shard task on a machine's queue.

    ``work`` is the *remaining* work; ``start`` is the start of the
    current service segment (reset when a mid-service speed change
    re-times the task).  The task's busy contribution is maintained via
    finish-time deltas, so ``busy_time`` stays exact across re-timings.
    """

    __slots__ = ("query", "enqueue_t", "work", "start", "finish")

    def __init__(
        self, query: QueryRecord, enqueue_t: float, work: float, start: float, finish: float
    ) -> None:
        self.query = query
        self.enqueue_t = enqueue_t
        self.work = work
        self.start = start
        self.finish = finish


class FCFSMachine:
    """Single-server FCFS queue with a piecewise-constant speed.

    Parameters
    ----------
    speed:
        Initial (and base) speed in work units per second.  ``base_speed``
        is the undedated reference that :meth:`set_derate` applies
        fractions to; it already includes any static background derating
        the caller folded in.
    """

    __slots__ = ("base_speed", "speed", "free_at", "busy_time", "_pending")

    def __init__(self, speed: float) -> None:
        check_positive("speed", speed)
        self.base_speed = speed
        self.speed = speed
        self.free_at: float = 0.0
        self.busy_time: float = 0.0
        self._pending: Deque[_Task] = deque()

    # ------------------------------------------------------------------ serve
    def enqueue(self, now: float, work: float, query: QueryRecord) -> None:
        """Enqueue *work* for *query* at time *now* (non-decreasing)."""
        self._retire(now)
        start = max(now, self.free_at)
        service = work / self.speed
        self.free_at = start + service
        self.busy_time += service
        self._pending.append(_Task(query, now, work, start, self.free_at))

    def set_speed(self, now: float, new_speed: float) -> None:
        """Change the speed at time *now*, re-timing pending tasks.

        Completed work is conserved: the in-service task keeps what it
        processed at the old speed and finishes its remainder at the new
        one; queued tasks are re-chained behind it.
        """
        check_positive("speed", new_speed)
        self._retire(now)
        if new_speed == self.speed:
            return
        old_speed = self.speed
        self.speed = new_speed
        prev_finish = now
        first = True
        for task in self._pending:
            if first and task.start < now:
                # In service: bank the work done so far at the old speed.
                done = (now - task.start) * old_speed
                task.work = max(task.work - done, 0.0)
                task.start = now
                new_finish = now + task.work / new_speed
            else:
                task.start = max(task.enqueue_t, prev_finish)
                new_finish = task.start + task.work / new_speed
            self.busy_time += new_finish - task.finish
            task.finish = new_finish
            prev_finish = new_finish
            first = False
        if self._pending:
            self.free_at = self._pending[-1].finish

    def set_derate(self, now: float, fraction: float) -> None:
        """Derate to ``base_speed * (1 - fraction)`` (fraction in [0, 1))."""
        if not 0.0 <= fraction < 1.0:
            raise ValueError(f"derate fraction must be in [0, 1), got {fraction!r}")
        self.set_speed(now, self.base_speed * (1.0 - fraction))

    def clear_derate(self, now: float) -> None:
        """Restore the machine to its base speed."""
        self.set_speed(now, self.base_speed)

    # -------------------------------------------------------------- internals
    def _retire(self, now: float) -> None:
        """Finalize tasks that finished at or before *now*.

        A future speed change happens at a time >= now, so these finish
        times can no longer move; fold them into their queries.
        """
        pending = self._pending
        while pending and pending[0].finish <= now:
            task = pending.popleft()
            task.query.complete(task.finish)

    def flush(self) -> None:
        """Finalize every pending task (end of simulation)."""
        pending = self._pending
        while pending:
            task = pending.popleft()
            task.query.complete(task.finish)

    @property
    def queue_depth(self) -> int:
        """Tasks enqueued but not yet finalized (includes completed-but-
        unretired tasks between events)."""
        return len(self._pending)


class ServingFleet:
    """The machines of one cluster, indexed by machine id."""

    __slots__ = ("machines",)

    def __init__(self, speeds: np.ndarray) -> None:
        arr = np.asarray(speeds, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError(f"speeds must be a non-empty 1-D array, got shape {arr.shape}")
        self.machines: List[FCFSMachine] = [FCFSMachine(float(s)) for s in arr]

    def __len__(self) -> int:
        return len(self.machines)

    def __getitem__(self, machine_id: int) -> FCFSMachine:
        return self.machines[machine_id]

    def __iter__(self) -> Iterator[FCFSMachine]:
        return iter(self.machines)

    def flush(self) -> None:
        """Finalize all pending tasks on every machine."""
        for machine in self.machines:
            machine.flush()

    def busy_time(self) -> np.ndarray:
        """(m,) seconds each machine spent serving."""
        return np.array([m.busy_time for m in self.machines], dtype=np.float64)

    def busy_fraction(self, window: float) -> np.ndarray:
        """(m,) busy fraction over a *window* of seconds."""
        check_positive("window", window)
        return self.busy_time() / window
