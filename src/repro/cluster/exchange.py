"""Exchange-pool accounting.

The resource-exchange contract of the paper: the operator lends the
rebalancer ``B`` initially vacant machines; after rebalancing, the
rebalancer must hand back ``R`` vacant machines (default ``R = B``) — not
necessarily the ones it borrowed.  :class:`ExchangeLedger` records the
borrow, validates the return against a finished :class:`ClusterState`, and
selects which concrete machines to return.

Two return policies are supported:

``"count"`` (default)
    Any ``R`` vacant machines satisfy the contract.  This is the weakest
    reading of "return some vacant machines as compensation".
``"capacity"``
    The summed capacity of the returned machines must dominate the summed
    capacity of the borrowed machines in every dimension — the exchange
    is resource-neutral for the pool, not merely machine-count-neutral.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from repro.cluster.machine import Machine
from repro.cluster.resources import dominates
from repro.cluster.state import ClusterState

__all__ = [
    "ExchangeLedger",
    "ExchangeViolation",
    "ExchangeSettlement",
    "settle_fleet",
    "PoolDecision",
    "PoolSizingPolicy",
    "ExchangePoolManager",
]

ReturnPolicy = Literal["count", "capacity"]


class ExchangeViolation(ValueError):
    """Raised when a final state cannot satisfy the vacancy-return contract."""


@dataclass
class ExchangeLedger:
    """Borrow/return bookkeeping for one rebalancing episode.

    Attributes
    ----------
    borrowed_ids:
        Machine ids (in the *augmented* cluster) of the borrowed machines.
    required_returns:
        Number of vacant machines that must be returned, ``R``.
    policy:
        Return policy, see module docstring.
    """

    borrowed_ids: tuple[int, ...] = ()
    required_returns: int = 0
    policy: ReturnPolicy = "count"
    _borrowed_capacity: np.ndarray | None = field(default=None, repr=False)

    @staticmethod
    def borrow(
        state: ClusterState,
        machines: Sequence[Machine],
        *,
        required_returns: int | None = None,
        policy: ReturnPolicy = "count",
    ) -> tuple[ClusterState, "ExchangeLedger"]:
        """Augment *state* with borrowed *machines* and open a ledger.

        Returns the augmented state (new object; the input is untouched)
        and the ledger tracking the debt.  ``required_returns`` defaults
        to the number of borrowed machines.
        """
        if required_returns is None:
            required_returns = len(machines)
        if required_returns < 0:
            raise ValueError(f"required_returns must be >= 0, got {required_returns}")
        if required_returns > state.num_machines + len(machines):
            raise ValueError("cannot owe more returns than machines exist")
        augmented = state.with_extra_machines(machines) if machines else state.copy()
        start = state.num_machines
        ids = tuple(range(start, start + len(machines)))
        cap = (
            np.stack([m.capacity for m in machines]).sum(axis=0)
            if machines
            else np.zeros(state.dims)
        )
        ledger = ExchangeLedger(
            borrowed_ids=ids,
            required_returns=required_returns,
            policy=policy,
            _borrowed_capacity=cap,
        )
        return augmented, ledger

    @property
    def num_borrowed(self) -> int:
        return len(self.borrowed_ids)

    def borrowed_capacity(self) -> np.ndarray:
        """Summed capacity vector of the borrowed machines."""
        if self._borrowed_capacity is None:
            raise ValueError("ledger was not opened via ExchangeLedger.borrow")
        return self._borrowed_capacity

    # ------------------------------------------------------------ validation
    def candidate_returns(self, state: ClusterState) -> np.ndarray:
        """Vacant machines eligible to be returned, best first.

        Preference order: vacant borrowed machines first (returning the
        loaner's own machines is always acceptable), then vacant in-service
        machines by descending capacity (so a ``capacity`` policy is
        satisfied with the fewest machines).
        """
        vacant = state.vacant_machines()
        vacant = vacant[~state.offline_mask[vacant]]  # dead machines can't be returned
        if vacant.size == 0:
            return vacant
        borrowed = np.isin(vacant, np.asarray(self.borrowed_ids, dtype=np.int64))
        caps = state.capacity[vacant].sum(axis=1)
        # Sort: borrowed first, then by capacity descending.
        order = np.lexsort((-caps, ~borrowed))
        return vacant[order]

    def select_returns(self, state: ClusterState) -> np.ndarray:
        """Choose the machines to return, or raise :class:`ExchangeViolation`.

        For the ``count`` policy this is the first ``R`` candidates.  For
        the ``capacity`` policy, candidates are accumulated (largest first
        among in-service machines) until the borrowed capacity is covered;
        at least ``R`` machines are always returned.
        """
        candidates = self.candidate_returns(state)
        if candidates.size < self.required_returns:
            raise ExchangeViolation(
                f"need {self.required_returns} vacant machines to return, "
                f"only {candidates.size} are vacant"
            )
        if self.policy == "count":
            return candidates[: self.required_returns]
        # capacity policy
        target = self.borrowed_capacity()
        chosen: list[int] = []
        total = np.zeros_like(target)
        for mid in candidates:
            if len(chosen) >= self.required_returns and dominates(total, target):
                break
            chosen.append(int(mid))
            total += state.capacity[mid]
        if len(chosen) < self.required_returns or not dominates(total, target):
            raise ExchangeViolation(
                "vacant machines cannot cover borrowed capacity "
                f"(have {total}, owe {target})"
            )
        return np.asarray(chosen, dtype=np.int64)

    def is_satisfiable(self, state: ClusterState) -> bool:
        """True when :meth:`select_returns` would succeed on *state*."""
        try:
            self.select_returns(state)
        except ExchangeViolation:
            return False
        return True

    def settle(self, state: ClusterState) -> "ExchangeSettlement":
        """Validate and close the ledger against a finished state."""
        returned = self.select_returns(state)
        kept = [mid for mid in self.borrowed_ids if mid not in set(returned.tolist())]
        return ExchangeSettlement(
            returned_ids=tuple(int(r) for r in returned),
            retained_borrowed_ids=tuple(kept),
            returned_capacity=state.capacity[returned].sum(axis=0)
            if returned.size
            else np.zeros(state.dims),
        )


@dataclass(frozen=True)
class ExchangeSettlement:
    """Outcome of closing an :class:`ExchangeLedger`.

    ``retained_borrowed_ids`` lists borrowed machines that stay in service
    (an equal number of formerly in-service machines was emptied and
    returned instead) — the "exchange" the paper is named for.
    """

    returned_ids: tuple[int, ...]
    retained_borrowed_ids: tuple[int, ...]
    returned_capacity: np.ndarray


@dataclass(frozen=True)
class PoolDecision:
    """One control round's borrow/release verdict.

    At most one side is nonzero: a round either grows the fleet from
    the pool, shrinks it back, or holds.  ``reason`` is a short audit
    tag (``"overload"``, ``"release"``, ``"hold"``, ``"held"``,
    ``"idle"``) for episode records.
    """

    borrow: int = 0
    release: int = 0
    reason: str = "idle"


@dataclass(frozen=True)
class PoolSizingPolicy:
    """How many vacant pool machines to borrow or return per round.

    Replaces the fixed borrow-``B``-return-``B`` episode semantics with
    a continuous loan: machines borrowed under pressure *stay in the
    fleet* across rounds (``required_returns=0`` on the borrow) and are
    handed back — possibly as drained in-service machines, the exchange
    the paper is named for — once the pressure subsides.

    Hysteresis is twofold, so the loan doesn't thrash:

    * a **peak band**: borrow only above ``borrow_above``, release only
      below ``release_below`` (the gap is the dead zone);
    * a **hold time**: a changed loan must sit ``min_hold_rounds``
      control rounds before any release.

    Attributes
    ----------
    borrow_above:
        Peak utilization above which the fleet borrows.
    release_below:
        Peak utilization below which held machines may be released;
        must be strictly below ``borrow_above``.
    overload_gain:
        Machines requested per unit of peak overshoot beyond
        ``borrow_above`` (always at least 1 when over).
    max_borrow_per_round / max_release_per_round:
        Per-round caps on loan growth/shrink.
    min_hold_rounds:
        Control rounds a loan is held before it may shrink.
    """

    borrow_above: float = 0.9
    release_below: float = 0.8
    overload_gain: float = 20.0
    max_borrow_per_round: int = 2
    max_release_per_round: int = 2
    min_hold_rounds: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.release_below < self.borrow_above:
            raise ValueError(
                "need 0 < release_below < borrow_above, got "
                f"{self.release_below} / {self.borrow_above}"
            )
        if self.overload_gain <= 0:
            raise ValueError(f"overload_gain must be > 0, got {self.overload_gain}")
        if self.max_borrow_per_round < 0 or self.max_release_per_round < 0:
            raise ValueError("per-round borrow/release caps must be >= 0")
        if self.min_hold_rounds < 0:
            raise ValueError(f"min_hold_rounds must be >= 0, got {self.min_hold_rounds}")

    def decide(
        self, *, peak: float, on_loan: int, available: int, rounds_held: int
    ) -> PoolDecision:
        """Pure decision for one round (no state; see ExchangePoolManager)."""
        if peak > self.borrow_above:
            want = max(1, int(np.ceil((peak - self.borrow_above) * self.overload_gain)))
            borrow = min(want, self.max_borrow_per_round, available)
            if borrow > 0:
                return PoolDecision(borrow=borrow, reason="overload")
            return PoolDecision(reason="hold")
        if peak < self.release_below and on_loan > 0:
            if rounds_held < self.min_hold_rounds:
                return PoolDecision(reason="held")
            release = min(on_loan, self.max_release_per_round)
            return PoolDecision(release=release, reason="release")
        return PoolDecision(reason="idle" if on_loan == 0 else "hold")


class ExchangePoolManager:
    """Stateful loan tracker applying a :class:`PoolSizingPolicy`.

    Owns nothing but counters: the caller executes the decision (lend
    machines into an :meth:`ExchangeLedger.borrow`, settle returns back
    into its pool) and reports what actually happened via :meth:`note`.
    ``machine_rounds`` integrates the loan over time — the cost figure
    pool-sizing studies compare against fixed-budget borrowing.
    """

    def __init__(self, policy: PoolSizingPolicy | None = None) -> None:
        self.policy = policy or PoolSizingPolicy()
        self.on_loan = 0
        #: Control rounds since the loan last changed (the hold clock).
        self.rounds_held = 0
        #: Standing loan integrated over control rounds — the cost figure
        #: pool-sizing studies compare against fixed-budget borrowing.
        self.machine_rounds = 0
        #: One audit row per executed borrow/release/hold-back round.
        self.history: list[dict[str, int | str]] = []

    def check(self, *, peak: float, available: int) -> PoolDecision:
        """Once per control round: advance the hold clock, integrate the
        standing loan, and return the policy's verdict for this round."""
        self.rounds_held += 1
        self.machine_rounds += self.on_loan
        return self.policy.decide(
            peak=peak,
            on_loan=self.on_loan,
            available=available,
            rounds_held=self.rounds_held,
        )

    def note(self, decision: PoolDecision, *, borrowed: int, released: int) -> None:
        """Record what a round actually executed.

        *borrowed*/*released* are the realized deltas (an infeasible
        episode may return lent machines immediately: borrowed=0).
        """
        if borrowed < 0 or released < 0:
            raise ValueError("borrowed/released must be >= 0")
        if released > self.on_loan + borrowed:
            raise ValueError("cannot release more machines than are on loan")
        self.on_loan += borrowed - released
        if borrowed != released:
            self.rounds_held = 0
        self.history.append(
            {
                "decision": decision.reason,
                "borrowed": borrowed,
                "released": released,
                "on_loan": self.on_loan,
            }
        )


def settle_fleet(
    final: ClusterState, ledger: ExchangeLedger
) -> tuple[ClusterState, ExchangeSettlement, list[Machine]]:
    """Close the episode: drop the returned machines from the fleet.

    Returns the post-settlement cluster (returned machines removed,
    remaining machines re-indexed densely, assignment preserved), the
    settlement, and the returned machine descriptions (what goes back
    into the pool).
    """
    settlement = ledger.settle(final)
    returned = set(settlement.returned_ids)
    returned_machines = [final.machines[mid] for mid in settlement.returned_ids]
    if not returned:
        return final.copy(), settlement, returned_machines
    keep = [m for m in range(final.num_machines) if m not in returned]
    remap = {old: new for new, old in enumerate(keep)}
    machines = [final.machines[old].with_id(remap[old]) for old in keep]
    assignment = np.array(
        [remap[int(a)] for a in final.assignment_view()], dtype=np.int64
    )
    slim = ClusterState(machines, list(final.shards), assignment)
    return slim, settlement, returned_machines
