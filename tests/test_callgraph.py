"""Tests for the cross-module symbol table / call graph and the CFG +
dataflow substrate under the interprocedural rule pack.

The call-graph tests drive :meth:`Project.from_sources` with small
multi-module fixtures and pin down each resolution mechanism — import
aliases, package re-exports, constructor-to-``__init__``, receiver
typing (annotations, local construction, ``self`` attributes), bound
methods and the denylist-gated unique-name fallback.  A hypothesis
property pins full determinism across file orderings: the graph a rule
sees must not depend on filesystem enumeration order.
"""

import ast
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.callgraph import Project, module_name
from repro.analysis.cfg import EXCEPTION, NORMAL, build_cfg
from repro.analysis.dataflow import ForwardAnalysis, run_forward


def project(**sources):
    """Build a Project from ``module_path=source`` kwargs (dots for /)."""
    return Project.from_sources(
        {k.replace("__", "/") + ".py": v for k, v in sources.items()}
    )


def edges(proj):
    return sorted({(s.caller, s.callee) for s in proj.graph.sites})


class TestModuleName:
    def test_strips_src_prefix_and_extension(self):
        assert module_name("src/repro/cluster/state.py") == "repro.cluster.state"

    def test_init_is_the_package(self):
        assert module_name("src/repro/simulate/__init__.py") == "repro.simulate"


class TestResolution:
    def test_same_module_call(self):
        proj = project(src__repro__a="def g():\n    return 1\n\ndef f():\n    return g()\n")
        assert ("repro.a.f", "repro.a.g") in edges(proj)

    def test_module_level_caller_pseudo_name(self):
        proj = project(src__repro__a="def g():\n    return 1\n\nX = g()\n")
        assert ("src/repro/a.py::<module>", "repro.a.g") in edges(proj)

    def test_cross_module_from_import(self):
        proj = project(
            src__repro__util="def helper(x):\n    return x\n",
            src__repro__main=(
                "from repro.util import helper\n\ndef f():\n    return helper(1)\n"
            ),
        )
        assert ("repro.main.f", "repro.util.helper") in edges(proj)

    def test_import_module_attribute_call(self):
        proj = project(
            src__repro__util="def helper(x):\n    return x\n",
            src__repro__main=(
                "import repro.util as u\n\ndef f():\n    return u.helper(1)\n"
            ),
        )
        assert ("repro.main.f", "repro.util.helper") in edges(proj)

    def test_package_reexport_resolves_to_defining_module(self):
        proj = Project.from_sources({
            "src/repro/sim/traces.py": "def arrivals(rate):\n    return rate\n",
            "src/repro/sim/__init__.py": "from repro.sim.traces import arrivals\n",
            "src/repro/main.py": (
                "from repro.sim import arrivals\n\ndef f():\n    return arrivals(3)\n"
            ),
        })
        assert ("repro.main.f", "repro.sim.traces.arrivals") in edges(proj)

    def test_constructor_resolves_to_init(self):
        proj = project(
            src__repro__a=(
                "class Box:\n"
                "    def __init__(self, x):\n"
                "        self.x = x\n"
                "\n"
                "def make():\n"
                "    return Box(1)\n"
            ),
        )
        assert ("repro.a.make", "repro.a.Box.__init__") in edges(proj)

    def test_method_call_via_local_construction(self):
        proj = project(
            src__repro__a=(
                "class Box:\n"
                "    def refresh_row(self):\n"
                "        return 1\n"
                "\n"
                "def use():\n"
                "    b = Box()\n"
                "    return b.refresh_row()\n"
            ),
        )
        assert ("repro.a.use", "repro.a.Box.refresh_row") in edges(proj)

    def test_unique_method_fallback_for_untyped_receiver(self):
        proj = project(
            src__repro__a="def use(x):\n    return x.wrapped()\n",
            src__repro__b=(
                "class Other:\n"
                "    def wrapped(self):\n"
                "        return 2\n"
            ),
        )
        # `x` is untyped, but exactly one in-project class defines a
        # (non-ubiquitous) `wrapped` method — the fallback resolves it.
        assert ("repro.a.use", "repro.b.Other.wrapped") in edges(proj)

    def test_typed_receiver_without_method_stays_unresolved(self):
        proj = project(
            src__repro__a=(
                "class Box:\n"
                "    def get(self):\n"
                "        return 1\n"
                "\n"
                "def use():\n"
                "    b = Box()\n"
                "    return b.wrapped()\n"
            ),
            src__repro__b=(
                "class Other:\n"
                "    def wrapped(self):\n"
                "        return 2\n"
            ),
        )
        # The receiver is *known* to be a Box; Box has no `wrapped`, so
        # falling back to Other.wrapped would be unsound — stay silent.
        assert edges(proj) == []

    def test_method_call_via_annotation(self):
        proj = project(
            src__repro__a=(
                "class Box:\n"
                "    def get_value(self):\n"
                "        return 1\n"
                "\n"
                "def use(b: Box):\n"
                "    return b.get_value()\n"
            ),
        )
        assert ("repro.a.use", "repro.a.Box.get_value") in edges(proj)

    def test_self_method_call(self):
        proj = project(
            src__repro__a=(
                "class Box:\n"
                "    def inner(self):\n"
                "        return 1\n"
                "\n"
                "    def outer(self):\n"
                "        return self.inner()\n"
            ),
        )
        assert ("repro.a.Box.outer", "repro.a.Box.inner") in edges(proj)

    def test_self_attr_receiver_typed_from_init(self):
        proj = project(
            src__repro__a=(
                "class Engine:\n"
                "    def step_once(self):\n"
                "        return 1\n"
                "\n"
                "class Driver:\n"
                "    def __init__(self):\n"
                "        self._eng = Engine()\n"
                "\n"
                "    def run_all(self):\n"
                "        return self._eng.step_once()\n"
            ),
        )
        assert ("repro.a.Driver.run_all", "repro.a.Engine.step_once") in edges(proj)

    def test_denylist_blocks_common_name_fallback(self):
        proj = project(
            src__repro__a=(
                "class Box:\n"
                "    def copy(self):\n"
                "        return Box()\n"
                "\n"
                "def use(x):\n"
                "    return x.copy()\n"
            ),
        )
        # `copy` is ubiquitous (ndarray, dict, ...): an untyped receiver
        # must NOT resolve to Box.copy just because the name is unique
        # in-project.
        assert ("repro.a.use", "repro.a.Box.copy") not in edges(proj)

    def test_bound_method_args_skip_self(self):
        proj = project(
            src__repro__a=(
                "class Box:\n"
                "    def put(self, key, value):\n"
                "        return key, value\n"
                "\n"
                "def use(b: Box):\n"
                "    return b.put(1, value=2)\n"
            ),
        )
        site = next(s for s in proj.graph.sites if s.callee.endswith("Box.put"))
        assert set(site.args) == {"key", "value"}
        assert isinstance(site.args["key"], ast.Constant)

    def test_callers_and_callees_indexes(self):
        proj = project(
            src__repro__a="def g():\n    return 1\n\ndef f():\n    return g()\n"
        )
        assert [s.caller for s in proj.graph.callers_of("repro.a.g")] == ["repro.a.f"]
        assert [s.callee for s in proj.graph.callees_of("repro.a.f")] == ["repro.a.g"]


DET_SOURCES = {
    "src/repro/pkg/__init__.py": "from repro.pkg.core import run_core\n",
    "src/repro/pkg/core.py": (
        "class Engine:\n"
        "    def __init__(self, n):\n"
        "        self.n = n\n"
        "\n"
        "    def step_once(self):\n"
        "        return self.n\n"
        "\n"
        "def run_core(n):\n"
        "    eng = Engine(n)\n"
        "    return eng.step_once()\n"
    ),
    "src/repro/pkg/drive.py": (
        "from repro.pkg import run_core\n"
        "\n"
        "def main():\n"
        "    return run_core(3)\n"
    ),
    "src/repro/other.py": (
        "import repro.pkg.core as core\n"
        "\n"
        "def indirect():\n"
        "    return core.run_core(5)\n"
    ),
}


class TestDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(order=st.permutations(sorted(DET_SOURCES)))
    def test_graph_is_independent_of_file_ordering(self, order):
        baseline = Project.from_sources(DET_SOURCES).graph.to_json()
        permuted = Project.from_sources(
            {rel: DET_SOURCES[rel] for rel in order}
        ).graph.to_json()
        assert permuted == baseline

    def test_to_json_is_json_serialisable_and_sorted(self):
        doc = Project.from_sources(DET_SOURCES).graph.to_json()
        json.dumps(doc)  # no sets / AST nodes leaking through
        assert doc["nodes"] == sorted(doc["nodes"])

    def test_to_dot_lists_every_deduped_edge(self):
        proj = Project.from_sources(DET_SOURCES)
        dot = proj.graph.to_dot()
        assert dot.startswith("digraph")
        for caller, callee in edges(proj):
            assert f'"{caller}" -> "{callee}";' in dot


def fn_cfg(src):
    tree = ast.parse(src)
    fn = next(
        n for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    )
    return build_cfg(fn)


class TestCfg:
    def test_if_else_branch_edges_carry_condition(self):
        cfg = fn_cfg(
            "def f(x):\n"
            "    if x:\n"
            "        a = 1\n"
            "    else:\n"
            "        a = 2\n"
            "    return a\n"
        )
        header = next(
            i for i, n in enumerate(cfg.nodes) if isinstance(n, ast.If)
        )
        branches = {
            e.branch for e in cfg.successors(header) if e.kind == NORMAL
        }
        assert branches == {True, False}

    def test_while_true_has_no_false_exit(self):
        cfg = fn_cfg(
            "def f():\n"
            "    while True:\n"
            "        step()\n"
        )
        header = next(
            i for i, n in enumerate(cfg.nodes) if isinstance(n, ast.While)
        )
        assert all(e.branch is not False for e in cfg.successors(header))

    def test_call_statement_has_exception_edge(self):
        cfg = fn_cfg("def f():\n    step()\n")
        call_node = next(
            i for i, n in enumerate(cfg.nodes)
            if n is not None and isinstance(n, ast.Expr)
        )
        kinds = {e.kind for e in cfg.successors(call_node)}
        assert EXCEPTION in kinds

    def test_pure_assignment_has_no_exception_edge(self):
        cfg = fn_cfg("def f(x):\n    y = x\n    return y\n")
        assert all(e.kind == NORMAL for e in cfg.edges)

    def test_finally_reached_from_exception_path(self):
        cfg = fn_cfg(
            "def f():\n"
            "    try:\n"
            "        step()\n"
            "    finally:\n"
            "        cleanup()\n"
        )
        # Some path must reach raise_exit (the re-raise after finally).
        assert any(e.dst == cfg.raise_exit for e in cfg.edges)

    def test_bare_except_swallows_exception_edges(self):
        cfg = fn_cfg(
            "def f():\n"
            "    try:\n"
            "        step()\n"
            "    except Exception:\n"
            "        pass\n"
            "    return 1\n"
        )
        assert not any(e.dst == cfg.raise_exit for e in cfg.edges)


class _DefinedNames(ForwardAnalysis):
    """Toy must-define analysis used to exercise the generic driver."""

    def initial(self):
        return frozenset()

    def transfer(self, node, state):
        if isinstance(node, ast.Assign):
            return state | {
                t.id for t in node.targets if isinstance(t, ast.Name)
            }
        return state

    def join(self, a, b):
        return a & b


class TestDataflow:
    def test_branch_join_is_intersection(self):
        cfg = fn_cfg(
            "def f(x):\n"
            "    a = 1\n"
            "    if x:\n"
            "        b = 2\n"
            "    return a\n"
        )
        result = run_forward(cfg, _DefinedNames())
        ret = next(
            i for i, n in enumerate(cfg.nodes) if isinstance(n, ast.Return)
        )
        # `a` is defined on both branches, `b` only on one.
        assert result.in_states[ret] == frozenset({"a"})

    def test_loop_reaches_fixpoint(self):
        cfg = fn_cfg(
            "def f(xs):\n"
            "    t = 0\n"
            "    for x in xs:\n"
            "        t = t + x\n"
            "    return t\n"
        )
        result = run_forward(cfg, _DefinedNames())
        ret = next(
            i for i, n in enumerate(cfg.nodes) if isinstance(n, ast.Return)
        )
        assert "t" in result.in_states[ret]

    def test_edge_states_cover_every_edge_reached(self):
        cfg = fn_cfg("def f(x):\n    a = x\n    return a\n")
        result = run_forward(cfg, _DefinedNames())
        exit_edges = [
            i for i, e in enumerate(cfg.edges) if e.dst == cfg.exit
        ]
        assert exit_edges
        for idx in exit_edges:
            assert result.edge_states.get(idx) is not None
