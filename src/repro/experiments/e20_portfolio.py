"""E20 — seed portfolio vs one long run (extension).

At an equal total iteration budget, is it better to run one long LNS or
K independent short runs and keep the best?  On rugged tight instances
the portfolio usually wins (independent seeds escape different local
basins), and it parallelizes perfectly — the classic argument for
:class:`~repro.algorithms.PortfolioRebalancer`.
"""

from __future__ import annotations

from repro.algorithms import AlnsConfig, PortfolioRebalancer, SRA, SRAConfig
from repro.cluster import ExchangeLedger
from repro.experiments.harness import register
from repro.workloads import make_exchange_machines, tight_suite


@register("e20")
def run(fast: bool = True) -> list[dict]:
    seeds = (0, 1) if fast else (0, 1, 2, 3)
    total_budget = 1200 if fast else 4800
    portfolios = (1, 2, 4)
    rows = []
    for name, state in tight_suite(seeds=seeds):
        grown, ledger = ExchangeLedger.borrow(state, make_exchange_machines(state, 2))
        for k in portfolios:
            per_run = total_budget // k
            cfg = SRAConfig(alns=AlnsConfig(iterations=per_run, seed=100))
            algo = (
                SRA(cfg)
                if k == 1
                else PortfolioRebalancer(cfg, runs=k, n_jobs=1)
            )
            result = algo.rebalance(grown, ledger)
            rows.append(
                {
                    "instance": name,
                    "portfolio_K": k,
                    "iters_per_run": per_run,
                    "total_iters": result.iterations,
                    "peak_after": result.peak_after,
                    "feasible": result.feasible,
                    "runtime_s": result.runtime_seconds,
                }
            )
    return rows
