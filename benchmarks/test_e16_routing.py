"""E16 — replica routing policies (extension).

Shape claims: load-aware routing has the best tail of the three
policies at each replication level, and 2× replication with load-aware
routing beats the 1× control at equal capacity.
"""

from collections import defaultdict

from repro.experiments import REGISTRY, is_full_run


def test_e16_routing(benchmark, save_table):
    rows = benchmark.pedantic(
        REGISTRY["e16"], kwargs={"fast": not is_full_run()}, rounds=1, iterations=1
    )
    save_table("e16", rows, "E16 — tail latency by replica routing policy")

    by_k = defaultdict(dict)
    for r in rows:
        by_k[r["replication"]][r["policy"]] = r
    assert set(by_k) == {1, 2}
    for k, policies in by_k.items():
        assert set(policies) == {"random", "round_robin", "least_loaded"}
        # Load-aware routing is never beaten by the stateless policies.
        best_stateless = min(
            policies["random"]["p99_ms"], policies["round_robin"]["p99_ms"]
        )
        assert policies["least_loaded"]["p99_ms"] <= best_stateless * 1.05, k
    # Replication + smart routing beats the single-copy control.
    assert (
        by_k[2]["least_loaded"]["p99_ms"] <= by_k[1]["least_loaded"]["p99_ms"] * 1.05
    )
