"""Tests for ASCII chart rendering."""

import pytest

from repro.experiments.ascii_chart import bar_chart, line_chart


class TestLineChart:
    def test_basic_render(self):
        text = line_chart(
            {"a": [(0, 0.0), (1, 1.0), (2, 4.0)]},
            width=20,
            height=8,
            title="T",
            x_label="iter",
            y_label="obj",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "o" in text  # marker drawn
        assert "legend: o a" in text
        assert "iter" in text and "obj" in text

    def test_two_series_two_markers(self):
        text = line_chart({"s1": [(0, 1.0)], "s2": [(1, 2.0)]})
        assert "o s1" in text and "x s2" in text

    def test_extremes_on_grid(self):
        text = line_chart({"a": [(0, 0.0), (10, 10.0)]}, width=10, height=5)
        # min value labels appear on axes
        assert "10" in text and "0" in text

    def test_constant_series_does_not_crash(self):
        text = line_chart({"flat": [(0, 5.0), (1, 5.0)]})
        assert "flat" in text

    def test_empty(self):
        assert "(no data)" in line_chart({}, title="E")

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            line_chart({"a": [(0, 1.0)]}, width=0)


class TestBarChart:
    def test_basic_render(self):
        text = bar_chart(["B=0", "B=1"], [0.9, 0.88], title="peaks", unit="")
        lines = text.splitlines()
        assert lines[0] == "peaks"
        assert "B=0" in text and "█" in text
        assert "0.9" in text

    def test_proportional_lengths(self):
        text = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        bars = [line.count("█") for line in text.splitlines()]
        assert bars[1] == 2 * bars[0]

    def test_zero_value_gets_no_bar(self):
        text = bar_chart(["z"], [0.0])
        assert "█" not in text

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError, match="equal length"):
            bar_chart(["a"], [1.0, 2.0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            bar_chart(["a"], [-1.0])

    def test_empty(self):
        assert "(no data)" in bar_chart([], [], title="E")
