"""Parametric scenario registry (see docs/ARCHITECTURE.md, "Scenario
registry").

Every scenario is a registered generator family ``(ScenarioSpec) ->
ClusterState`` with a typed parameter schema, deterministic under
``numpy.random.SeedSequence`` seeding, and content-addressed by the hash
of its canonicalized spec.  The registry is the enumeration surface for
instances: ``repro scenarios list`` prints it, the experiment suites
look specs up in it, and :func:`run_matrix` sweeps scenario × algorithm
grids through the parallel driver.
"""

from repro.scenarios import families  # noqa: F401  (imported for registration)
from repro.scenarios.matrix import (
    ALGORITHMS,
    MatrixCell,
    cell_id,
    run_cell,
    run_matrix,
    save_matrix,
    smoke_specs,
)
from repro.scenarios.registry import (
    SCENARIOS,
    ScenarioFamily,
    generate_instance,
    get_family,
    list_families,
    register_scenario,
    resolve,
    resolve_params,
)
from repro.scenarios.spec import ParamSpec, ScenarioSpec, canonical_params, spec_hash

__all__ = [
    "ParamSpec",
    "ScenarioSpec",
    "canonical_params",
    "spec_hash",
    "ScenarioFamily",
    "SCENARIOS",
    "register_scenario",
    "get_family",
    "list_families",
    "resolve",
    "resolve_params",
    "generate_instance",
    "ALGORITHMS",
    "MatrixCell",
    "cell_id",
    "run_cell",
    "run_matrix",
    "save_matrix",
    "smoke_specs",
]
