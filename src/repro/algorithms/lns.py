"""Generic adaptive large neighborhood search (ALNS) engine.

Ropke & Pisinger-style ALNS: at each iteration a (destroy, repair) pair
is drawn by roulette wheel over adaptive weights, applied to a copy-free
working state, and the candidate is accepted by a simulated-annealing
criterion.  Operator weights are refreshed every ``segment_length``
iterations from the scores the operators earned (new global best >
improvement > accepted).

The engine is algorithm-agnostic: SRA supplies the operators, objective
and the *best filter* (the hook that enforces migration schedulability
and the exchange contract before a candidate may become the incumbent
best — the feasibility coupling of DESIGN.md §1.2).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence, TypeVar

import numpy as np

from repro import obs
from repro._validation import check_fraction, check_positive
from repro.cluster import ClusterState
from repro.algorithms.destroy import DestroyOperator
from repro.algorithms.repair import RepairOperator

__all__ = ["AlnsConfig", "AlnsOutcome", "AlnsEngine", "IncumbentChannel"]


class IncumbentChannel(Protocol):
    """Duck type of a cooperative incumbent-exchange endpoint.

    Implemented by :class:`repro.parallel.shm.IncumbentExchange`; the
    engine depends only on this protocol so the algorithms layer stays
    independent of the parallel machinery.  Every ``period`` iterations
    the engine offers its incumbent best and adopts a strictly better
    foreign one.  The channel owner guarantees published incumbents
    passed the same best filter the adopter would apply (all portfolio
    members run one episode's filter), so adoption skips re-filtering.
    """

    period: int

    def offer(
        self, objective: float, assignment: np.ndarray, blocked: np.ndarray
    ) -> bool:
        """Publish; True when the slot was taken over."""
        ...

    def take(
        self, objective: float
    ) -> tuple[float, np.ndarray, np.ndarray] | None:
        """A strictly better foreign incumbent, or None."""
        ...

#: Either operator protocol — ``AlnsEngine._bind`` preserves the kind.
_OpT = TypeVar("_OpT", DestroyOperator, RepairOperator)


@dataclass(frozen=True)
class AlnsConfig:
    """ALNS hyper-parameters.

    Attributes
    ----------
    iterations:
        Destroy/repair rounds.
    time_limit:
        Optional wall-clock cap in seconds (None = iterations only).
    removal_fraction_min / removal_fraction_max:
        Bounds of the per-iteration removal quantity, as a fraction of the
        shard count (quantity is drawn uniformly in between, ≥ 1).
    start_temperature_ratio:
        SA start temperature as a fraction of the initial objective — a
        candidate this much worse is accepted with probability ``e⁻¹``.
    cooling:
        Geometric cooling factor per iteration.
    segment_length:
        Iterations per adaptive-weight segment.
    reaction:
        Weight update smoothing in [0, 1] (1 = replace, 0 = frozen).
    score_best / score_improve / score_accept:
        Operator scores for finding a new global best / improving the
        current / being accepted.
    seed:
        RNG seed.
    n_workers:
        Worker processes available to the surrounding restart/portfolio
        layer (``repro.parallel``).  The ALNS inner loop itself is
        inherently sequential (simulated annealing over one trajectory);
        this knob sizes the pool that restart fan-outs
        (``SRAConfig.restarts``, CLI ``--restarts/--workers``) schedule
        onto.  1 (the default) is today's serial path.
    """

    iterations: int = 2500
    time_limit: float | None = None
    removal_fraction_min: float = 0.05
    removal_fraction_max: float = 0.25
    #: Absolute cap on the removal quantity.  On large instances a 25%
    #: removal is a near-rebuild: slow and unlikely to be accepted; the
    #: cap keeps per-iteration cost bounded so big clusters get many
    #: iterations instead of few huge ones.
    removal_cap: int = 100
    start_temperature_ratio: float = 0.01
    cooling: float = 0.996
    segment_length: int = 100
    reaction: float = 0.4
    score_best: float = 12.0
    score_improve: float = 4.0
    score_accept: float = 1.0
    seed: int = 0
    n_workers: int = 1
    #: Record the incumbent objective after every iteration.  Disable on
    #: long runs where only the final outcome matters.
    collect_history: bool = True
    #: Run destroy/repair inside a ClusterState transaction and roll back
    #: rejected candidates, instead of copying the whole state every
    #: iteration.  Same trajectory either way (the transaction restores
    #: rejected states bitwise); False keeps the copy-based loop as a
    #: reference implementation.
    delta_evaluation: bool = True
    #: Largest machine count for which regret-2 re-partitions the full
    #: active score rows after every insertion; above it the pruned
    #: top-list path runs.  Both paths yield bitwise-identical
    #: trajectories (see repro.algorithms.repair), so this is purely a
    #: performance crossover.  Operators exposing a ``bind`` hook
    #: (``Regret2Insertion``) receive this config at engine construction.
    regret2_exact_max: int = 128

    def __post_init__(self) -> None:
        check_positive("iterations", self.iterations)
        if self.time_limit is not None:
            check_positive("time_limit", self.time_limit)
        check_fraction("removal_fraction_min", self.removal_fraction_min)
        check_fraction("removal_fraction_max", self.removal_fraction_max)
        if self.removal_fraction_min > self.removal_fraction_max:
            raise ValueError("removal_fraction_min must be <= removal_fraction_max")
        check_positive("removal_cap", self.removal_cap)
        check_positive("start_temperature_ratio", self.start_temperature_ratio)
        if not 0.0 < self.cooling <= 1.0:
            raise ValueError(f"cooling must be in (0, 1], got {self.cooling}")
        check_positive("segment_length", self.segment_length)
        check_fraction("reaction", self.reaction)
        check_positive("n_workers", self.n_workers)
        check_positive("regret2_exact_max", self.regret2_exact_max)


@dataclass
class AlnsOutcome:
    """What a search run produced.

    ``best_assignment`` is None when no candidate ever passed the best
    filter (e.g. the vacancy contract was unsatisfiable).
    """

    best_assignment: np.ndarray | None
    best_objective: float
    iterations: int
    history: list[float]
    operator_weights: dict[str, float]
    accepted: int
    rejected_by_filter: int
    #: Cooperative-mode traffic (zero in blind mode): incumbents this
    #: run published to / adopted from the exchange channel.
    exchange_published: int = 0
    exchange_adopted: int = 0


class AlnsEngine:
    """Reusable ALNS driver (see module docstring)."""

    def __init__(
        self,
        config: AlnsConfig,
        destroy_ops: Sequence[DestroyOperator],
        repair_ops: Sequence[RepairOperator],
    ) -> None:
        if not destroy_ops or not repair_ops:
            raise ValueError("need at least one destroy and one repair operator")
        self.config = config
        # Operators exposing a ``bind(config)`` hook are resolved against
        # this engine's config (e.g. Regret2Insertion picks up
        # regret2_exact_max); plain callables pass through untouched.
        self.destroy_ops = [self._bind(op) for op in destroy_ops]
        self.repair_ops = [self._bind(op) for op in repair_ops]

    def _bind(self, op: _OpT) -> _OpT:
        bind = getattr(op, "bind", None)
        if bind is None:
            return op
        bound: _OpT = bind(self.config)
        return bound

    def run(
        self,
        state: ClusterState,
        objective: Callable[[ClusterState], float],
        *,
        best_filter: Callable[[ClusterState], bool] | None = None,
        initial_is_valid_best: bool = True,
        exchange: IncumbentChannel | None = None,
    ) -> AlnsOutcome:
        """Search from *state* (not mutated).

        Parameters
        ----------
        objective:
            Callable scoring a state (lower better).  Penalty terms may
            make transiently infeasible states comparable.
        best_filter:
            Called when a candidate would become the new global best;
            returning False vetoes it (it may still be accepted as the
            *current* state, preserving search mobility).
        initial_is_valid_best:
            Whether the starting assignment is an acceptable answer
            (False when e.g. the vacancy contract is not yet satisfied).
        exchange:
            Optional cooperative incumbent channel.  When given, every
            ``exchange.period`` iterations the engine publishes its
            incumbent best and adopts a strictly better foreign one
            (resetting the current state to it).  ``None`` (blind mode)
            leaves the trajectory bitwise-identical to an engine without
            the hook.  Adoption makes the trajectory depend on the
            *timing* of other portfolio members, so cooperative runs
            are only reproducible run-to-run in the serial portfolio;
            exchange events are traced for auditing.
        """
        cfg = self.config
        tracer = obs.current().tracer
        metrics = obs.current().metrics
        trace_on = tracer.enabled
        rng = np.random.default_rng(cfg.seed)
        current = state.copy()
        cur_obj = float(objective(current))

        best_assignment: np.ndarray | None = None
        best_obj = math.inf
        if initial_is_valid_best and (best_filter is None or best_filter(current)):
            best_assignment = current.assignment
            best_obj = cur_obj

        n = state.num_shards
        q_min = max(1, min(int(cfg.removal_fraction_min * n), cfg.removal_cap))
        q_max = max(q_min, min(int(cfg.removal_fraction_max * n), cfg.removal_cap))

        d_weights = np.ones(len(self.destroy_ops))
        r_weights = np.ones(len(self.repair_ops))
        d_scores = np.zeros_like(d_weights)
        r_scores = np.zeros_like(r_weights)
        d_uses = np.zeros_like(d_weights)
        r_uses = np.zeros_like(r_weights)

        temperature = max(cur_obj, 1e-6) * cfg.start_temperature_ratio
        history: list[float] = [cur_obj]
        accepted = 0
        vetoed = 0
        started = time.perf_counter()  # repro: allow-wall-clock (runtime reporting)
        it = 0
        use_delta = cfg.delta_evaluation

        published = 0
        adopted = 0
        with tracer.span(
            "alns.run",
            iterations=cfg.iterations,
            seed=cfg.seed,
            initial_objective=cur_obj,
        ) as run_span:
            try:
                (
                    it, accepted, vetoed, best_assignment, best_obj, cur_obj,
                    published, adopted,
                ) = self._search(
                    cfg, rng, current, objective, best_filter,
                    best_assignment, best_obj, cur_obj, temperature,
                    q_min, q_max, d_weights, r_weights, d_scores, r_scores,
                    d_uses, r_uses, history, started, use_delta,
                    tracer, trace_on, exchange,
                )
            finally:
                run_span.set("iterations_run", it)
                run_span.set("accepted", accepted)
                run_span.set("rejected_by_filter", vetoed)
                if math.isfinite(best_obj):
                    run_span.set("best_objective", best_obj)
                if exchange is not None:
                    run_span.set("exchange_published", published)
                    run_span.set("exchange_adopted", adopted)

        metrics.counter("alns.iterations").inc(it)
        metrics.counter("alns.accepted").inc(accepted)
        metrics.counter("alns.rejected_by_filter").inc(vetoed)
        if exchange is not None:
            metrics.counter("alns.exchange.published").inc(published)
            metrics.counter("alns.exchange.adopted").inc(adopted)
        if math.isfinite(best_obj):
            metrics.gauge("alns.best_objective").set(best_obj)

        weights = {
            f"destroy:{op.__name__}": float(w)
            for op, w in zip(self.destroy_ops, d_weights, strict=True)
        }
        weights.update(
            {f"repair:{op.__name__}": float(w) for op, w in zip(self.repair_ops, r_weights, strict=True)}
        )
        return AlnsOutcome(
            best_assignment=best_assignment,
            best_objective=best_obj,
            iterations=it,
            history=history,
            operator_weights=weights,
            accepted=accepted,
            rejected_by_filter=vetoed,
            exchange_published=published,
            exchange_adopted=adopted,
        )

    def _search(
        self,
        cfg: AlnsConfig,
        rng: np.random.Generator,
        current: ClusterState,
        objective: Callable[[ClusterState], float],
        best_filter: Callable[[ClusterState], bool] | None,
        best_assignment: np.ndarray | None,
        best_obj: float,
        cur_obj: float,
        temperature: float,
        q_min: int,
        q_max: int,
        d_weights: np.ndarray,
        r_weights: np.ndarray,
        d_scores: np.ndarray,
        r_scores: np.ndarray,
        d_uses: np.ndarray,
        r_uses: np.ndarray,
        history: list[float],
        started: float,
        use_delta: bool,
        tracer: obs.Tracer,
        trace_on: bool,
        exchange: IncumbentChannel | None = None,
    ) -> tuple[int, int, int, np.ndarray | None, float, float, int, int]:
        """The inner loop of :meth:`run` (split out so the run span wraps it).

        Mutates the weight/score arrays and *history* in place; RNG
        consumption is identical with tracing on or off (the trajectory
        bitwise-identity contract of docs/ARCHITECTURE.md).  With
        *exchange* set, incumbents additionally carry the blocked-mask
        snapshot they were recorded under — the exchange-swap operator
        re-designates return machines during search, so an adopted
        assignment is only consistent together with its publisher's
        blocked set.
        """
        accepted = 0
        vetoed = 0
        it = 0
        published = 0
        adopted = 0
        # Blocked mask travelling with the incumbent best (cooperative
        # mode only; never touched in blind mode so that path stays
        # bitwise-identical to the hook-free engine).
        best_blocked: np.ndarray | None = None
        if exchange is not None and best_assignment is not None:
            best_blocked = current.blocked_mask.copy()

        for it in range(1, cfg.iterations + 1):
            # repro: allow-wall-clock (real-time search budget)
            if cfg.time_limit is not None and time.perf_counter() - started > cfg.time_limit:
                break
            di = _roulette(rng, d_weights)
            ri = _roulette(rng, r_weights)
            d_uses[di] += 1
            r_uses[ri] += 1

            q = int(rng.integers(q_min, q_max + 1))
            if use_delta:
                # Mutate the incumbent inside a transaction; a rejected
                # candidate is rolled back bitwise instead of being a
                # throwaway copy of the whole state.
                candidate = current
                candidate.begin()
                try:
                    removed = self.destroy_ops[di](candidate, rng, q)
                    self.repair_ops[ri](candidate, rng, removed)
                    cand_obj = float(objective(candidate))
                except BaseException:
                    candidate.rollback()
                    raise
            else:
                candidate = current.copy()
                removed = self.destroy_ops[di](candidate, rng, q)
                self.repair_ops[ri](candidate, rng, removed)
                cand_obj = float(objective(candidate))

            score = 0.0
            new_best = False
            was_vetoed = False
            if cand_obj < best_obj - 1e-12:
                if best_filter is None or best_filter(candidate):
                    best_assignment = candidate.assignment
                    best_obj = cand_obj
                    score = cfg.score_best
                    new_best = True
                    if exchange is not None:
                        # Snapshot now: a rejected candidate's mask is
                        # rolled back, but the recorded best keeps the
                        # designee set it was feasible under.
                        best_blocked = candidate.blocked_mask.copy()
                else:
                    vetoed += 1
                    was_vetoed = True
            if score == 0.0 and cand_obj < cur_obj - 1e-12:
                score = cfg.score_improve

            accept = cand_obj <= cur_obj or rng.random() < math.exp(
                -(cand_obj - cur_obj) / max(temperature, 1e-12)
            )
            if accept:
                if use_delta:
                    current.commit()
                else:
                    current = candidate
                cur_obj = cand_obj
                accepted += 1
                if score == 0.0:
                    score = cfg.score_accept
            elif use_delta:
                current.rollback()
            d_scores[di] += score
            r_scores[ri] += score

            if trace_on:
                tracer.event(
                    "alns.iter",
                    it=it,
                    destroy=self.destroy_ops[di].__name__,
                    repair=self.repair_ops[ri].__name__,
                    q=q,
                    objective=cand_obj,
                    current=cur_obj,
                    accepted=accept,
                    new_best=new_best,
                    vetoed=was_vetoed,
                )

            temperature *= cfg.cooling
            if cfg.collect_history:
                history.append(cur_obj)

            if it % cfg.segment_length == 0:
                # In-place so the caller's view of the weights stays live.
                d_weights[:] = _update_weights(d_weights, d_scores, d_uses, cfg.reaction)
                r_weights[:] = _update_weights(r_weights, r_scores, r_uses, cfg.reaction)
                d_scores[:] = 0
                r_scores[:] = 0
                d_uses[:] = 0
                r_uses[:] = 0
                if trace_on:
                    tracer.event(
                        "alns.weights",
                        it=it,
                        destroy={
                            op.__name__: float(w)
                            for op, w in zip(self.destroy_ops, d_weights, strict=True)
                        },
                        repair={
                            op.__name__: float(w)
                            for op, w in zip(self.repair_ops, r_weights, strict=True)
                        },
                    )

            if exchange is not None and it % exchange.period == 0:
                if (
                    best_assignment is not None
                    and best_blocked is not None
                    and exchange.offer(best_obj, best_assignment, best_blocked)
                ):
                    published += 1
                    if trace_on:
                        tracer.event(
                            "alns.exchange.publish", it=it, objective=best_obj
                        )
                foreign = exchange.take(best_obj)
                if foreign is not None:
                    adopt_obj, adopt_assign, adopt_blocked = foreign
                    # Reconcile the designated-return (blocked) set before
                    # swapping assignments: locally blocked machines may
                    # host shards under the foreign assignment, and the
                    # foreign designees are vacant under it by the
                    # publisher's invariant.
                    local_blocked = current.blocked_mask
                    for mach in np.flatnonzero(local_blocked & ~adopt_blocked).tolist():
                        current.unblock_machine(int(mach))
                    to_block = np.flatnonzero(adopt_blocked & ~local_blocked)
                    current.apply_assignment(adopt_assign)
                    for mach in to_block.tolist():
                        current.block_machine(int(mach))
                    cur_obj = float(objective(current))
                    best_assignment = adopt_assign
                    best_obj = cur_obj
                    best_blocked = adopt_blocked
                    adopted += 1
                    if trace_on:
                        tracer.event(
                            "alns.exchange.adopt",
                            it=it,
                            objective=cur_obj,
                            offered=adopt_obj,
                        )

        return it, accepted, vetoed, best_assignment, best_obj, cur_obj, published, adopted


def _roulette(rng: np.random.Generator, weights: np.ndarray) -> int:
    # Draw one uniform and walk the cumulative mass in Python — the
    # portfolios have a handful of operators, so this beats the generic
    # ``rng.choice(p=...)`` machinery by an order of magnitude while
    # staying deterministic per seed (one ``random()`` call per draw).
    r = rng.random() * weights.sum()
    acc = 0.0
    for i, w in enumerate(weights.tolist()):
        acc += w
        if r < acc:
            return i
    return len(weights) - 1


def _update_weights(
    weights: np.ndarray, scores: np.ndarray, uses: np.ndarray, reaction: float
) -> np.ndarray:
    observed = np.divide(scores, np.maximum(uses, 1.0))
    new = (1.0 - reaction) * weights + reaction * observed
    floored: np.ndarray = np.maximum(new, 0.05)  # keep every operator alive
    return floored
