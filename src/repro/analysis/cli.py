"""``repro lint`` / ``python -m repro.analysis`` — the lint front end.

Runs the registered rule pack over the target paths (default:
``src/repro``), applies the committed baseline ratchet and reports:

* **new** findings — violations beyond the grandfathered counts; their
  presence makes the exit code 1;
* **grandfathered** findings — debt the baseline admits; always listed
  so it stays visible, never fatal;
* **stale** baseline groups — debt that has been paid down; the hint to
  run ``--update-baseline`` and lock the improvement in.

``--no-baseline`` reports every finding as new (the nightly job uses it
to keep the full debt inventory visible as an artifact); ``--rules``
restricts the pack; ``--format json`` emits a machine-readable report.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis import baseline as baseline_mod
from repro.analysis import rules as _rules  # noqa: F401  (registers the pack)
from repro.analysis.engine import all_rules, lint_paths

__all__ = ["add_arguments", "run", "main", "find_root"]

DEFAULT_BASELINE = "lint-baseline.json"


def find_root(start: Path) -> Path:
    """Nearest ancestor of *start* holding a pyproject.toml (else *start*)."""
    start = start.resolve()
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return start


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src/repro under the root)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repo root for relative paths and the default baseline "
        "(default: auto-detected via pyproject.toml)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=f"ratchet baseline (default: <root>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: every finding is reported as new",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to the current findings and exit 0",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="report format",
    )


def run(args: argparse.Namespace) -> int:
    root = find_root(Path(args.root) if args.root else Path.cwd())
    paths = (
        [Path(p) for p in args.paths]
        if args.paths
        else [root / "src" / "repro"]
    )
    selected = None
    if args.rules:
        wanted = {r.strip().upper() for r in args.rules.split(",") if r.strip()}
        selected = [r for r in all_rules() if r.rule_id in wanted]
        unknown = wanted - {r.rule_id for r in selected}
        if unknown:
            print(f"lint: unknown rules {sorted(unknown)}", file=sys.stderr)
            return 2

    findings = lint_paths(paths, root, rules=selected)
    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    )

    if args.update_baseline:
        baseline_mod.save(findings, baseline_path)
        print(
            f"lint: baseline updated with {len(findings)} finding(s) -> "
            f"{baseline_path}"
        )
        return 0

    groups = {} if args.no_baseline else baseline_mod.load(baseline_path)
    result = baseline_mod.compare(findings, groups)

    if args.output_format == "json":
        print(
            json.dumps(
                {
                    "new": [f.to_dict() for f in result.new],
                    "grandfathered": [f.to_dict() for f in result.grandfathered],
                    "stale": result.stale,
                },
                indent=2,
            )
        )
        return 0 if result.ok else 1

    for f in result.new:
        print(f.format())
    for f in result.grandfathered:
        print(f"{f.format()}  [baseline]")
    if result.stale:
        freed = sum(result.stale.values())
        print(
            f"lint: {freed} baselined finding(s) no longer occur — run "
            "`python -m repro.analysis --update-baseline` to lock that in"
        )
    if result.new:
        print(
            f"lint: {len(result.new)} new finding(s), "
            f"{len(result.grandfathered)} grandfathered"
        )
        return 1
    print(
        f"lint: ok ({len(result.grandfathered)} grandfathered finding(s), "
        f"{len(all_rules() if selected is None else selected)} rule(s))"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST invariant linter for determinism, RNG and "
        "transaction discipline (rules REP001-REP005)",
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))
