"""Tests for non-homogeneous arrival traces and their use in the DES."""

import numpy as np
import pytest

from repro.cluster import ClusterState, Machine, Shard
from repro.simulate import (
    ServingConfig,
    WorkProfile,
    diurnal_rate,
    nonhomogeneous_arrivals,
    simulate_serving,
)


class TestDiurnalRate:
    def test_peak_and_trough(self):
        rate = diurnal_rate(10.0, peak_ratio=3.0, period=100.0, peak_at=0.5)
        assert rate(50.0) == pytest.approx(30.0)  # peak
        assert rate(0.0) == pytest.approx(10.0)  # trough
        assert rate.max_rate == pytest.approx(30.0)

    def test_periodicity(self):
        rate = diurnal_rate(5.0, period=10.0)
        assert rate(3.0) == pytest.approx(rate(13.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            diurnal_rate(0.0)
        with pytest.raises(ValueError, match="peak_ratio"):
            diurnal_rate(1.0, peak_ratio=0.5)


class TestThinning:
    def test_rate_shape_recovered(self):
        rate = diurnal_rate(50.0, peak_ratio=4.0, period=100.0, peak_at=0.5)
        times = nonhomogeneous_arrivals(rate, 100.0, seed=1)
        peak_window = np.sum((times > 40) & (times < 60))
        trough_window = np.sum(times < 20) + np.sum(times > 80)
        assert peak_window > trough_window  # more arrivals around the peak

    def test_total_count_matches_integral(self):
        rate = diurnal_rate(100.0, peak_ratio=2.0, period=50.0)
        times = nonhomogeneous_arrivals(rate, 50.0, seed=2)
        # integral of rate over one period = base*(1+(ratio-1)/2)*T = 7500
        assert times.size == pytest.approx(7500, rel=0.1)

    def test_sorted_and_in_range(self):
        rate = diurnal_rate(20.0, period=30.0)
        times = nonhomogeneous_arrivals(rate, 30.0, seed=3)
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 0 and times.max() < 30.0

    def test_deterministic(self):
        rate = diurnal_rate(20.0, period=30.0)
        a = nonhomogeneous_arrivals(rate, 30.0, seed=4)
        b = nonhomogeneous_arrivals(rate, 30.0, seed=4)
        np.testing.assert_array_equal(a, b)

    def test_envelope_violation_detected(self):
        times_fn = lambda t: 100.0  # noqa: E731
        with pytest.raises(ValueError, match="exceeds max_rate"):
            nonhomogeneous_arrivals(times_fn, 10.0, max_rate=10.0, seed=0)

    def test_max_rate_required(self):
        with pytest.raises(ValueError, match="max_rate is required"):
            nonhomogeneous_arrivals(lambda t: 1.0, 10.0)


class TestDesWithTrace:
    def _state(self):
        machines = Machine.homogeneous(2, {"cpu": 4.0, "ram": 10.0, "disk": 10.0})
        shards = Shard.uniform(2, {"cpu": 1.0, "ram": 1.0, "disk": 1.0})
        return ClusterState(machines, shards, [0, 1])

    def test_explicit_arrivals_used(self):
        state = self._state()
        profile = WorkProfile(np.full((2, 2), 1000.0))
        times = np.array([1.0, 2.0, 3.0])
        report = simulate_serving(
            state, profile, config=ServingConfig(duration=10.0), arrival_times=times
        )
        assert report.queries_completed == 3

    def test_capture_raw(self):
        state = self._state()
        profile = WorkProfile(np.full((2, 2), 1000.0))
        report = simulate_serving(
            state,
            profile,
            config=ServingConfig(arrival_rate=10.0, duration=10.0, seed=1),
            capture_raw=True,
        )
        assert report.raw_arrivals is not None
        assert report.raw_latencies is not None
        assert report.raw_arrivals.shape == report.raw_latencies.shape
        assert report.latency.mean == pytest.approx(report.raw_latencies.mean())

    def test_negative_arrivals_rejected(self):
        state = self._state()
        profile = WorkProfile(np.full((2, 2), 1000.0))
        with pytest.raises(ValueError, match="non-negative"):
            simulate_serving(state, profile, arrival_times=np.array([-1.0]))

    def test_peak_hour_has_worse_latency(self):
        state = self._state()
        profile = WorkProfile(np.full((2, 2), 4000.0))
        rate = diurnal_rate(30.0, peak_ratio=4.0, period=60.0, peak_at=0.5)
        times = nonhomogeneous_arrivals(rate, 60.0, seed=5)
        report = simulate_serving(
            state,
            profile,
            config=ServingConfig(duration=60.0, postings_per_cpu_second=1e5, seed=5),
            arrival_times=times,
            capture_raw=True,
        )
        peak_mask = (report.raw_arrivals > 20) & (report.raw_arrivals < 40)
        off_mask = ~peak_mask
        assert report.raw_latencies[peak_mask].mean() > report.raw_latencies[off_mask].mean()
