"""Integration tests for the public facade (ResourceExchangeRebalancer)."""

import numpy as np
import pytest

from repro import (
    GreedyRebalancer,
    RebalanceReport,
    ResourceExchangeRebalancer,
    SRA,
    SRAConfig,
)
from repro.algorithms import AlnsConfig
from repro.workloads import SyntheticConfig, generate


def quick_sra(iterations=300, seed=0):
    return SRA(SRAConfig(alns=AlnsConfig(iterations=iterations, seed=seed)))


@pytest.fixture(scope="module")
def state():
    return generate(
        SyntheticConfig(
            num_machines=15,
            shards_per_machine=6,
            target_utilization=0.8,
            placement_skew=0.55,
            max_shard_fraction=0.35,
            seed=8,
        )
    )


class TestFacade:
    def test_default_run_improves_balance(self, state):
        report = ResourceExchangeRebalancer(quick_sra()).run(state)
        assert isinstance(report, RebalanceReport)
        assert report.feasible
        assert report.after.peak_utilization <= report.before.peak_utilization + 1e-9
        assert report.peak_improvement >= 0

    def test_exchange_contract_executed(self, state):
        report = ResourceExchangeRebalancer(
            quick_sra(500), exchange_machines=2
        ).run(state)
        assert report.feasible
        assert report.borrowed == 2
        assert report.returned == 2
        assert 0 <= report.exchanged <= 2

    def test_original_state_untouched(self, state):
        before = state.assignment
        ResourceExchangeRebalancer(quick_sra()).run(state)
        np.testing.assert_array_equal(state.assignment, before)

    def test_custom_algorithm(self, state):
        report = ResourceExchangeRebalancer(GreedyRebalancer()).run(state)
        assert report.result.algorithm == "greedy"

    def test_format_table_contains_key_fields(self, state):
        report = ResourceExchangeRebalancer(quick_sra()).run(state)
        text = report.format_table()
        for needle in ("peak before", "peak after", "moves", "borrowed", "returned"):
            assert needle in text

    def test_capacity_scaled_loaners(self, state):
        big = ResourceExchangeRebalancer(
            quick_sra(400), exchange_machines=1, exchange_capacity_scale=2.0
        ).run(state)
        assert big.feasible

    def test_required_returns_less_than_borrowed(self, state):
        # Borrow 2, return only 1 -> net +1 machine stays (cluster grows).
        report = ResourceExchangeRebalancer(
            quick_sra(400), exchange_machines=2, required_returns=1
        ).run(state)
        assert report.feasible
        assert report.returned == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="exchange_machines"):
            ResourceExchangeRebalancer(exchange_machines=-1)
        with pytest.raises(ValueError, match="required_returns"):
            ResourceExchangeRebalancer(required_returns=-1)

    def test_migration_summary_consistent(self, state):
        report = ResourceExchangeRebalancer(quick_sra()).run(state)
        changed = int(
            np.sum(report.result.target_assignment != np.concatenate(
                [state.assignment]
            ))
        )
        assert report.migration.num_moves == changed
