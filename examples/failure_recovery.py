#!/usr/bin/env python3
"""Machine failure in a hot cluster: why spare capacity must come from
somewhere.

Fails the most-loaded machine of an 85%-tight cluster and attempts
recovery with 0, 1 and 2 borrowed exchange machines.  Without spares the
surviving fleet simply cannot absorb the orphaned load (utilization
would exceed 100%); one borrowed machine makes recovery feasible and a
follow-up SRA rebalance flattens the resulting hotspot.

Run:  python examples/failure_recovery.py
"""

import numpy as np

from repro.algorithms import AlnsConfig, SRAConfig
from repro.cluster import ExchangeLedger
from repro.experiments.harness import print_table
from repro.recovery import RecoveryPlanner, fail_machine
from repro.workloads import SyntheticConfig, generate, make_exchange_machines


def main() -> None:
    state = generate(
        SyntheticConfig(
            num_machines=16,
            shards_per_machine=6,
            target_utilization=0.85,
            placement_skew=0.3,
            max_shard_fraction=0.35,
            seed=0,
        )
    )
    victim = int(np.argmax(state.machine_peak_utilization()))
    print(
        f"cluster: {state.num_machines} machines at "
        f"{state.mean_utilization().max():.0%} tightness; "
        f"failing machine {victim} "
        f"({len(state.machine_shards(victim))} shards orphaned)"
    )

    rows = []
    for budget in (0, 1, 2):
        grown, ledger = ExchangeLedger.borrow(
            state, make_exchange_machines(state, budget), required_returns=0
        )
        degraded, orphans = fail_machine(grown, victim)
        planner = RecoveryPlanner(
            rebalance_after=True,
            sra_config=SRAConfig(alns=AlnsConfig(iterations=600, seed=1)),
        )
        result = planner.recover(degraded, orphans, ledger)
        rows.append(
            {
                "spare_machines": budget,
                "feasible": result.feasible,
                "peak_after": result.peak_after,
                "rebuild_units": result.rebuild_bytes,
                "rebalance_moves": result.rebalance.num_moves if result.rebalance else 0,
            }
        )
    print_table(rows, title="recovery outcome vs borrowed spare machines")
    print(
        "\nNote: peak_after > 1.0 means the fleet is overloaded — queries "
        "would be dropped or queued unboundedly until capacity arrives."
    )


if __name__ == "__main__":
    main()
