"""E12 — failure recovery with exchange machines as spare capacity.

Shape claims: recovery of a tight cluster fails (or overloads) without
borrowed machines and succeeds with them; recovered peak decreases with
the budget.
"""

from collections import defaultdict

from repro.experiments import REGISTRY, is_full_run


def test_e12_recovery(benchmark, save_table):
    rows = benchmark.pedantic(
        REGISTRY["e12"], kwargs={"fast": not is_full_run()}, rounds=1, iterations=1
    )
    save_table("e12", rows, "E12 — machine-failure recovery vs exchange budget")

    by_instance = defaultdict(dict)
    for r in rows:
        by_instance[r["instance"]][r["budget_B"]] = r

    any_b0_failure = False
    for instance, budgets in by_instance.items():
        assert budgets[0]["orphans"] > 0, instance
        if not budgets[0]["feasible"]:
            any_b0_failure = True
        biggest = max(budgets)
        assert budgets[biggest]["feasible"], f"{instance}: B={biggest} still infeasible"
        assert budgets[biggest]["peak_after"] <= 1.0
        # More spare capacity never makes the recovered peak worse.
        feas = {b: r for b, r in budgets.items() if r["feasible"]}
        if len(feas) >= 2:
            bs = sorted(feas)
            assert feas[bs[-1]]["peak_after"] <= feas[bs[0]]["peak_after"] + 0.02
    assert any_b0_failure, "no instance actually needed spare capacity"
