"""Round-trip tests for snapshot serialization."""

import numpy as np
import pytest

from repro.cluster import ClusterState, Machine, Shard, from_dict, load_json, save_json, to_dict


def make_state():
    machines = [
        Machine(id=0, capacity=np.array([4.0, 8.0, 100.0]), cls="std"),
        Machine(id=1, capacity=np.array([8.0, 16.0, 200.0]), cls="big", exchange=True),
    ]
    shards = [
        Shard(id=0, demand=np.array([1.0, 2.0, 30.0]), size_bytes=5.0),
        Shard(id=1, demand=np.array([0.5, 1.0, 10.0]), replica_of=0),
        Shard(id=2, demand=np.array([2.0, 2.0, 20.0])),
    ]
    return ClusterState(machines, shards, [0, 1, 0])


class TestRoundTrip:
    def test_dict_roundtrip_preserves_everything(self):
        state = make_state()
        clone = from_dict(to_dict(state))
        assert clone.num_machines == state.num_machines
        assert clone.num_shards == state.num_shards
        np.testing.assert_allclose(clone.capacity, state.capacity)
        np.testing.assert_allclose(clone.demand, state.demand)
        np.testing.assert_allclose(clone.sizes, state.sizes)
        np.testing.assert_array_equal(clone.assignment, state.assignment)
        np.testing.assert_allclose(clone.loads, state.loads)
        assert clone.machines[1].exchange
        assert clone.machines[1].cls == "big"
        assert clone.shards[1].replica_of == 0

    def test_json_file_roundtrip(self, tmp_path):
        state = make_state()
        path = tmp_path / "snap.json"
        save_json(state, path)
        clone = load_json(path)
        np.testing.assert_array_equal(clone.assignment, state.assignment)
        np.testing.assert_allclose(clone.loads, state.loads)

    def test_unknown_version_rejected(self):
        data = to_dict(make_state())
        data["version"] = 99
        with pytest.raises(ValueError, match="version"):
            from_dict(data)

    def test_partial_assignment_roundtrip(self):
        machines = Machine.homogeneous(2, 10.0)
        shards = Shard.uniform(2, 1.0)
        state = ClusterState(machines, shards, [0, -1])
        clone = from_dict(to_dict(state))
        assert clone.machine_of(1) == -1
