#!/usr/bin/env python3
"""End-to-end: a real (small) search engine, imbalance, and tail latency.

This example exercises the whole stack the paper's motivation describes:

1. build a corpus and a sharded inverted index (repro.engine);
2. *measure* per-shard resource demands by executing real BM25 queries;
3. place the shards on machines with a skewed placement;
4. simulate Poisson query serving and record latency percentiles;
5. rebalance with SRA + 2 exchange machines;
6. simulate again and compare — the p99 collapses because fan-out
   queries are as slow as their slowest (hottest) machine.

Run:  python examples/search_latency.py
"""

import numpy as np

from repro.cluster import ClusterState, Machine
from repro.engine import CorpusConfig, SearchBroker, ShardedIndex, generate_corpus, generate_queries
from repro.experiments.common import run_sra_with_exchange
from repro.simulate import ServingConfig, WorkProfile, simulate_serving

QPS = 60.0
POSTINGS_PER_CPU_SECOND = 2e5


def main() -> None:
    # --- 1. the engine --------------------------------------------------
    cfg = CorpusConfig(num_docs=4000, vocab_size=4000, seed=3)
    docs = generate_corpus(cfg)
    index = ShardedIndex.build(docs, num_shards=24)
    queries = generate_queries(cfg, 150)
    print(f"indexed {index.num_docs} docs into {index.num_shards} shards")

    broker = SearchBroker(index)
    demo = broker.search(queries[0], k=5)
    print(f"sample query {queries[0].terms} -> top doc {demo.results[0].doc_id} "
          f"(score {demo.results[0].score:.3f}), {demo.total_work} postings scored")
    print()

    # --- 2. measured shard demands --------------------------------------
    profile = WorkProfile.measure(index, queries)
    shards = index.to_cluster_shards(
        queries, queries_per_second=QPS, postings_per_cpu_second=POSTINGS_PER_CPU_SECOND
    )
    share = profile.shard_load_share()
    print(f"hottest shard carries {100 * share.max():.1f}% of query work "
          f"(coldest {100 * share.min():.1f}%)")

    # --- 3. a skewed placement ------------------------------------------
    num_machines = 6
    demand = np.stack([s.demand for s in shards])
    capacity = demand.sum(axis=0) / (num_machines * 0.75)
    machines = Machine.homogeneous(
        num_machines, {n: float(c) for n, c in zip(shards[0].schema.names, capacity, strict=True)}
    )
    rng = np.random.default_rng(7)
    assign = rng.integers(0, num_machines, size=len(shards))
    state = ClusterState(machines, shards, assign)
    if not state.is_within_capacity():
        # Make the random start feasible by draining overloads greedily.
        from repro.algorithms import GreedyRebalancer

        state.apply_assignment(
            GreedyRebalancer().rebalance(state).target_assignment
        )
    print(f"initial peak utilization: {state.peak_utilization():.3f}")
    print()

    # --- 4/5/6. simulate, rebalance, simulate ---------------------------
    serving = ServingConfig(
        arrival_rate=QPS, duration=40.0,
        postings_per_cpu_second=POSTINGS_PER_CPU_SECOND, seed=11,
    )
    before = simulate_serving(state, profile, config=serving)

    result, grown, _ = run_sra_with_exchange(state, 2, iterations=800, seed=1)
    after_state = grown.copy()
    after_state.apply_assignment(result.target_assignment)
    after = simulate_serving(after_state, profile, list(range(len(shards))), serving)

    print(f"{'':12} {'p50':>9} {'p95':>9} {'p99':>9} {'mean':>9}")
    for label, rep in (("before", before), ("after SRA", after)):
        lat = rep.latency
        print(f"{label:12} {1e3*lat.p50:8.1f}ms {1e3*lat.p95:8.1f}ms "
              f"{1e3*lat.p99:8.1f}ms {1e3*lat.mean:8.1f}ms")
    print()
    print(f"peak utilization {state.peak_utilization():.3f} -> "
          f"{after_state.peak_utilization():.3f}; "
          f"p99 improved {before.latency.p99 / max(after.latency.p99, 1e-9):.1f}x "
          f"with {result.num_moves} shard moves")


if __name__ == "__main__":
    main()
