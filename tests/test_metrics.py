"""Tests for imbalance and migration metrics."""

import numpy as np
import pytest

from repro.cluster import ClusterState, Machine, Shard
from repro.metrics import (
    coefficient_of_variation,
    imbalance_ratio,
    imbalance_report,
    jain_index,
    summarize_plan,
)
from repro.migration import StagingPlanner


class TestScalarMetrics:
    def test_cv_constant_is_zero(self):
        assert coefficient_of_variation(np.array([2.0, 2.0, 2.0])) == 0.0

    def test_cv_increases_with_spread(self):
        a = coefficient_of_variation(np.array([1.0, 1.0, 1.0, 1.0]))
        b = coefficient_of_variation(np.array([0.1, 0.1, 0.1, 3.7]))
        assert b > a

    def test_cv_zero_mean(self):
        assert coefficient_of_variation(np.zeros(3)) == 0.0

    def test_jain_perfectly_fair(self):
        assert jain_index(np.array([1.0, 1.0, 1.0])) == pytest.approx(1.0)

    def test_jain_worst_case(self):
        # All load on one of n machines -> 1/n.
        assert jain_index(np.array([1.0, 0.0, 0.0, 0.0])) == pytest.approx(0.25)

    def test_jain_zero_vector(self):
        assert jain_index(np.zeros(4)) == 1.0

    def test_imbalance_ratio(self):
        assert imbalance_ratio(np.array([1.0, 1.0])) == 1.0
        assert imbalance_ratio(np.array([3.0, 1.0])) == pytest.approx(1.5)

    @pytest.mark.parametrize("fn", [coefficient_of_variation, jain_index, imbalance_ratio])
    def test_empty_rejected(self, fn):
        with pytest.raises(ValueError, match="non-empty"):
            fn(np.array([]))


class TestImbalanceReport:
    def test_report_on_known_state(self):
        machines = Machine.homogeneous(4, 10.0)
        shards = Shard.uniform(4, 2.0)
        state = ClusterState(machines, shards, [0, 0, 1, 2])
        report = imbalance_report(state)
        assert report.peak_utilization == pytest.approx(0.4)
        assert report.mean_peak_utilization == pytest.approx(0.2)
        assert report.ratio == pytest.approx(2.0)
        assert report.vacant_machines == 1
        assert report.overloaded_machines == 0
        assert set(report.row()) == {
            "peak", "mean", "cv", "jain", "ratio", "overloaded", "vacant"
        }

    def test_balanced_cluster_is_fair(self):
        machines = Machine.homogeneous(4, 10.0)
        shards = Shard.uniform(4, 2.0)
        state = ClusterState(machines, shards, [0, 1, 2, 3])
        report = imbalance_report(state)
        assert report.jain == pytest.approx(1.0)
        assert report.cv == 0.0


class TestMigrationSummary:
    def test_summarize_plan(self):
        machines = Machine.homogeneous(3, 10.0)
        shards = [Shard(id=j, demand=np.ones(3), size_bytes=100.0) for j in range(3)]
        state = ClusterState(machines, shards, [0, 0, 0])
        plan = StagingPlanner().plan(state, np.array([0, 1, 2]))
        summary = summarize_plan(plan, state.num_machines)
        assert summary.num_moves == 2
        assert summary.total_bytes == 200.0
        assert summary.feasible and summary.direct_feasible
        assert summary.makespan_seconds >= 0
        assert set(summary.row()) == {
            "moves", "hops", "waves", "bytes", "makespan_s", "direct", "feasible"
        }
