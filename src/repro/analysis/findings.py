"""The unit of linter output: one :class:`Finding` per rule violation.

Findings are plain, ordered, hashable records so that every downstream
consumer — the text reporter, the JSON formatter, the committed baseline
and its ratchet comparison — can treat them as values.  File paths are
stored repo-relative in POSIX form, which keeps the committed baseline
identical across operating systems and checkout locations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location.

    Ordering is (file, line, rule_id, message) so sorted finding lists —
    and therefore lint output and baselines — are deterministic.
    """

    file: str
    line: int
    rule_id: str
    message: str

    def format(self) -> str:
        """``file:line: RULE message`` — the one-line text rendering."""
        return f"{self.file}:{self.line}: {self.rule_id} {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "file": self.file,
            "line": self.line,
            "rule": self.rule_id,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Finding":
        return cls(
            file=str(data["file"]),
            line=int(data["line"]),
            rule_id=str(data["rule"]),
            message=str(data["message"]),
        )
