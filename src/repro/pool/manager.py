"""The shared exchange-machine pool.

The paper's operational model implies an entity that owns the vacant
machines: clusters borrow from a **shared pool**, rebalance, and hand
back compensation machines.  :class:`MachinePool` is that entity — a
machine inventory with lend/settle bookkeeping — and
:func:`rebalance_with_pool` is a full episode against it:

1. lend ``B`` machines to the cluster,
2. run the rebalancer,
3. settle: returned machines (possibly *different* machines) re-enter
   the inventory, the cluster keeps the rest,
4. the fleet and the pool sizes are conserved by construction.

Because returned machines may differ from lent ones, the pool's
*composition* evolves over episodes even though its *size* does not —
the long-run effect of the paper's exchange, measured in E17.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._validation import check_non_negative
from repro.algorithms import RebalanceResult, Rebalancer
from repro.cluster import ClusterState, ExchangeLedger, Machine, settle_fleet
from repro.cluster.exchange import ReturnPolicy

__all__ = ["MachinePool", "PoolEpisode", "rebalance_with_pool"]


class MachinePool:
    """An inventory of vacant machines available for exchange.

    Machines are held as descriptions (ids are re-stamped when lent into
    a cluster).  The pool refuses to lend more than it holds and records
    every episode for auditability.
    """

    def __init__(self, machines: list[Machine] | None = None) -> None:
        self._machines: list[Machine] = list(machines or [])
        self.history: list["PoolEpisode"] = []

    @property
    def size(self) -> int:
        return len(self._machines)

    def total_capacity(self) -> np.ndarray:
        """Summed capacity of the inventory (zeros when empty)."""
        if not self._machines:
            return np.zeros(0)
        return np.stack([m.capacity for m in self._machines]).sum(axis=0)

    def inventory(self) -> list[Machine]:
        """Copy of the current inventory."""
        return list(self._machines)

    # ------------------------------------------------------------- lending
    def lend(self, count: int) -> list[Machine]:
        """Remove *count* machines from the inventory (largest first)."""
        check_non_negative("count", count)
        if count > self.size:
            raise ValueError(f"pool holds {self.size} machines, cannot lend {count}")
        # Lend the largest machines first — they are the most useful as
        # staging hosts and packing targets.
        self._machines.sort(key=lambda m: -float(m.capacity.sum()))
        lent = self._machines[:count]
        self._machines = self._machines[count:]
        return [
            Machine(
                id=k,
                capacity=m.capacity.copy(),
                schema=m.schema,
                cls=m.cls,
                exchange=True,
            )
            for k, m in enumerate(lent)
        ]

    def accept(self, machines: list[Machine]) -> None:
        """Add returned machines to the inventory."""
        for m in machines:
            self._machines.append(
                Machine(
                    id=self.size,
                    capacity=m.capacity.copy(),
                    schema=m.schema,
                    cls=m.cls,
                    exchange=False,
                )
            )


@dataclass(frozen=True)
class PoolEpisode:
    """Audit record of one lend/rebalance/settle cycle."""

    cluster_label: str
    lent: int
    returned: int
    exchanged: int
    feasible: bool
    peak_before: float
    peak_after: float
    pool_size_after: int
    pool_capacity_after: tuple[float, ...] = field(default_factory=tuple)


def rebalance_with_pool(
    pool: MachinePool,
    state: ClusterState,
    rebalancer: Rebalancer,
    *,
    budget: int,
    label: str = "cluster",
    policy: ReturnPolicy = "count",
) -> tuple[ClusterState, RebalanceResult]:
    """One full exchange episode of *state* against *pool*.

    Returns the post-settlement cluster (fleet size unchanged: lent
    machines either returned or swapped one-for-one against drained
    in-service machines) and the raw algorithm result.  On an infeasible
    episode the lent machines go straight back and the input state is
    returned unchanged.
    """
    lent = pool.lend(budget)
    grown, ledger = ExchangeLedger.borrow(state, lent, policy=policy)
    result = rebalancer.rebalance(grown, ledger)
    if not result.feasible:
        pool.accept(lent)
        pool.history.append(
            PoolEpisode(
                cluster_label=label,
                lent=budget,
                returned=budget,
                exchanged=0,
                feasible=False,
                peak_before=state.peak_utilization(),
                peak_after=state.peak_utilization(),
                pool_size_after=pool.size,
                pool_capacity_after=tuple(pool.total_capacity()),
            )
        )
        return state.copy(), result

    final = grown.copy()
    final.apply_assignment(result.target_assignment)
    slim, settlement, returned_machines = settle_fleet(final, ledger)
    pool.accept(returned_machines)
    pool.history.append(
        PoolEpisode(
            cluster_label=label,
            lent=budget,
            returned=len(returned_machines),
            exchanged=len(settlement.retained_borrowed_ids),
            feasible=True,
            peak_before=state.peak_utilization(),
            peak_after=slim.peak_utilization(),
            pool_size_after=pool.size,
            pool_capacity_after=tuple(pool.total_capacity()),
        )
    )
    return slim, result
