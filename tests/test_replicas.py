"""Tests for replica anti-affinity across the whole stack.

Covers: ClusterState replica queries, the replicated generator, repair
and baseline anti-affinity, SRA end-to-end, IP-model constraint, and
transient anti-affinity in the migration scheduler.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    GreedyRebalancer,
    LocalSearchRebalancer,
    Objective,
    SRA,
    SRAConfig,
    AlnsConfig,
    greedy_best_fit,
    random_removal,
    regret2_insertion,
)
from repro.cluster import ClusterState, Machine, Shard
from repro.migration import StagingPlanner, WaveScheduler, diff_moves
from repro.model import MilpSolver, ModelConfig
from repro.workloads import ReplicatedConfig, SyntheticConfig, generate_replicated


def replicated_state(m=3, groups=2, k=2, dem=1.0, cap=10.0):
    machines = Machine.homogeneous(m, cap)
    shards = []
    for g in range(groups):
        for _ in range(k):
            shards.append(
                Shard(id=len(shards), demand=np.full(3, dem), replica_of=g)
            )
    # Anti-affine round-robin start.
    assign = [(j // 1) % m for j in range(len(shards))]
    return ClusterState(machines, shards, assign)


class TestClusterStateReplicas:
    def test_replica_groups(self):
        state = replicated_state(groups=2, k=2)
        assert set(state.replica_groups) == {0, 1}
        np.testing.assert_array_equal(state.replica_groups[0], [0, 1])

    def test_replica_peers(self):
        state = replicated_state(groups=2, k=3, m=6)
        assert list(state.replica_peers(0)) == [1, 2]
        assert list(state.replica_peers(1)) == [0, 2]

    def test_unreplicated_has_no_peers(self):
        machines = Machine.homogeneous(2, 10.0)
        shards = Shard.uniform(2, 1.0)
        state = ClusterState(machines, shards, [0, 1])
        assert state.replica_peers(0).size == 0
        assert not state.replica_groups

    def test_peer_machines(self):
        state = replicated_state(groups=1, k=2, m=3)  # shards 0,1 on m0,m1
        assert list(state.replica_peer_machines(0)) == [1]

    def test_conflict_detection(self):
        state = replicated_state(groups=1, k=2, m=3)
        assert not state.has_replica_conflicts()
        state.move(1, 0)  # colocate siblings
        assert state.has_replica_conflicts()
        assert state.replica_conflicts() == [(0, 0)]

    def test_copy_shares_group_tables(self):
        state = replicated_state()
        dup = state.copy()
        assert dup.replica_groups is state.replica_groups


class TestReplicatedGenerator:
    def test_generated_instance_is_anti_affine(self):
        cfg = ReplicatedConfig(
            base=SyntheticConfig(num_machines=10, shards_per_machine=4, seed=1),
            replication_factor=3,
        )
        state = generate_replicated(cfg)
        assert state.num_shards == cfg.num_shards
        assert not state.has_replica_conflicts()
        assert state.is_within_capacity()

    def test_tightness_preserved(self):
        cfg = ReplicatedConfig(
            base=SyntheticConfig(
                num_machines=10, shards_per_machine=4, target_utilization=0.7, seed=2
            ),
            replication_factor=2,
        )
        state = generate_replicated(cfg)
        np.testing.assert_allclose(state.mean_utilization(), 0.7, rtol=0.05)

    def test_replication_exceeding_machines_rejected(self):
        with pytest.raises(ValueError, match="replication_factor"):
            ReplicatedConfig(
                base=SyntheticConfig(num_machines=2), replication_factor=3
            )

    def test_determinism(self):
        cfg = ReplicatedConfig(
            base=SyntheticConfig(num_machines=8, shards_per_machine=3, seed=5)
        )
        a, b = generate_replicated(cfg), generate_replicated(cfg)
        np.testing.assert_array_equal(a.assignment, b.assignment)


class TestRepairAntiAffinity:
    @pytest.mark.parametrize("op", [greedy_best_fit, regret2_insertion])
    def test_repair_never_colocates(self, op):
        cfg = ReplicatedConfig(
            base=SyntheticConfig(num_machines=8, shards_per_machine=3, seed=3),
            replication_factor=2,
        )
        state = generate_replicated(cfg)
        rng = np.random.default_rng(0)
        for trial in range(5):
            removed = random_removal(state, rng, 10)
            op(state, rng, removed)
            assert not state.has_replica_conflicts(), f"trial {trial}"

    def test_sibling_batch_insert_avoids_each_other(self):
        # Both siblings removed, only two machines available: they must
        # land on different machines.
        state = replicated_state(groups=1, k=2, m=2)
        state.unassign(0)
        state.unassign(1)
        greedy_best_fit(state, np.random.default_rng(0), [0, 1])
        assert not state.has_replica_conflicts()


class TestObjectiveReplicaPenalty:
    def test_conflict_penalized(self):
        state = replicated_state(groups=1, k=2, m=3)
        obj = Objective(state.assignment, state.sizes)
        clean = obj(state)
        state.move(1, 0)
        assert obj(state) > clean + 1.0  # replica penalty dominates
        assert obj.components(state)["replica_conflicts"] == 1.0

    def test_is_feasible_rejects_conflicts(self):
        state = replicated_state(groups=1, k=2, m=3)
        obj = Objective(state.assignment, state.sizes)
        assert obj.is_feasible(state)
        state.move(1, 0)
        assert not obj.is_feasible(state)


class TestBaselinesAntiAffinity:
    @pytest.mark.parametrize("algo", [GreedyRebalancer(), LocalSearchRebalancer(seed=1)])
    def test_baselines_preserve_anti_affinity(self, algo):
        cfg = ReplicatedConfig(
            base=SyntheticConfig(
                num_machines=10,
                shards_per_machine=4,
                seed=4,
                placement_skew=0.6,
                target_utilization=0.75,
            ),
            replication_factor=2,
        )
        state = generate_replicated(cfg)
        result = algo.rebalance(state)
        final = state.copy()
        final.apply_assignment(result.target_assignment)
        assert not final.has_replica_conflicts()


class TestSRAAntiAffinity:
    def test_sra_preserves_anti_affinity(self):
        cfg = ReplicatedConfig(
            base=SyntheticConfig(
                num_machines=10,
                shards_per_machine=4,
                seed=4,
                placement_skew=0.6,
                target_utilization=0.8,
            ),
            replication_factor=2,
        )
        state = generate_replicated(cfg)
        result = SRA(SRAConfig(alns=AlnsConfig(iterations=300, seed=1))).rebalance(state)
        assert result.feasible
        final = state.copy()
        final.apply_assignment(result.target_assignment)
        assert not final.has_replica_conflicts()
        assert result.peak_after <= result.peak_before + 1e-9


class TestMilpAntiAffinity:
    def test_milp_respects_anti_affinity(self):
        # 2 machines, 2 replicas of one big shard + 2 fillers: the only
        # balanced solution without anti-affinity would colocate replicas.
        machines = Machine.homogeneous(2, 10.0)
        shards = [
            Shard(id=0, demand=np.full(3, 4.0), replica_of=0),
            Shard(id=1, demand=np.full(3, 4.0), replica_of=0),
            Shard(id=2, demand=np.full(3, 1.0)),
            Shard(id=3, demand=np.full(3, 1.0)),
        ]
        state = ClusterState(machines, shards, [0, 1, 0, 1])
        result = MilpSolver(ModelConfig(move_penalty=0.0)).solve(state)
        assert result.ok
        final = state.copy()
        final.apply_assignment(result.assignment)
        assert not final.has_replica_conflicts()

    def test_milp_infeasible_when_anti_affinity_impossible(self):
        machines = Machine.homogeneous(1, 10.0)
        shards = [
            Shard(id=0, demand=np.full(3, 1.0), replica_of=0),
            Shard(id=1, demand=np.full(3, 1.0), replica_of=0),
        ]
        state = ClusterState(machines, shards, [0, 0])
        result = MilpSolver(ModelConfig(move_penalty=0.0)).solve(state)
        assert result.status == "infeasible"


class TestMigrationAntiAffinity:
    def test_move_waits_for_sibling_to_leave(self):
        # shard0 (g0) m0 -> m1 while its sibling shard1 (g0) sits on m1
        # and must first move m1 -> m2.
        machines = Machine.homogeneous(3, 10.0)
        shards = [
            Shard(id=0, demand=np.full(3, 1.0), replica_of=0),
            Shard(id=1, demand=np.full(3, 1.0), replica_of=0),
            Shard(id=2, demand=np.full(3, 1.0)),
        ]
        state = ClusterState(machines, shards, [0, 1, 2])
        target = np.array([1, 2, 2])
        sched = WaveScheduler().schedule(state, diff_moves(state, target))
        assert sched.feasible
        # shard0's move cannot share a wave with (or precede) shard1's.
        wave_of = {}
        for w, wave in enumerate(sched.waves):
            for mv in wave:
                wave_of[mv.shard_id] = w
        assert wave_of[0] > wave_of[1]

    def test_staging_host_avoids_sibling_machines(self):
        # Swap deadlock between m0/m1 with a sibling of the moving shard
        # parked on the only spare machine m2 -> no staging host.
        machines = Machine.homogeneous(3, 10.0)
        shards = [
            Shard(id=0, demand=np.full(3, 6.0), replica_of=0),
            Shard(id=1, demand=np.full(3, 6.0)),
            Shard(id=2, demand=np.full(3, 1.0), replica_of=0),
        ]
        state = ClusterState(machines, shards, [0, 1, 2])
        target = np.array([1, 0, 2])
        plan = StagingPlanner().plan(state, target)
        # shard0 cannot stage via m2 (sibling shard2 lives there); shard1
        # can, so the plan should still succeed by staging shard1.
        assert plan.feasible
        hop_hosts = {
            mv.dst for mv in plan.schedule.all_moves()
            if mv.is_staged_hop and mv.shard_id == 0
        }
        assert 2 not in hop_hosts


@given(seed=st.integers(min_value=0, max_value=60))
@settings(max_examples=20, deadline=None)
def test_property_sra_never_breaks_anti_affinity(seed):
    cfg = ReplicatedConfig(
        base=SyntheticConfig(
            num_machines=6,
            shards_per_machine=3,
            seed=seed,
            target_utilization=0.7,
            placement_skew=0.4,
        ),
        replication_factor=2,
    )
    state = generate_replicated(cfg)
    result = SRA(SRAConfig(alns=AlnsConfig(iterations=80, seed=seed))).rebalance(state)
    final = state.copy()
    final.apply_assignment(result.target_assignment)
    assert not final.has_replica_conflicts()
