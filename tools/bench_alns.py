#!/usr/bin/env python
"""ALNS inner-loop benchmark harness.

Measures, per E6 scaling size:

* **iterations/sec** of `AlnsEngine.run` at a fixed iteration budget
  (fixed seed, delta evaluation + incremental objective — the production
  configuration), and
* **best objective at a wall-clock budget** (`--budget`, default 2 s),
  the metric that actually matters for an anytime search.

Modes
-----
``--update``
    Run the full matrix and (re)write the committed baseline
    ``BENCH_alns.json`` at the repo root.
``--smoke``
    Quick regression gate for CI: measure a subset of sizes at reduced
    budgets and fail (exit 1) if any size's iterations/sec falls below
    ``(1 - tolerance)`` × the committed baseline (default tolerance 0.30,
    override with ``--tolerance`` or ``BENCH_ALNS_TOLERANCE``).
``--check``
    Hardware-independent exactness gate: run the delta-evaluated engine
    and the legacy copy-based engine on small instances and fail unless
    best objective, acceptance count and history agree exactly.

``--parallel``
    Restart fan-out scaling: run K SRA restarts through
    ``repro.parallel.run_sra_restarts`` (persistent shared-memory pool)
    at 1, 2 and 4 workers in both *blind* and *cooperative* mode, print
    wall-clock / speedup / pool overhead, and verify the blind best
    objective is identical at every worker count.  Speedups are
    hardware-bound by the runner's core count, so they are never gated.

``--update-parallel``
    Re-measure the parallel table on the larger
    ``PARALLEL_UPDATE_SIZES`` instances and rewrite only the
    ``parallel`` section of ``BENCH_alns.json``, preserving legacy rows
    under ``meta.parallel_history``.  (``--update`` records the same
    table as part of a full baseline refresh.)

``--scale-smoke``
    Fleet-scale CI row: run the ``SCALE_SMOKE_SIZES`` instance(s)
    (m2000 — large enough to exercise the pruned regret-2 / SoA-kernel
    path the small smoke sizes never reach).  Throughput is printed and
    compared against the committed baseline but **informational only**;
    the run fails solely when it exceeds ``--max-seconds`` (hang /
    order-of-magnitude-regression guard).

``--trace-on``
    Run every measurement under an *active* observability bundle
    (``repro.obs``), so the smoke gate bounds the overhead of
    instrumentation itself: tracer-on throughput must stay within the
    same tolerance of the committed tracer-off baseline.

``--metrics-out PATH``
    Export the metrics registry accumulated across the measured runs as
    JSON (defaults to ``BENCH_alns_metrics.json`` next to the baseline
    during ``--update``).

Default (no flag): run the full matrix and print a comparison against
the committed baseline without failing.
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro import obs  # noqa: E402
from repro.algorithms.destroy import DEFAULT_DESTROY_OPS  # noqa: E402
from repro.algorithms.lns import AlnsConfig, AlnsEngine  # noqa: E402
from repro.algorithms.objective import IncrementalObjective, Objective  # noqa: E402
from repro.algorithms.repair import DEFAULT_REPAIR_OPS  # noqa: E402
from repro.workloads import scaling_suite  # noqa: E402

BASELINE_PATH = REPO_ROOT / "BENCH_alns.json"
METRICS_PATH = REPO_ROOT / "BENCH_alns_metrics.json"

#: Registry shared by every measured run of this process; exported by
#: ``--metrics-out`` (always) and ``--update`` (to METRICS_PATH).
_REGISTRY = obs.MetricsRegistry()

#: When True (--trace-on) each measured run executes under an active
#: tracer, so throughput numbers include instrumentation overhead.
TRACE_ON = False


def _run_observed(engine: AlnsEngine, state, objective):
    """One engine run under the configured observability mode.

    Metrics always accumulate into the shared registry (cheap, one
    counter bump per run); the tracer — the per-iteration hot-path cost
    being gated — is only active under ``--trace-on``, with a fresh
    tracer per run so record accumulation cannot distort later repeats.
    """
    tracer = obs.Tracer() if TRACE_ON else obs.NULL_TRACER
    previous = obs.activate(obs.Obs(tracer, _REGISTRY))
    try:
        return engine.run(state, objective)
    finally:
        obs.deactivate(previous)

#: (machines, shards_per_machine) -> full-run iteration budget.  Budgets
#: shrink with size so every row takes roughly comparable wall-clock.
FULL_SIZES: dict[tuple[int, int], int] = {
    (20, 6): 2000,
    (50, 6): 1500,
    (100, 6): 800,
    (200, 6): 500,
    (400, 6): 300,
    (2000, 6): 150,
    (10000, 6): 60,
}
#: Subset + budgets used by --smoke (kept short for CI).
SMOKE_SIZES: dict[tuple[int, int], int] = {
    (50, 6): 500,
    (400, 6): 150,
}
#: Fleet-scale row exercised by --scale-smoke: the pruned regret-2 /
#: SoA-kernel path that the small smoke sizes never reach.  Throughput
#: is informational on PRs (hardware varies); only the wall-clock cap
#: gates, catching hangs and pathological slowdowns.
SCALE_SMOKE_SIZES: dict[tuple[int, int], int] = {
    (2000, 6): 120,
}
SEED = 1


def _engine(iterations: int, *, delta: bool = True, **kw) -> AlnsEngine:
    cfg = AlnsConfig(iterations=iterations, seed=SEED, delta_evaluation=delta, **kw)
    return AlnsEngine(cfg, DEFAULT_DESTROY_OPS, DEFAULT_REPAIR_OPS)


def _objective(state, *, incremental: bool = True):
    base = Objective(state.assignment, state.sizes)
    return IncrementalObjective(base) if incremental else base


def _peak_rss_mb() -> float:
    """Process peak resident set so far, in MB (ru_maxrss is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


class _TimedOp:
    """Destroy/repair operator proxy accumulating wall-clock into *acc*."""

    def __init__(self, op, acc: dict, key: str) -> None:
        self._op = op
        self._acc = acc
        self._key = key
        self.__name__ = op.__name__

    def bind(self, config):
        bind = getattr(self._op, "bind", None)
        if bind is None:
            return self
        return _TimedOp(bind(config), self._acc, self._key)

    def __call__(self, *args, **kwargs):
        t0 = time.perf_counter()
        try:
            return self._op(*args, **kwargs)
        finally:
            self._acc[self._key] += time.perf_counter() - t0


class _TimedObjective:
    """Objective proxy timing evaluations; everything else passes through."""

    def __init__(self, objective, acc: dict) -> None:
        self._objective = objective
        self._acc = acc

    def __call__(self, state):
        t0 = time.perf_counter()
        try:
            return self._objective(state)
        finally:
            self._acc["objective"] += time.perf_counter() - t0

    def __getattr__(self, name):
        return getattr(self._objective, name)


def _measure_phases(m: int, spm: int, iterations: int) -> dict[str, float]:
    """Per-phase wall-clock fractions of one engine run.

    Runs a *separate* instrumented run (the timing hooks themselves cost
    a few percent, so they are kept out of the throughput numbers) and
    reports the fraction of wall-clock spent in each phase: destroy and
    repair operators, objective evaluations, the state's begin/commit/
    rollback journal, and everything else (acceptance, weights, RNG).
    """
    ((_, state),) = list(scaling_suite(sizes=((m, spm),)))
    acc = {"destroy": 0.0, "repair": 0.0, "objective": 0.0, "journal": 0.0}
    cfg = AlnsConfig(iterations=iterations, seed=SEED, delta_evaluation=True)
    engine = AlnsEngine(
        cfg,
        tuple(_TimedOp(op, acc, "destroy") for op in DEFAULT_DESTROY_OPS),
        tuple(_TimedOp(op, acc, "repair") for op in DEFAULT_REPAIR_OPS),
    )
    run_state = state.copy()
    for name in ("begin", "commit", "rollback"):
        orig = getattr(run_state, name)

        def timed(orig=orig):
            t0 = time.perf_counter()
            try:
                return orig()
            finally:
                acc["journal"] += time.perf_counter() - t0

        setattr(run_state, name, timed)
    t0 = time.perf_counter()
    engine.run(run_state, _TimedObjective(_objective(state), acc))
    total = time.perf_counter() - t0
    out = {key: value / total for key, value in acc.items()}
    out["other"] = max(0.0, 1.0 - sum(out.values()))
    return out


def _measure_size(
    m: int, spm: int, iterations: int, budget: float | None, repeats: int = 1
) -> dict:
    ((name, state),) = list(scaling_suite(sizes=((m, spm),)))
    # Best-of-N: CPU throttling and scheduler noise only ever slow a run
    # down, so the fastest repeat is the least-noisy estimate.
    best_rate = 0.0
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = _run_observed(_engine(iterations), state.copy(), _objective(state))
        elapsed = time.perf_counter() - t0
        best_rate = max(best_rate, iterations / elapsed)
        _REGISTRY.histogram(
            "bench.its_per_sec", (10, 30, 100, 300, 1000, 3000, 10000)
        ).observe(iterations / elapsed)
    _REGISTRY.gauge(f"bench.{m}x{spm}.its_per_sec").set(best_rate)
    row = {
        "iterations": iterations,
        "its_per_sec": best_rate,
        "best": out.best_objective,
        "accepted": out.accepted,
        "peak_rss_mb": round(_peak_rss_mb(), 1),
    }
    if budget is not None:
        timed = _run_observed(
            _engine(10**9, time_limit=budget, collect_history=False),
            state.copy(),
            _objective(state),
        )
        row["best_at_budget"] = timed.best_objective
        row["iters_at_budget"] = timed.iterations
    return name, row


def run_matrix(
    sizes: dict, budget: float | None, repeats: int = 1, phases: bool = False
) -> dict[str, dict]:
    results: dict[str, dict] = {}
    for (m, spm), iterations in sizes.items():
        name, row = _measure_size(m, spm, iterations, budget, repeats)
        if phases:
            row["phases"] = {
                key: round(value, 4)
                for key, value in _measure_phases(m, spm, min(iterations, 300)).items()
            }
        results[name] = row
        line = f"{name:24s} {row['its_per_sec']:8.1f} it/s  best={row['best']:.6f}"
        if budget is not None:
            line += f"  best@{budget:g}s={row['best_at_budget']:.6f}"
        line += f"  rss={row['peak_rss_mb']:.0f}MB"
        if phases:
            line += "  [" + " ".join(
                f"{key}={value:.0%}" for key, value in row["phases"].items()
            ) + "]"
        print(line)
    return results


#: Restart fan-out measured by --parallel / --update-parallel:
#: (machines, shards_per_machine) -> iterations per restart.  The PR
#: step (--parallel) runs m400 only; the baseline refresh
#: (--update / --update-parallel) adds m2000.  Both sizes are large
#: enough to amortize worker spawn — the old m50 rows (preserved under
#: meta.parallel_history) were dominated by per-task state pickling and
#: recorded the pool as a *slowdown*, the bug the shared-memory pool
#: fixed.
PARALLEL_SIZES: dict[tuple[int, int], int] = {(400, 6): 300}
PARALLEL_UPDATE_SIZES: dict[tuple[int, int], int] = {(400, 6): 300, (2000, 6): 150}
PARALLEL_RESTARTS = 4
PARALLEL_WORKERS = (1, 2, 4)
PARALLEL_EXCHANGE_PERIOD = 50

#: Honest-measurement caveat recorded next to the parallel section.
PARALLEL_NOTE = (
    "Speedup is bounded above by the measuring machine's core count: on "
    "a single-core runner every worker count time-slices one CPU, so "
    "speedup_vs_serial near (or below) 1.0 measures pool overhead, not "
    "a pool regression — compare pool_overhead_s (wall minus the ideal "
    "serial_wall/workers) across baselines instead, and compare "
    "speedups only between baselines recorded on the same hardware.  "
    "Blind rows are asserted bitwise-identical to serial at every "
    "worker count; cooperative rows are timing-dependent by design "
    "(published/adopted counters come from the merged "
    "alns.exchange.* metrics)."
)


def measure_parallel(sizes: dict[tuple[int, int], int] | None = None) -> dict:
    """Wall-clock of K-restart fan-outs at increasing worker counts.

    Measures both modes per instance: *blind* best-of-K (best objective
    asserted identical at every worker count — the repro.parallel
    determinism contract) and *cooperative* portfolio search (incumbent
    exchange through the shared slot; exchange counters recorded from
    the merged obs metrics).
    """
    from repro.algorithms.sra_config import SRAConfig
    from repro.parallel import run_sra_restarts

    sizes = PARALLEL_SIZES if sizes is None else sizes
    section: dict = {}
    for (m, spm), iterations in sizes.items():
        ((name, state),) = list(scaling_suite(sizes=((m, spm),)))
        # polish=False: the steepest-descent polish is a serial per-restart
        # cost orthogonal to the fan-out being measured, and it dominates
        # wall-clock at fleet sizes (160 s/restart at m2000 vs ~3 s of
        # search) — disabling it keeps the table about pool behaviour.
        config = SRAConfig(
            alns=AlnsConfig(iterations=iterations, seed=SEED), polish=False
        )
        entry: dict = {
            "restarts": PARALLEL_RESTARTS,
            "iterations_per_restart": iterations,
            "exchange_period": PARALLEL_EXCHANGE_PERIOD,
            "blind": {},
            "cooperative": {},
        }
        serial_wall = None
        blind_best = None
        for mode, cooperative in (("blind", False), ("cooperative", True)):
            for workers in PARALLEL_WORKERS:
                registry = obs.MetricsRegistry()
                previous = obs.activate(obs.Obs(obs.NULL_TRACER, registry))
                try:
                    t0 = time.perf_counter()
                    report = run_sra_restarts(
                        state,
                        config=config,
                        restarts=PARALLEL_RESTARTS,
                        n_workers=workers,
                        cooperative=cooperative,
                        exchange_period=PARALLEL_EXCHANGE_PERIOD,
                    )
                    wall = time.perf_counter() - t0
                finally:
                    obs.deactivate(previous)
                best = report.best.peak_after
                if mode == "blind":
                    if workers == PARALLEL_WORKERS[0]:
                        serial_wall = wall
                        blind_best = best
                    elif best != blind_best:
                        raise AssertionError(
                            f"parallel determinism violated: workers={workers} "
                            f"best {best!r} != serial best {blind_best!r}"
                        )
                row = {
                    "wall_s": wall,
                    "speedup_vs_serial": serial_wall / wall,
                    "pool_overhead_s": wall - serial_wall / workers,
                    "best_peak_after": best,
                }
                if cooperative:
                    counters = registry.to_dict()["counters"]
                    row["published"] = counters.get("alns.exchange.published", 0)
                    row["adopted"] = counters.get("alns.exchange.adopted", 0)
                entry[mode][f"workers={workers}"] = row
                extra = (
                    f"  pub={row['published']:g} adopt={row['adopted']:g}"
                    if cooperative
                    else ""
                )
                print(
                    f"{name} {mode:11s} workers={workers}: {wall:6.2f}s  "
                    f"{serial_wall / wall:4.2f}x  best={best:.6f}{extra}"
                )
        section[name] = entry
    return section


def cmd_parallel() -> int:
    measure_parallel()
    print(
        "parallel ok: blind best identical at every worker count "
        "(speedups informational — see the parallel note in BENCH_alns.json)"
    )
    return 0


def cmd_update_parallel() -> int:
    """Regenerate only the ``parallel`` section of the committed baseline.

    Legacy flat rows (the pre-pool m50 measurements) are preserved under
    ``meta.parallel_history`` the first time this runs, so the recorded
    slowdown that motivated the shared-memory pool stays auditable.
    """
    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run --update first", file=sys.stderr)
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())
    old = baseline.get("parallel")
    if old and "blind" not in next(iter(old.values())):
        baseline.setdefault("meta", {})["parallel_history"] = old
    baseline["parallel"] = measure_parallel(PARALLEL_UPDATE_SIZES)
    baseline.setdefault("meta", {})["parallel_note"] = PARALLEL_NOTE
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    print(f"wrote {BASELINE_PATH} (parallel section only)")
    return 0


def cmd_update(budget: float) -> int:
    results = run_matrix(FULL_SIZES, budget, repeats=2, phases=True)
    print("smoke baselines (best of 3):")
    smoke = run_matrix(SMOKE_SIZES, budget=None, repeats=3)
    print("parallel restart scaling:")
    parallel = measure_parallel(PARALLEL_UPDATE_SIZES)
    baseline = {
        "meta": {
            "description": "ALNS inner-loop throughput baseline (tools/bench_alns.py)",
            "seed": SEED,
            "budget_seconds": budget,
            "note": (
                "its_per_sec is hardware-dependent (single-core speed "
                "dominates; recorded as best-of-2 per full row, best-of-3 "
                "per smoke row); the CI smoke gate compares against this "
                "file with a wide tolerance and the scale rows "
                "(scale-m2000/scale-m10000, pruned regret-2 path) are "
                "informational on PRs.  peak_rss_mb is the process "
                "high-water mark after the row ran (monotone across "
                "rows); phases are wall-clock fractions from a separate "
                "instrumented run.  The parallel section is "
                "informational only — see parallel_note."
            ),
            "parallel_note": PARALLEL_NOTE,
        },
        "results": results,
        "smoke": smoke,
        "parallel": parallel,
    }
    BASELINE_PATH.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    print(f"wrote {BASELINE_PATH}")
    _REGISTRY.export_json(METRICS_PATH)
    print(f"wrote {METRICS_PATH}")
    return 0


def cmd_smoke(tolerance: float) -> int:
    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run --update first", file=sys.stderr)
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())["smoke"]
    results = run_matrix(SMOKE_SIZES, budget=None, repeats=3)
    failures = []
    for name, row in results.items():
        ref = baseline.get(name)
        if ref is None:
            failures.append(f"{name}: missing from committed baseline")
            continue
        floor = (1.0 - tolerance) * ref["its_per_sec"]
        if row["its_per_sec"] < floor:
            failures.append(
                f"{name}: {row['its_per_sec']:.1f} it/s < floor {floor:.1f} "
                f"(baseline {ref['its_per_sec']:.1f}, tolerance {tolerance:.0%})"
            )
    if failures:
        print("\n".join(["", "PERF REGRESSION:"] + failures), file=sys.stderr)
        return 1
    mode = "tracer-on" if TRACE_ON else "tracer-off"
    print(f"smoke ok ({mode}, within {tolerance:.0%} of committed baseline)")
    return 0


def cmd_scale_smoke(max_seconds: float) -> int:
    """Fleet-scale smoke: exercise the pruned regret-2 path end to end.

    Throughput is printed (and compared against the committed baseline
    when the scale row exists) but never gated — PR runners vary too
    much for fleet-size numbers to be stable.  The only failure mode is
    the wall-clock cap, which catches hangs and order-of-magnitude
    regressions.
    """
    t0 = time.perf_counter()
    results = run_matrix(SCALE_SMOKE_SIZES, budget=None, phases=True)
    wall = time.perf_counter() - t0
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text()).get("results", {})
        for name, row in results.items():
            ref = baseline.get(name)
            if ref:
                ratio = row["its_per_sec"] / ref["its_per_sec"]
                print(f"  {name}: {ratio:.2f}x committed baseline it/s (informational)")
    if wall > max_seconds:
        print(
            f"scale smoke exceeded wall-clock cap: {wall:.0f}s > {max_seconds:.0f}s",
            file=sys.stderr,
        )
        return 1
    print(f"scale smoke ok in {wall:.0f}s (cap {max_seconds:.0f}s; it/s informational)")
    return 0


def cmd_check() -> int:
    """Delta-evaluated engine must match the copy-based reference exactly."""
    failures = []
    for (m, spm), iterations in ((20, 6), 400), ((50, 6), 300):
        ((name, state),) = list(scaling_suite(sizes=((m, spm),)))
        runs = {}
        for label, delta, incremental in (
            ("delta", True, True),
            ("legacy", False, False),
        ):
            out = _engine(iterations, delta=delta).run(
                state.copy(), _objective(state, incremental=incremental)
            )
            runs[label] = out
        d, leg = runs["delta"], runs["legacy"]
        if (
            repr(d.best_objective) != repr(leg.best_objective)
            or d.accepted != leg.accepted
            or d.history != leg.history
            or not np.array_equal(d.best_assignment, leg.best_assignment)
        ):
            failures.append(
                f"{name}: delta {d.best_objective!r}/{d.accepted} != "
                f"legacy {leg.best_objective!r}/{leg.accepted}"
            )
        else:
            print(f"{name}: delta == legacy (best={d.best_objective!r})")
    if failures:
        print("\n".join(["", "EXACTNESS FAILURES:"] + failures), file=sys.stderr)
        return 1
    print("check ok: delta evaluation reproduces the copy-based engine exactly")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument("--update", action="store_true", help="rewrite BENCH_alns.json")
    mode.add_argument("--smoke", action="store_true", help="CI regression gate")
    mode.add_argument("--check", action="store_true", help="delta-vs-legacy exactness")
    mode.add_argument(
        "--parallel",
        action="store_true",
        help="restart fan-out scaling at 1/2/4 workers, blind + cooperative "
        "(informational)",
    )
    mode.add_argument(
        "--update-parallel",
        action="store_true",
        help="re-measure and rewrite only the parallel section of BENCH_alns.json",
    )
    mode.add_argument(
        "--scale-smoke",
        action="store_true",
        help="fleet-scale row (pruned regret-2 path), wall-clock capped",
    )
    parser.add_argument(
        "--budget", type=float, default=2.0, help="anytime budget in seconds"
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=420.0,
        help="wall-clock cap for --scale-smoke",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_ALNS_TOLERANCE", "0.30")),
        help="allowed fractional it/s regression for --smoke",
    )
    parser.add_argument(
        "--trace-on",
        action="store_true",
        help="run every measurement under an active tracer "
        "(gates instrumentation overhead)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="export the accumulated metrics registry as JSON",
    )
    args = parser.parse_args(argv)
    global TRACE_ON
    TRACE_ON = args.trace_on
    try:
        if args.update:
            return cmd_update(args.budget)
        if args.smoke:
            return cmd_smoke(args.tolerance)
        if args.check:
            return cmd_check()
        if args.parallel:
            return cmd_parallel()
        if args.update_parallel:
            return cmd_update_parallel()
        if args.scale_smoke:
            return cmd_scale_smoke(args.max_seconds)
        results = run_matrix(FULL_SIZES, args.budget, phases=True)
        if BASELINE_PATH.exists():
            baseline = json.loads(BASELINE_PATH.read_text())["results"]
            print("\nvs committed baseline:")
            for name, row in results.items():
                ref = baseline.get(name)
                if ref:
                    ratio = row["its_per_sec"] / ref["its_per_sec"]
                    print(f"  {name:24s} {ratio:5.2f}x baseline it/s")
        return 0
    finally:
        if args.metrics_out:
            _REGISTRY.export_json(args.metrics_out)
            print(f"wrote {args.metrics_out}")


if __name__ == "__main__":
    raise SystemExit(main())
