"""Tests for the unified event runtime (repro.runtime).

The two headline gates of the refactor:

* at constant machine speeds, the runtime serving path is **bitwise**
  identical to the pre-refactor ``simulate_serving`` inner loop
  (property-tested across random clusters, tracer on and off);
* the ``OnlineSimulator`` facade reproduces the historical epoch
  trajectories exactly.

Plus the executor's conservation invariants and the two audit fixes
that rode along (per-wave transfer accounting, background-load
re-validation).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.algorithms import AlnsConfig, SRA, SRAConfig
from repro.cluster import ClusterState, ExchangeLedger, Machine, Shard, settle_fleet
from repro.migration import BandwidthModel, StagingPlanner
from repro.online import OnlineSimulator, PopularityDrift
from repro.runtime import (
    FCFSMachine,
    MigrationExecutor,
    Runtime,
    ServingFleet,
    synthetic_profile,
)
from repro.simulate import (
    ServingConfig,
    WorkProfile,
    migration_background_load,
    simulate_migration_timeline,
    simulate_serving,
)
from repro.simulate.des import _effective_speeds
from repro.workloads import SyntheticConfig, generate, make_exchange_machines


# ---------------------------------------------------------------------- kernel


class TestKernel:
    def test_events_fire_in_time_then_fifo_order(self):
        rt = Runtime()
        seen = []
        rt.at(2.0, lambda r: seen.append("late"))
        rt.at(1.0, lambda r: seen.append("a"))
        rt.at(1.0, lambda r: seen.append("b"))  # same time: FIFO
        rt.run()
        assert seen == ["a", "b", "late"]
        assert rt.now == 2.0

    def test_scheduling_in_the_past_rejected(self):
        rt = Runtime()
        rt.at(5.0, lambda r: r.at(1.0, lambda r2: None))
        with pytest.raises(ValueError, match="before now"):
            rt.run()

    def test_run_until_leaves_later_events_queued(self):
        rt = Runtime()
        seen = []
        rt.at(1.0, lambda r: seen.append(1))
        rt.at(10.0, lambda r: seen.append(10))
        end = rt.run(until=5.0)
        assert seen == [1] and end == 5.0
        rt.run()
        assert seen == [1, 10]

    def test_callbacks_can_chain(self):
        rt = Runtime()
        seen = []

        def first(r):
            seen.append(r.now)
            r.after(1.5, lambda r2: seen.append(r2.now))

        rt.at(1.0, first)
        rt.run()
        assert seen == [1.0, 2.5]


# -------------------------------------------------------------- FCFS machines


class TestFCFSMachine:
    def test_speed_change_conserves_work(self):
        # 10 units of work at speed 1; halve the speed halfway through.
        m = FCFSMachine(1.0)
        from repro.runtime.machines import QueryRecord

        q = QueryRecord(0.0)
        m.enqueue(0.0, 10.0, q)
        m.set_speed(5.0, 0.5)
        m.flush()
        # 5 units done by t=5, remaining 5 at speed 0.5 -> finishes at 15.
        assert q.finish_max == pytest.approx(15.0)
        assert m.busy_time == pytest.approx(15.0)

    def test_queued_tasks_rechain_after_speed_change(self):
        from repro.runtime.machines import QueryRecord

        m = FCFSMachine(2.0)
        q1, q2 = QueryRecord(0.0), QueryRecord(0.0)
        m.enqueue(0.0, 4.0, q1)  # serves [0, 2)
        m.enqueue(0.0, 4.0, q2)  # serves [2, 4)
        m.set_speed(1.0, 1.0)  # q1 has 2 units left -> finishes t=3
        m.flush()
        assert q1.finish_max == pytest.approx(3.0)
        assert q2.finish_max == pytest.approx(7.0)

    def test_derate_restores_exactly(self):
        m = FCFSMachine(3.0)
        m.set_derate(0.0, 0.3)
        assert m.speed == pytest.approx(2.1)
        m.clear_derate(1.0)
        assert m.speed == 3.0  # exact: restored from base_speed, not inverted

    def test_derate_fraction_validated(self):
        m = FCFSMachine(1.0)
        with pytest.raises(ValueError, match=r"\[0, 1\)"):
            m.set_derate(0.0, 1.0)


# --------------------------------------------- bitwise serving equivalence


def _legacy_simulate_serving(state, profile, cfg, mapping=None):
    """The pre-refactor simulate_serving inner loop, verbatim."""
    mapping = np.arange(state.num_shards) if mapping is None else mapping
    speed = _effective_speeds(state, cfg)
    rng = np.random.default_rng(cfg.seed)
    num_arrivals = rng.poisson(cfg.arrival_rate * cfg.duration)
    arrival_times = np.sort(rng.uniform(0.0, cfg.duration, size=num_arrivals))
    query_rows = rng.integers(0, profile.num_queries, size=num_arrivals)
    assign = state.assignment_view()
    free_at = np.zeros(state.num_machines)
    busy_time = np.zeros(state.num_machines)
    latencies = np.empty(num_arrivals)
    for qi in range(num_arrivals):
        t = arrival_times[qi]
        row = profile.work[query_rows[qi]]
        finish_max = t
        for j in range(state.num_shards):
            w = row[mapping[j]]
            if w <= 0:
                continue
            m = assign[j]
            start = max(t, free_at[m])
            service = w / speed[m]
            free_at[m] = start + service
            busy_time[m] += service
            if free_at[m] > finish_max:
                finish_max = free_at[m]
        latencies[qi] = finish_max - t
    window = cfg.duration
    if arrival_times.size:
        window = max(window, float(arrival_times[-1]))
    fraction = busy_time / window
    for mid, frac in cfg.background_load.items():
        fraction[mid] += frac
    return latencies, fraction


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    machines=st.integers(min_value=2, max_value=6),
    rate=st.sampled_from([5.0, 30.0, 80.0]),
    bg=st.booleans(),
    traced=st.booleans(),
)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_property_runtime_serving_is_bitwise_legacy(seed, machines, rate, bg, traced):
    state = generate(
        SyntheticConfig(num_machines=machines, shards_per_machine=3, seed=seed % 50)
    )
    rng = np.random.default_rng(seed)
    profile = WorkProfile(rng.uniform(0.0, 5e4, size=(11, state.num_shards)))
    # Sprinkle exact zeros so the w <= 0 skip path is exercised.
    zero_mask = rng.random(profile.work.shape) < 0.1
    profile = WorkProfile(np.where(zero_mask, 0.0, profile.work))
    cfg = ServingConfig(
        arrival_rate=rate,
        duration=3.0,
        seed=seed,
        background_load={0: 0.35} if bg else {},
    )
    lat_legacy, frac_legacy = _legacy_simulate_serving(state, profile, cfg)
    if traced:
        with obs.observed():
            report = simulate_serving(state, profile, config=cfg, capture_raw=True)
    else:
        report = simulate_serving(state, profile, config=cfg, capture_raw=True)
    # Bitwise, not approx: identical float ops in identical order.
    assert np.array_equal(lat_legacy, report.raw_latencies)
    assert np.array_equal(frac_legacy, report.machine_busy_fraction)
    assert report.queries_completed == lat_legacy.size


# ------------------------------------------ online facade trajectory identity


def _legacy_online_run(rebalancer, drift, policy, threshold, budget, state, epochs):
    """The pre-refactor OnlineSimulator.run loop, verbatim."""
    current = state
    cumulative = 0.0
    rows = []
    for epoch in range(epochs):
        current = drift.step(current)
        peak_before = current.peak_utilization()
        should = policy == "always" or (
            policy == "threshold" and peak_before > threshold
        )
        rebalanced, feasible, moves, moved_bytes = False, True, 0, 0.0
        if should:
            grown, ledger = ExchangeLedger.borrow(
                current, make_exchange_machines(current, budget)
            )
            result = rebalancer.rebalance(grown, ledger)
            if result.feasible:
                final = grown.copy()
                final.apply_assignment(result.target_assignment)
                current, _, _ = settle_fleet(final, ledger)
                rebalanced = True
                moves = result.num_moves
                moved_bytes = (
                    result.plan.schedule.total_bytes() if result.plan else 0.0
                )
            else:
                feasible = False
        cumulative += moved_bytes
        rows.append(
            (
                epoch,
                peak_before,
                current.peak_utilization(),
                rebalanced,
                feasible,
                moves,
                moved_bytes,
                cumulative,
            )
        )
    return rows


@pytest.mark.parametrize("policy,budget", [("always", 1), ("threshold", 0), ("never", 0)])
def test_online_facade_reproduces_legacy_trajectory(policy, budget):
    state = generate(
        SyntheticConfig(num_machines=5, shards_per_machine=4, placement_skew=0.6, seed=9)
    )
    epochs = 4

    def make_sra():
        return SRA(SRAConfig(alns=AlnsConfig(iterations=120, seed=2)))

    expected = _legacy_online_run(
        make_sra(), PopularityDrift(drift=0.4, seed=5), policy, 0.9, budget,
        state.copy(), epochs,
    )
    sim = OnlineSimulator(
        rebalancer=make_sra(),
        drift=PopularityDrift(drift=0.4, seed=5),
        policy=policy,
        threshold=0.9,
        exchange_budget=budget,
    )
    reports = sim.run(state.copy(), epochs)
    assert len(reports) == epochs
    got = [
        (
            r.epoch,
            r.peak_before,
            r.peak_after,
            r.rebalanced,
            r.feasible,
            r.moves,
            r.bytes_moved,
            r.cumulative_bytes,
        )
        for r in reports
    ]
    assert got == expected  # exact equality, floats included


# ------------------------------------------------------- migration executor


def _executor_fixture():
    machines = Machine.homogeneous(3, {"cpu": 4.0, "ram": 100.0, "disk": 100.0})
    shards = [
        Shard(id=j, demand=np.array([1.0, 10.0, 10.0]), size_bytes=1000.0)
        for j in range(4)
    ]
    state = ClusterState(machines, shards, [0, 0, 0, 1])
    target = np.array([0, 1, 2, 1])
    plan = StagingPlanner().plan(state, target)
    assert plan.feasible
    return state, target, plan


class TestMigrationExecutor:
    def test_conserves_bytes_and_lands_target(self):
        state, target, plan = _executor_fixture()
        location = state.assignment_view().copy()
        executor = MigrationExecutor(
            schedule=plan.schedule,
            location=location,
            loads=state.loads.copy(),
            capacity=state.capacity,
            demand=state.demand,
            model=BandwidthModel(bandwidth=100.0),
        )
        rt = Runtime()
        rt.add(executor)
        rt.run()
        assert executor.done
        assert executor.bytes_transferred == plan.schedule.total_bytes()
        assert np.array_equal(location, target)
        # All dual holds released; loads equal the target placement's.
        assert np.all(executor.in_flight == 0)
        final = state.copy()
        final.apply_assignment(target)
        np.testing.assert_allclose(executor.loads, final.loads)

    def test_transient_holds_bounded_by_capacity(self):
        state, target, plan = _executor_fixture()
        executor = MigrationExecutor(
            schedule=plan.schedule,
            location=state.assignment_view().copy(),
            loads=state.loads.copy(),
            capacity=state.capacity,
            demand=state.demand,
            model=BandwidthModel(bandwidth=100.0),
        )
        rt = Runtime()
        rt.add(executor)
        rt.run()
        # The planner's transient constraint: dual holds (src + dst both
        # charged while a copy is in flight) never exceed capacity, and
        # the executor observed a real transient above the initial peak.
        assert executor.peak_transient_utilization <= 1.0
        assert executor.peak_transient_utilization >= state.peak_utilization()

    def test_wave_intervals_cover_makespan(self):
        state, target, plan = _executor_fixture()
        model = BandwidthModel(bandwidth=100.0)
        executor = MigrationExecutor(
            schedule=plan.schedule,
            location=state.assignment_view().copy(),
            loads=state.loads.copy(),
            capacity=state.capacity,
            demand=state.demand,
            model=model,
            start_at=2.0,
        )
        rt = Runtime()
        rt.add(executor)
        rt.run()
        cost = model.cost(plan.schedule, state.num_machines)
        assert executor.wave_intervals[0][0] == 2.0
        assert executor.migration_end == pytest.approx(2.0 + cost.makespan_seconds)
        for (lo, hi), secs in zip(executor.wave_intervals, cost.wave_seconds, strict=True):
            assert hi - lo == pytest.approx(secs)

    def test_derates_restore_after_completion(self):
        state, target, plan = _executor_fixture()
        fleet = ServingFleet(np.full(state.num_machines, 1e4))
        executor = MigrationExecutor(
            schedule=plan.schedule,
            fleet=fleet,
            location=state.assignment_view().copy(),
            loads=state.loads.copy(),
            capacity=state.capacity,
            demand=state.demand,
            model=BandwidthModel(bandwidth=100.0),
            transfer_overhead=0.4,
        )
        rt = Runtime()
        rt.add(executor)
        rt.run()
        for machine in fleet:
            assert machine.speed == machine.base_speed

    def test_infeasible_schedule_rejected(self):
        state, target, plan = _executor_fixture()
        # A schedule whose feasible flag is cleared must be refused.
        bad = plan.schedule.__class__(
            waves=plan.schedule.waves, stranded=[plan.schedule.all_moves()[0]]
        )
        with pytest.raises(ValueError, match="infeasible"):
            MigrationExecutor(
                schedule=bad,
                location=state.assignment_view().copy(),
                loads=state.loads.copy(),
                capacity=state.capacity,
                demand=state.demand,
            )


# ------------------------------------------------- timeline window reporting


class TestTimeline:
    def test_no_moves_timeline_is_bitwise_plain_serving(self):
        state, _, _ = _executor_fixture()
        plan = StagingPlanner().plan(state, state.assignment)
        profile = WorkProfile(np.full((4, 4), 2000.0))
        cfg = ServingConfig(
            arrival_rate=30.0, duration=10.0, postings_per_cpu_second=1e4, seed=3
        )
        plain = simulate_serving(state, profile, config=cfg, capture_raw=True)
        timeline = simulate_migration_timeline(
            state, state.assignment, plan, profile, cfg,
            bandwidth=BandwidthModel(bandwidth=100.0),
        )
        assert np.array_equal(plain.raw_latencies, timeline.serving.raw_latencies)
        assert np.array_equal(
            plain.machine_busy_fraction, timeline.serving.machine_busy_fraction
        )
        assert timeline.waves_executed == 0
        assert timeline.bytes_transferred == 0.0

    def test_window_rows_and_phases(self):
        state, target, plan = _executor_fixture()
        profile = WorkProfile(np.full((4, 4), 2000.0))
        cfg = ServingConfig(
            arrival_rate=30.0, duration=20.0, postings_per_cpu_second=1e4, seed=3
        )
        report = simulate_migration_timeline(
            state, target, plan, profile, cfg,
            bandwidth=BandwidthModel(bandwidth=100.0),
            migration_start=5.0,
        )
        assert report.migration_start == 5.0
        assert report.migration_end > 5.0
        rows = report.rows()
        phases = [r["phase"] for r in rows]
        assert phases[-2:] == ["window", "outside"]
        assert phases[:-2] == [f"wave{i}" for i in range(report.waves_executed)]
        total = sum(r["queries"] for r in rows[:-2])
        window_row = rows[-2]
        assert window_row["queries"] == total
        assert (
            window_row["queries"] + rows[-1]["queries"]
            == report.serving.queries_completed
        )

    def test_shards_serve_from_destination_after_their_wave(self):
        # A migration finishing mid-run must change latencies relative to
        # serving the whole run from the initial placement.
        state, target, plan = _executor_fixture()
        profile = WorkProfile(np.full((4, 4), 2000.0))
        cfg = ServingConfig(
            arrival_rate=30.0, duration=20.0, postings_per_cpu_second=1e4, seed=3
        )
        report = simulate_migration_timeline(
            state, target, plan, profile, cfg,
            bandwidth=BandwidthModel(bandwidth=100.0),
            migration_start=0.0,
        )
        plain = simulate_serving(state, profile, config=cfg, capture_raw=True)
        assert not np.array_equal(plain.raw_latencies, report.serving.raw_latencies)

    def test_infeasible_plan_rejected(self):
        state, target, plan = _executor_fixture()
        profile = WorkProfile(np.full((4, 4), 2000.0))
        cfg = ServingConfig(arrival_rate=5.0, duration=2.0, seed=1)
        infeasible = plan.__class__(
            schedule=plan.schedule.__class__(
                waves=plan.schedule.waves, stranded=[plan.schedule.all_moves()[0]]
            ),
            staged_shards=plan.staged_shards,
            direct_feasible=plan.direct_feasible,
        )
        with pytest.raises(ValueError, match="infeasible"):
            simulate_migration_timeline(state, target, infeasible, profile, cfg)


# ----------------------------------------------- audit fixes (satellites)


class TestPerWaveAccounting:
    def test_dual_role_machine_not_double_charged(self):
        """A machine sending and receiving in one wave is busy for
        max(out, in)/bw (full duplex), not the sum — the old per-move
        accounting charged it twice."""
        machines = Machine.homogeneous(3, {"cpu": 4.0, "ram": 100.0, "disk": 100.0})
        shards = [
            Shard(id=j, demand=np.array([0.5, 5.0, 5.0]), size_bytes=1000.0)
            for j in range(2)
        ]
        # Shard 0: 0 -> 1; shard 1: 1 -> 2.  Machine 1 sends and receives.
        state = ClusterState(machines, shards, [0, 1])
        target = np.array([1, 2])
        plan = StagingPlanner().plan(state, target)
        assert plan.feasible
        model = BandwidthModel(bandwidth=100.0)
        busy = model.machine_busy_seconds(plan.schedule, 3)
        # Machine 1: max(1000 out, 1000 in)/100 = 10s, not 20s.
        assert busy[1] == pytest.approx(10.0)
        load = migration_background_load(
            plan, 3, bandwidth=model, transfer_overhead=0.3
        )
        makespan = model.cost(plan.schedule, 3).makespan_seconds
        for m in (0, 1, 2):
            assert load[m] == pytest.approx(0.3 * min(busy[m] / makespan, 1.0))

    def test_e15_style_fixture_fractions_pinned(self):
        """Regression pin for the single-sender fixture the window sim uses."""
        machines = Machine.homogeneous(3, {"cpu": 4.0, "ram": 100.0, "disk": 100.0})
        shards = [
            Shard(id=j, demand=np.array([1.0, 10.0, 10.0]), size_bytes=1000.0)
            for j in range(4)
        ]
        state = ClusterState(machines, shards, [0, 0, 0, 1])
        plan = StagingPlanner().plan(state, np.array([0, 1, 2, 1]))
        load = migration_background_load(
            plan, 3, bandwidth=BandwidthModel(bandwidth=100.0), transfer_overhead=0.3
        )
        # One wave: machine 0 sends 2000B (busy 20s = makespan), machines
        # 1 and 2 each receive 1000B (busy 10s).
        assert load[0] == pytest.approx(0.3)
        assert load[1] == pytest.approx(0.15)
        assert load[2] == pytest.approx(0.15)


class TestBackgroundLoadRevalidation:
    def test_mutated_mapping_rejected_at_simulation_time(self):
        """ServingConfig validates at construction, but the mapping is a
        plain dict; a fraction >= 1 smuggled in afterwards must fail at
        use, not produce a non-positive machine speed."""
        state, _, _ = _executor_fixture()
        profile = WorkProfile(np.full((4, 4), 2000.0))
        cfg = ServingConfig(arrival_rate=5.0, duration=2.0, seed=1)
        cfg.background_load[0] = 1.0  # bypasses __post_init__
        with pytest.raises(ValueError, match="must be < 1"):
            simulate_serving(state, profile, config=cfg)

    def test_negative_fraction_rejected_at_simulation_time(self):
        state, _, _ = _executor_fixture()
        profile = WorkProfile(np.full((4, 4), 2000.0))
        cfg = ServingConfig(arrival_rate=5.0, duration=2.0, seed=1)
        cfg.background_load[1] = -0.2
        with pytest.raises(ValueError, match="background_load"):
            simulate_serving(state, profile, config=cfg)


# ------------------------------------------------------- synthetic profiles


class TestSyntheticProfile:
    def test_expected_utilization_matches_snapshot(self):
        state = generate(SyntheticConfig(num_machines=4, shards_per_machine=3, seed=1))
        qps = 50.0
        profile = synthetic_profile(
            state, queries_per_second=qps, postings_per_cpu_second=1e5, noise=0.0
        )
        cpu = state.schema.index("cpu") if "cpu" in state.schema.names else 0
        per_query = profile.work[0]
        # qps * work / (capacity * ppcs) == demand / capacity per shard.
        np.testing.assert_allclose(qps * per_query / 1e5, state.demand[:, cpu])

    def test_noise_preserves_mean(self):
        state = generate(SyntheticConfig(num_machines=4, shards_per_machine=3, seed=1))
        profile = synthetic_profile(
            state,
            queries_per_second=50.0,
            postings_per_cpu_second=1e5,
            num_queries=4000,
            noise=0.3,
            seed=7,
        )
        flat = synthetic_profile(
            state, queries_per_second=50.0, postings_per_cpu_second=1e5, noise=0.0
        )
        np.testing.assert_allclose(
            profile.work.mean(axis=0), flat.work[0], rtol=0.05
        )
