"""SRA — the Shard Reassignment Algorithm (the paper's contribution).

SRA couples the ALNS engine with the exchange semantics:

1. the working cluster already contains the borrowed machines (vacant);
2. the objective carries the vacancy-return constraint as a penalty, so
   the search is pulled toward states with ``R`` empty machines;
3. a candidate may only become the incumbent best if (a) it satisfies
   hard capacity, (b) the exchange ledger can be settled on it, and
   (c) a transient-feasible migration schedule exists (staging through
   spare machines allowed) — the *feasibility coupling*;
4. the returned plan includes the staged migration schedule and the
   ledger settlement, so a result is an executable artifact, not just a
   target assignment.

Ablation switches (experiment E10) expose each design decision.
"""

from __future__ import annotations

import time

import numpy as np

from repro import obs
from repro.cluster import ClusterState, ExchangeLedger
from repro.algorithms.baselines import LocalSearchRebalancer
from repro.migration import StagingPlanner, WaveScheduler, diff_moves
from repro.algorithms.base import RebalanceResult, Rebalancer, finalize_result
from repro.algorithms.destroy import (
    DEFAULT_DESTROY_OPS,
    DestroyOperator,
    random_removal,
    shaw_removal,
    worst_machine_removal,
)
from repro.algorithms.lns import AlnsEngine, IncumbentChannel
from repro.algorithms.objective import IncrementalObjective, Objective
from repro.algorithms.repair import DEFAULT_REPAIR_OPS, RepairOperator
from repro.algorithms.sra_config import SRAConfig

__all__ = ["SRA", "SRAConfig"]


class SRA(Rebalancer):
    """Large-neighborhood-search shard reassignment with resource exchange.

    Usage::

        grown, ledger = ExchangeLedger.borrow(state, exchange_machines)
        result = SRA(SRAConfig(seed=1)).rebalance(grown, ledger)

    Without a ledger SRA degenerates to a plain LNS rebalancer over the
    given machines (useful as the no-exchange ablation).
    """

    name = "sra"

    def __init__(
        self,
        config: SRAConfig | None = None,
        *,
        exchange: "IncumbentChannel | None" = None,
    ) -> None:
        self.config = config or SRAConfig()
        #: Cooperative incumbent channel handed through to the engine
        #: (installed by ``run_sra_restarts`` on portfolio members; None
        #: for the ordinary blind search).
        self.exchange = exchange

    # ------------------------------------------------------------------ API
    def rebalance(
        self, state: ClusterState, ledger: ExchangeLedger | None = None
    ) -> RebalanceResult:
        cfg = self.config
        if cfg.restarts > 1:
            # Best-of-K independent restarts, fanned across the worker
            # pool sized by alns.n_workers (see repro.parallel).
            from repro.parallel import run_sra_restarts

            report = run_sra_restarts(
                state,
                ledger,
                config=cfg,
                restarts=cfg.restarts,
                n_workers=cfg.alns.n_workers,
                cooperative=cfg.cooperative,
                exchange_period=cfg.exchange_period,
            )
            return report.best
        started = time.perf_counter()  # repro: allow-wall-clock (runtime reporting)
        required = ledger.required_returns if ledger is not None else 0

        objective = Objective(
            state.assignment,
            state.sizes,
            required_returns=required,
            weights=cfg.weights,
        )
        planner = StagingPlanner(
            WaveScheduler(),
            max_hops_per_shard=cfg.max_hops_per_shard,
        )

        def best_filter(candidate: ClusterState) -> bool:
            if not cfg.feasibility_coupling:
                return objective.is_feasible(candidate)
            if not objective.is_feasible(candidate):
                return False
            if ledger is not None and not ledger.is_satisfiable(candidate):
                return False
            moves = diff_moves(state, candidate.assignment_view())
            return planner.plan(state, candidate.assignment).feasible if moves else True

        # Pin R designated-return machines (blocked = kept empty) so every
        # intermediate state satisfies the exchange contract structurally;
        # the exchange_swap_removal operator searches over which machines
        # those are.  Prefer borrowed machines as the initial designees.
        work = state.copy()
        if required > 0:
            vacant = list(work.vacant_machines())
            preferred = [m for m in (ledger.borrowed_ids if ledger else ()) if m in vacant]
            rest = [m for m in vacant if m not in set(preferred)]
            for mid in (preferred + rest)[:required]:
                work.block_machine(int(mid))

        engine = AlnsEngine(cfg.alns, self._destroy_ops(), self._repair_ops())
        initial_valid = objective.is_feasible(work) and (
            ledger is None or ledger.is_satisfiable(work)
        )
        tracer = obs.current().tracer
        with tracer.span(
            "sra.search", required_returns=required, seed=cfg.alns.seed
        ):
            outcome = engine.run(
                work,
                IncrementalObjective(objective, cross_check=cfg.debug_cross_check),
                best_filter=best_filter,
                initial_is_valid_best=initial_valid,
                exchange=self.exchange,
            )

        target = (
            outcome.best_assignment
            if outcome.best_assignment is not None
            else state.assignment
        )
        if outcome.best_assignment is not None and cfg.polish:
            with tracer.span("sra.polish", steps=cfg.polish_steps) as polish_span:
                polished = self._polish(state, outcome.best_assignment, ledger, required)
                kept = objective(polished) < outcome.best_objective - 1e-12 and (
                    best_filter(polished)
                )
                polish_span.set("kept", kept)
                if kept:
                    target = polished.assignment
        result = finalize_result(
            self.name,
            state,
            target,
            ledger=ledger,
            planner=planner,
            started_at=started,
            iterations=outcome.iterations,
            history=outcome.history,
        )
        if outcome.best_assignment is None:
            # Nothing valid was found (e.g. impossible vacancy contract);
            # report the no-op but flag infeasibility of the contract.
            result.feasible = False
        return result

    # ------------------------------------------------------------- internal
    def _polish(
        self,
        state: ClusterState,
        best: "np.ndarray",
        ledger: ExchangeLedger | None,
        required: int,
    ) -> ClusterState:
        """Steepest-descent move/swap polish of the incumbent.

        Designated-return machines (any ``required`` vacant machines of
        the incumbent, borrowed ones first) are blocked so the descent
        cannot spend them.
        """
        polished = state.copy()
        polished.apply_assignment(best)
        if required > 0:
            vacant = list(polished.vacant_machines())
            preferred = [
                m for m in (ledger.borrowed_ids if ledger else ()) if m in vacant
            ]
            rest = [m for m in vacant if m not in set(preferred)]
            for mid in (preferred + rest)[:required]:
                polished.block_machine(int(mid))
        ls = LocalSearchRebalancer(seed=self.config.alns.seed)
        ls.improve_in_place(
            polished,
            np.random.default_rng(self.config.alns.seed),
            max_steps=self.config.polish_steps,
        )
        return polished

    def _destroy_ops(self) -> tuple[DestroyOperator, ...]:
        if self.config.use_vacancy_removal:
            return DEFAULT_DESTROY_OPS
        # Ablation: no vacancy-minting and no designee swapping.
        return (random_removal, worst_machine_removal, shaw_removal)

    def _repair_ops(self) -> tuple[RepairOperator, ...]:
        return DEFAULT_REPAIR_OPS
