"""Tests for MaxScore dynamic pruning.

The non-negotiable invariant: MaxScore is *exact* — identical top-k
scores to the exhaustive scorer on every query — while touching fewer
postings.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    BM25Scorer,
    CorpusConfig,
    Document,
    InvertedIndex,
    MaxScoreScorer,
    Query,
    generate_corpus,
    generate_queries,
)


@pytest.fixture(scope="module")
def corpus_index():
    cfg = CorpusConfig(num_docs=400, vocab_size=900, seed=9)
    docs = generate_corpus(cfg)
    index = InvertedIndex.build(docs)
    return cfg, index


class TestEquivalence:
    def test_same_topk_scores_on_query_stream(self, corpus_index):
        cfg, index = corpus_index
        exhaustive = BM25Scorer(index)
        pruned = MaxScoreScorer(index)
        for q in generate_queries(cfg, 30, terms_per_query=(1, 5), seed=5):
            expect, _ = exhaustive.search(q, k=10)
            got, _ = pruned.search(q, k=10)
            np.testing.assert_allclose(
                sorted(r.score for r in got),
                sorted(r.score for r in expect),
                rtol=1e-9,
                err_msg=str(q.terms),
            )

    def test_single_term_query(self, corpus_index):
        _, index = corpus_index
        expect, _ = BM25Scorer(index).search(Query(("t3",)), k=5)
        got, _ = MaxScoreScorer(index).search(Query(("t3",)), k=5)
        assert [r.doc_id for r in got] == [r.doc_id for r in expect]

    def test_oov_query(self, corpus_index):
        _, index = corpus_index
        results, work = MaxScoreScorer(index).search(Query(("zzz",)), k=5)
        assert results == [] and work == 0

    def test_k_larger_than_matches(self):
        docs = [Document.from_text(0, "a b"), Document.from_text(1, "a c")]
        index = InvertedIndex.build(docs)
        results, _ = MaxScoreScorer(index).search(Query(("b",)), k=10)
        assert [r.doc_id for r in results] == [0]

    def test_duplicate_query_terms_deduplicated(self, corpus_index):
        _, index = corpus_index
        a, _ = MaxScoreScorer(index).search(Query(("t3", "t3")), k=5)
        b, _ = MaxScoreScorer(index).search(Query(("t3",)), k=5)
        assert [(r.doc_id, r.score) for r in a] == [(r.doc_id, r.score) for r in b]

    def test_invalid_k(self, corpus_index):
        _, index = corpus_index
        with pytest.raises(ValueError, match="k"):
            MaxScoreScorer(index).search(Query(("t3",)), k=0)


class TestPruningEffect:
    def test_work_overhead_is_bounded(self, corpus_index):
        """Per query, pruning may pay a small lookup overhead on short
        lists (binary probes into non-essential lists), but never more
        than a constant factor of the exhaustive cost."""
        cfg, index = corpus_index
        exhaustive = BM25Scorer(index)
        pruned = MaxScoreScorer(index)
        for q in generate_queries(cfg, 20, terms_per_query=(2, 5), seed=6):
            _, full_work = exhaustive.search(q, k=10)
            _, pruned_work = pruned.search(q, k=10)
            assert pruned_work <= 2 * full_work + 10, q.terms

    def test_saves_work_on_common_term_queries(self, corpus_index):
        """Queries mixing a rare and a very common term are the classic
        MaxScore win: the common term's list is mostly non-essential."""
        cfg, index = corpus_index
        exhaustive = BM25Scorer(index)
        pruned = MaxScoreScorer(index)
        total_full = total_pruned = 0
        for q in generate_queries(cfg, 25, terms_per_query=(2, 4), seed=7):
            _, w1 = exhaustive.search(q, k=5)
            _, w2 = pruned.search(q, k=5)
            total_full += w1
            total_pruned += w2
        assert total_pruned < total_full

    def test_term_upper_bound_is_valid(self, corpus_index):
        """No document's single-term contribution exceeds the bound."""
        _, index = corpus_index
        exhaustive = BM25Scorer(index)
        pruned = MaxScoreScorer(index)
        for term in list(index.terms())[:50]:
            results, _ = exhaustive.search(Query((term,)), k=1)
            if results:
                assert results[0].score <= pruned.term_upper_bound(term) + 1e-9


@given(seed=st.integers(min_value=0, max_value=80))
@settings(max_examples=15, deadline=None)
def test_property_maxscore_equals_exhaustive(seed):
    cfg = CorpusConfig(num_docs=120, vocab_size=300, seed=seed)
    docs = generate_corpus(cfg)
    index = InvertedIndex.build(docs)
    exhaustive = BM25Scorer(index)
    pruned = MaxScoreScorer(index)
    for q in generate_queries(cfg, 5, terms_per_query=(1, 4), seed=seed + 1):
        expect, _ = exhaustive.search(q, k=7)
        got, _ = pruned.search(q, k=7)
        np.testing.assert_allclose(
            sorted(r.score for r in got),
            sorted(r.score for r in expect),
            rtol=1e-9,
        )
