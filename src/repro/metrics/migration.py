"""Migration-cost summaries for reporting."""

from __future__ import annotations

from dataclasses import dataclass

from repro.migration import BandwidthModel, PlanResult

__all__ = ["MigrationSummary", "summarize_plan"]


@dataclass(frozen=True)
class MigrationSummary:
    """Flat summary of a migration plan for result tables."""

    num_moves: int
    num_hops: int
    num_waves: int
    total_bytes: float
    makespan_seconds: float
    direct_feasible: bool
    feasible: bool
    #: Per-wave durations (sums to the makespan); the migration
    #: executor occupies exactly these intervals on the runtime clock.
    wave_seconds: tuple[float, ...] = ()

    def row(self) -> dict[str, float]:
        return {
            "moves": self.num_moves,
            "hops": self.num_hops,
            "waves": self.num_waves,
            "bytes": self.total_bytes,
            "makespan_s": self.makespan_seconds,
            "direct": float(self.direct_feasible),
            "feasible": float(self.feasible),
        }


def summarize_plan(
    plan: PlanResult,
    num_machines: int,
    bandwidth: BandwidthModel | None = None,
) -> MigrationSummary:
    """Summarize *plan* under a bandwidth model (default 10 GbE)."""
    model = bandwidth or BandwidthModel()
    cost = model.cost(plan.schedule, num_machines)
    logical_moves = len({mv.shard_id for mv in plan.schedule.all_moves()})
    return MigrationSummary(
        num_moves=logical_moves,
        num_hops=plan.num_hops,
        num_waves=cost.num_waves,
        total_bytes=cost.total_bytes,
        makespan_seconds=cost.makespan_seconds,
        direct_feasible=plan.direct_feasible,
        feasible=plan.feasible,
        wave_seconds=cost.wave_seconds,
    )
