"""E17 — a shared pool serving multiple clusters (extension).

One pool of spare machines serves several clusters in sequence, each
episode lending B=2 and settling.  The audit trail shows the paper's
exchange at fleet scope: the pool's machine *count* is invariant while
its *composition* turns over (drained in-service machines replace lent
ones), and every cluster improves.
"""

from __future__ import annotations

from repro.algorithms import AlnsConfig, SRA, SRAConfig
from repro.experiments.common import scenario_instance
from repro.experiments.harness import register
from repro.pool import MachinePool, rebalance_with_pool
from repro.workloads import make_exchange_machines


@register("e17")
def run(fast: bool = True) -> list[dict]:
    num_clusters = 4 if fast else 8
    iterations = 500 if fast else 2000
    seed0 = 0

    template = scenario_instance(
        "zipf-popularity",
        {"num_machines": 16, "shards_per_machine": 6},
        seed=seed0,
    )
    pool = MachinePool(make_exchange_machines(template, 4))
    rows = []
    for c in range(num_clusters):
        state = scenario_instance(
            "zipf-popularity",
            {
                "num_machines": 16,
                "shards_per_machine": 6,
                "target_utilization": 0.85,
                "placement_skew": 0.5,
                "max_shard_fraction": 0.35,
            },
            seed=seed0 + c,
        )
        rebalance_with_pool(
            pool,
            state,
            SRA(SRAConfig(alns=AlnsConfig(iterations=iterations, seed=1))),
            budget=2,
            label=f"cluster-{c}",
        )
        ep = pool.history[-1]
        rows.append(
            {
                "episode": c,
                "cluster": ep.cluster_label,
                "lent": ep.lent,
                "returned": ep.returned,
                "exchanged": ep.exchanged,
                "feasible": ep.feasible,
                "peak_before": ep.peak_before,
                "peak_after": ep.peak_after,
                "pool_size_after": ep.pool_size_after,
            }
        )
    return rows
