"""Rebalancer interface and result container.

Every algorithm — SRA and all baselines — implements
:class:`Rebalancer.rebalance` and returns a :class:`RebalanceResult`, so
the experiment harness treats them uniformly.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.cluster import ClusterState, ExchangeLedger, ExchangeSettlement, ExchangeViolation
from repro.migration import PlanResult, StagingPlanner

__all__ = ["RebalanceResult", "Rebalancer", "finalize_result"]


@dataclass
class RebalanceResult:
    """Outcome of one rebalancing episode.

    Attributes
    ----------
    algorithm:
        Name of the producing algorithm.
    target_assignment:
        Proposed final assignment.
    feasible:
        Hard feasibility: capacity respected, vacancy contract satisfiable
        and a transient-feasible migration schedule exists.
    peak_before / peak_after:
        Cluster peak utilization before and after.
    plan:
        The migration plan (None when the algorithm proposes no change).
    settlement:
        Exchange settlement (None when no ledger was involved or the
        contract could not be satisfied).
    runtime_seconds:
        Wall-clock time of the algorithm itself (planning included).
    iterations:
        Search iterations performed (0 for constructive baselines).
    history:
        Objective trace (per accepted iteration), for convergence plots.
    """

    algorithm: str
    target_assignment: np.ndarray
    feasible: bool
    peak_before: float
    peak_after: float
    plan: PlanResult | None = None
    settlement: ExchangeSettlement | None = None
    runtime_seconds: float = 0.0
    iterations: int = 0
    history: list[float] = field(default_factory=list)

    @property
    def num_moves(self) -> int:
        """Logical shard moves (staging hops not double counted)."""
        if self.plan is None:
            return 0
        return len({mv.shard_id for mv in self.plan.schedule.all_moves()})

    @property
    def improvement(self) -> float:
        """Absolute reduction of peak utilization."""
        return self.peak_before - self.peak_after


class Rebalancer(ABC):
    """Interface of every rebalancing algorithm."""

    #: Human-readable algorithm name (used in tables).
    name: str = "rebalancer"

    @abstractmethod
    def rebalance(
        self, state: ClusterState, ledger: ExchangeLedger | None = None
    ) -> RebalanceResult:
        """Compute a rebalancing for *state*.

        *state* is never mutated.  *ledger* carries the exchange contract
        (borrowed machines are already part of *state* in that case).
        """


def finalize_result(
    algorithm: str,
    state: ClusterState,
    target: np.ndarray,
    *,
    ledger: ExchangeLedger | None,
    planner: StagingPlanner,
    started_at: float,
    iterations: int = 0,
    history: list[float] | None = None,
) -> RebalanceResult:
    """Shared epilogue: plan the migration, settle the ledger, time it.

    Used by every concrete rebalancer so feasibility is judged by one code
    path.
    """
    tracer = obs.current().tracer
    final = state.copy()
    final.apply_assignment(target)
    with tracer.span("migration.plan", algorithm=algorithm) as plan_span:
        plan = planner.plan(state, target)
        plan_span.set("feasible", plan.feasible)
        plan_span.set("direct_feasible", plan.direct_feasible)
        plan_span.set("staged_shards", len(plan.staged_shards))
        plan_span.set("waves", plan.schedule.num_waves)
        plan_span.set("moves", plan.schedule.num_moves)

    settlement = None
    contract_ok = True
    if ledger is not None:
        with tracer.span("exchange.settle") as settle_span:
            try:
                settlement = ledger.settle(final)
                settle_span.set("returned", len(settlement.returned_ids))
                settle_span.set(
                    "exchanged", len(settlement.retained_borrowed_ids)
                )
            except ExchangeViolation as exc:
                contract_ok = False
                settle_span.set("violation", str(exc))

    feasible = (
        bool(final.is_within_capacity())
        and plan.feasible
        and contract_ok
        and final.is_fully_assigned()
    )
    return RebalanceResult(
        algorithm=algorithm,
        target_assignment=np.asarray(target, dtype=np.int64).copy(),
        feasible=feasible,
        peak_before=state.peak_utilization(),
        peak_after=final.peak_utilization(),
        plan=plan,
        settlement=settlement,
        # repro: allow-wall-clock (runtime_seconds reporting)
        runtime_seconds=time.perf_counter() - started_at,
        iterations=iterations,
        history=history or [],
    )
