"""Setup shim for environments whose pip lacks the `wheel` package.

`pip install -e .` falls back to this legacy path when PEP 660 editable
builds are unavailable offline.
"""
from setuptools import setup

setup()
