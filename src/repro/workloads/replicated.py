"""Replicated-index instance generator.

Production search indexes replicate every shard (typically 2–3×) for
availability and query throughput; replicas of one logical shard must
live on distinct machines (**anti-affinity**), or one machine failure
would take multiple copies of the same index partition.

This generator extends the synthetic instances with a replication
factor: logical shards are drawn exactly as in
:mod:`repro.workloads.synthetic`, each is expanded into ``k`` replica
shards (query CPU splits across replicas; RAM/disk are full copies), and
the initial placement respects anti-affinity while still being skewed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_positive
from repro.cluster import ClusterState, Machine, Shard
from repro.workloads.synthetic import SyntheticConfig, _demands  # noqa: WPS450

__all__ = ["ReplicatedConfig", "generate_replicated"]


@dataclass(frozen=True)
class ReplicatedConfig:
    """Parameters of a replicated instance.

    Attributes
    ----------
    base:
        The synthetic configuration of the *logical* shards
    (``base.num_shards`` logical shards are drawn).
    replication_factor:
        Replicas per logical shard (must be ≤ machine count or
        anti-affinity is unsatisfiable).
    """

    base: SyntheticConfig = SyntheticConfig()
    replication_factor: int = 2

    def __post_init__(self) -> None:
        check_positive("replication_factor", self.replication_factor)
        if self.replication_factor > self.base.num_machines:
            raise ValueError(
                "replication_factor cannot exceed the machine count "
                f"({self.replication_factor} > {self.base.num_machines})"
            )

    @property
    def num_shards(self) -> int:
        return self.base.num_shards * self.replication_factor


def generate_replicated(cfg: ReplicatedConfig) -> ClusterState:
    """Generate a replicated instance (see :class:`ReplicatedConfig`).

    The placement is anti-affine by construction and skewed by the base
    config's ``placement_skew`` (skew is applied per replica index so
    replicas land on different-but-correlated machine subsets).
    """
    base = cfg.base
    k = cfg.replication_factor
    rng = np.random.default_rng(base.seed)
    machines = Machine.homogeneous(
        base.num_machines, base.machine_capacity, schema=base.schema, cls="replicated"
    )
    logical = _demands(base, rng)  # (n_logical, d) at target utilization

    # Expand into replicas.  Each replica carries 1/k of the logical
    # demand: query CPU splits across replicas naturally (each serves
    # 1/k of the stream), and for RAM/disk this normalization keeps the
    # *replicated* totals at the configured tightness, so replicated and
    # unreplicated instances of equal tightness are comparable.
    per_replica = logical / k

    shards: list[Shard] = []
    for logical_id in range(base.num_shards):
        for _ in range(k):
            shards.append(
                Shard(
                    id=len(shards),
                    demand=per_replica[logical_id].copy(),
                    schema=base.schema,
                    replica_of=logical_id,
                )
            )

    assign = _anti_affine_placement(cfg, np.stack([s.demand for s in shards]),
                                    np.array([s.replica_of for s in shards]),
                                    rng)
    return ClusterState(machines, shards, assign)


def _anti_affine_placement(
    cfg: ReplicatedConfig,
    demand: np.ndarray,
    replica_of: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Skew-weighted placement that never colocates siblings nor overflows."""
    base = cfg.base
    m = base.num_machines
    capacity = np.full((m, demand.shape[1]), base.machine_capacity)
    loads = np.zeros_like(capacity)
    assign = np.full(demand.shape[0], -1, dtype=np.int64)
    concentration = max(1e-3, 10.0 * (1.0 - base.placement_skew)) if base.placement_skew else None
    weights = (
        rng.dirichlet(np.full(m, concentration)) if concentration is not None else None
    )
    group_hosts: dict[int, set[int]] = {}

    order = np.argsort(-demand.sum(axis=1))
    for j in order:
        taken = group_hosts.setdefault(int(replica_of[j]), set())
        fits = np.all(capacity - loads >= demand[j] - 1e-12, axis=1)
        for host in taken:
            fits[host] = False
        candidates = np.flatnonzero(fits)
        if candidates.size == 0:
            raise ValueError(
                "anti-affine placement failed; lower target_utilization or "
                "replication_factor"
            )
        if weights is not None:
            p = weights[candidates]
            total = p.sum()
            if total > 0:
                choice = int(rng.choice(candidates, p=p / total))
            else:
                choice = int(rng.choice(candidates))
        else:
            util_after = (
                (loads[candidates] + demand[j]) / capacity[candidates]
            ).max(axis=1)
            choice = int(candidates[np.argmin(util_after)])
        assign[j] = choice
        loads[choice] += demand[j]
        taken.add(choice)
    return assign
