"""ASCII chart rendering for experiment figures.

The paper's evaluation is figures as much as tables; in an offline,
plotting-library-free environment the honest equivalent is a character
plot.  The benchmarks render the figure-shaped experiments (E2, E4,
E13, ...) with these helpers and persist them next to the tables under
``benchmarks/results/``.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro._validation import check_positive

__all__ = ["line_chart", "bar_chart"]

_MARKERS = "ox+*#@%&"


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    *,
    width: int = 64,
    height: int = 16,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) series as an ASCII scatter/line chart.

    Each series gets a marker from a fixed cycle; a legend maps markers
    to names.  Axes are linearly scaled to the data's bounding box.
    """
    check_positive("width", width)
    check_positive("height", height)
    if not series or all(len(pts) == 0 for pts in series.values()):
        return f"{title or 'chart'}\n(no data)"

    xs = np.array([p[0] for pts in series.values() for p in pts], dtype=float)
    ys = np.array([p[1] for pts in series.values() for p in pts], dtype=float)
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for k, (name, pts) in enumerate(series.items()):
        marker = _MARKERS[k % len(_MARKERS)]
        legend.append(f"{marker} {name}")
        for x, y in pts:
            col = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((y - y_lo) / (y_hi - y_lo) * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    y_hi_s, y_lo_s = f"{y_hi:.4g}", f"{y_lo:.4g}"
    pad = max(len(y_hi_s), len(y_lo_s))
    for r, row in enumerate(grid):
        label = y_hi_s if r == 0 else (y_lo_s if r == height - 1 else "")
        lines.append(f"{label.rjust(pad)} |{''.join(row)}")
    lines.append(f"{' ' * pad} +{'-' * width}")
    x_axis = f"{x_lo:.4g}".ljust(width - len(f"{x_hi:.4g}")) + f"{x_hi:.4g}"
    lines.append(f"{' ' * pad}  {x_axis}")
    lines.append(f"{' ' * pad}  {x_label} →   ({y_label} ↑)")
    lines.append("legend: " + "   ".join(legend))
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 48,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Render a horizontal bar chart (non-negative values)."""
    check_positive("width", width)
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return f"{title or 'chart'}\n(no data)"
    vals = np.asarray(values, dtype=float)
    if np.any(vals < 0):
        raise ValueError("bar_chart requires non-negative values")
    top = float(vals.max()) or 1.0
    name_pad = max(len(str(x)) for x in labels)
    lines = [title] if title else []
    for label, v in zip(labels, vals, strict=True):
        bar = "█" * max(1 if v > 0 else 0, int(round(v / top * width)))
        lines.append(f"{str(label).rjust(name_pad)} |{bar.ljust(width)} {v:.4g}{unit}")
    return "\n".join(lines)
