"""Shared experiment helpers."""

from __future__ import annotations

from typing import Any, Mapping

from repro.algorithms import AlnsConfig, SRA, SRAConfig
from repro.cluster import ClusterState, ExchangeLedger
from repro.workloads import make_exchange_machines

__all__ = ["make_sra", "run_sra_with_exchange", "scenario_instance"]


def make_sra(iterations: int, seed: int = 0, **sra_kwargs) -> SRA:
    """SRA with the experiment-standard configuration."""
    return SRA(SRAConfig(alns=AlnsConfig(iterations=iterations, seed=seed), **sra_kwargs))


def scenario_instance(
    scenario: str, params: Mapping[str, Any] | None = None, *, seed: int = 0
) -> ClusterState:
    """Generate one instance from the scenario registry.

    The standard way an experiment obtains an instance outside the named
    suites: the spec (scenario, params, seed) is the provenance record,
    and its hash ties the experiment's rows to a reproducible input.
    Imported lazily because the scenario families import the workload
    generators at module scope.
    """
    from repro.scenarios import ScenarioSpec, generate_instance

    return generate_instance(ScenarioSpec(scenario, dict(params or {}), seed=seed))


def run_sra_with_exchange(
    state: ClusterState,
    budget: int,
    *,
    iterations: int,
    seed: int = 0,
    required_returns: int | None = None,
    **sra_kwargs,
):
    """Borrow *budget* machines, run SRA, return (result, grown, ledger)."""
    grown, ledger = ExchangeLedger.borrow(
        state,
        make_exchange_machines(state, budget),
        required_returns=required_returns,
    )
    result = make_sra(iterations, seed, **sra_kwargs).rebalance(grown, ledger)
    return result, grown, ledger
