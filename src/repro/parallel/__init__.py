"""Process-parallel execution layer (zero new dependencies).

Public surface:

* :func:`~repro.parallel.seeds.spawn_seeds` — deterministic per-task
  seeds via ``numpy.random.SeedSequence.spawn`` keyed by task index;
* :class:`~repro.parallel.runner.ParallelRunner` — bounded worker pool
  with per-task timeouts, crash isolation and ``repro.obs`` merge;
* :func:`~repro.parallel.restarts.run_sra_restarts` — best-of-K SRA
  restart fan-out (what ``SRAConfig.restarts`` / CLI ``--restarts``
  drive);
* :func:`~repro.parallel.driver.run_experiments` /
  :func:`~repro.parallel.driver.save_tables` — parallel E1–E20
  experiment driver (what ``repro.cli experiment --all --workers N``
  drives).

See docs/ARCHITECTURE.md, "Parallel execution", for the seed-spawning
contract, worker crash semantics and the obs merge rules.
"""

from repro.parallel.driver import ExperimentResult, run_experiments, save_tables
from repro.parallel.restarts import RestartReport, run_sra_restarts
from repro.parallel.runner import ParallelRunner, TaskResult, TaskSpec
from repro.parallel.seeds import spawn_seed, spawn_seeds

__all__ = [
    "ExperimentResult",
    "ParallelRunner",
    "RestartReport",
    "TaskResult",
    "TaskSpec",
    "run_experiments",
    "run_sra_restarts",
    "save_tables",
    "spawn_seed",
    "spawn_seeds",
]
