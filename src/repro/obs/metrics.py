"""Metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the *quantitative* half of :mod:`repro.obs` (the tracer
is the *structural* half).  Instrumented code asks the registry for a
named instrument and updates it; the registry exports everything as one
JSON document (:meth:`MetricsRegistry.to_dict` / ``export_json``) so a
run's measured quantities — peak utilizations, latency distributions,
migration costs — survive as machine-readable artifacts instead of
being recomputed ad hoc by every caller.

Histograms use **fixed bucket edges** declared at creation: a value
``v`` lands in bucket ``i`` with ``edges[i-1] < v <= edges[i]`` (the
last bucket is the overflow ``> edges[-1]``).  Fixed edges make
histograms from different runs mergeable and diffable — the property
that makes regression gates on latency shape possible.  Two standard
edge sets are provided: :data:`LATENCY_EDGES_S` (seconds, log-spaced)
and :data:`UTILIZATION_EDGES` (linear to 1.0 plus overload buckets).

Like the tracer, the registry has a disabled singleton
(:data:`NULL_REGISTRY`) whose instruments are shared no-ops, so
metric updates in library code are safe and free when observability is
not active.
"""

from __future__ import annotations

import json
import os
from bisect import bisect_left
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "LATENCY_EDGES_S",
    "UTILIZATION_EDGES",
]

#: Log-spaced latency bucket edges in seconds (1 ms … 10 s).
LATENCY_EDGES_S: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0
)

#: Linear utilization edges with explicit overload buckets.
UTILIZATION_EDGES: tuple[float, ...] = (
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.25, 1.5, 2.0
)


class Counter:
    """Monotonically increasing counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, value: float = 1.0) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name}: increment must be >= 0")
        self.value += value

    def to_dict(self) -> float:
        return self.value


class Gauge:
    """Last-write-wins scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def to_dict(self) -> float | None:
        return self.value


class Histogram:
    """Fixed-bucket histogram (see module docstring for the bucket rule)."""

    __slots__ = ("name", "edges", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str, edges: Iterable[float]) -> None:
        self.name = name
        self.edges = tuple(float(e) for e in edges)
        if not self.edges:
            raise ValueError(f"histogram {self.name}: need at least one edge")
        if any(b <= a for a, b in zip(self.edges, self.edges[1:], strict=False)):
            raise ValueError(f"histogram {self.name}: edges must be increasing")
        self.counts = [0] * (len(self.edges) + 1)  # + overflow
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.observe(v)

    def bucket_of(self, value: float) -> int:
        """Index of the bucket *value* falls in (len(edges) = overflow)."""
        return bisect_left(self.edges, float(value))

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class MetricsRegistry:
    """Named instruments, created on first use, exported as one JSON doc."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ---------------------------------------------------------- instruments
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, edges: Iterable[float] = LATENCY_EDGES_S
    ) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, edges)
        elif tuple(float(e) for e in edges) != h.edges:
            raise ValueError(
                f"histogram {name!r} already registered with different edges"
            )
        return h

    # ---------------------------------------------------------------- merge
    def merge_dict(self, data: Mapping[str, Any]) -> None:
        """Fold another registry's :meth:`to_dict` export into this one.

        Counters add, gauges are last-write-wins (merge order decides),
        and histograms add bucket-wise — which requires identical edges,
        the property fixed edges exist to guarantee.  This is how a
        parent process absorbs the registries shipped back by parallel
        workers (see ``repro.parallel``).
        """
        for name, value in data.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in data.get("gauges", {}).items():
            if value is not None:
                self.gauge(name).set(value)
        for name, doc in data.get("histograms", {}).items():
            if doc is None:
                continue
            hist = self.histogram(name, doc["edges"])
            for i, c in enumerate(doc["counts"]):
                hist.counts[i] += int(c)
            hist.count += int(doc["count"])
            hist.sum += float(doc["sum"])
            if doc.get("min") is not None:
                hist.min = min(hist.min, float(doc["min"]))
            if doc.get("max") is not None:
                hist.max = max(hist.max, float(doc["max"]))

    # --------------------------------------------------------------- export
    def to_dict(self) -> dict[str, Any]:
        return {
            "counters": {k: c.to_dict() for k, c in sorted(self._counters.items())},
            "gauges": {k: g.to_dict() for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.to_dict() for k, h in sorted(self._histograms.items())
            },
        }

    def export_json(self, path: str | os.PathLike[str]) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


class _NullInstrument:
    """Shared no-op standing in for every disabled instrument."""

    __slots__ = ()
    name = ""
    value = None
    count = 0
    sum = 0.0
    mean = 0.0
    edges: tuple[float, ...] = ()
    counts: list[int] = []

    def inc(self, value: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: Iterable[float]) -> None:
        pass

    def to_dict(self) -> None:
        return None


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """Disabled registry: instruments are shared no-ops."""

    enabled = False

    def __init__(self) -> None:
        pass

    def counter(self, name: str) -> Counter:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def histogram(
        self, name: str, edges: Iterable[float] = LATENCY_EDGES_S
    ) -> Histogram:  # type: ignore[override]
        return _NULL_INSTRUMENT  # type: ignore[return-value]

    def merge_dict(self, data: Mapping[str, Any]) -> None:
        pass

    def to_dict(self) -> dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def export_json(self, path: str | os.PathLike[str]) -> None:
        raise RuntimeError("cannot export the disabled NULL_REGISTRY; "
                           "activate a real MetricsRegistry first")


#: The process-wide disabled registry (default ambient registry).
NULL_REGISTRY = NullRegistry()
