"""E13 — online rebalancing trajectories (extension).

Shape claims: "always" holds the lowest mean peak; "never" the highest;
"threshold" sits between on balance while migrating fewer bytes than
"always".
"""

from collections import defaultdict

import numpy as np

from repro.experiments import REGISTRY, is_full_run
from repro.experiments.ascii_chart import line_chart


def test_e13_online(benchmark, save_table, save_figure):
    rows = benchmark.pedantic(
        REGISTRY["e13"], kwargs={"fast": not is_full_run()}, rounds=1, iterations=1
    )
    save_table("e13", rows, "E13 — drift/rebalance trajectories by policy")

    by_policy = defaultdict(list)
    for r in rows:
        by_policy[r["policy"]].append(r)
    assert set(by_policy) == {"never", "threshold", "always"}
    seed0 = min(r["seed"] for r in rows)
    save_figure(
        "e13",
        line_chart(
            {
                policy: [
                    (r["epoch"], r["peak_after"])
                    for r in rs
                    if r["seed"] == seed0
                ]
                for policy, rs in by_policy.items()
            },
            title="E13 — peak utilization per epoch by policy (seed 0)",
            x_label="epoch",
            y_label="peak util",
        ),
    )

    mean_peak = {
        p: float(np.mean([r["peak_after"] for r in rs])) for p, rs in by_policy.items()
    }
    total_bytes = {p: max(r["cum_bytes"] for r in rs) for p, rs in by_policy.items()}

    assert mean_peak["always"] <= mean_peak["threshold"] + 1e-9
    assert mean_peak["threshold"] <= mean_peak["never"] + 1e-9
    assert mean_peak["never"] - mean_peak["always"] > 0.05  # drift really hurts
    assert total_bytes["never"] == 0
    assert 0 < total_bytes["threshold"] <= total_bytes["always"] + 1e-9
    # The threshold policy skips at least one calm epoch somewhere.
    assert any(not r["rebalanced"] for r in by_policy["threshold"])
