"""Tests for replica-aware query routing in the simulator."""

import numpy as np
import pytest

from repro.cluster import ClusterState, Machine, Shard
from repro.simulate import (
    ServingConfig,
    WorkProfile,
    simulate_routed_serving,
    simulate_serving,
)


def replicated_cluster(k=2, logical=4, machines=4, cap=4.0):
    """`logical` logical shards, k replicas each, spread over machines."""
    fleet = Machine.homogeneous(machines, {"cpu": cap, "ram": 100.0, "disk": 100.0})
    shards = []
    logical_of = []
    for g in range(logical):
        for _r in range(k):
            shards.append(
                Shard(
                    id=len(shards),
                    demand=np.array([1.0 / k, 1.0, 1.0]),
                    replica_of=g if k > 1 else -1,
                )
            )
            logical_of.append(g)
    assign = [(i * 2654435761 % machines) for i in range(len(shards))]
    # Ensure anti-affinity by round-robin per group instead.
    assign = []
    for g in range(logical):
        for r in range(k):
            assign.append((g + r * (machines // max(k, 1)) + r) % machines)
    state = ClusterState(fleet, shards, assign)
    return state, logical_of


class TestRoutedServing:
    def test_single_replica_matches_plain_simulator(self):
        state, logical_of = replicated_cluster(k=1)
        profile = WorkProfile(np.full((4, 4), 1000.0))
        cfg = ServingConfig(arrival_rate=20.0, duration=15.0, seed=3)
        plain = simulate_serving(state, profile, logical_of, cfg)
        routed = simulate_routed_serving(state, profile, logical_of, cfg)
        assert routed.latency == plain.latency

    @pytest.mark.parametrize("policy", ["random", "round_robin", "least_loaded"])
    def test_policies_run_and_complete(self, policy):
        state, logical_of = replicated_cluster(k=2)
        profile = WorkProfile(np.full((4, 4), 1000.0))
        cfg = ServingConfig(arrival_rate=20.0, duration=10.0, seed=4)
        report = simulate_routed_serving(
            state, profile, logical_of, cfg, policy=policy
        )
        assert report.queries_completed > 0
        assert report.latency.p99 > 0

    def test_least_loaded_beats_random_under_skew(self):
        # One machine is half-speed (background load): a load-aware router
        # shifts work to the fast replicas.
        state, logical_of = replicated_cluster(k=2)
        profile = WorkProfile(np.full((4, 4), 2000.0))
        cfg = ServingConfig(
            arrival_rate=25.0, duration=30.0, seed=5, background_load={0: 0.6}
        )
        rnd = simulate_routed_serving(state, profile, logical_of, cfg, policy="random")
        ll = simulate_routed_serving(
            state, profile, logical_of, cfg, policy="least_loaded"
        )
        assert ll.latency.p99 < rnd.latency.p99

    def test_replication_reduces_tail_vs_single_copy(self):
        # Same capacity, same per-query work: k=2 with least-loaded routing
        # should beat k=1 (scheduling freedom).
        single, logical_single = replicated_cluster(k=1)
        double, logical_double = replicated_cluster(k=2)
        profile = WorkProfile(np.full((6, 4), 2500.0))
        cfg = ServingConfig(arrival_rate=25.0, duration=30.0, seed=6)
        one = simulate_routed_serving(single, profile, logical_single, cfg)
        two = simulate_routed_serving(
            double, profile, logical_double, cfg, policy="least_loaded"
        )
        assert two.latency.p99 <= one.latency.p99 + 1e-9

    def test_round_robin_is_deterministic(self):
        state, logical_of = replicated_cluster(k=2)
        profile = WorkProfile(np.full((4, 4), 1000.0))
        cfg = ServingConfig(arrival_rate=15.0, duration=10.0, seed=7)
        a = simulate_routed_serving(state, profile, logical_of, cfg, policy="round_robin")
        b = simulate_routed_serving(state, profile, logical_of, cfg, policy="round_robin")
        assert a.latency == b.latency

    def test_validation(self):
        state, logical_of = replicated_cluster(k=2)
        profile = WorkProfile(np.full((4, 4), 1000.0))
        with pytest.raises(ValueError, match="policy"):
            simulate_routed_serving(
                state, profile, logical_of, policy="psychic"  # type: ignore[arg-type]
            )
        with pytest.raises(ValueError, match="every cluster shard"):
            simulate_routed_serving(state, profile, logical_of[:-1])
        with pytest.raises(ValueError, match="unknown logical"):
            simulate_routed_serving(state, profile, [99] * state.num_shards)
