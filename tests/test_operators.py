"""Tests for destroy and repair operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    AlnsConfig,
    AlnsEngine,
    Objective,
    Regret2Insertion,
    greedy_best_fit,
    random_removal,
    regret2_insertion,
    shaw_removal,
    vacancy_removal,
    worst_machine_removal,
)
from repro.algorithms.destroy import DEFAULT_DESTROY_OPS
from repro.algorithms.repair import DEFAULT_REPAIR_OPS
from repro.cluster import ClusterState, Machine, Shard
from repro.workloads import SyntheticConfig, generate


def rng():
    return np.random.default_rng(0)


def demo_state():
    machines = Machine.homogeneous(4, 10.0)
    shards = [Shard(id=j, demand=np.full(3, 1.0 + j * 0.5)) for j in range(8)]
    return ClusterState(machines, shards, [0, 0, 0, 1, 1, 2, 2, 3])


class TestDestroyOperators:
    @pytest.mark.parametrize(
        "op", [random_removal, worst_machine_removal, shaw_removal, vacancy_removal]
    )
    def test_removed_shards_are_unassigned(self, op):
        state = demo_state()
        removed = op(state, rng(), 3)
        assert removed, f"{op.__name__} removed nothing"
        assert set(state.unassigned_shards()) == set(removed)

    @pytest.mark.parametrize("op", [random_removal, shaw_removal])
    def test_respects_quantity(self, op):
        state = demo_state()
        removed = op(state, rng(), 3)
        assert len(removed) == 3

    def test_random_removal_caps_at_assigned_count(self):
        state = demo_state()
        removed = random_removal(state, rng(), 100)
        assert len(removed) == 8

    def test_worst_machine_targets_peak(self):
        state = demo_state()
        # machine with the highest peak utilization
        hottest = int(np.argmax(state.machine_peak_utilization()))
        hot_members = {int(j) for j in state.machine_shards(hottest)}
        removed = worst_machine_removal(state, rng(), 2)
        assert set(removed) <= hot_members

    def test_shaw_removes_similar_shards(self):
        # Two clusters of demand shapes: cpu-heavy vs disk-heavy.
        machines = Machine.homogeneous(2, 100.0)
        cpu_heavy = [Shard(id=j, demand=np.array([5.0, 1.0, 1.0])) for j in range(3)]
        disk_heavy = [
            Shard(id=3 + j, demand=np.array([1.0, 1.0, 5.0])) for j in range(3)
        ]
        state = ClusterState(machines, cpu_heavy + disk_heavy, [0, 0, 0, 1, 1, 1])
        removed = shaw_removal(state, np.random.default_rng(1), 3)
        # All removed shards share a shape family.
        families = {0 if j < 3 else 1 for j in removed}
        assert len(families) == 1

    def test_vacancy_removal_empties_least_loaded(self):
        state = demo_state()
        score = (state.loads / state.capacity).sum(axis=1)
        expected = int(np.argmin(np.where(state.shard_counts() > 0, score, np.inf)))
        expected_members = {int(j) for j in state.machine_shards(expected)}
        removed = vacancy_removal(state, rng(), 8)
        assert set(removed) == expected_members
        assert state.shard_counts()[expected] == 0

    def test_vacancy_removal_prefers_in_service(self):
        machines = Machine.homogeneous(2, 10.0) + [
            Machine(id=2, capacity=np.full(3, 10.0), exchange=True)
        ]
        shards = Shard.uniform(3, 1.0)
        # exchange machine 2 has the least load but should not be chosen
        state = ClusterState(machines, shards, [0, 0, 2])
        removed = vacancy_removal(state, rng(), 3)
        # machine 1 is vacant already; least-loaded occupied in-service is 0
        assert set(removed) <= {0, 1}

    def test_vacancy_removal_empty_cluster(self):
        machines = Machine.homogeneous(2, 10.0)
        shards = Shard.uniform(1, 1.0)
        state = ClusterState(machines, shards)  # all unassigned
        assert vacancy_removal(state, rng(), 2) == []


class TestRepairOperators:
    @pytest.mark.parametrize("op", [greedy_best_fit, regret2_insertion])
    def test_reinserts_everything(self, op):
        state = demo_state()
        removed = random_removal(state, rng(), 4)
        op(state, rng(), removed)
        assert state.is_fully_assigned()

    @pytest.mark.parametrize("op", [greedy_best_fit, regret2_insertion])
    def test_noop_on_empty(self, op):
        state = demo_state()
        before = state.assignment
        op(state, rng(), [])
        np.testing.assert_array_equal(state.assignment, before)

    @pytest.mark.parametrize("op", [greedy_best_fit, regret2_insertion])
    def test_prefers_feasible_placements(self, op):
        # One machine nearly full; repair must not overflow it.
        machines = Machine.homogeneous(2, 10.0)
        shards = Shard.uniform(4, 4.0)
        state = ClusterState(machines, shards, [0, 0, 1, 1])
        state.unassign(3)
        op(state, rng(), [3])
        assert state.is_within_capacity()

    def test_repair_improves_balance_vs_random(self):
        state = generate(SyntheticConfig(num_machines=10, shards_per_machine=6, seed=3))
        work = state.copy()
        removed = worst_machine_removal(work, rng(), 10)
        greedy_best_fit(work, rng(), removed)
        assert work.peak_utilization() <= state.peak_utilization() + 1e-9


class TestRegret2Gate:
    """The exact/pruned size gate is a pure performance crossover: both
    paths must produce bitwise-identical placements (and therefore
    bitwise-identical engine trajectories)."""

    def test_invalid_exact_max_rejected(self):
        with pytest.raises(ValueError, match="exact_max"):
            Regret2Insertion(0)

    @pytest.mark.parametrize("seed", [0, 5, 11])
    def test_pruned_matches_exact_operator_level(self, seed):
        state = generate(
            SyntheticConfig(num_machines=40, shards_per_machine=5, seed=seed)
        )
        exact_state, pruned_state = state.copy(), state.copy()
        removed = random_removal(exact_state, np.random.default_rng(seed), 25)
        pruned_state.unassign_many(removed)
        # exact_max=1 forces the pruned path at every size; a huge gate
        # forces the exact path.
        Regret2Insertion(exact_max=10**9)(exact_state, rng(), removed)
        Regret2Insertion(exact_max=1)(pruned_state, rng(), removed)
        np.testing.assert_array_equal(
            exact_state.assignment, pruned_state.assignment
        )

    def test_pruned_matches_exact_with_replicas_and_blocked(self):
        machines = Machine.homogeneous(12, 30.0)
        shards = [
            Shard(id=j, demand=np.full(3, 1.0 + (j % 5)), replica_of=j // 3)
            for j in range(24)
        ]
        state = ClusterState(machines, shards, [j % 12 for j in range(24)])
        # Remove the evens plus machine 7's hosts so it can be blocked.
        removed = sorted(set(range(0, 24, 2)) | {7, 19})
        state.unassign_many(removed)
        state.block_machine(7)
        exact_state, pruned_state = state.copy(), state.copy()
        Regret2Insertion(exact_max=10**9)(exact_state, rng(), removed)
        Regret2Insertion(exact_max=1)(pruned_state, rng(), removed)
        np.testing.assert_array_equal(
            exact_state.assignment, pruned_state.assignment
        )

    def test_engine_trajectory_identical_across_gate(self):
        state = generate(
            SyntheticConfig(num_machines=30, shards_per_machine=5, seed=2)
        )
        results = []
        for gate in (1, 10**9):
            cfg = AlnsConfig(iterations=120, seed=7, regret2_exact_max=gate)
            engine = AlnsEngine(cfg, DEFAULT_DESTROY_OPS, DEFAULT_REPAIR_OPS)
            obj = Objective(state.assignment, state.sizes)
            results.append(engine.run(state.copy(), obj))
        pruned, exact = results
        assert repr(pruned.best_objective) == repr(exact.best_objective)
        assert pruned.accepted == exact.accepted
        assert pruned.history == exact.history
        np.testing.assert_array_equal(pruned.best_assignment, exact.best_assignment)

    def test_bind_resolves_gate_from_config(self):
        bound = regret2_insertion.bind(AlnsConfig(regret2_exact_max=7))
        assert bound.exact_max == 7
        assert bound is not regret2_insertion  # default instance untouched
        assert regret2_insertion.exact_max is None

    def test_explicit_gate_wins_over_config(self):
        op = Regret2Insertion(exact_max=3)
        assert op.bind(AlnsConfig(regret2_exact_max=500)) is op


@given(seed=st.integers(min_value=0, max_value=100), q=st.integers(min_value=1, max_value=20))
@settings(max_examples=40, deadline=None)
def test_property_destroy_repair_roundtrip_preserves_shards(seed, q):
    """Any destroy+repair cycle ends fully assigned with loads consistent."""
    r = np.random.default_rng(seed)
    state = generate(
        SyntheticConfig(num_machines=6, shards_per_machine=5, seed=seed)
    )
    ops = [random_removal, worst_machine_removal, shaw_removal, vacancy_removal]
    repairs = [greedy_best_fit, regret2_insertion]
    removed = ops[seed % 4](state, r, q)
    repairs[seed % 2](state, r, removed)
    assert state.is_fully_assigned()
    recomputed = np.zeros_like(state.loads)
    np.add.at(recomputed, state.assignment, state.demand)
    np.testing.assert_allclose(state.loads, recomputed, atol=1e-9)
