"""E7 — transient feasibility (stringent-environment figure analogue).

Shape claims (the paper's motivation): on tight instances, direct
migration strands moves; staging through in-service headroom does not
reliably fix it; borrowed exchange machines make every plan feasible.
"""

from collections import defaultdict

from repro.experiments import REGISTRY, is_full_run


def test_e7_transient(benchmark, save_table):
    rows = benchmark.pedantic(
        REGISTRY["e7"], kwargs={"fast": not is_full_run()}, rounds=1, iterations=1
    )
    save_table("e7", rows, "E7 — migration feasibility by execution mode")

    by_instance = defaultdict(dict)
    for r in rows:
        by_instance[r["instance"]][r["mode"]] = r

    any_direct_stuck = False
    for instance, modes in by_instance.items():
        direct = modes["direct"]
        if not direct["feasible"]:
            any_direct_stuck = True
            assert direct["stranded"] > 0
        # The largest exchange budget tried must make the plan feasible.
        biggest = max(m for m in modes if m.startswith("staged-B"))
        assert modes[biggest]["feasible"], f"{instance}: {biggest} still stuck"
        assert modes[biggest]["stranded"] == 0
    # The motivation must actually manifest on this suite.
    assert any_direct_stuck, "no instance exhibited a transient deadlock"
