"""E4 — LNS convergence (paper analogue: the convergence figure).

Objective trace of SRA over iterations on one mid-size tight instance,
across seeds, downsampled for tabular output.  Shows the ALNS profile:
fast early descent, long plateau-punctuated tail.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import run_sra_with_exchange, scenario_instance
from repro.experiments.harness import register


@register("e4")
def run(fast: bool = True) -> list[dict]:
    seeds = (1, 2) if fast else (1, 2, 3, 4, 5)
    iterations = 800 if fast else 3000
    state = scenario_instance(
        "zipf-popularity",
        {
            "num_machines": 30,
            "shards_per_machine": 6,
            "target_utilization": 0.85,
            "placement_skew": 0.55,
            "max_shard_fraction": 0.35,
        },
        seed=0,
    )
    checkpoints = np.unique(
        np.concatenate(
            [[0, 1, 2, 5, 10], np.linspace(0, iterations, 17).astype(int)]
        )
    )
    rows = []
    for seed in seeds:
        result, _, _ = run_sra_with_exchange(state, 2, iterations=iterations, seed=seed)
        hist = np.minimum.accumulate(np.asarray(result.history))
        for it in checkpoints:
            if it < len(hist):
                rows.append(
                    {
                        "seed": seed,
                        "iteration": int(it),
                        "best_objective": float(hist[it]),
                    }
                )
    return rows
