"""E14 — MaxScore dynamic pruning (extension, after the authors'
companion paper "Hybrid Dynamic Pruning", 2020).

Measures postings touched by exhaustive BM25 vs MaxScore on the same
query stream, broken down by query length, and the knock-on effect on
serving latency (cheaper service times at equal arrival rate).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.cluster import ClusterState, Machine
from repro.engine import (
    BM25Scorer,
    CorpusConfig,
    InvertedIndex,
    MaxScoreScorer,
    ShardedIndex,
    generate_corpus,
    generate_queries,
)
from repro.experiments.harness import register
from repro.simulate import ServingConfig, WorkProfile, simulate_serving


@register("e14")
def run(fast: bool = True) -> list[dict]:
    num_docs = 3000 if fast else 20000
    num_queries = 200 if fast else 1000
    cfg = CorpusConfig(num_docs=num_docs, vocab_size=4000, seed=13)
    docs = generate_corpus(cfg)
    index = InvertedIndex.build(docs)
    exhaustive = BM25Scorer(index)
    pruned = MaxScoreScorer(index)

    by_len: dict[int, list[tuple[int, int]]] = defaultdict(list)
    for q in generate_queries(cfg, num_queries, terms_per_query=(1, 5), seed=17):
        _, w_full = exhaustive.search(q, k=10)
        _, w_pruned = pruned.search(q, k=10)
        by_len[len(q.terms)].append((w_full, w_pruned))

    rows = []
    for qlen in sorted(by_len):
        pairs = by_len[qlen]
        full = float(np.mean([p[0] for p in pairs]))
        prn = float(np.mean([p[1] for p in pairs]))
        rows.append(
            {
                "series": "work",
                "query_len": qlen,
                "queries": len(pairs),
                "exhaustive_postings": full,
                "maxscore_postings": prn,
                "savings_pct": 100.0 * (1.0 - prn / max(full, 1e-9)),
            }
        )

    # Serving effect: same placement and arrivals, service costs from the
    # two evaluation strategies.
    num_shards = 12 if fast else 32
    sharded = ShardedIndex.build(docs, num_shards)
    queries = generate_queries(cfg, 100 if fast else 400, seed=19)
    full_profile = WorkProfile.measure(sharded, queries)
    pruned_rows = []
    for q in queries:
        row = []
        for ix in sharded.indexes:
            _, w = MaxScoreScorer(ix, stats=sharded.stats).search(q, k=10)
            row.append(w)
        pruned_rows.append(row)
    pruned_profile = WorkProfile(np.asarray(pruned_rows, dtype=np.float64))

    demand = full_profile.shard_load_share()
    machines = Machine.homogeneous(4, {"cpu": 4.0, "ram": 1e12, "disk": 1e12})
    from repro.cluster import Shard

    shards = [
        Shard(
            id=s,
            demand=np.array([max(float(demand[s]), 1e-9), 1.0, 1.0]),
        )
        for s in range(num_shards)
    ]
    state = ClusterState(machines, shards, [s % 4 for s in range(num_shards)])
    serving = ServingConfig(
        arrival_rate=40.0,
        duration=30.0,
        postings_per_cpu_second=3e4 if fast else 1e5,
        seed=23,
    )
    for label, profile in (("exhaustive", full_profile), ("maxscore", pruned_profile)):
        report = simulate_serving(state, profile, list(range(num_shards)), serving)
        rows.append(
            {
                "series": "latency",
                "strategy": label,
                "p50_ms": 1e3 * report.latency.p50,
                "p99_ms": 1e3 * report.latency.p99,
                "mean_ms": 1e3 * report.latency.mean,
                "peak_busy": report.peak_busy_fraction,
            }
        )
    return rows
