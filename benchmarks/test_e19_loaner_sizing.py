"""E19 — loaner sizing (extension).

Shape claims: all scales produce feasible episodes; bigger loaners never
balance worse; lending oversized machines under the count policy loses
pool capacity (the quantified argument for the ``capacity`` policy).
"""

from collections import defaultdict

from repro.experiments import REGISTRY, is_full_run


def test_e19_loaner_sizing(benchmark, save_table):
    rows = benchmark.pedantic(
        REGISTRY["e19"], kwargs={"fast": not is_full_run()}, rounds=1, iterations=1
    )
    save_table("e19", rows, "E19 — balance and pool capacity vs loaner size")

    by_instance = defaultdict(dict)
    for r in rows:
        by_instance[r["instance"]][r["loaner_scale"]] = r
    for instance, scales in by_instance.items():
        assert set(scales) == {0.5, 1.0, 2.0}
        for r in scales.values():
            assert r["feasible"], instance
            assert r["peak_after"] < r["peak_before"]
        # A 2x loaner is at least as useful as a 0.5x one.
        assert scales[2.0]["peak_after"] <= scales[0.5]["peak_after"] + 0.01
        # Lending a 2x machine and getting a ~1x machine back loses pool
        # capacity whenever the episode exchanges (delta <= 0 always).
        assert scales[2.0]["pool_capacity_delta"] <= 1e-6
