"""``repro lint`` / ``python -m repro.analysis`` — the lint front end.

Runs the registered rule pack over the target paths (default:
``src/repro``), applies the committed baseline ratchet and reports:

* **new** findings — violations beyond the grandfathered counts; their
  presence makes the exit code 1;
* **grandfathered** findings — debt the baseline admits; always listed
  so it stays visible, never fatal;
* **stale** baseline groups — debt that has been paid down; the hint to
  run ``--update-baseline`` and lock the improvement in.

``--no-baseline`` reports every finding as new (the nightly job uses it
to keep the full debt inventory visible as an artifact); ``--rules``
restricts the pack; ``--format json`` emits a machine-readable report.

The interprocedural pack (REP006–REP009) runs by default; disable with
``--no-interprocedural`` for a fast per-module pass.  ``--callgraph
{dot,json}`` prints the resolved call graph instead of linting, and
``--explain REPnnn`` prints one rule's contract, rationale and
suppression example straight from its docstring.
"""

from __future__ import annotations

import argparse
import inspect
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis import baseline as baseline_mod
from repro.analysis import interp as _interp  # noqa: F401  (registers the pack)
from repro.analysis import rules as _rules  # noqa: F401  (registers the pack)
from repro.analysis.callgraph import Project
from repro.analysis.engine import all_rules, lint_paths, load_contexts

__all__ = ["add_arguments", "run", "main", "find_root"]

DEFAULT_BASELINE = "lint-baseline.json"


def find_root(start: Path) -> Path:
    """Nearest ancestor of *start* holding a pyproject.toml (else *start*)."""
    start = start.resolve()
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return start


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src/repro under the root)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help="repo root for relative paths and the default baseline "
        "(default: auto-detected via pyproject.toml)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=f"ratchet baseline (default: <root>/{DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline: every finding is reported as new",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to the current findings and exit 0",
    )
    parser.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="report format",
    )
    parser.add_argument(
        "--interprocedural",
        action="store_true",
        default=True,
        dest="interprocedural",
        help="run the cross-module pack REP006-REP009 over the call "
        "graph (default: on)",
    )
    parser.add_argument(
        "--no-interprocedural",
        action="store_false",
        dest="interprocedural",
        help="per-module rules only (fast path; skips REP006-REP009)",
    )
    parser.add_argument(
        "--callgraph",
        choices=("dot", "json"),
        default=None,
        metavar="FMT",
        help="print the resolved call graph of the target (dot|json) "
        "instead of linting",
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="REPnnn",
        help="print one rule's contract, rationale and suppression "
        "example, then exit",
    )


def explain(rule_ref: str) -> int:
    """Print one rule's docstring (contract / rationale / suppression)."""
    from repro.analysis.engine import get_rule

    try:
        rule = get_rule(rule_ref.strip())
    except KeyError:
        known = ", ".join(r.rule_id for r in all_rules())
        print(f"lint: unknown rule {rule_ref!r} (known: {known})", file=sys.stderr)
        return 2
    doc = inspect.getdoc(type(rule)) or rule.description
    print(f"{rule.rule_id} ({rule.slug})")
    print("=" * (len(rule.rule_id) + len(rule.slug) + 3))
    print(doc)
    return 0


def run(args: argparse.Namespace) -> int:
    if getattr(args, "explain", None):
        return explain(args.explain)
    root = find_root(Path(args.root) if args.root else Path.cwd())
    paths = (
        [Path(p) for p in args.paths]
        if args.paths
        else [root / "src" / "repro"]
    )
    if getattr(args, "callgraph", None):
        contexts, errors = load_contexts(paths, root)
        for finding in errors:
            print(finding.format(), file=sys.stderr)
        graph = Project(contexts.values()).graph
        if args.callgraph == "dot":
            print(graph.to_dot(), end="")
        else:
            print(json.dumps(graph.to_json(), indent=2))
        return 0
    selected = None
    if args.rules:
        wanted = {r.strip().upper() for r in args.rules.split(",") if r.strip()}
        selected = [r for r in all_rules() if r.rule_id in wanted]
        unknown = wanted - {r.rule_id for r in selected}
        if unknown:
            print(f"lint: unknown rules {sorted(unknown)}", file=sys.stderr)
            return 2

    findings = lint_paths(
        paths, root, rules=selected, interprocedural=args.interprocedural
    )
    baseline_path = (
        Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE
    )

    if args.update_baseline:
        baseline_mod.save(findings, baseline_path)
        print(
            f"lint: baseline updated with {len(findings)} finding(s) -> "
            f"{baseline_path}"
        )
        return 0

    groups = {} if args.no_baseline else baseline_mod.load(baseline_path)
    result = baseline_mod.compare(findings, groups)

    if args.output_format == "json":
        print(
            json.dumps(
                {
                    "new": [f.to_dict() for f in result.new],
                    "grandfathered": [f.to_dict() for f in result.grandfathered],
                    "stale": result.stale,
                },
                indent=2,
            )
        )
        return 0 if result.ok else 1

    for f in result.new:
        print(f.format())
    for f in result.grandfathered:
        print(f"{f.format()}  [baseline]")
    if result.stale:
        freed = sum(result.stale.values())
        print(
            f"lint: {freed} baselined finding(s) no longer occur — run "
            "`python -m repro.analysis --update-baseline` to lock that in"
        )
    if result.new:
        rule_ids = sorted({f.rule_id for f in result.new})
        print(
            f"lint: {len(result.new)} new finding(s), "
            f"{len(result.grandfathered)} grandfathered — run "
            f"`repro lint --explain {rule_ids[0]}` for the contract behind "
            "each rule"
        )
        return 1
    print(
        f"lint: ok ({len(result.grandfathered)} grandfathered finding(s), "
        f"{len(all_rules() if selected is None else selected)} rule(s))"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST invariant linter for determinism, RNG, lock and "
        "transaction discipline (per-module rules REP001-REP005, "
        "interprocedural rules REP006-REP009)",
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))
