"""Migration cost model: bytes, time and makespan.

A simple, defensible network model: every machine has one NIC of
``bandwidth`` bytes/second, full duplex.  Moves in the same wave run
concurrently but share the NICs of their endpoints, so a wave lasts as
long as its busiest NIC:

``wave_time = max_machine( bytes_out/bw , bytes_in/bw )``

and the makespan is the sum of wave times.  The model deliberately
ignores cross-wave pipelining (waves are barriers) — conservative, and
consistent with how index copies are actually sequenced (a shard copy
must be complete and verified before the source is dropped).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._validation import check_positive
from repro.migration.scheduler import Schedule

__all__ = ["BandwidthModel", "MigrationCost"]


@dataclass(frozen=True)
class MigrationCost:
    """Summary of a schedule's cost under a bandwidth model."""

    total_bytes: float
    num_moves: int
    num_waves: int
    num_staging_hops: int
    makespan_seconds: float
    wave_seconds: tuple[float, ...]


@dataclass(frozen=True)
class BandwidthModel:
    """Per-machine NIC bandwidth in bytes/second (full duplex)."""

    bandwidth: float = 1.25e9  # 10 GbE

    def __post_init__(self) -> None:
        check_positive("bandwidth", self.bandwidth)

    def machine_wave_seconds(self, wave, num_machines: int) -> np.ndarray:
        """(m,) seconds each machine's NIC is busy during one wave.

        Full duplex: a machine sending and receiving concurrently is busy
        for the *larger* of the two transfer times, not their sum.  The
        wave's duration is the fleet maximum of these (the wave is a
        barrier on its busiest NIC), so per-machine busy seconds never
        exceed the wave duration — the accounting ``cost`` and the
        serving-derating models share.
        """
        out_bytes = np.zeros(num_machines)
        in_bytes = np.zeros(num_machines)
        for mv in wave:
            out_bytes[mv.src] += mv.bytes
            in_bytes[mv.dst] += mv.bytes
        return np.maximum(out_bytes, in_bytes) / self.bandwidth

    def machine_busy_seconds(self, schedule: Schedule, num_machines: int) -> np.ndarray:
        """(m,) total NIC-busy seconds per machine across all waves."""
        seconds = np.zeros(num_machines)
        for wave in schedule.waves:
            seconds += self.machine_wave_seconds(wave, num_machines)
        return seconds

    def wave_duration(self, wave, num_machines: int) -> float:
        """Duration of one wave: busiest NIC's transfer time."""
        return float(
            self.machine_wave_seconds(wave, num_machines).max(initial=0.0)
        )

    def cost(self, schedule: Schedule, num_machines: int) -> MigrationCost:
        """Full cost summary for *schedule*."""
        wave_secs = tuple(
            self.wave_duration(wave, num_machines) for wave in schedule.waves
        )
        hops = sum(1 for mv in schedule.all_moves() if mv.is_staged_hop)
        return MigrationCost(
            total_bytes=schedule.total_bytes(),
            num_moves=schedule.num_moves,
            num_waves=schedule.num_waves,
            num_staging_hops=hops,
            makespan_seconds=float(sum(wave_secs)),
            wave_seconds=wave_secs,
        )
