"""Continuous rebalancing: warm starts, migration budgets, drift
detection, cooldown hysteresis, and exchange-pool sizing.

The load-bearing contracts of the incremental controller stack:

* ``SRA.rebalance(..., warm_start=state.assignment)`` is bitwise the
  cold solve (the equivalence gate for every legacy call site);
* warm-starting from a previous incumbent can only match or improve the
  cold objective on the same instance and seed;
* a declared ``MigrationBudget`` is never exceeded — audited against
  the returned assignment delta *and* the scheduled plan's bytes;
* release rounds (owe returns, borrow nothing) work from a fully
  occupied fleet;
* the pool-sizing policy borrows under pressure, holds through the
  hysteresis window, and releases when quiet.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    AlnsConfig,
    BudgetLocalityBias,
    MigrationBudget,
    SRA,
    SRAConfig,
    random_removal,
)
from repro.algorithms.objective import Objective
from repro.cluster import (
    ExchangeLedger,
    ExchangePoolManager,
    PoolSizingPolicy,
)
from repro.online import PopularityDrift
from repro.pool import MachinePool
from repro.runtime import (
    ClusterHandle,
    DriftDetectorConfig,
    DriftProcess,
    EwmaDriftDetector,
    IncrementalRebalanceController,
    RebalanceController,
    Runtime,
    ServingFleet,
)
from repro.scenarios import ScenarioSpec, generate_instance
from repro.workloads import SyntheticConfig, generate, make_exchange_machines


def hot_state(seed=0, machines=8, spm=5, skew=0.6):
    return generate(
        SyntheticConfig(
            num_machines=machines,
            shards_per_machine=spm,
            placement_skew=skew,
            demand_dist="zipf",
            seed=seed,
        )
    )


def quick_sra(iterations=200, seed=1, **kwargs):
    return SRA(SRAConfig(alns=AlnsConfig(iterations=iterations, seed=seed), **kwargs))


# --------------------------------------------------------------------------
# MigrationBudget


class TestMigrationBudget:
    def test_unbounded_by_default(self):
        b = MigrationBudget()
        assert not b.bounded
        assert b.admits(10**9, 1e18)

    def test_validation(self):
        with pytest.raises(ValueError):
            MigrationBudget(max_moves=-1)
        with pytest.raises(ValueError):
            MigrationBudget(max_bytes=-0.5)

    def test_admits_and_exhausted(self):
        b = MigrationBudget(max_moves=3, max_bytes=10.0)
        assert b.admits(3, 10.0)
        assert not b.admits(4, 0.0)
        assert not b.admits(0, 10.5)
        assert not b.exhausted(2, 5.0)
        assert b.exhausted(3, 0.0)
        assert b.exhausted(0, 10.0)


# --------------------------------------------------------------------------
# Warm-start contract


class TestWarmStart:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 7))
    def test_warm_from_serving_placement_is_bitwise_cold(self, seed):
        state = hot_state(seed=seed)
        cold = quick_sra().rebalance(state)
        warm = quick_sra().rebalance(state, warm_start=state.assignment)
        np.testing.assert_array_equal(cold.target_assignment, warm.target_assignment)
        assert cold.feasible == warm.feasible

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 5))
    def test_warm_from_cold_best_never_worse(self, seed):
        state = hot_state(seed=seed)
        cold = quick_sra().rebalance(state)
        rewarmed = quick_sra().rebalance(state, warm_start=cold.target_assignment)
        obj = Objective(state.assignment, state.sizes)
        w = state.copy()
        w.apply_assignment(rewarmed.target_assignment)
        c = state.copy()
        c.apply_assignment(cold.target_assignment)
        assert obj(w) <= obj(c) + 1e-12

    def test_warm_start_shape_checked(self):
        state = hot_state()
        with pytest.raises(ValueError, match="shape"):
            quick_sra().rebalance(state, warm_start=np.zeros(3, dtype=np.int64))

    def test_warm_start_rejected_with_restarts(self):
        state = hot_state()
        sra = SRA(SRAConfig(alns=AlnsConfig(iterations=50, seed=1), restarts=2))
        with pytest.raises(ValueError, match="restarts"):
            sra.rebalance(state, warm_start=state.assignment)


# --------------------------------------------------------------------------
# Budget enforcement


class TestBudgetedRounds:
    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 3), max_moves=st.sampled_from([2, 5, 9]))
    def test_moves_never_exceed_budget(self, seed, max_moves):
        state = hot_state(seed=seed)
        result = quick_sra(
            migration_budget=MigrationBudget(max_moves=max_moves)
        ).rebalance(state)
        moved = int(np.count_nonzero(result.target_assignment != state.assignment))
        assert moved <= max_moves
        if result.feasible and result.plan is not None:
            final = state.copy()
            final.apply_assignment(result.target_assignment)
            assert final.validate() is None or True  # validate() raises on error

    def test_zero_move_budget_is_noop(self):
        state = hot_state()
        result = quick_sra(
            migration_budget=MigrationBudget(max_moves=0)
        ).rebalance(state)
        np.testing.assert_array_equal(result.target_assignment, state.assignment)

    def test_byte_budget_caps_scheduled_plan(self):
        state = hot_state()
        cap = float(np.sort(state.sizes)[:4].sum())
        result = quick_sra(
            migration_budget=MigrationBudget(max_bytes=cap)
        ).rebalance(state)
        if result.feasible and result.plan is not None:
            assert result.plan.schedule.total_bytes() <= cap + 1e-9
        moves, drift_bytes = state.assignment_drift(result.target_assignment)
        assert drift_bytes <= cap + 1e-9

    def test_unbounded_budget_matches_budgetless_solve(self):
        state = hot_state()
        plain = quick_sra().rebalance(state)
        nulled = quick_sra(migration_budget=MigrationBudget()).rebalance(state)
        np.testing.assert_array_equal(
            plain.target_assignment, nulled.target_assignment
        )


class TestBudgetLocalityBias:
    def test_passthrough_under_budget(self):
        state = hot_state()
        reference = state.assignment_view().copy()
        bias = BudgetLocalityBias(
            random_removal, reference, state.sizes, MigrationBudget(max_moves=5)
        )
        biased, direct = state.copy(), state.copy()
        assert bias(biased, np.random.default_rng(3), 4) == random_removal(
            direct, np.random.default_rng(3), 4
        )

    def test_at_cap_removes_only_moved_shards(self):
        state = hot_state()
        reference = state.assignment_view().copy()
        work = state.copy()
        # Move three shards somewhere else to sit exactly at the cap.
        moved_ids = [0, 1, 2]
        for sid in moved_ids:
            src = int(work.assignment_view()[sid])
            work.move(sid, (src + 1) % work.num_machines)
        bias = BudgetLocalityBias(
            random_removal, reference, state.sizes, MigrationBudget(max_moves=3)
        )
        removed = bias(work, np.random.default_rng(0), 2)
        assert set(removed) <= set(moved_ids)
        assert all(work.assignment_view()[sid] == -1 for sid in removed)


# --------------------------------------------------------------------------
# Release rounds from a fully occupied fleet


class TestReleaseRounds:
    def test_drain_establishes_return_contract(self):
        state = generate(
            SyntheticConfig(
                num_machines=8,
                shards_per_machine=4,
                target_utilization=0.45,
                seed=2,
            )
        )
        assert state.vacant_machines().size == 0
        grown, ledger = ExchangeLedger.borrow(state, [], required_returns=1)
        result = quick_sra(iterations=400).rebalance(grown, ledger)
        assert result.feasible
        final = grown.copy()
        final.apply_assignment(result.target_assignment)
        assert ledger.select_returns(final).size == 1

    def test_undrainable_contract_reported_infeasible(self):
        from repro.cluster import ClusterState, Machine, Shard

        state = ClusterState(
            Machine.homogeneous(2, 10.0), Shard.uniform(4, 1.0), [0, 0, 1, 1]
        )
        grown, ledger = ExchangeLedger.borrow(state, [], required_returns=2)
        result = quick_sra(iterations=10).rebalance(grown, ledger)
        assert not result.feasible


# --------------------------------------------------------------------------
# Drift detector


class TestEwmaDriftDetector:
    def test_warmup_blocks_first_checks(self):
        det = EwmaDriftDetector(DriftDetectorConfig(warmup_checks=3))
        det.observe(0.0, np.array([2.0]))
        assert not det.should_trigger()
        det.observe(1.0, np.array([2.0]))
        assert not det.should_trigger()
        det.observe(2.0, np.array([2.0]))
        assert det.should_trigger()

    def test_hot_peak_triggers(self):
        det = EwmaDriftDetector(DriftDetectorConfig(hot_threshold=0.9, ewma_alpha=1.0))
        det.observe(0.0, np.array([0.95, 0.5]))
        det.observe(1.0, np.array([0.95, 0.5]))
        assert det.ewma_peak == pytest.approx(0.95)
        assert det.should_trigger()

    def test_flat_low_does_not_trigger(self):
        det = EwmaDriftDetector(DriftDetectorConfig(hot_threshold=0.9))
        for t in range(6):
            det.observe(float(t), np.array([0.5, 0.4]))
        assert det.slope == pytest.approx(0.0, abs=1e-12)
        assert not det.should_trigger()

    def test_rising_slope_triggers_before_hot(self):
        det = EwmaDriftDetector(
            DriftDetectorConfig(
                hot_threshold=0.95, slope_threshold=0.005, ewma_alpha=1.0
            )
        )
        for t, p in enumerate([0.5, 0.55, 0.6, 0.65, 0.7]):
            det.observe(float(t), np.array([p]))
        assert det.ewma_peak < 0.95
        assert det.slope > 0.005
        assert det.should_trigger()

    def test_fleet_resize_resets_smoothing(self):
        det = EwmaDriftDetector(DriftDetectorConfig(ewma_alpha=0.1))
        det.observe(0.0, np.array([1.0, 1.0]))
        det.observe(1.0, np.array([0.2, 0.2, 0.2]))
        assert det.ewma_peak == pytest.approx(0.2)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DriftDetectorConfig(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            DriftDetectorConfig(slope_window=1)
        with pytest.raises(ValueError):
            DriftDetectorConfig(warmup_checks=0)


# --------------------------------------------------------------------------
# Pool sizing policy


class TestPoolSizingPolicy:
    def test_band_validation(self):
        with pytest.raises(ValueError):
            PoolSizingPolicy(borrow_above=0.7, release_below=0.8)

    def test_borrow_scales_with_overload(self):
        p = PoolSizingPolicy(borrow_above=0.9, overload_gain=20.0, max_borrow_per_round=4)
        d = p.decide(peak=0.95, on_loan=0, available=10, rounds_held=0)
        assert d.borrow == 1 and d.reason == "overload"
        d = p.decide(peak=1.04, on_loan=0, available=10, rounds_held=0)
        assert d.borrow == 3
        d = p.decide(peak=2.0, on_loan=0, available=2, rounds_held=0)
        assert d.borrow == 2  # capped by availability

    def test_hold_then_release(self):
        p = PoolSizingPolicy(
            borrow_above=0.9, release_below=0.8, min_hold_rounds=2, max_release_per_round=1
        )
        held = p.decide(peak=0.5, on_loan=2, available=0, rounds_held=1)
        assert held.release == 0
        released = p.decide(peak=0.5, on_loan=2, available=0, rounds_held=2)
        assert released.release == 1 and released.reason == "release"

    def test_quiet_band_is_idle_or_hold(self):
        p = PoolSizingPolicy(borrow_above=0.9, release_below=0.8)
        assert p.decide(peak=0.85, on_loan=0, available=5, rounds_held=9).borrow == 0
        assert p.decide(peak=0.85, on_loan=1, available=5, rounds_held=9).release == 0


class TestExchangePoolManager:
    def test_machine_rounds_integrate_standing_loan(self):
        mgr = ExchangePoolManager(PoolSizingPolicy(borrow_above=0.9, min_hold_rounds=1))
        d = mgr.check(peak=1.0, available=4)
        assert d.borrow > 0
        mgr.note(d, borrowed=2, released=0)
        mgr.check(peak=0.85, available=2)
        mgr.check(peak=0.85, available=2)
        assert mgr.on_loan == 2
        assert mgr.machine_rounds == 4  # 2 loaned machines held over 2 checks

    def test_note_rejects_over_release(self):
        mgr = ExchangePoolManager()
        d = mgr.check(peak=0.5, available=0)
        with pytest.raises(ValueError):
            mgr.note(d, borrowed=0, released=1)


# --------------------------------------------------------------------------
# Controller behaviour on the event runtime


def _drift_instance(seed=0, **overrides):
    params = {"target_utilization": 0.68, **overrides}
    return generate_instance(ScenarioSpec("demand-drift", params, seed=seed))


def _simulated_controller(state, handle, *, cls=RebalanceController, **kwargs):
    cpu = state.schema.index("cpu")
    fleet = ServingFleet(state.capacity[:, cpu] * 2e5)
    location = state.assignment_view().copy()
    return cls(
        handle,
        quick_sra(iterations=120),
        execution="simulated",
        fleet=fleet,
        location=location,
        **kwargs,
    )


class TestCooldown:
    def test_cooldown_spaces_episodes(self):
        state = _drift_instance()
        handle = ClusterHandle(state)
        rt = Runtime()
        rt.add(
            DriftProcess(
                handle,
                PopularityDrift(drift=0.4, target_utilization=0.8, seed=5),
                epochs=6,
                epoch_length=10.0,
            )
        )
        ctrl = RebalanceController(
            handle,
            quick_sra(iterations=100),
            policy="always",
            execution="instant",
            check_interval=1.0,
            horizon=60.0,
            cooldown=10.0,
        )
        rt.add(ctrl)
        rt.run()
        completed = [
            e["completed_at"] for e in ctrl.episodes if e["completed_at"] is not None
        ]
        assert len(completed) >= 2
        gaps = np.diff(np.array(completed))
        assert (gaps >= 10.0 - 1e-9).all()

    def test_zero_cooldown_preserves_legacy_density(self):
        state = _drift_instance()
        handle = ClusterHandle(state)
        rt = Runtime()
        ctrl = RebalanceController(
            handle,
            quick_sra(iterations=50),
            policy="always",
            execution="instant",
            check_interval=1.0,
            horizon=5.0,
        )
        rt.add(ctrl)
        rt.run()
        assert len(ctrl.episodes) == 5  # every check fires


class TestIncrementalController:
    def test_budget_respected_every_round(self):
        state = _drift_instance()
        handle = ClusterHandle(state)
        rt = Runtime()
        rt.add(
            DriftProcess(
                handle,
                PopularityDrift(drift=0.1, target_utilization=0.68, seed=7),
                epochs=4,
                epoch_length=30.0,
            )
        )
        ctrl = _simulated_controller(
            state,
            handle,
            cls=IncrementalRebalanceController,
            detector_config=DriftDetectorConfig(hot_threshold=0.78),
            check_interval=10.0,
            horizon=120.0,
            cooldown=10.0,
        )
        ctrl.rebalancer = quick_sra(
            iterations=120, migration_budget=MigrationBudget(max_moves=6)
        )
        rt.add(ctrl)
        rt.run()
        fired = [e for e in ctrl.episodes if e["feasible"]]
        assert fired, "detector never fired on a hot drifting cluster"
        assert all(e["moves"] <= 6 for e in ctrl.episodes)

    def test_runs_are_deterministic(self):
        def one_run():
            state = _drift_instance()
            handle = ClusterHandle(state)
            rt = Runtime()
            rt.add(
                DriftProcess(
                    handle,
                    PopularityDrift(drift=0.1, target_utilization=0.68, seed=7),
                    epochs=3,
                    epoch_length=30.0,
                )
            )
            ctrl = _simulated_controller(
                state,
                handle,
                cls=IncrementalRebalanceController,
                detector_config=DriftDetectorConfig(hot_threshold=0.78),
                check_interval=10.0,
                horizon=90.0,
            )
            rt.add(ctrl)
            rt.run()
            return ctrl.episodes

        assert one_run() == one_run()

    def test_in_flight_guard_blocks_refire(self):
        state = _drift_instance()
        handle = ClusterHandle(state)
        ctrl = _simulated_controller(
            state,
            handle,
            cls=IncrementalRebalanceController,
            detector_config=DriftDetectorConfig(
                hot_threshold=0.01, warmup_checks=1
            ),
        )
        rt = Runtime()
        rt.add(ctrl)
        outcome = ctrl.maybe_rebalance(rt)
        if outcome.in_flight:
            second = ctrl.maybe_rebalance(rt)
            assert not second.attempted

    def test_pool_borrow_hold_release_cycle(self):
        state = _drift_instance()
        handle = ClusterHandle(state)
        pool = MachinePool(make_exchange_machines(state, 4))
        rt = Runtime()
        rt.add(
            DriftProcess(
                handle,
                PopularityDrift(drift=0.3, target_utilization=0.75, seed=9),
                epochs=8,
                epoch_length=60.0,
            )
        )
        ctrl = IncrementalRebalanceController(
            handle,
            quick_sra(iterations=200),
            detector_config=DriftDetectorConfig(hot_threshold=0.85),
            pool=pool,
            pool_policy=PoolSizingPolicy(borrow_above=0.85, release_below=0.75),
            execution="instant",
            check_interval=15.0,
            horizon=480.0,
        )
        rt.add(ctrl)
        rt.run()
        mgr = ctrl.pool_manager
        assert mgr is not None
        borrowed = sum(h["borrowed"] for h in mgr.history)
        released = sum(h["released"] for h in mgr.history)
        assert borrowed > 0, "pool was never tapped under drift pressure"
        assert released > 0, "loan was never released on a quiet cluster"
        assert mgr.on_loan == borrowed - released
        assert pool.size + mgr.on_loan == 4
        assert handle.state.num_machines == state.num_machines + mgr.on_loan

    def test_pool_requires_instant_execution(self):
        state = _drift_instance()
        handle = ClusterHandle(state)
        with pytest.raises(ValueError, match="instant"):
            _simulated_controller(
                state,
                handle,
                cls=IncrementalRebalanceController,
                pool=MachinePool(make_exchange_machines(state, 2)),
            )


# --------------------------------------------------------------------------
# demand-drift scenario family


class TestDemandDriftScenario:
    def test_deterministic_per_seed(self):
        a = _drift_instance(seed=3)
        b = _drift_instance(seed=3)
        np.testing.assert_array_equal(a.demand, b.demand)
        np.testing.assert_array_equal(a.assignment, b.assignment)
        c = _drift_instance(seed=4)
        assert not np.array_equal(a.demand, c.demand)

    def test_hotspot_shift_heats_the_peak(self):
        mild = _drift_instance(seed=0, hotspot_shift=0.0)
        hot = _drift_instance(seed=0, hotspot_shift=0.5)
        assert hot.peak_utilization() > mild.peak_utilization()

    def test_flash_crowd_concentrates_demand(self):
        calm = _drift_instance(seed=0, flash_multiplier=1.0)
        flash = _drift_instance(seed=0, flash_multiplier=20.0, flash_fraction=0.05)
        # Total demand is re-waterfilled to the same target, so a flash
        # crowd shows up as concentration: a hotter peak machine.
        assert flash.peak_utilization() > calm.peak_utilization()


class TestAssignmentDrift:
    def test_counts_moves_and_bytes(self):
        state = hot_state()
        ref = state.assignment_view().copy()
        moves, volume = state.assignment_drift(ref)
        assert moves == 0 and volume == 0.0
        work = state.copy()
        src = int(work.assignment_view()[0])
        work.move(0, (src + 1) % work.num_machines)
        moves, volume = work.assignment_drift(ref)
        assert moves == 1
        assert volume == pytest.approx(float(state.sizes[0]))

    def test_shape_checked(self):
        state = hot_state()
        with pytest.raises(ValueError, match="shape"):
            state.assignment_drift(np.zeros(2, dtype=np.int64))
