"""E5 — datacenter snapshots (paper analogue: the real-data table).

Before/after balance, migration cost, exchange accounting and runtime on
drifted datacenter snapshots (the substitution for the paper's
production data; DESIGN.md §3).
"""

from __future__ import annotations

from repro.algorithms import LocalSearchRebalancer
from repro.core import ResourceExchangeRebalancer
from repro.experiments.common import make_sra
from repro.experiments.harness import register
from repro.migration import BandwidthModel
from repro.workloads import datacenter_suite

#: Datacenter shard sizes are expressed in GB (the disk dimension of the
#: generator), so bandwidth is GB/s — 1.25 GB/s ≈ one 10 GbE NIC.
_NET = BandwidthModel(bandwidth=1.25)


@register("e5")
def run(fast: bool = True) -> list[dict]:
    seeds = (0,) if fast else (0, 1, 2)
    iterations = 2000 if fast else 5000
    rows = []
    for name, state in datacenter_suite(seeds=seeds):
        for algo_name, rebalancer in (
            (
                "local-search",
                ResourceExchangeRebalancer(LocalSearchRebalancer(seed=1), bandwidth=_NET),
            ),
            (
                "sra-b2",
                ResourceExchangeRebalancer(
                    make_sra(iterations, seed=1), exchange_machines=2, bandwidth=_NET
                ),
            ),
        ):
            report = rebalancer.run(state)
            rows.append(
                {
                    "instance": name,
                    "algorithm": algo_name,
                    "peak_before": report.before.peak_utilization,
                    "peak_after": report.after.peak_utilization,
                    "cv_after": report.after.cv,
                    "moves": report.migration.num_moves,
                    "gb_moved": report.migration.total_bytes,
                    "makespan_s": report.migration.makespan_seconds,
                    "borrowed": report.borrowed,
                    "returned": report.returned,
                    "exchanged": report.exchanged,
                    "feasible": report.feasible,
                    "runtime_s": report.result.runtime_seconds,
                }
            )
    return rows
