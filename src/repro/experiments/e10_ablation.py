"""E10 — SRA design ablations (paper analogue: the design-choices table;
DESIGN.md §6).

Variants on the tight suite, all with a 2-machine exchange budget:

* ``full``         — SRA as shipped;
* ``no-vacancy``   — without the vacancy-minting / designee-swap destroy
  operators (generic LNS only);
* ``no-coupling``  — transient schedulability not checked during search
  (post-hoc only);
* ``no-adaptive``  — operator weights frozen (reaction = 0);
* ``hill-climb``   — SA acceptance disabled (temperature ~ 0);
* ``no-polish``    — final steepest-descent polish disabled.
"""

from __future__ import annotations

from dataclasses import replace

from repro.algorithms import AlnsConfig, SRA, SRAConfig
from repro.cluster import ExchangeLedger
from repro.experiments.harness import register
from repro.workloads import make_exchange_machines, tight_suite


def _variants(iterations: int, seed: int) -> dict[str, SRAConfig]:
    base = SRAConfig(alns=AlnsConfig(iterations=iterations, seed=seed))
    return {
        "full": base,
        "no-vacancy": replace(base, use_vacancy_removal=False),
        "no-coupling": replace(base, feasibility_coupling=False),
        "no-adaptive": replace(base, alns=replace(base.alns, reaction=0.0)),
        "hill-climb": replace(
            base, alns=replace(base.alns, start_temperature_ratio=1e-9)
        ),
        "no-polish": replace(base, polish=False),
    }


@register("e10")
def run(fast: bool = True) -> list[dict]:
    seeds = (0,) if fast else (0, 1, 2)
    iterations = 600 if fast else 2500
    rows = []
    for name, state in tight_suite(seeds=seeds):
        grown, ledger = ExchangeLedger.borrow(state, make_exchange_machines(state, 2))
        for variant, cfg in _variants(iterations, seed=1).items():
            result = SRA(cfg).rebalance(grown, ledger)
            rows.append(
                {
                    "instance": name,
                    "variant": variant,
                    "peak_after": result.peak_after,
                    "feasible": result.feasible,
                    "moves": result.num_moves,
                    "runtime_s": result.runtime_seconds,
                }
            )
    return rows
