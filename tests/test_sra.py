"""Tests for the ALNS engine and SRA end-to-end behaviour.

These are the core claims of the reproduction: SRA balances clusters,
honours the exchange contract (returns R vacant machines, possibly
different from the borrowed ones), produces transient-feasible plans,
and beats direct baselines on tight instances.
"""

import numpy as np
import pytest

from repro.algorithms import (
    AlnsConfig,
    AlnsEngine,
    GreedyRebalancer,
    LocalSearchRebalancer,
    Objective,
    SRA,
    SRAConfig,
    DEFAULT_DESTROY_OPS,
    DEFAULT_REPAIR_OPS,
)
from repro.cluster import ClusterState, ExchangeLedger, Machine, Shard
from repro.workloads import SyntheticConfig, generate, make_exchange_machines


def quick_cfg(iterations=400, seed=0, **kwargs):
    return SRAConfig(alns=AlnsConfig(iterations=iterations, seed=seed, **kwargs))


class TestAlnsConfig:
    def test_defaults_valid(self):
        AlnsConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"iterations": 0},
            {"time_limit": 0.0},
            {"removal_fraction_min": 0.5, "removal_fraction_max": 0.2},
            {"cooling": 0.0},
            {"cooling": 1.5},
            {"segment_length": 0},
            {"reaction": 1.5},
            {"regret2_exact_max": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AlnsConfig(**kwargs)


class TestAlnsEngine:
    def test_requires_operators(self):
        with pytest.raises(ValueError, match="at least one"):
            AlnsEngine(AlnsConfig(), [], DEFAULT_REPAIR_OPS)

    def test_improves_imbalanced_cluster(self):
        machines = Machine.homogeneous(4, 10.0)
        shards = Shard.uniform(8, 1.0)
        state = ClusterState(machines, shards, [0] * 8)
        obj = Objective(state.assignment, state.sizes)
        engine = AlnsEngine(AlnsConfig(iterations=300, seed=1), DEFAULT_DESTROY_OPS, DEFAULT_REPAIR_OPS)
        outcome = engine.run(state, obj)
        assert outcome.best_assignment is not None
        best = state.copy()
        best.apply_assignment(outcome.best_assignment)
        assert best.peak_utilization() <= 0.3

    def test_history_starts_at_initial(self):
        state = generate(SyntheticConfig(num_machines=6, shards_per_machine=5, seed=0))
        obj = Objective(state.assignment, state.sizes)
        engine = AlnsEngine(AlnsConfig(iterations=50, seed=1), DEFAULT_DESTROY_OPS, DEFAULT_REPAIR_OPS)
        outcome = engine.run(state, obj)
        assert outcome.history[0] == pytest.approx(obj(state))
        assert len(outcome.history) == outcome.iterations + 1

    def test_best_filter_veto(self):
        state = generate(SyntheticConfig(num_machines=6, shards_per_machine=5, seed=0))
        obj = Objective(state.assignment, state.sizes)
        engine = AlnsEngine(AlnsConfig(iterations=100, seed=1), DEFAULT_DESTROY_OPS, DEFAULT_REPAIR_OPS)
        outcome = engine.run(state, obj, best_filter=lambda s: False, initial_is_valid_best=False)
        assert outcome.best_assignment is None
        assert outcome.rejected_by_filter > 0

    def test_deterministic_per_seed(self):
        state = generate(SyntheticConfig(num_machines=6, shards_per_machine=5, seed=0))
        obj = Objective(state.assignment, state.sizes)
        engine = AlnsEngine(AlnsConfig(iterations=120, seed=7), DEFAULT_DESTROY_OPS, DEFAULT_REPAIR_OPS)
        a = engine.run(state, obj)
        b = engine.run(state, obj)
        np.testing.assert_array_equal(a.best_assignment, b.best_assignment)
        assert a.best_objective == b.best_objective

    def test_operator_weights_reported(self):
        state = generate(SyntheticConfig(num_machines=6, shards_per_machine=5, seed=0))
        obj = Objective(state.assignment, state.sizes)
        engine = AlnsEngine(AlnsConfig(iterations=150, seed=1), DEFAULT_DESTROY_OPS, DEFAULT_REPAIR_OPS)
        outcome = engine.run(state, obj)
        assert any(k.startswith("destroy:") for k in outcome.operator_weights)
        assert any(k.startswith("repair:") for k in outcome.operator_weights)
        assert all(w > 0 for w in outcome.operator_weights.values())

    def test_time_limit_stops_early(self):
        state = generate(SyntheticConfig(num_machines=10, shards_per_machine=8, seed=0))
        obj = Objective(state.assignment, state.sizes)
        engine = AlnsEngine(
            AlnsConfig(iterations=10_000_000, time_limit=0.2, seed=1),
            DEFAULT_DESTROY_OPS,
            DEFAULT_REPAIR_OPS,
        )
        outcome = engine.run(state, obj)
        assert outcome.iterations < 10_000_000


class TestSRA:
    def test_balances_without_exchange(self):
        state = generate(
            SyntheticConfig(num_machines=10, shards_per_machine=8, seed=3, placement_skew=0.6)
        )
        result = SRA(quick_cfg()).rebalance(state)
        assert result.feasible
        assert result.peak_after < result.peak_before

    def test_final_state_within_capacity(self):
        state = generate(SyntheticConfig(num_machines=10, shards_per_machine=8, seed=3))
        result = SRA(quick_cfg()).rebalance(state)
        final = state.copy()
        final.apply_assignment(result.target_assignment)
        assert final.is_within_capacity()

    def test_exchange_contract_settled(self):
        state = generate(
            SyntheticConfig(num_machines=10, shards_per_machine=8, seed=5, target_utilization=0.8)
        )
        grown, ledger = ExchangeLedger.borrow(state, make_exchange_machines(state, 2))
        result = SRA(quick_cfg(iterations=600)).rebalance(grown, ledger)
        assert result.feasible
        assert result.settlement is not None
        assert len(result.settlement.returned_ids) == 2
        # Final state: returned machines are vacant.
        final = grown.copy()
        final.apply_assignment(result.target_assignment)
        for mid in result.settlement.returned_ids:
            assert final.shard_counts()[mid] == 0

    def test_exchange_improves_tight_instance(self):
        state = generate(
            SyntheticConfig(
                num_machines=16,
                shards_per_machine=10,
                seed=7,
                target_utilization=0.85,
                placement_skew=0.5,
            )
        )
        no_exch = SRA(quick_cfg(iterations=500)).rebalance(state)
        grown, ledger = ExchangeLedger.borrow(state, make_exchange_machines(state, 3))
        with_exch = SRA(quick_cfg(iterations=500)).rebalance(grown, ledger)
        assert with_exch.feasible
        # Exchange machines must not hurt, and ordinarily help.
        assert with_exch.peak_after <= no_exch.peak_after + 0.02

    def test_plan_is_executable(self):
        state = generate(SyntheticConfig(num_machines=10, shards_per_machine=8, seed=9))
        result = SRA(quick_cfg()).rebalance(state)
        assert result.plan is not None
        assert result.plan.feasible
        # Execute the waves and confirm we land on the target.
        sim = state.copy()
        for wave in result.plan.schedule.waves:
            inflight = np.zeros_like(sim.loads)
            for mv in wave:
                inflight[mv.dst] += sim.demand[mv.shard_id]
            assert np.all(sim.loads + inflight <= sim.capacity + 1e-9)
            for mv in wave:
                sim.move(mv.shard_id, mv.dst)
        np.testing.assert_array_equal(sim.assignment, result.target_assignment)

    def test_impossible_contract_reported_infeasible(self):
        # Demand too high for any machine to be vacated.
        machines = Machine.homogeneous(2, 10.0)
        shards = Shard.uniform(4, 4.0)  # 16 total; one machine can hold 2 max
        state = ClusterState(machines, shards, [0, 0, 1, 1])
        grown, ledger = ExchangeLedger.borrow(state, [], required_returns=2)
        result = SRA(quick_cfg(iterations=100)).rebalance(grown, ledger)
        assert not result.feasible

    def test_beats_baselines_on_tight_skewed_instance(self):
        state = generate(
            SyntheticConfig(
                num_machines=20,
                shards_per_machine=10,
                seed=11,
                target_utilization=0.85,
                placement_skew=0.6,
            )
        )
        grown, ledger = ExchangeLedger.borrow(state, make_exchange_machines(state, 2))
        sra = SRA(quick_cfg(iterations=800)).rebalance(grown, ledger)
        greedy = GreedyRebalancer().rebalance(state)
        ls = LocalSearchRebalancer(seed=1).rebalance(state)
        assert sra.feasible
        assert sra.peak_after <= min(greedy.peak_after, ls.peak_after) + 1e-6

    def test_deterministic_per_seed(self):
        state = generate(SyntheticConfig(num_machines=8, shards_per_machine=6, seed=1))
        a = SRA(quick_cfg(seed=5)).rebalance(state)
        b = SRA(quick_cfg(seed=5)).rebalance(state)
        np.testing.assert_array_equal(a.target_assignment, b.target_assignment)

    def test_ablation_flags(self):
        state = generate(SyntheticConfig(num_machines=8, shards_per_machine=6, seed=1))
        no_vac = SRA(SRAConfig(alns=AlnsConfig(iterations=100), use_vacancy_removal=False))
        no_couple = SRA(SRAConfig(alns=AlnsConfig(iterations=100), feasibility_coupling=False))
        assert no_vac.rebalance(state).feasible
        assert no_couple.rebalance(state).feasible

    def test_config_validation(self):
        with pytest.raises(ValueError, match="max_hops"):
            SRAConfig(max_hops_per_shard=0)

    def test_seed_override(self):
        cfg = SRAConfig(seed=42)
        assert cfg.alns.seed == 42
