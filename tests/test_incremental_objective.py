"""IncrementalObjective must agree with Objective bitwise.

The delta-evaluated engine only works because the cache-backed evaluator
produces the exact float the from-scratch evaluator produces — same IEEE
operations in the same order.  These tests compare every term with
``==`` (not approx) across feasible, overloaded, vacancy-short and
replica-conflicted states, and pin that the delta-evaluated engine walks
the same trajectory as the legacy copy-based engine.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.destroy import DEFAULT_DESTROY_OPS
from repro.algorithms.lns import AlnsConfig, AlnsEngine
from repro.algorithms.objective import IncrementalObjective, Objective
from repro.algorithms.repair import DEFAULT_REPAIR_OPS
from repro.workloads.replicated import ReplicatedConfig, generate_replicated
from repro.workloads.synthetic import SyntheticConfig, generate


def synthetic_state(seed=0, m=8, spm=5, util=0.8):
    return generate(
        SyntheticConfig(
            num_machines=m,
            shards_per_machine=spm,
            target_utilization=util,
            seed=seed,
        )
    )


def replicated_state(seed=2):
    return generate_replicated(
        ReplicatedConfig(
            base=SyntheticConfig(num_machines=8, shards_per_machine=4, seed=seed),
            replication_factor=2,
        )
    )


def assert_components_bitwise(state, *, required_returns=0):
    base = Objective(state.assignment, state.sizes, required_returns=required_returns)
    inc = IncrementalObjective(base)
    got = inc.components(state)
    want = base.components(state)
    for key in want:
        assert got[key] == want[key], (key, got[key], want[key])
    assert inc(state) == base(state)
    assert inc.is_feasible(state) == base.is_feasible(state)


class TestBitwiseAgreement:
    def test_initial_state(self):
        assert_components_bitwise(synthetic_state())

    def test_after_moves(self):
        state = synthetic_state(seed=3)
        rng = np.random.default_rng(0)
        for _ in range(25):
            j = int(rng.integers(state.num_shards))
            state.move(j, int(rng.integers(state.num_machines)))
        assert_components_bitwise(state)

    def test_overloaded_state(self):
        state = synthetic_state(seed=1)
        # Pile everything on machine 0: overload term becomes non-zero.
        for j in range(state.num_shards):
            state.move(j, 0)
        base = Objective(state.assignment, state.sizes)
        assert base.components(state)["overload"] > 0.0
        assert_components_bitwise(state)

    def test_vacancy_shortfall(self):
        state = synthetic_state(seed=2)
        assert_components_bitwise(state, required_returns=3)

    def test_replica_conflicts(self):
        state = replicated_state()
        # Force colocated replicas so the conflict term is exercised.
        groups = state.replica_groups
        first = next(iter(groups.values()))
        target = int(state.machine_of(int(first[0])))
        for j in first[1:]:
            state.move(int(j), target)
        base = Objective(state.assignment, state.sizes)
        assert base.components(state)["replica_conflicts"] > 0.0
        assert_components_bitwise(state)

    def test_inside_transaction(self):
        state = synthetic_state(seed=5)
        state.begin()
        rng = np.random.default_rng(1)
        for _ in range(10):
            state.move(int(rng.integers(state.num_shards)), int(rng.integers(state.num_machines)))
        assert_components_bitwise(state)
        state.rollback()
        assert_components_bitwise(state)

    @given(seed=st.integers(0, 40), moves=st.integers(0, 40))
    @settings(max_examples=40, deadline=None)
    def test_random_states_agree(self, seed, moves):
        state = synthetic_state(seed=seed % 7)
        rng = np.random.default_rng(seed)
        for _ in range(moves):
            j = int(rng.integers(state.num_shards))
            state.move(j, int(rng.integers(state.num_machines)))
        assert_components_bitwise(state, required_returns=seed % 3)

    def test_cross_check_flag_passes_on_consistent_state(self):
        state = synthetic_state()
        base = Objective(state.assignment, state.sizes)
        inc = IncrementalObjective(base, cross_check=True)
        state.begin()
        state.move(0, (state.machine_of(0) + 1) % state.num_machines)
        inc(state)  # would raise AssertionError on any divergence
        state.rollback()
        inc(state)


class TestDeltaEngineTrajectory:
    @pytest.mark.parametrize("replicated", [False, True])
    def test_delta_engine_matches_legacy(self, replicated):
        state = replicated_state(seed=3) if replicated else synthetic_state(seed=4, m=10, spm=6)
        outcomes = {}
        for label, delta, incremental in (
            ("delta", True, True),
            ("legacy", False, False),
        ):
            base = Objective(state.assignment, state.sizes)
            obj = IncrementalObjective(base) if incremental else base
            engine = AlnsEngine(
                AlnsConfig(iterations=120, seed=1, delta_evaluation=delta),
                DEFAULT_DESTROY_OPS,
                DEFAULT_REPAIR_OPS,
            )
            outcomes[label] = engine.run(state.copy(), obj)
        d, leg = outcomes["delta"], outcomes["legacy"]
        assert repr(d.best_objective) == repr(leg.best_objective)
        assert d.accepted == leg.accepted
        assert d.history == leg.history
        assert np.array_equal(d.best_assignment, leg.best_assignment)

    def test_delta_engine_with_cross_check(self):
        state = synthetic_state(seed=6)
        base = Objective(state.assignment, state.sizes)
        engine = AlnsEngine(
            AlnsConfig(iterations=60, seed=2),
            DEFAULT_DESTROY_OPS,
            DEFAULT_REPAIR_OPS,
        )
        # cross_check recomputes every evaluation from scratch and raises
        # on any divergence, so a clean run is the assertion.
        out = engine.run(state.copy(), IncrementalObjective(base, cross_check=True))
        assert out.iterations == 60

    def test_collect_history_flag(self):
        state = synthetic_state(seed=7)
        base = Objective(state.assignment, state.sizes)
        for collect, expected_len in ((True, 81), (False, 1)):
            engine = AlnsEngine(
                AlnsConfig(iterations=80, seed=1, collect_history=collect),
                DEFAULT_DESTROY_OPS,
                DEFAULT_REPAIR_OPS,
            )
            out = engine.run(state.copy(), IncrementalObjective(base))
            assert len(out.history) == expected_len
            assert out.best_objective < np.inf
