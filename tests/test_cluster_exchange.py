"""Unit tests for the exchange ledger (borrow / vacancy-return contract)."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterState,
    ExchangeLedger,
    ExchangeViolation,
    Machine,
    Shard,
)


def base_state():
    machines = Machine.homogeneous(3, 10.0)
    shards = Shard.uniform(6, 1.0)
    return ClusterState(machines, shards, [j % 3 for j in range(6)])


def borrowable(k, cap=10.0):
    return [Machine(id=0, capacity=np.full(3, cap), exchange=True) for _ in range(k)]


class TestBorrow:
    def test_borrow_augments_state(self):
        state = base_state()
        grown, ledger = ExchangeLedger.borrow(state, borrowable(2))
        assert grown.num_machines == 5
        assert ledger.borrowed_ids == (3, 4)
        assert ledger.required_returns == 2
        # original untouched
        assert state.num_machines == 3

    def test_borrowed_machines_start_vacant(self):
        grown, _ = ExchangeLedger.borrow(base_state(), borrowable(2))
        assert set(grown.vacant_machines()) == {3, 4}

    def test_borrow_zero_machines(self):
        grown, ledger = ExchangeLedger.borrow(base_state(), [])
        assert grown.num_machines == 3
        assert ledger.num_borrowed == 0
        assert ledger.required_returns == 0

    def test_custom_required_returns(self):
        _, ledger = ExchangeLedger.borrow(base_state(), borrowable(3), required_returns=1)
        assert ledger.required_returns == 1

    def test_negative_returns_rejected(self):
        with pytest.raises(ValueError, match="required_returns"):
            ExchangeLedger.borrow(base_state(), borrowable(1), required_returns=-1)

    def test_borrowed_capacity(self):
        _, ledger = ExchangeLedger.borrow(base_state(), borrowable(2, cap=7.0))
        np.testing.assert_allclose(ledger.borrowed_capacity(), 14.0)


class TestReturnSelection:
    def test_untouched_borrowed_machines_are_returned_first(self):
        grown, ledger = ExchangeLedger.borrow(base_state(), borrowable(2))
        returns = ledger.select_returns(grown)
        assert set(returns) == {3, 4}

    def test_exchange_returns_emptied_service_machine(self):
        grown, ledger = ExchangeLedger.borrow(base_state(), borrowable(1))
        # Empty machine 2 by moving its shards onto the borrowed machine 3.
        for sh in list(grown.machine_shards(2)):
            grown.move(int(sh), 3)
        returns = ledger.select_returns(grown)
        assert list(returns) == [2]
        settlement = ledger.settle(grown)
        assert settlement.returned_ids == (2,)
        assert settlement.retained_borrowed_ids == (3,)

    def test_violation_when_not_enough_vacant(self):
        grown, ledger = ExchangeLedger.borrow(base_state(), borrowable(1))
        grown.move(0, 3)  # dirty the borrowed machine, nothing is vacant
        with pytest.raises(ExchangeViolation, match="vacant"):
            ledger.select_returns(grown)
        assert not ledger.is_satisfiable(grown)

    def test_is_satisfiable_true_case(self):
        grown, ledger = ExchangeLedger.borrow(base_state(), borrowable(1))
        assert ledger.is_satisfiable(grown)


class TestCapacityPolicy:
    def test_capacity_policy_needs_dominating_return(self):
        state = base_state()
        grown, ledger = ExchangeLedger.borrow(
            state, borrowable(1, cap=20.0), policy="capacity"
        )
        # Empty machine 2 (capacity 10) — count ok but capacity too small,
        # so the borrowed machine itself (still vacant? no: fill it) ...
        for sh in list(grown.machine_shards(2)):
            grown.move(int(sh), 3)
        with pytest.raises(ExchangeViolation, match="capacity"):
            ledger.select_returns(grown)

    def test_capacity_policy_accumulates_multiple_machines(self):
        state = base_state()
        grown, ledger = ExchangeLedger.borrow(
            state, borrowable(1, cap=15.0), policy="capacity"
        )
        # Empty machines 1 and 2 (10 + 10 >= 15) onto the borrowed machine.
        for mid in (1, 2):
            for sh in list(grown.machine_shards(mid)):
                grown.move(int(sh), 3)
        returns = ledger.select_returns(grown)
        assert set(returns) == {1, 2}

    def test_capacity_policy_trivial_with_untouched_loaner(self):
        grown, ledger = ExchangeLedger.borrow(
            base_state(), borrowable(1, cap=15.0), policy="capacity"
        )
        assert list(ledger.select_returns(grown)) == [3]
