#!/usr/bin/env python3
"""Datacenter scenario: repair a drifted production-style snapshot.

Generates a heterogeneous 80-machine snapshot whose query popularity has
drifted since placement (machines overloaded beyond 100%), then compares
the state-of-the-art local search against SRA with a 2-machine exchange
budget: final peak utilization, shard moves, data moved and migration
makespan under a 1.25 GB/s (10 GbE) network model.

Run:  python examples/datacenter_rebalance.py
"""

from repro.algorithms import LocalSearchRebalancer, SRA, SRAConfig
from repro.algorithms.lns import AlnsConfig
from repro.core import ResourceExchangeRebalancer
from repro.experiments.harness import print_table
from repro.migration import BandwidthModel
from repro.workloads import DatacenterConfig, generate_datacenter

NET = BandwidthModel(bandwidth=1.25)  # shard sizes are in GB -> GB/s


def main() -> None:
    state = generate_datacenter(
        DatacenterConfig(
            num_machines=80,
            shards_per_machine=12,
            target_utilization=0.8,
            drift=0.35,
            seed=0,
        )
    )
    classes = {}
    for mach in state.machines:
        classes[mach.cls] = classes.get(mach.cls, 0) + 1
    print(f"snapshot: {state.num_machines} machines {classes}, "
          f"{state.num_shards} shards")
    print(f"post-drift peak utilization: {state.peak_utilization():.3f} "
          f"({len(state.overloaded_machines())} machines overloaded)")

    rows = []
    for label, rebalancer in (
        (
            "local-search",
            ResourceExchangeRebalancer(LocalSearchRebalancer(seed=1), bandwidth=NET),
        ),
        (
            "sra-b2",
            ResourceExchangeRebalancer(
                SRA(SRAConfig(alns=AlnsConfig(iterations=2000, seed=1))),
                exchange_machines=2,
                bandwidth=NET,
            ),
        ),
    ):
        report = rebalancer.run(state)
        rows.append(
            {
                "algorithm": label,
                "peak_before": report.before.peak_utilization,
                "peak_after": report.after.peak_utilization,
                "moves": report.migration.num_moves,
                "gb_moved": report.migration.total_bytes,
                "makespan_min": report.migration.makespan_seconds / 60.0,
                "exchanged": report.exchanged,
                "feasible": report.feasible,
                "runtime_s": report.result.runtime_seconds,
            }
        )
    print_table(rows, title="drifted snapshot: algorithm comparison")


if __name__ == "__main__":
    main()
