"""Deadlock analysis and multi-hop staging.

When the wave scheduler strands moves, the residual instance contains a
**capacity deadlock**: every remaining destination is full until some
other remaining move frees it — a cycle in the space-dependency graph.
The classical fix is to route one shard of the cycle through a third
machine with spare headroom (two hops instead of one).  Borrowed exchange
machines, being vacant, are the ideal staging hosts; this module is where
their value for *feasibility* (not just balance) materializes, and is
measured by experiment E7.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro import obs
from repro.cluster import ClusterState
from repro.migration.moves import Move, diff_moves
from repro.migration.scheduler import Schedule, WaveScheduler

__all__ = ["dependency_graph", "deadlock_cycles", "StagingPlanner", "PlanResult"]


def dependency_graph(state: ClusterState, moves: list[Move]) -> nx.DiGraph:
    """Space-dependency digraph over machines.

    Edge ``s -> t`` means some move wants to push demand from ``s`` into
    ``t`` while ``t`` currently lacks headroom for it — i.e. ``t`` must be
    drained (by its own outgoing moves) before ``s`` can proceed.  Cycles
    in this graph witness capacity deadlocks.
    """
    g = nx.DiGraph()
    g.add_nodes_from(range(state.num_machines))
    headroom = state.headroom()
    for mv in moves:
        if not np.all(state.demand[mv.shard_id] <= headroom[mv.dst] + 1e-9):
            g.add_edge(mv.src, mv.dst, shard=mv.shard_id)
    return g


def deadlock_cycles(state: ClusterState, moves: list[Move]) -> list[list[int]]:
    """Machine cycles currently blocking progress (may be empty)."""
    g = dependency_graph(state, moves)
    return [list(c) for c in nx.simple_cycles(g)]


@dataclass
class PlanResult:
    """A complete migration plan.

    Attributes
    ----------
    schedule:
        The wave schedule actually executed (staging hops included).
    staged_shards:
        Shards that needed an intermediate hop.
    feasible:
        Whether every required move was scheduled.
    direct_feasible:
        Whether the plan would have been feasible *without* staging —
        the paper's "stringent resource environment" indicator.
    """

    schedule: Schedule
    staged_shards: tuple[int, ...] = ()
    direct_feasible: bool = True

    @property
    def feasible(self) -> bool:
        return self.schedule.feasible

    @property
    def num_hops(self) -> int:
        return sum(1 for mv in self.schedule.all_moves() if mv.is_staged_hop)


class StagingPlanner:
    """Plan a transient-feasible migration, staging through spare headroom.

    Parameters
    ----------
    scheduler:
        Wave scheduler used for feasibility checking and final ordering.
    max_hops_per_shard:
        Staging depth limit; 1 intermediate hop suffices for all capacity
        deadlocks that any single machine's headroom can break, higher
        values let chains of staging hosts be used.
    prefer_exchange_hosts:
        Stage through borrowed (exchange) machines before in-service ones.
    """

    def __init__(
        self,
        scheduler: WaveScheduler | None = None,
        *,
        max_hops_per_shard: int = 2,
        prefer_exchange_hosts: bool = True,
    ) -> None:
        if max_hops_per_shard < 1:
            raise ValueError("max_hops_per_shard must be >= 1")
        self.scheduler = scheduler or WaveScheduler()
        self.max_hops_per_shard = max_hops_per_shard
        self.prefer_exchange_hosts = prefer_exchange_hosts

    # ------------------------------------------------------------------ API
    def plan(self, state: ClusterState, target_assignment: np.ndarray) -> PlanResult:
        """Produce a feasible schedule from *state* to *target_assignment*.

        Staging is attempted only when direct scheduling strands moves.
        The input state is never mutated.
        """
        moves = diff_moves(state, target_assignment)
        direct = self.scheduler.schedule(state, moves)
        if direct.feasible:
            self._publish(direct)
            return PlanResult(schedule=direct, direct_feasible=True)

        staged_schedule, staged_shards = self._stage(state, moves)
        if staged_schedule is None:
            self._publish(direct)
            return PlanResult(schedule=direct, direct_feasible=False)
        self._publish(staged_schedule)
        return PlanResult(
            schedule=staged_schedule,
            staged_shards=tuple(sorted(staged_shards)),
            direct_feasible=False,
        )

    @staticmethod
    def _publish(schedule: Schedule) -> None:
        """Expose the executed schedule's transient peak to the registry."""
        metrics = obs.current().metrics
        if metrics.enabled:
            metrics.gauge("migration.peak_transient_utilization").set(
                schedule.peak_transient_utilization
            )
            metrics.counter("migration.plans").inc()

    # ------------------------------------------------------------- internal
    def _stage(
        self, state: ClusterState, moves: list[Move]
    ) -> tuple[Schedule | None, set[int]]:
        """Greedy wave simulation with on-demand staging.

        Builds the wave schedule directly (the returned schedule IS the
        simulated execution — it is never re-derived, which could fail
        since greedy wave packing is order-sensitive).  When no move can
        start, reroutes one stranded shard through the machine with the
        most headroom and continues.  Returns (None, shards) when no
        staging host exists for any stranded move.
        """
        loads = state.loads.copy()
        capacity = state.capacity
        demand = state.demand
        location = state.assignment.copy()
        hops_used: dict[int, int] = {}
        staged_shards: set[int] = set()
        schedule = Schedule()
        peak = float(np.max(loads / capacity))
        pending: list[Move] = sorted(moves, key=lambda mv: -mv.bytes)
        exchange_mask = state.exchange_mask
        tracer = obs.current().tracer
        trace_on = tracer.enabled

        guard = 0
        while pending:
            guard += 1
            if guard > 4 * len(moves) + 16:
                return None, staged_shards  # should not happen; safety net
            progressed = False
            wave: list[Move] = []
            in_flight = np.zeros_like(loads)
            started: set[int] = set()
            for mv in pending:
                if mv.shard_id in started or location[mv.shard_id] != mv.src:
                    continue
                if WaveScheduler._replica_blocked(state, location, mv.shard_id, mv.dst):
                    continue
                extra = demand[mv.shard_id]
                if np.all(
                    loads[mv.dst] + in_flight[mv.dst] + extra <= capacity[mv.dst] + 1e-9
                ):
                    in_flight[mv.dst] += extra
                    wave.append(mv)
                    started.add(mv.shard_id)
            if wave:
                peak = max(peak, float(np.max((loads + in_flight) / capacity)))
                for mv in wave:
                    loads[mv.src] -= demand[mv.shard_id]
                    loads[mv.dst] += demand[mv.shard_id]
                    location[mv.shard_id] = mv.dst
                done = {id(mv) for mv in wave}
                pending = [mv for mv in pending if id(mv) not in done]
                schedule.waves.append(wave)
                if trace_on:
                    tracer.event(
                        "migration.wave",
                        wave=len(schedule.waves) - 1,
                        moves=len(wave),
                        bytes=float(sum(m.bytes for m in wave)),
                        transient_peak=peak,
                        staged=True,
                    )
                progressed = True
                continue

            # Deadlock: stage one stranded move through a spare machine.
            for k, mv in enumerate(pending):
                if location[mv.shard_id] != mv.src:
                    continue
                if hops_used.get(mv.shard_id, 0) >= self.max_hops_per_shard:
                    continue
                host = self._staging_host(
                    mv,
                    loads,
                    capacity,
                    demand[mv.shard_id],
                    exchange_mask,
                    blocked=state.offline_mask,
                    sibling_hosts=location[state.replica_peers(mv.shard_id)],
                )
                if host is None:
                    continue
                hop1 = Move(
                    shard_id=mv.shard_id,
                    src=mv.src,
                    dst=host,
                    bytes=mv.bytes,
                    hop_of=mv.src,
                )
                hop2 = Move(
                    shard_id=mv.shard_id,
                    src=host,
                    dst=mv.dst,
                    bytes=mv.bytes,
                    hop_of=mv.src,
                )
                pending[k : k + 1] = [hop1, hop2]
                hops_used[mv.shard_id] = hops_used.get(mv.shard_id, 0) + 1
                staged_shards.add(mv.shard_id)
                if trace_on:
                    tracer.event(
                        "migration.staging_hop",
                        shard=int(mv.shard_id),
                        via=int(host),
                        src=int(mv.src),
                        dst=int(mv.dst),
                    )
                progressed = True
                break
            if not progressed:
                return None, staged_shards
        schedule.peak_transient_utilization = peak
        return schedule, staged_shards

    def _staging_host(
        self,
        mv: Move,
        loads: np.ndarray,
        capacity: np.ndarray,
        extra: np.ndarray,
        exchange_mask: np.ndarray,
        blocked: np.ndarray | None = None,
        sibling_hosts: np.ndarray | None = None,
    ) -> int | None:
        """Best machine able to temporarily hold the shard, or None.

        Offline (failed) machines are never used as staging hosts;
        blocked designated-return machines remain legitimate hosts (they
        are only handed back once the migration completes).
        """
        headroom = capacity - loads
        fits = np.all(headroom >= extra - 1e-12, axis=1)
        fits[mv.src] = False
        fits[mv.dst] = False
        if blocked is not None:
            fits[blocked] = False
        if sibling_hosts is not None and sibling_hosts.size:
            valid = sibling_hosts[(sibling_hosts >= 0) & (sibling_hosts < fits.size)]
            fits[valid] = False
        candidates = np.flatnonzero(fits)
        if candidates.size == 0:
            return None
        slack = headroom[candidates].min(axis=1)
        if self.prefer_exchange_hosts:
            is_exch = exchange_mask[candidates]
            order = np.lexsort((-slack, ~is_exch))
        else:
            order = np.argsort(-slack)
        return int(candidates[order[0]])
