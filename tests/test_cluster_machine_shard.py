"""Unit tests for Machine, MachineClass and Shard descriptions."""

import numpy as np
import pytest

from repro.cluster import DEFAULT_SCHEMA, Machine, MachineClass, ResourceSchema, Shard


class TestMachine:
    def test_basic_construction(self):
        mach = Machine(id=0, capacity=np.array([4.0, 8.0, 100.0]))
        assert mach.capacity_of("ram") == 8.0
        assert not mach.exchange

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError, match="machine id"):
            Machine(id=-1, capacity=np.array([1.0, 1.0, 1.0]))

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError, match="strictly positive"):
            Machine(id=0, capacity=np.array([1.0, 0.0, 1.0]))

    def test_wrong_dims_rejected(self):
        with pytest.raises(ValueError, match="dimensions"):
            Machine(id=0, capacity=np.array([1.0, 1.0]))

    def test_with_id_preserves_everything_else(self):
        mach = Machine(id=0, capacity=np.array([1.0, 2.0, 3.0]), cls="big", exchange=True)
        moved = mach.with_id(7)
        assert moved.id == 7
        assert moved.cls == "big"
        assert moved.exchange
        np.testing.assert_allclose(moved.capacity, mach.capacity)

    def test_homogeneous_builder(self):
        fleet = Machine.homogeneous(3, {"cpu": 2.0, "ram": 4.0, "disk": 10.0})
        assert [m.id for m in fleet] == [0, 1, 2]
        assert all(m.capacity_of("disk") == 10.0 for m in fleet)

    def test_homogeneous_start_id(self):
        fleet = Machine.homogeneous(2, 1.0, start_id=5)
        assert [m.id for m in fleet] == [5, 6]

    def test_homogeneous_zero_count_rejected(self):
        with pytest.raises(ValueError, match="count"):
            Machine.homogeneous(0, 1.0)


class TestMachineClass:
    def test_stamp(self):
        cls = MachineClass("std", np.array([2.0, 4.0, 50.0]))
        mach = cls.stamp(3)
        assert mach.id == 3
        assert mach.cls == "std"
        np.testing.assert_allclose(mach.capacity, [2.0, 4.0, 50.0])

    def test_stamp_exchange_flag(self):
        cls = MachineClass("std", np.array([2.0, 4.0, 50.0]))
        assert cls.stamp(0, exchange=True).exchange

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError, match="strictly positive"):
            MachineClass("bad", np.array([0.0, 1.0, 1.0]))


class TestShard:
    def test_basic_construction(self):
        sh = Shard(id=0, demand=np.array([1.0, 2.0, 30.0]))
        assert sh.demand_of("cpu") == 1.0
        # default migration weight = disk demand
        assert sh.size_bytes == 30.0

    def test_explicit_size_bytes(self):
        sh = Shard(id=0, demand=np.array([1.0, 2.0, 30.0]), size_bytes=99.0)
        assert sh.size_bytes == 99.0

    def test_size_default_without_disk_dim(self):
        schema = ResourceSchema(("cpu", "ram"))
        sh = Shard(id=0, demand=np.array([1.0, 2.0]), schema=schema)
        assert sh.size_bytes == 3.0  # L1 norm fallback

    def test_zero_demand_rejected(self):
        with pytest.raises(ValueError, match="non-zero"):
            Shard(id=0, demand=np.zeros(3))

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Shard(id=0, demand=np.array([-1.0, 1.0, 1.0]))

    def test_replica_default(self):
        assert Shard(id=0, demand=np.ones(3)).replica_of == -1

    def test_uniform_builder(self):
        shards = Shard.uniform(4, {"cpu": 1.0, "ram": 1.0, "disk": 1.0})
        assert [s.id for s in shards] == [0, 1, 2, 3]
        assert all(s.demand_of("ram") == 1.0 for s in shards)

    def test_shards_use_default_schema(self):
        assert Shard(id=0, demand=np.ones(3)).schema == DEFAULT_SCHEMA
