"""Multi-epoch online rebalancing.

Production clusters are not rebalanced once: the workload drifts, the
operator rebalances, the workload drifts again.  The quantity that
matters over time is the *trajectory* — peak utilization per epoch and
the cumulative bytes migrated to keep it down.

:class:`OnlineSimulator` runs that loop for any rebalancing **policy**:

* ``"always"``   — rebalance every epoch;
* ``"threshold"``— rebalance only when the drifted peak exceeds
  ``threshold`` (the operationally sensible policy: tolerate mild
  imbalance, act on hotspots);
* ``"never"``    — the do-nothing control.

Exchange machines are borrowed at the start of each rebalancing episode
and returned at its end, exactly as the paper's operational model
prescribes (the pool lends machines per maintenance window, not
permanently).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro._validation import check_non_negative, check_positive
from repro.algorithms import Rebalancer
from repro.cluster import ClusterState
from repro.online.drift import PopularityDrift
from repro.runtime.kernel import Runtime
from repro.runtime.processes import ClusterHandle, DriftProcess, RebalanceController

__all__ = ["EpochReport", "OnlineSimulator"]

Policy = Literal["always", "threshold", "never"]


@dataclass(frozen=True)
class EpochReport:
    """One epoch of the online loop."""

    epoch: int
    peak_before: float
    peak_after: float
    rebalanced: bool
    feasible: bool
    moves: int
    bytes_moved: float
    cumulative_bytes: float


@dataclass
class OnlineSimulator:
    """Drift → (maybe) rebalance → repeat.

    Attributes
    ----------
    rebalancer:
        The algorithm invoked on rebalancing epochs.
    drift:
        Workload drift model stepped once per epoch.
    policy, threshold:
        When to rebalance (see module docstring).
    exchange_budget:
        Machines borrowed for each rebalancing episode (returned after).
    """

    rebalancer: Rebalancer
    drift: PopularityDrift
    policy: Policy = "always"
    threshold: float = 0.95
    exchange_budget: int = 0

    def __post_init__(self) -> None:
        if self.policy not in ("always", "threshold", "never"):
            raise ValueError(f"unknown policy {self.policy!r}")
        check_positive("threshold", self.threshold)
        check_non_negative("exchange_budget", self.exchange_budget)

    def run(self, state: ClusterState, epochs: int) -> list[EpochReport]:
        """Simulate *epochs* drift/rebalance cycles starting from *state*.

        Facade over :mod:`repro.runtime`: drift and rebalancing run as
        processes on an event-heap runtime (one epoch per simulated
        second), with the controller in ``"instant"`` execution mode —
        the settle-at-the-decision-instant semantics this class has
        always had, so trajectories are identical to the historical
        epoch loop (``tests/test_runtime.py`` pins this).  Wire a
        :class:`~repro.runtime.processes.RebalanceController` with
        ``execution="simulated"`` directly for wave-resolved episodes.
        """
        check_positive("epochs", epochs)
        handle = ClusterHandle(state)
        controller = RebalanceController(
            handle,
            self.rebalancer,
            policy=self.policy,
            threshold=self.threshold,
            exchange_budget=self.exchange_budget,
            execution="instant",
        )
        drift_proc = DriftProcess(handle, self.drift, epochs=epochs)
        cumulative = 0.0
        reports: list[EpochReport] = []

        def on_epoch(rt: Runtime, epoch: int) -> None:
            nonlocal cumulative
            peak_before = handle.state.peak_utilization()
            outcome = controller.maybe_rebalance(rt)
            cumulative += outcome.bytes_moved
            reports.append(
                EpochReport(
                    epoch=epoch,
                    peak_before=peak_before,
                    peak_after=handle.state.peak_utilization(),
                    rebalanced=outcome.attempted and outcome.feasible,
                    feasible=outcome.feasible,
                    moves=outcome.moves,
                    bytes_moved=outcome.bytes_moved,
                    cumulative_bytes=cumulative,
                )
            )

        drift_proc.subscribe(on_epoch)
        runtime = Runtime()
        runtime.add(drift_proc)
        runtime.add(controller)
        runtime.run()
        return reports

