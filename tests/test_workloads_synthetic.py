"""Tests for the synthetic instance generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    SyntheticConfig,
    generate,
    generate_uniform,
    generate_zipf,
    make_exchange_machines,
)


class TestConfigValidation:
    def test_defaults_are_valid(self):
        SyntheticConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_machines": 0},
            {"shards_per_machine": 0},
            {"target_utilization": 0.0},
            {"zipf_alpha": 0.0},
            {"dim_correlation": 1.5},
            {"placement_skew": -0.1},
            {"machine_capacity": 0.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SyntheticConfig(**kwargs)

    def test_num_shards(self):
        assert SyntheticConfig(num_machines=5, shards_per_machine=3).num_shards == 15


class TestGenerate:
    def test_shapes(self):
        state = generate(SyntheticConfig(num_machines=10, shards_per_machine=4, seed=1))
        assert state.num_machines == 10
        assert state.num_shards == 40
        assert state.is_fully_assigned()

    def test_determinism(self):
        cfg = SyntheticConfig(seed=42)
        a, b = generate(cfg), generate(cfg)
        np.testing.assert_allclose(a.demand, b.demand)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_different_seeds_differ(self):
        a = generate(SyntheticConfig(seed=0))
        b = generate(SyntheticConfig(seed=1))
        assert not np.allclose(a.demand, b.demand)

    def test_target_utilization_hit(self):
        for util in (0.5, 0.75):
            state = generate(SyntheticConfig(target_utilization=util, seed=3))
            # Clipping of oversized shards can shave a little off the total.
            np.testing.assert_allclose(state.mean_utilization(), util, rtol=0.05)

    def test_feasible_start_respects_capacity(self):
        state = generate(SyntheticConfig(target_utilization=0.85, placement_skew=0.8, seed=5))
        assert state.is_within_capacity()

    def test_infeasible_start_allowed_when_requested(self):
        state = generate(
            SyntheticConfig(
                target_utilization=0.9, placement_skew=0.95, feasible_start=False, seed=5
            )
        )
        # With extreme skew some machine overflows (that is the point).
        assert len(state.overloaded_machines()) > 0

    def test_balanced_start_with_zero_skew(self):
        state = generate(SyntheticConfig(placement_skew=0.0, seed=7))
        peak = state.machine_peak_utilization()
        assert peak.max() - peak.min() < 0.25  # LPT start is roughly even

    def test_skewed_start_is_imbalanced(self):
        balanced = generate(SyntheticConfig(placement_skew=0.0, seed=7))
        skewed = generate(SyntheticConfig(placement_skew=0.7, seed=7))
        assert skewed.machine_peak_utilization().std() > balanced.machine_peak_utilization().std()

    def test_zipf_demands_are_heavy_tailed(self):
        state = generate_zipf(seed=11, num_machines=20, shards_per_machine=10)
        mags = state.demand.sum(axis=1)
        # Top 10% of shards should hold a large share of total demand.
        top = np.sort(mags)[-len(mags) // 10 :].sum()
        assert top / mags.sum() > 0.3

    def test_uniform_demands_are_not(self):
        state = generate_uniform(seed=11, num_machines=20, shards_per_machine=10)
        mags = state.demand.sum(axis=1)
        top = np.sort(mags)[-len(mags) // 10 :].sum()
        assert top / mags.sum() < 0.25

    def test_no_shard_exceeds_machine(self):
        state = generate_zipf(seed=13, target_utilization=0.9)
        assert np.all(state.demand <= 0.95 * state.capacity.max(axis=0) + 1e-9)


class TestExchangeMachines:
    def test_count_and_flags(self):
        state = generate(SyntheticConfig(seed=0))
        ms = make_exchange_machines(state, 3)
        assert len(ms) == 3
        assert all(m.exchange for m in ms)

    def test_capacity_matches_fleet_mean(self):
        state = generate(SyntheticConfig(seed=0))
        ms = make_exchange_machines(state, 1)
        np.testing.assert_allclose(ms[0].capacity, state.capacity.mean(axis=0))

    def test_capacity_scale(self):
        state = generate(SyntheticConfig(seed=0))
        ms = make_exchange_machines(state, 1, capacity_scale=2.0)
        np.testing.assert_allclose(ms[0].capacity, 2.0 * state.capacity.mean(axis=0))

    def test_negative_count_rejected(self):
        state = generate(SyntheticConfig(seed=0))
        with pytest.raises(ValueError, match="count"):
            make_exchange_machines(state, -1)


@given(
    util=st.floats(min_value=0.3, max_value=0.85),
    skew=st.floats(min_value=0.0, max_value=0.8),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=25, deadline=None)
def test_property_generated_instances_are_valid(util, skew, seed):
    """Any config in the supported envelope yields a fully assigned,
    capacity-feasible instance whose loads match its assignment."""
    cfg = SyntheticConfig(
        num_machines=8,
        shards_per_machine=6,
        target_utilization=util,
        placement_skew=skew,
        seed=seed,
    )
    state = generate(cfg)
    assert state.is_fully_assigned()
    assert state.is_within_capacity()
    # loads consistent with assignment
    recomputed = np.zeros_like(state.loads)
    np.add.at(recomputed, state.assignment, state.demand)
    np.testing.assert_allclose(state.loads, recomputed, atol=1e-9)
