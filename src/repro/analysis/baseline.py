"""Committed lint baseline with ratchet semantics.

The baseline (``lint-baseline.json`` at the repo root) grandfathers the
debt that existed when a rule landed, keyed by ``(file, rule)`` with a
violation *count* — counts rather than line numbers, so unrelated edits
that shift code do not invalidate the baseline.  The ratchet:

* a ``(file, rule)`` group may hold at most its baselined count — any
  excess finding is **new** and fails the run;
* groups may shrink (fixing debt never requires touching the baseline,
  though ``--update-baseline`` tightens it so the fix cannot regress);
* grandfathered findings are still *listed* on every run, so the debt
  stays visible instead of silently riding along.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.analysis.findings import Finding

__all__ = ["BaselineResult", "group_findings", "load", "save", "compare"]

_SEP = "::"


def group_findings(findings: Sequence[Finding]) -> dict[str, int]:
    """``"<file>::<rule>" -> count`` for *findings*."""
    groups: dict[str, int] = {}
    for f in findings:
        key = f"{f.file}{_SEP}{f.rule_id}"
        groups[key] = groups.get(key, 0) + 1
    return groups


def load(path: Path) -> dict[str, int]:
    """Baseline groups from *path*; an absent file is an empty baseline."""
    if not path.exists():
        return {}
    data = json.loads(path.read_text(encoding="utf-8"))
    groups = data.get("groups", {})
    return {str(k): int(v) for k, v in groups.items()}


def save(findings: Sequence[Finding], path: Path) -> None:
    """Write the baseline for *findings* (sorted keys, stable diffs)."""
    doc = {
        "version": 1,
        "comment": (
            "repro lint ratchet: per (file, rule) grandfathered violation "
            "counts. May only shrink; `python -m repro.analysis "
            "--update-baseline` after paying debt down."
        ),
        "groups": dict(sorted(group_findings(findings).items())),
    }
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of comparing current findings against the baseline."""

    new: tuple[Finding, ...]
    grandfathered: tuple[Finding, ...]
    #: Baseline groups holding more debt than currently found
    #: (``key -> unused slots``); shrink the baseline to lock the wins in.
    stale: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.new


def compare(
    findings: Sequence[Finding], baseline: Mapping[str, int]
) -> BaselineResult:
    """Split *findings* into new vs grandfathered under *baseline*.

    Within one ``(file, rule)`` group the first ``baseline[key]``
    findings in line order are grandfathered and the rest are new; which
    specific lines carry the debt is immaterial to the ratchet.
    """
    seen: dict[str, int] = {}
    new: list[Finding] = []
    grandfathered: list[Finding] = []
    for f in sorted(findings):
        key = f"{f.file}{_SEP}{f.rule_id}"
        used = seen.get(key, 0)
        if used < baseline.get(key, 0):
            grandfathered.append(f)
        else:
            new.append(f)
        seen[key] = used + 1
    stale = {
        key: allowed - seen.get(key, 0)
        for key, allowed in sorted(baseline.items())
        if seen.get(key, 0) < allowed
    }
    return BaselineResult(tuple(new), tuple(grandfathered), stale)
