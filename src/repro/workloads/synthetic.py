"""Synthetic instance generators.

Two families, matching the synthetic suite of the paper's evaluation:

``uniform``
    Shard demands drawn i.i.d. uniform within a band — the easy case,
    where imbalance comes only from placement randomness.
``zipf``
    Shard demands follow a Zipf-like power law — the realistic case for
    search shards, whose query popularity (hence CPU demand) is heavy
    tailed.  A few hot shards dominate machine load, which is what makes
    rebalancing both necessary and hard.

Both generators expose a ``target_utilization`` knob (the *tightness* of
the instance: total demand / total capacity) and a ``placement_skew`` knob
controlling how imbalanced the *initial* assignment is.  The initial
assignment is the input a rebalancer receives, so generators produce
placements that are feasible (within capacity) by default but uneven.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro._validation import check_fraction, check_positive
from repro.cluster import DEFAULT_SCHEMA, ClusterState, Machine, ResourceSchema, Shard

__all__ = [
    "SyntheticConfig",
    "generate",
    "generate_uniform",
    "generate_zipf",
    "make_exchange_machines",
    "waterfill_scale",
]


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of a synthetic instance.

    Attributes
    ----------
    num_machines, shards_per_machine:
        Fleet shape; ``num_shards = num_machines * shards_per_machine``.
    target_utilization:
        Total demand / total capacity, per dimension (the tightness knob).
    demand_dist:
        ``"uniform"`` or ``"zipf"`` (see module docstring).
    zipf_alpha:
        Power-law exponent for ``"zipf"`` demands (larger = more skew).
    dim_correlation:
        In [0, 1]: 1 makes a shard's dimensions perfectly proportional,
        0 draws each dimension independently.  Search shards are strongly
        but not perfectly correlated (hot shards cost CPU *and* RAM).
    placement_skew:
        In [0, 1): 0 places shards round-robin by load (balanced start),
        values near 1 concentrate shards on few machines (imbalanced
        start).  Implemented as a Dirichlet-weighted random placement.
    feasible_start:
        When True (default), the initial placement is repaired to respect
        capacities (first-fit by headroom); when False the raw skewed
        placement is kept even if machines overflow.
    seed:
        RNG seed; equal configs generate identical instances.
    """

    num_machines: int = 20
    shards_per_machine: int = 8
    target_utilization: float = 0.75
    demand_dist: Literal["uniform", "zipf"] = "zipf"
    zipf_alpha: float = 1.1
    dim_correlation: float = 0.8
    placement_skew: float = 0.5
    feasible_start: bool = True
    schema: ResourceSchema = DEFAULT_SCHEMA
    seed: int = 0
    machine_capacity: float = 100.0
    #: Largest share of one machine's capacity a single shard may demand.
    #: Search shards are sized well below a machine (else they could not be
    #: placed at all); 0.3 keeps even tight instances packable.
    max_shard_fraction: float = 0.3

    def __post_init__(self) -> None:
        check_positive("num_machines", self.num_machines)
        check_positive("shards_per_machine", self.shards_per_machine)
        check_positive("target_utilization", self.target_utilization)
        check_positive("zipf_alpha", self.zipf_alpha)
        check_fraction("dim_correlation", self.dim_correlation)
        check_fraction("placement_skew", self.placement_skew)
        check_positive("machine_capacity", self.machine_capacity)
        check_fraction("max_shard_fraction", self.max_shard_fraction)

    @property
    def num_shards(self) -> int:
        return self.num_machines * self.shards_per_machine


def _raw_magnitudes(cfg: SyntheticConfig, rng: np.random.Generator) -> np.ndarray:
    """Per-shard scalar demand magnitudes before scaling, shape (n,)."""
    n = cfg.num_shards
    if cfg.demand_dist == "uniform":
        return rng.uniform(0.5, 1.5, size=n)
    if cfg.demand_dist == "zipf":
        # Zipf over ranks: magnitude of rank k is k^-alpha; shuffle ranks.
        ranks = np.arange(1, n + 1, dtype=np.float64)
        mags = ranks ** (-cfg.zipf_alpha)
        rng.shuffle(mags)
        # Avoid shards so tiny they are numerically irrelevant.
        return np.maximum(mags, mags.max() * 1e-3)
    raise ValueError(f"unknown demand_dist {cfg.demand_dist!r}")


def waterfill_scale(values: np.ndarray, total: float, cap: float, *, iters: int = 50) -> np.ndarray:
    """Scale non-negative *values* so they sum to *total* while no element
    exceeds *cap* — the clipped mass is redistributed over the rest.

    Solves ``f_j = min(s * v_j, cap)`` with ``sum f = total`` by fixed-point
    iteration on ``s``.  Raises when even all-at-cap cannot reach *total*.
    """
    values = np.asarray(values, dtype=np.float64)
    if np.any(values < 0):
        raise ValueError("values must be non-negative")
    if total > cap * values.size + 1e-9:
        raise ValueError(
            f"cannot reach total={total} with {values.size} values capped at {cap}"
        )
    if values.sum() <= 0:
        raise ValueError("values must have positive sum")
    s = total / values.sum()
    for _ in range(iters):
        scaled = np.minimum(s * values, cap)
        clipped = scaled >= cap - 1e-12
        residual = total - cap * clipped.sum()
        free_mass = values[~clipped].sum()
        if free_mass <= 0:
            break
        new_s = residual / free_mass
        if abs(new_s - s) <= 1e-12 * max(1.0, s):
            s = new_s
            break
        s = new_s
    return np.minimum(s * values, cap)


def _demands(cfg: SyntheticConfig, rng: np.random.Generator) -> np.ndarray:
    """(n, d) demand matrix scaled to the target utilization, with every
    shard capped at ``max_shard_fraction`` of one machine."""
    mags = _raw_magnitudes(cfg, rng)
    d = cfg.schema.dims
    # Mix a shared magnitude with per-dimension noise.
    noise = rng.uniform(0.5, 1.5, size=(cfg.num_shards, d))
    rho = cfg.dim_correlation
    per_dim = mags[:, None] * (rho + (1.0 - rho) * noise)
    total_capacity = cfg.num_machines * cfg.machine_capacity
    cap = cfg.max_shard_fraction * cfg.machine_capacity
    demands = np.empty_like(per_dim)
    for k in range(d):
        demands[:, k] = waterfill_scale(
            per_dim[:, k], cfg.target_utilization * total_capacity, cap
        )
    return demands


def _skewed_placement(
    cfg: SyntheticConfig, demands: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Initial assignment: Dirichlet-weighted random placement.

    ``placement_skew`` -> Dirichlet concentration: low concentration gives
    very uneven machine weights, concentrating load.
    """
    m = cfg.num_machines
    if cfg.placement_skew == 0.0:
        capacity = np.full((m, demands.shape[1]), cfg.machine_capacity)
        return _lpt_placement(demands, capacity)
    concentration = max(1e-3, 10.0 * (1.0 - cfg.placement_skew))
    weights = rng.dirichlet(np.full(m, concentration))
    return rng.choice(m, size=cfg.num_shards, p=weights)


def _lpt_placement(demands: np.ndarray, capacity: np.ndarray) -> np.ndarray:
    """Longest-processing-time greedy minimizing post-insert peak utilization."""
    n = demands.shape[0]
    loads = np.zeros_like(capacity)
    assign = np.empty(n, dtype=np.int64)
    for j in np.argsort(-demands.sum(axis=1)):
        util_after = ((loads + demands[j]) / capacity).max(axis=1)
        i = int(np.argmin(util_after))
        assign[j] = i
        loads[i] += demands[j]
    return assign


def _repair_feasibility(
    assign: np.ndarray, demands: np.ndarray, capacity: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Drain overloaded machines one move at a time.

    Repeatedly takes the most-overloaded machine and moves its largest
    relocatable shard to the machine where the resulting peak utilization
    is lowest.  Every move strictly reduces the total overload mass (the
    target always stays within capacity), so the loop terminates.  If a
    machine gets stuck with no relocatable shard, falls back to a fully
    balanced LPT placement — preserving feasibility over placement skew.
    """
    assign = assign.copy()
    loads = np.zeros_like(capacity)
    np.add.at(loads, assign, demands)

    for _ in range(4 * demands.shape[0]):
        over = np.flatnonzero(np.any(loads > capacity + 1e-9, axis=1))
        if over.size == 0:
            return assign
        # Vectorized most-overloaded pick (bitwise the same arithmetic as
        # a per-machine Python fold — this runs once per move, and fleet
        # instances need tens of thousands of moves).
        i = over[np.argmax((loads[over] / capacity[over]).max(axis=1))]
        members = np.flatnonzero(assign == i)
        moved = False
        for j in members[np.argsort(-demands[members].sum(axis=1))]:
            headroom = capacity - loads
            fit = np.flatnonzero(np.all(headroom >= demands[j] - 1e-12, axis=1))
            fit = fit[fit != i]
            if fit.size == 0:
                continue
            util_after = ((loads[fit] + demands[j]) / capacity[fit]).max(axis=1)
            target = fit[np.argmin(util_after)]
            loads[i] -= demands[j]
            loads[target] += demands[j]
            assign[j] = target
            moved = True
            break
        if not moved:
            break
    # Stuck (or out of iterations): balanced fallback.
    assign = _lpt_placement(demands, capacity)
    loads = np.zeros_like(capacity)
    np.add.at(loads, assign, demands)
    if np.any(loads > capacity + 1e-9):
        raise ValueError("instance too tight even for balanced placement")
    return assign


def generate(cfg: SyntheticConfig) -> ClusterState:
    """Generate a synthetic instance according to *cfg*.

    The returned state is fully assigned; when ``cfg.feasible_start`` the
    placement respects machine capacities (instances too tight to repair
    raise ``ValueError`` — lower ``target_utilization``).
    """
    rng = np.random.default_rng(cfg.seed)
    machines = Machine.homogeneous(
        cfg.num_machines, cfg.machine_capacity, schema=cfg.schema, cls="synthetic"
    )
    demands = _demands(cfg, rng)
    shards = [Shard(id=j, demand=demands[j], schema=cfg.schema) for j in range(cfg.num_shards)]
    assign = _skewed_placement(cfg, demands, rng)
    capacity = np.stack([mach.capacity for mach in machines])
    if cfg.feasible_start:
        assign = _repair_feasibility(assign, demands, capacity, rng)
        loads = np.zeros_like(capacity)
        np.add.at(loads, assign, demands)
        if np.any(loads > capacity + 1e-9):
            raise ValueError(
                "could not build a capacity-feasible initial placement at "
                f"target_utilization={cfg.target_utilization}; lower it or "
                "set feasible_start=False"
            )
    return ClusterState(machines, shards, assign)


def generate_uniform(**kwargs) -> ClusterState:
    """Shortcut for :func:`generate` with ``demand_dist='uniform'``."""
    return generate(SyntheticConfig(demand_dist="uniform", **kwargs))


def generate_zipf(**kwargs) -> ClusterState:
    """Shortcut for :func:`generate` with ``demand_dist='zipf'``."""
    return generate(SyntheticConfig(demand_dist="zipf", **kwargs))


def make_exchange_machines(
    state: ClusterState, count: int, *, capacity_scale: float = 1.0
) -> list[Machine]:
    """Build *count* vacant exchange machines sized like the fleet average.

    ``capacity_scale`` lets experiments lend bigger or smaller machines
    than the in-service average.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    mean_cap = state.capacity.mean(axis=0) * capacity_scale
    return [
        Machine(id=k, capacity=mean_cap.copy(), schema=state.schema, cls="exchange", exchange=True)
        for k in range(count)
    ]
