"""Tests for the search objective."""

import numpy as np
import pytest

from repro.algorithms import Objective, ObjectiveWeights
from repro.cluster import ClusterState, Machine, Shard


def state_with(assign, cap=10.0, dem=2.0, m=3, n=3):
    machines = Machine.homogeneous(m, cap)
    shards = Shard.uniform(n, dem)
    return ClusterState(machines, shards, assign)


class TestWeights:
    def test_defaults_valid(self):
        ObjectiveWeights()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"move_penalty": -1.0},
            {"smooth_weight": -0.1},
            {"overload_penalty": -1.0},
            {"vacancy_penalty": -1.0},
        ],
    )
    def test_negative_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ObjectiveWeights(**kwargs)


class TestObjective:
    def test_peak_dominates(self):
        state = state_with([0, 1, 2])
        obj = Objective(state.assignment, state.sizes)
        comps = obj.components(state)
        assert comps["peak"] == pytest.approx(0.2)
        assert comps["value"] == pytest.approx(
            0.2 + obj.weights.smooth_weight * comps["smooth"], abs=1e-9
        )

    def test_moved_fraction(self):
        state = state_with([0, 1, 2])
        obj = Objective(state.assignment, state.sizes, weights=ObjectiveWeights(move_penalty=1.0))
        moved = state.copy()
        moved.move(0, 1)
        comps = obj.components(moved)
        assert comps["moved_fraction"] == pytest.approx(1.0 / 3.0)

    def test_overload_penalized(self):
        state = state_with([0, 0, 0], cap=5.0, dem=2.0)  # 6/5 on machine 0
        obj = Objective(state.assignment, state.sizes)
        comps = obj.components(state)
        assert comps["overload"] > 0
        assert comps["value"] > 1.0  # dominated by the penalty

    def test_vacancy_shortfall(self):
        state = state_with([0, 1, 2])
        obj = Objective(state.assignment, state.sizes, required_returns=1)
        assert obj.components(state)["vacancy_shortfall"] == 1.0
        packed = state.copy()
        packed.move(2, 0)
        assert obj.components(packed)["vacancy_shortfall"] == 0.0

    def test_vacancy_satisfied_beats_shortfall(self):
        state = state_with([0, 1, 2])
        obj = Objective(state.assignment, state.sizes, required_returns=1)
        packed = state.copy()
        packed.move(2, 0)  # worse peak but satisfies vacancy
        assert obj(packed) < obj(state)

    def test_is_feasible(self):
        state = state_with([0, 1, 2])
        obj0 = Objective(state.assignment, state.sizes)
        assert obj0.is_feasible(state)
        obj1 = Objective(state.assignment, state.sizes, required_returns=1)
        assert not obj1.is_feasible(state)
        packed = state.copy()
        packed.move(2, 0)
        assert obj1.is_feasible(packed)

    def test_is_feasible_rejects_unassigned(self):
        state = state_with([0, 1, 2])
        obj = Objective(state.assignment, state.sizes)
        partial = state.copy()
        partial.unassign(0)
        assert not obj.is_feasible(partial)

    def test_is_feasible_rejects_overload(self):
        state = state_with([0, 0, 0], cap=5.0, dem=2.0)
        obj = Objective(state.assignment, state.sizes)
        assert not obj.is_feasible(state)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            Objective(np.zeros(3, dtype=np.int64), np.zeros(2))

    def test_lower_peak_is_better(self):
        state = state_with([0, 0, 1])
        obj = Objective(state.assignment, state.sizes, weights=ObjectiveWeights(move_penalty=0.0))
        balanced = state.copy()
        balanced.move(1, 2)
        assert obj(balanced) < obj(state)
