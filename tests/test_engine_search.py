"""Tests for BM25 scoring, sharding and the fan-out broker.

The keystone invariant: sharded search (per-shard top-k merged by the
broker) returns exactly the same results as searching one monolithic
index — document partitioning is lossless.
"""

import numpy as np
import pytest

from repro.engine import (
    BM25Scorer,
    CorpusConfig,
    Document,
    InvertedIndex,
    Query,
    SearchBroker,
    ShardedIndex,
    generate_corpus,
    generate_queries,
    partition_documents,
)


def hand_corpus():
    return [
        Document.from_text(0, "apple banana apple apple"),
        Document.from_text(1, "banana cherry banana"),
        Document.from_text(2, "cherry cherry cherry durian"),
        Document.from_text(3, "apple durian"),
        Document.from_text(4, "elderberry fig grape"),
    ]


class TestBM25:
    def test_more_matches_rank_higher(self):
        ix = InvertedIndex.build(hand_corpus())
        scorer = BM25Scorer(ix)
        results, work = scorer.search(Query(("apple",)), k=5)
        assert results[0].doc_id == 0  # tf 3 beats tf 1
        assert work == 2  # apple posting list has 2 entries

    def test_multi_term_scores_accumulate(self):
        ix = InvertedIndex.build(hand_corpus())
        scorer = BM25Scorer(ix)
        results, _ = scorer.search(Query(("apple", "durian")), k=5)
        ids = [r.doc_id for r in results]
        assert 3 in ids  # matches both terms
        # doc 3 (both terms) should beat doc 2 (one rare term)
        assert ids.index(3) < ids.index(2)

    def test_oov_query_returns_empty(self):
        ix = InvertedIndex.build(hand_corpus())
        results, work = BM25Scorer(ix).search(Query(("zucchini",)), k=5)
        assert results == [] and work == 0

    def test_k_limits_results(self):
        ix = InvertedIndex.build(hand_corpus())
        results, _ = BM25Scorer(ix).search(Query(("cherry", "banana")), k=1)
        assert len(results) == 1

    def test_scores_sorted_descending(self):
        ix = InvertedIndex.build(hand_corpus())
        results, _ = BM25Scorer(ix).search(Query(("apple", "banana", "cherry")), k=5)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_idf_decreases_with_df(self):
        ix = InvertedIndex.build(hand_corpus())
        scorer = BM25Scorer(ix)
        assert scorer.idf("elderberry") > scorer.idf("cherry")

    def test_invalid_params(self):
        ix = InvertedIndex.build(hand_corpus())
        with pytest.raises(ValueError, match="k1"):
            BM25Scorer(ix, k1=0.0)
        with pytest.raises(ValueError, match="b must"):
            BM25Scorer(ix, b=1.5)
        with pytest.raises(ValueError, match="k"):
            BM25Scorer(ix).search(Query(("apple",)), k=0)


class TestPartition:
    def test_hash_partition_covers_all_docs(self):
        docs = generate_corpus(CorpusConfig(num_docs=100, seed=0))
        groups = partition_documents(docs, 4)
        assert sum(len(g) for g in groups) == 100
        ids = sorted(d.doc_id for g in groups for d in g)
        assert ids == list(range(100))

    def test_round_robin_is_balanced(self):
        docs = generate_corpus(CorpusConfig(num_docs=100, seed=0))
        groups = partition_documents(docs, 4, strategy="round-robin")
        assert all(len(g) == 25 for g in groups)

    def test_hash_is_deterministic(self):
        docs = generate_corpus(CorpusConfig(num_docs=50, seed=0))
        a = partition_documents(docs, 4)
        b = partition_documents(docs, 4)
        assert [[d.doc_id for d in g] for g in a] == [[d.doc_id for d in g] for g in b]

    def test_too_many_shards_rejected(self):
        docs = generate_corpus(CorpusConfig(num_docs=3, seed=0))
        with pytest.raises(ValueError, match="no documents"):
            partition_documents(docs, 10)

    def test_unknown_strategy(self):
        docs = generate_corpus(CorpusConfig(num_docs=10, seed=0))
        with pytest.raises(ValueError, match="strategy"):
            partition_documents(docs, 2, strategy="alphabetical")


class TestShardedEquivalence:
    def test_sharded_topk_equals_global_topk(self):
        cfg = CorpusConfig(num_docs=300, vocab_size=800, seed=7)
        docs = generate_corpus(cfg)
        mono = BM25Scorer(InvertedIndex.build(docs))
        broker = SearchBroker(ShardedIndex.build(docs, 5))
        for q in generate_queries(cfg, 20, seed=11):
            expect, _ = mono.search(q, k=10)
            got = broker.search(q, k=10).results
            assert [r.doc_id for r in got] == [r.doc_id for r in expect]
            np.testing.assert_allclose(
                [r.score for r in got], [r.score for r in expect], rtol=1e-9
            )

    def test_broker_work_accounting(self):
        docs = generate_corpus(CorpusConfig(num_docs=100, seed=1))
        sharded = ShardedIndex.build(docs, 4)
        broker = SearchBroker(sharded)
        resp = broker.search(Query(("t0",)), k=5)
        assert len(resp.shard_work) == 4
        assert resp.total_work == sum(resp.shard_work)
        # t0 is the most common term: every shard should do some work.
        assert all(w > 0 for w in resp.shard_work)


class TestDemandModel:
    def test_to_cluster_shards(self):
        cfg = CorpusConfig(num_docs=200, vocab_size=500, seed=5)
        docs = generate_corpus(cfg)
        sharded = ShardedIndex.build(docs, 4)
        queries = generate_queries(cfg, 10)
        shards = sharded.to_cluster_shards(queries)
        assert len(shards) == 4
        assert [s.id for s in shards] == [0, 1, 2, 3]
        for s in shards:
            assert s.demand_of("cpu") > 0
            assert s.demand_of("disk") > 0
            assert s.size_bytes == s.demand_of("disk")
            assert s.demand_of("ram") == pytest.approx(0.5 * s.demand_of("disk"))

    def test_hot_terms_make_shards_costly(self):
        # All queries hit one term -> shards holding more of that term's
        # postings get higher cpu demand.
        cfg = CorpusConfig(num_docs=200, vocab_size=500, seed=5)
        docs = generate_corpus(cfg)
        sharded = ShardedIndex.build(docs, 4)
        q = [Query(("t0",))]
        shards = sharded.to_cluster_shards(q)
        dfs = [ix.document_frequency("t0") for ix in sharded.indexes]
        cpus = [s.demand_of("cpu") for s in shards]
        assert np.argmax(dfs) == np.argmax(cpus)

    def test_empty_query_sample_rejected(self):
        docs = generate_corpus(CorpusConfig(num_docs=50, seed=0))
        sharded = ShardedIndex.build(docs, 2)
        with pytest.raises(ValueError, match="non-empty"):
            sharded.measure([])
