"""Tests for the IP formulation and the exact MILP solver.

The hand-built instances have known optima, so these tests pin both the
matrix construction and the end-to-end solver behaviour (including the
vacancy-return constraint that encodes the resource-exchange contract).
"""

import numpy as np
import pytest

from repro.cluster import ClusterState, ExchangeLedger, Machine, Shard
from repro.model import MilpSolver, ModelConfig, build_model, lp_relaxation_bound
from repro.workloads import SyntheticConfig, generate, make_exchange_machines


def two_machine_state():
    """2 machines cap 10, 4 unit shards all on machine 0 (peak util 0.4)."""
    machines = Machine.homogeneous(2, 10.0)
    shards = Shard.uniform(4, 1.0)
    return ClusterState(machines, shards, [0, 0, 0, 0])


class TestBuildModel:
    def test_variable_layout(self):
        model = build_model(two_machine_state(), ModelConfig())
        assert model.num_variables == 4 * 2 + 2 + 1
        assert model.x_index(0, 0) == 0
        assert model.x_index(3, 1) == 7
        assert model.y_index(0) == 8
        assert model.z_index == 10

    def test_equality_one_machine_per_shard(self):
        model = build_model(two_machine_state(), ModelConfig())
        assert model.A_eq.shape[0] == 4
        np.testing.assert_allclose(model.A_eq.sum(axis=1).A1, 2.0)  # two x per row

    def test_objective_has_z_and_move_terms(self):
        state = two_machine_state()
        model = build_model(state, ModelConfig(move_penalty=0.5))
        assert model.c[model.z_index] == 1.0
        # staying put is rewarded (negative coefficient on x[j, a0_j])
        assert model.c[model.x_index(0, 0)] < 0
        assert model.c[model.x_index(0, 1)] == 0
        assert model.objective_offset == pytest.approx(0.5)

    def test_zero_move_penalty_has_no_x_cost(self):
        model = build_model(two_machine_state(), ModelConfig(move_penalty=0.0))
        assert np.count_nonzero(model.c) == 1  # only z
        assert model.objective_offset == 0.0

    def test_requires_full_assignment(self):
        machines = Machine.homogeneous(2, 10.0)
        shards = Shard.uniform(2, 1.0)
        state = ClusterState(machines, shards)  # unassigned
        with pytest.raises(ValueError, match="fully assigned"):
            build_model(state, ModelConfig())

    def test_vacancy_constraint_only_when_required(self):
        state = two_machine_state()
        no_ret = build_model(state, ModelConfig(required_returns=0))
        with_ret = build_model(state, ModelConfig(required_returns=1))
        assert with_ret.A_ub.shape[0] == no_ret.A_ub.shape[0] + 1

    def test_extract_assignment(self):
        model = build_model(two_machine_state(), ModelConfig())
        sol = np.zeros(model.num_variables)
        for j, i in enumerate([0, 1, 0, 1]):
            sol[model.x_index(j, i)] = 1.0
        np.testing.assert_array_equal(model.extract_assignment(sol), [0, 1, 0, 1])


class TestMilpSolver:
    def test_balances_two_machines(self):
        result = MilpSolver(ModelConfig(move_penalty=0.0)).solve(two_machine_state())
        assert result.status == "optimal"
        # optimum: 2 shards per machine, peak util 0.2
        assert result.peak_utilization == pytest.approx(0.2, abs=1e-6)
        counts = np.bincount(result.assignment, minlength=2)
        assert list(counts) == [2, 2]

    def test_move_penalty_prefers_fewer_moves(self):
        # With a huge move penalty the optimum is to stay put.
        result = MilpSolver(ModelConfig(move_penalty=100.0)).solve(two_machine_state())
        assert result.status == "optimal"
        np.testing.assert_array_equal(result.assignment, [0, 0, 0, 0])

    def test_vacancy_return_forces_empty_machine(self):
        machines = Machine.homogeneous(3, 10.0)
        shards = Shard.uniform(4, 1.0)
        state = ClusterState(machines, shards, [0, 1, 2, 0])
        result = MilpSolver(ModelConfig(required_returns=1, move_penalty=0.0)).solve(state)
        assert result.status == "optimal"
        counts = np.bincount(result.assignment, minlength=3)
        assert (counts == 0).sum() >= 1
        assert len(result.vacant_machines) >= 1
        # peak: 4 unit shards on 2 machines -> best is 2+2 -> util 0.2
        assert result.peak_utilization == pytest.approx(0.2, abs=1e-6)

    def test_infeasible_when_returns_exceed_possibility(self):
        # 2 machines, demand so large one machine cannot hold everything,
        # yet we demand one machine be vacant -> infeasible.
        machines = Machine.homogeneous(2, 10.0)
        shards = Shard.uniform(4, 4.0)  # total 16 > 10
        state = ClusterState(machines, shards, [0, 0, 1, 1])
        result = MilpSolver(ModelConfig(required_returns=1, move_penalty=0.0)).solve(state)
        assert result.status == "infeasible"
        assert not result.ok

    def test_hard_capacity_respected(self):
        machines = Machine.homogeneous(2, 10.0)
        shards = Shard.uniform(3, 6.0)  # any pair overflows one machine
        state = ClusterState(machines, shards, [0, 0, 1])
        result = MilpSolver(ModelConfig(move_penalty=0.0)).solve(state)
        # 18 total demand on 20 capacity, but 2 shards = 12 > 10: infeasible
        assert result.status == "infeasible"

    def test_exchange_machine_flow(self):
        """End-to-end: borrow one machine, solve with R=1, exchange happens."""
        machines = Machine.homogeneous(2, 10.0)
        # Machine 0 crowded with 5 shards of demand 1.8 = 9.0 (90% util).
        shards = Shard.uniform(5, 1.8)
        state = ClusterState(machines, shards, [0, 0, 0, 0, 0])
        grown, ledger = ExchangeLedger.borrow(
            state, make_exchange_machines(state, 1)
        )
        result = MilpSolver(
            ModelConfig(required_returns=1, move_penalty=0.0)
        ).solve(grown)
        assert result.status == "optimal"
        # Optimal peak: 5 shards across 2 of the 3 machines (one returned):
        # 3*1.8=5.4 -> z = 0.54
        assert result.peak_utilization == pytest.approx(0.54, abs=1e-6)
        final = grown.copy()
        final.apply_assignment(result.assignment)
        assert ledger.is_satisfiable(final)

    def test_solver_on_generated_instance(self):
        state = generate(
            SyntheticConfig(num_machines=4, shards_per_machine=3, seed=0, target_utilization=0.6)
        )
        result = MilpSolver(ModelConfig(move_penalty=0.001), time_limit=30.0).solve(state)
        assert result.ok
        final = state.copy()
        final.apply_assignment(result.assignment)
        assert final.is_within_capacity()
        assert final.peak_utilization() <= state.peak_utilization() + 1e-6

    def test_solver_validates_params(self):
        with pytest.raises(ValueError, match="time_limit"):
            MilpSolver(time_limit=0.0)
        with pytest.raises(ValueError, match="mip_gap"):
            MilpSolver(mip_gap=-1.0)


class TestLpRelaxation:
    def test_bound_below_integer_optimum(self):
        state = two_machine_state()
        cfg = ModelConfig(move_penalty=0.01)
        bound = lp_relaxation_bound(state, cfg)
        exact = MilpSolver(cfg).solve(state)
        assert bound <= exact.objective + 1e-9

    def test_bound_is_finite_for_feasible_instance(self):
        state = generate(SyntheticConfig(num_machines=5, shards_per_machine=4, seed=1))
        assert np.isfinite(lp_relaxation_bound(state))


class TestModelSemantics:
    def test_milp_z_equals_actual_peak_utilization(self):
        """The model's z variable must mean what DESIGN.md says: the peak
        normalized utilization of the decoded assignment."""
        for seed in (0, 1, 2):
            state = generate(
                SyntheticConfig(
                    num_machines=4, shards_per_machine=3, seed=seed,
                    target_utilization=0.65,
                )
            )
            result = MilpSolver(ModelConfig(move_penalty=0.0)).solve(state)
            assert result.ok
            final = state.copy()
            final.apply_assignment(result.assignment)
            assert result.peak_utilization == pytest.approx(
                final.peak_utilization(), abs=1e-6
            )

    def test_objective_decomposes_as_documented(self):
        """objective = z + λ·Σ w_j (1 − x[j,a0_j]) with w normalized."""
        state = two_machine_state()
        cfg = ModelConfig(move_penalty=0.5)
        result = MilpSolver(cfg).solve(state)
        final = state.copy()
        final.apply_assignment(result.assignment)
        moved = state.sizes[result.assignment != state.assignment].sum()
        expected = final.peak_utilization() + 0.5 * moved / state.sizes.sum()
        assert result.objective == pytest.approx(expected, abs=1e-6)
