"""E9 — SRA vs the exact IP optimum (optimality-gap table analogue).

Shape claim ("approximate the optimal solution"): on exactly solvable
instances, SRA's peak utilization is within a few percent of the MILP
optimum, at a fraction of the solve time.
"""

import math

from repro.experiments import REGISTRY, is_full_run


def test_e9_optimality(benchmark, save_table):
    rows = benchmark.pedantic(
        REGISTRY["e9"], kwargs={"fast": not is_full_run()}, rounds=1, iterations=1
    )
    save_table("e9", rows, "E9 — SRA vs exact MILP optimum")

    assert rows
    gaps = []
    for r in rows:
        assert r["milp_status"] in ("optimal", "timeout"), r["instance"]
        # SRA can never beat a proven optimum.
        if r["milp_status"] == "optimal":
            assert r["sra_peak"] >= r["milp_peak"] - 1e-6, r["instance"]
        if not math.isnan(r["gap_pct"]):
            gaps.append(r["gap_pct"])
    assert gaps
    assert max(gaps) < 10.0, f"worst gap {max(gaps):.2f}%"
    assert sum(gaps) / len(gaps) < 5.0
