"""Process-parallel execution layer (zero new dependencies).

Public surface:

* :func:`~repro.parallel.seeds.spawn_seeds` — deterministic per-task
  seeds via ``numpy.random.SeedSequence.spawn`` keyed by task index;
* :class:`~repro.parallel.runner.ParallelRunner` — worker pool (one-shot
  or persistent) with per-task timeouts, crash isolation and
  ``repro.obs`` merge;
* :mod:`~repro.parallel.shm` — shared-memory instance publication
  (:func:`~repro.parallel.shm.publish_state` /
  :func:`~repro.parallel.shm.attach_state`) and the cooperative
  incumbent slot (:class:`~repro.parallel.shm.IncumbentSlot`);
* :func:`~repro.parallel.restarts.run_sra_restarts` — best-of-K SRA
  restart fan-out over the persistent shared-memory pool, blind or
  cooperative (what ``SRAConfig.restarts`` / CLI ``--restarts`` drive);
* :func:`~repro.parallel.driver.run_experiments` /
  :func:`~repro.parallel.driver.save_tables` — parallel E1–E20
  experiment driver (what ``repro.cli experiment --all --workers N``
  drives).

See docs/ARCHITECTURE.md, "Parallel execution", for the seed-spawning
contract, worker crash semantics, the shm ownership/lifetime contract
and the obs merge rules.
"""

from repro.parallel.driver import (
    ExperimentResult,
    registry_order,
    run_experiments,
    save_tables,
)
from repro.parallel.restarts import RestartReport, run_sra_restarts
from repro.parallel.runner import ParallelRunner, TaskResult, TaskSpec
from repro.parallel.seeds import spawn_seed, spawn_seeds
from repro.parallel.shm import (
    IncumbentExchange,
    IncumbentSlot,
    SharedState,
    attach_state,
    publish_state,
)

__all__ = [
    "ExperimentResult",
    "IncumbentExchange",
    "IncumbentSlot",
    "ParallelRunner",
    "RestartReport",
    "SharedState",
    "TaskResult",
    "TaskSpec",
    "attach_state",
    "publish_state",
    "registry_order",
    "run_experiments",
    "run_sra_restarts",
    "save_tables",
    "spawn_seed",
    "spawn_seeds",
]
