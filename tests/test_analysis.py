"""Tests for the repro.analysis invariant linter and typing ratchet.

Each rule gets fixture-driven positives *and* negatives (the negatives
are what keep the linter honest — a rule that fires on the blessed
idiom would be suppressed into uselessness within a week), plus the
suppression grammar, the baseline ratchet semantics, the CLI front end
and a self-check that the repository at HEAD lints clean under its
committed baseline.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from repro.analysis import (
    Finding,
    all_rules,
    compare,
    get_rule,
    group_findings,
    lint_paths,
    lint_project,
    lint_source,
)
from repro.analysis import baseline as baseline_mod
from repro.analysis import typing_ratchet
from repro.analysis.cli import main as lint_main
from repro.analysis.context import ModuleContext

REPO_ROOT = Path(__file__).resolve().parents[1]

ALGO = "src/repro/simulate/fixture.py"


def rule_ids(findings):
    return [f.rule_id for f in findings]


def lint(source, rel=ALGO, rules=None):
    return lint_source(source, rel, rules=rules)


class TestRegistry:
    def test_pack_is_registered(self):
        assert [r.rule_id for r in all_rules()] == [
            "REP001", "REP002", "REP003", "REP004", "REP005",
            "REP006", "REP007", "REP008", "REP009",
        ]

    def test_get_rule_is_case_insensitive(self):
        assert get_rule("rep002").slug == "wall-clock"

    def test_every_rule_has_slug_and_description(self):
        for rule in all_rules():
            assert rule.slug and rule.description


class TestFinding:
    def test_format_and_roundtrip(self):
        f = Finding(file="src/x.py", line=3, rule_id="REP001", message="m")
        assert f.format() == "src/x.py:3: REP001 m"
        assert Finding.from_dict(f.to_dict()) == f

    def test_sorts_by_file_line_rule(self):
        a = Finding("a.py", 9, "REP002", "m")
        b = Finding("b.py", 1, "REP001", "m")
        assert sorted([b, a]) == [a, b]


class TestRep001RngSeed:
    def test_literal_seed_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert rule_ids(lint(src)) == ["REP001"]

    def test_missing_seed_flagged(self):
        src = "from numpy.random import default_rng\nrng = default_rng()\n"
        findings = lint(src)
        assert rule_ids(findings) == ["REP001"]
        assert "without a seed" in findings[0].message

    def test_none_seed_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng(None)\n"
        assert rule_ids(lint(src)) == ["REP001"]

    def test_configured_seed_clean(self):
        src = "import numpy as np\nrng = np.random.default_rng(cfg.seed)\n"
        assert lint(src) == []

    def test_derived_seed_expression_clean(self):
        src = (
            "import numpy as np\n"
            "rng = np.random.default_rng((cfg.seed + 104729) if seed is None else seed)\n"
        )
        assert lint(src) == []

    def test_seed_sequence_literal_entropy_flagged(self):
        src = "import numpy as np\nss = np.random.SeedSequence(42)\n"
        assert rule_ids(lint(src)) == ["REP001"]

    def test_seed_sequence_configured_entropy_clean(self):
        src = "import numpy as np\nss = np.random.SeedSequence(entropy=cfg.seed)\n"
        assert lint(src) == []

    def test_legacy_numpy_rng_always_flagged(self):
        src = "import numpy as np\nnp.random.seed(0)\nr = np.random.RandomState(cfg.seed)\n"
        assert rule_ids(lint(src)) == ["REP001", "REP001"]

    def test_alias_import_resolved(self):
        src = "import numpy.random as nr\nrng = nr.default_rng(13)\n"
        assert rule_ids(lint(src)) == ["REP001"]


class TestRep002WallClock:
    def test_time_time_flagged_in_scope(self):
        src = "import time\nt = time.time()\n"
        assert rule_ids(lint(src)) == ["REP002"]

    def test_from_import_alias_resolved(self):
        src = "from time import perf_counter\nt = perf_counter()\n"
        assert rule_ids(lint(src)) == ["REP002"]

    def test_datetime_now_flagged(self):
        src = "import datetime\nnow = datetime.datetime.now()\n"
        assert rule_ids(lint(src)) == ["REP002"]

    def test_stdlib_random_import_flagged(self):
        assert rule_ids(lint("import random\n")) == ["REP002"]
        assert rule_ids(lint("from random import choice\n")) == ["REP002"]

    def test_out_of_scope_modules_exempt(self):
        src = "import time\nt = time.time()\n"
        for rel in (
            "src/repro/parallel/runner.py",
            "src/repro/obs/tracer.py",
            "src/repro/experiments/e8_latency.py",
            "src/repro/analysis/engine.py",
            "src/repro/cli.py",
            "tools/bench.py",
        ):
            assert lint(src, rel=rel) == []

    def test_injected_clock_call_clean(self):
        # Calling an injected clock attribute is the blessed pattern.
        src = "t = self._clock()\n"
        assert lint(src) == []


class TestRep003StateMutation:
    def test_private_attr_rebind_flagged(self):
        src = "state._loads = fresh\n"
        assert rule_ids(lint(src)) == ["REP003"]

    def test_private_attr_subscript_write_flagged(self):
        src = "state._loads[0] = 1.0\n"
        assert rule_ids(lint(src)) == ["REP003"]

    def test_private_attr_augassign_flagged(self):
        src = "state._num_unassigned += 1\n"
        assert rule_ids(lint(src)) == ["REP003"]

    def test_view_property_subscript_write_flagged(self):
        src = "state.loads[i] -= delta\n"
        assert rule_ids(lint(src)) == ["REP003"]

    def test_assignment_copy_write_gets_copy_message(self):
        findings = lint("state.assignment[j] = m\n")
        assert rule_ids(findings) == ["REP003"]
        assert "silently lost" in findings[0].message

    def test_view_call_subscript_write_flagged(self):
        src = "state.assignment_view()[j] = m\n"
        assert rule_ids(lint(src)) == ["REP003"]

    def test_private_method_call_flagged(self):
        src = "state._rebuild_caches()\n"
        assert rule_ids(lint(src)) == ["REP003"]

    def test_self_writes_clean(self):
        # An object's own arrays (e.g. the migration executor's loads)
        # are its own business; only foreign ClusterState writes count.
        src = "self.loads[machine] -= d\nself._rebuild_caches()\n"
        assert lint(src) == []

    def test_state_py_itself_exempt(self):
        src = "state._loads[0] = 1.0\n"
        assert lint(src, rel="src/repro/cluster/state.py") == []

    def test_transactional_api_clean(self):
        src = "state.move(j, m)\nstate.assign_shard(j, m)\nstate.commit()\n"
        assert lint(src) == []


class TestRep004SpanContext:
    def test_manual_enter_flagged(self):
        src = 'sp = tracer.span("x")\nsp.__enter__()\n'
        assert rule_ids(lint(src)) == ["REP004"]

    def test_with_statement_clean(self):
        src = 'with tracer.span("x") as sp:\n    sp.set("k", 1)\n'
        assert lint(src) == []

    def test_with_statement_multiple_items_clean(self):
        src = 'with tracer.span("a") as a, tracer.span("b"):\n    pass\n'
        assert lint(src) == []

    def test_span_as_call_argument_flagged(self):
        src = 'record(tracer.span("x"))\n'
        assert rule_ids(lint(src)) == ["REP004"]


class TestRep005UnorderedFold:
    REL = "src/repro/algorithms/fixture.py"

    def test_augassign_over_set_literal_flagged(self):
        src = "total = 0.0\nfor x in {1.0, 2.0}:\n    total += x\n"
        assert rule_ids(lint(src, rel=self.REL)) == ["REP005"]

    def test_augassign_over_set_call_flagged(self):
        src = "t = 0.0\nfor x in set(values):\n    t += x\n"
        assert rule_ids(lint(src, rel=self.REL)) == ["REP005"]

    def test_sum_over_set_comprehension_flagged(self):
        src = "t = sum({f(x) for x in xs})\n"
        assert rule_ids(lint(src, rel=self.REL)) == ["REP005"]

    def test_sum_generator_over_set_flagged(self):
        src = "t = sum(v for v in set(vals))\n"
        assert rule_ids(lint(src, rel=self.REL)) == ["REP005"]

    def test_sorted_iteration_clean(self):
        src = "t = 0.0\nfor x in sorted(set(values)):\n    t += x\nu = sum(sorted(s))\n"
        assert lint(src, rel=self.REL) == []

    def test_list_iteration_clean(self):
        src = "t = 0.0\nfor x in values:\n    t += x\n"
        assert lint(src, rel=self.REL) == []

    def test_out_of_scope_clean(self):
        src = "t = 0.0\nfor x in {1.0, 2.0}:\n    t += x\n"
        assert lint(src, rel="src/repro/cluster/state.py") == []


SHM_FIXTURE = """\
class _SlotView:
    def __init__(self, buf, n, m):
        self.version = buf
        self.objective = buf
        self.assign = buf
        self.blocked = buf
"""

WORKER_UNLOCKED = """\
from repro.parallel.shm import _SlotView

def publish(view, objective):
    view.objective[0] = objective
    view.version[0] += 1

def refresh(buf, objective):
    view = _SlotView(buf, 4, 2)
    publish(view, objective)
"""


class TestRep006ShmLock:
    """The lock-discipline rule needs the call graph: the write and the
    ``with lock:`` (or its absence) live in different functions."""

    def test_unlocked_cross_function_write_flagged(self):
        findings = lint_project({
            "src/repro/parallel/shm.py": SHM_FIXTURE,
            "src/repro/parallel/worker.py": WORKER_UNLOCKED,
        })
        assert rule_ids(findings) == ["REP006", "REP006"]
        assert [f.line for f in findings] == [4, 5]
        assert all(f.file == "src/repro/parallel/worker.py" for f in findings)

    def test_old_per_module_engine_cannot_see_it(self):
        # The same worker module linted alone is clean: the taint that
        # makes the write dangerous arrives through the call graph.
        assert lint_source(WORKER_UNLOCKED, "src/repro/parallel/worker.py") == []

    def test_helper_called_only_under_lock_is_blessed(self):
        src = (
            "from repro.parallel.shm import _SlotView\n"
            "\n"
            "def publish(view, objective):\n"
            "    view.objective[0] = objective\n"
            "\n"
            "def offer(buf, lock, objective):\n"
            "    view = _SlotView(buf, 4, 2)\n"
            "    with lock:\n"
            "        publish(view, objective)\n"
        )
        assert lint_project({
            "src/repro/parallel/shm.py": SHM_FIXTURE,
            "src/repro/parallel/worker.py": src,
        }) == []

    def test_lexical_with_lock_is_clean(self):
        src = (
            "from repro.parallel.shm import _SlotView\n"
            "\n"
            "def offer(buf, lock, objective):\n"
            "    view = _SlotView(buf, 4, 2)\n"
            "    with lock:\n"
            "        view.objective[0] = objective\n"
        )
        assert lint_project({
            "src/repro/parallel/shm.py": SHM_FIXTURE,
            "src/repro/parallel/worker.py": src,
        }) == []

    def test_writeable_reenable_flagged_outside_shm(self):
        src = "def attach(view):\n    view.flags.writeable = True\n"
        findings = lint_project({"src/repro/parallel/worker.py": src})
        assert rule_ids(findings) == ["REP006"]
        assert "read-only" in findings[0].message

    def test_writeable_allowed_inside_shm_itself(self):
        src = "def attach(view):\n    view.flags.writeable = True\n"
        assert lint_project({"src/repro/parallel/shm.py": src}) == []

    def test_suppression_applies(self):
        src = (
            "from repro.parallel.shm import _SlotView\n"
            "\n"
            "def init(buf):\n"
            "    view = _SlotView(buf, 4, 2)\n"
            "    view.version[0] = 0  # repro: allow-shm-lock (pre-publication)\n"
        )
        assert lint_project({
            "src/repro/parallel/shm.py": SHM_FIXTURE,
            "src/repro/parallel/worker.py": src,
        }) == []


TXN_REL = "src/repro/algorithms/txn_fixture.py"


def lint_txn(src):
    return lint_project({TXN_REL: src})


class TestRep007TransactionBalance:
    """The txn-balance rule needs the CFG: the leak is a *path*, not a
    line, and the interesting paths are exception edges."""

    def test_early_return_leak_flagged(self):
        src = (
            "def apply(state, moves):\n"
            "    state.begin()\n"
            "    for j, m in moves:\n"
            "        if not state.move(j, m):\n"
            "            return False\n"
            "    state.commit()\n"
            "    return True\n"
        )
        findings = lint_txn(src)
        assert rule_ids(findings) == ["REP007"]
        assert findings[0].line == 2

    def test_exception_path_leak_flagged(self):
        src = (
            "def risky(state):\n"
            "    state.begin()\n"
            "    state.move(0, 1)\n"
            "    state.commit()\n"
        )
        findings = lint_txn(src)
        assert rule_ids(findings) == ["REP007"]
        assert "exception path" in findings[0].message

    def test_try_finally_rollback_clean(self):
        src = (
            "def safe(state):\n"
            "    state.begin()\n"
            "    try:\n"
            "        state.move(0, 1)\n"
            "        state.commit()\n"
            "    finally:\n"
            "        if state.in_transaction:\n"
            "            state.rollback()\n"
        )
        assert lint_txn(src) == []

    def test_except_rollback_reraise_clean(self):
        # The canonical cleanup idiom: rollback() consumed the bracket
        # even on the edge where rollback itself raises.
        src = (
            "def safe(state):\n"
            "    state.begin()\n"
            "    try:\n"
            "        state.move(0, 1)\n"
            "        state.commit()\n"
            "    except BaseException:\n"
            "        state.rollback()\n"
            "        raise\n"
        )
        assert lint_txn(src) == []

    def test_correlated_branches_stay_silent(self):
        # if use: begin() ... if use: commit() joins to `maybe`; only
        # *definite* leaks are reported.
        src = (
            "def guarded(state, use):\n"
            "    if use:\n"
            "        state.begin()\n"
            "    touch(state)\n"
            "    if use:\n"
            "        state.commit()\n"
        )
        assert lint_txn(src) == []

    def test_alias_commit_is_understood(self):
        src = (
            "def aliased(state):\n"
            "    s = state\n"
            "    state.begin()\n"
            "    s.commit()\n"
        )
        assert lint_txn(src) == []

    def test_old_per_module_engine_cannot_see_it(self):
        src = "def risky(state):\n    state.begin()\n    state.move(0, 1)\n    state.commit()\n"
        assert lint_source(src, TXN_REL) == []


RNG_HELPERS = """\
from numpy.random import default_rng

def make_rng(seed=None):
    return default_rng(seed)

def make_stream(seed=None):
    return make_rng(seed)
"""


class TestRep008SeedProvenance:
    """The seed-provenance rule needs the call graph: REP001 sees
    ``default_rng(42)``, only conduit analysis sees ``make_stream(42)``."""

    def test_two_hop_cross_module_laundering_flagged(self):
        driver = (
            "from repro.utils.rngs import make_stream\n"
            "\n"
            "def build():\n"
            "    return make_stream(42)\n"
        )
        findings = lint_project({
            "src/repro/utils/rngs.py": RNG_HELPERS,
            "src/repro/utils/driver.py": driver,
        })
        assert rule_ids(findings) == ["REP008"]
        assert findings[0].file == "src/repro/utils/driver.py"
        assert findings[0].line == 4
        assert "laundered" in findings[0].message

    def test_old_per_module_engine_cannot_see_it(self):
        driver = (
            "from repro.utils.rngs import make_stream\n"
            "\n"
            "def build():\n"
            "    return make_stream(42)\n"
        )
        assert lint_source(driver, "src/repro/utils/driver.py") == []

    def test_conduit_literal_default_flagged_at_def(self):
        src = (
            "from numpy.random import default_rng\n"
            "\n"
            "def make_rng(seed=1234):\n"
            "    return default_rng(seed)\n"
        )
        findings = lint_project({"src/repro/utils/rngs.py": src})
        assert rule_ids(findings) == ["REP008"]
        assert findings[0].line == 3
        assert "defaults a seed" in findings[0].message

    def test_configured_seed_and_explicit_none_clean(self):
        driver = (
            "from repro.utils.rngs import make_stream\n"
            "\n"
            "def build(cfg):\n"
            "    a = make_stream(cfg.seed)\n"
            "    b = make_stream(None)\n"
            "    return a, b\n"
        )
        assert lint_project({
            "src/repro/utils/rngs.py": RNG_HELPERS,
            "src/repro/utils/driver.py": driver,
        }) == []

    def test_experiment_drivers_out_of_scope(self):
        # Experiments are the configuration origin: a published default
        # seed there *is* the reproducibility contract.
        driver = (
            "from repro.utils.rngs import make_stream\n"
            "\n"
            "def run():\n"
            "    return make_stream(7)\n"
        )
        assert lint_project({
            "src/repro/utils/rngs.py": RNG_HELPERS,
            "src/repro/experiments/e99_demo.py": driver,
        }) == []


class TestRep009SoaMirror:
    """The mirror-discipline rule extends REP003 across the call graph:
    the view escapes through a parameter and is clobbered elsewhere."""

    def test_cross_module_param_write_flagged(self):
        helper = "def clobber(lt):\n    lt[0] = 0.0\n"
        driver = (
            "from repro.algorithms.helper import clobber\n"
            "\n"
            "def run(state):\n"
            "    clobber(state.loads_by_dim())\n"
        )
        findings = lint_project({
            "src/repro/algorithms/helper.py": helper,
            "src/repro/algorithms/driver.py": driver,
        })
        assert rule_ids(findings) == ["REP009"]
        assert findings[0].file == "src/repro/algorithms/helper.py"
        assert findings[0].line == 2

    def test_old_per_module_engine_cannot_see_it(self):
        helper = "def clobber(lt):\n    lt[0] = 0.0\n"
        assert lint_source(helper, "src/repro/algorithms/helper.py") == []

    def test_local_alias_subscript_write_flagged(self):
        src = (
            "def scale(state):\n"
            "    lt = state.loads_by_dim()\n"
            "    lt[0] = 1.0\n"
        )
        findings = lint_project({"src/repro/algorithms/x.py": src})
        assert rule_ids(findings) == ["REP009"]

    def test_fill_and_copyto_flagged(self):
        src = (
            "import numpy as np\n"
            "\n"
            "def wipe(state, row):\n"
            "    state.loads_by_dim().fill(0.0)\n"
            "    np.copyto(state.loads_by_dim(), row)\n"
        )
        findings = lint_project({"src/repro/algorithms/x.py": src})
        assert rule_ids(findings) == ["REP009", "REP009"]

    def test_self_attr_mirror_write_flagged(self):
        src = (
            "class Scorer:\n"
            "    def __init__(self, state):\n"
            "        self._lt = state.loads_by_dim()\n"
            "\n"
            "    def reset(self):\n"
            "        self._lt[0] = 0.0\n"
        )
        findings = lint_project({"src/repro/algorithms/x.py": src})
        assert rule_ids(findings) == ["REP009"]
        assert findings[0].line == 6

    def test_derived_array_is_fresh_and_writable(self):
        src = (
            "def derive(state, inv):\n"
            "    util = state.loads_by_dim() * inv\n"
            "    util[0] = 1.0\n"
            "    return util\n"
        )
        assert lint_project({"src/repro/algorithms/x.py": src}) == []

    def test_state_py_itself_exempt(self):
        src = (
            "def rebuild(state):\n"
            "    lt = state.loads_by_dim()\n"
            "    lt[0] = 1.0\n"
        )
        assert lint_project({"src/repro/cluster/state.py": src}) == []


class TestSuppressions:
    def test_same_line_slug(self):
        src = "import time\nt = time.time()  # repro: allow-wall-clock (reporting)\n"
        assert lint(src) == []

    def test_same_line_rule_id(self):
        src = "import time\nt = time.time()  # repro: allow-rep002\n"
        assert lint(src) == []

    def test_preceding_comment_line_covers_next(self):
        src = (
            "import time\n"
            "# repro: allow-wall-clock (real-time budget)\n"
            "t = time.time()\n"
        )
        assert lint(src) == []

    def test_allow_all(self):
        src = "import time\nt = time.time()  # repro: allow-all\n"
        assert lint(src) == []

    def test_wrong_token_does_not_suppress(self):
        src = "import time\nt = time.time()  # repro: allow-rng-seed\n"
        assert rule_ids(lint(src)) == ["REP002"]

    def test_suppression_is_line_scoped(self):
        src = (
            "import time\n"
            "a = time.time()  # repro: allow-wall-clock\n"
            "b = time.time()\n"
        )
        findings = lint(src)
        assert rule_ids(findings) == ["REP002"]
        assert findings[0].line == 3

    def test_non_comment_line_does_not_bless_next(self):
        src = (
            "import time\n"
            "a = time.time()  # repro: allow-wall-clock\n"
            "b = time.time()\n"
        )
        # Line 2's trailing comment must not cover line 3.
        assert [f.line for f in lint(src)] == [3]


class TestModuleContext:
    def test_alias_resolution(self):
        mod = ModuleContext(
            Path("x.py"), "x.py",
            "import numpy.random as nr\nfrom time import perf_counter as pc\n",
        )
        assert mod.aliases["nr"] == "numpy.random"
        assert mod.aliases["pc"] == "time.perf_counter"

    def test_resolve_none_for_non_chain(self):
        mod = ModuleContext(Path("x.py"), "x.py", "f()[0]()\n")
        import ast as _ast

        call = next(
            n for n in _ast.walk(mod.tree)
            if isinstance(n, _ast.Call) and isinstance(n.func, _ast.Subscript)
        )
        assert mod.resolve(call.func) is None


class TestLintPaths:
    def test_walk_and_relative_paths(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "simulate"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text("import time\nt = time.time()\n")
        (pkg / "good.py").write_text("x = 1\n")
        findings = lint_paths([tmp_path / "src"], tmp_path)
        assert rule_ids(findings) == ["REP002"]
        assert findings[0].file == "src/repro/simulate/bad.py"

    def test_syntax_error_becomes_rep000(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "broken.py").write_text("def broken(:\n")
        findings = lint_paths([tmp_path / "src"], tmp_path)
        assert rule_ids(findings) == ["REP000"]


class TestBaselineRatchet:
    F1 = Finding("a.py", 1, "REP001", "m1")
    F2 = Finding("a.py", 9, "REP001", "m2")
    F3 = Finding("b.py", 2, "REP002", "m3")

    def test_group_findings(self):
        groups = group_findings([self.F1, self.F2, self.F3])
        assert groups == {"a.py::REP001": 2, "b.py::REP002": 1}

    def test_growth_fails(self):
        result = compare([self.F1, self.F2], {"a.py::REP001": 1})
        assert not result.ok
        # The first finding in line order carries the grandfathered slot.
        assert result.grandfathered == (self.F1,)
        assert result.new == (self.F2,)

    def test_within_baseline_ok(self):
        result = compare([self.F1, self.F2], {"a.py::REP001": 2})
        assert result.ok
        assert result.new == ()
        assert result.stale == {}

    def test_shrink_is_ok_and_reported_stale(self):
        result = compare([self.F1], {"a.py::REP001": 3, "b.py::REP002": 1})
        assert result.ok
        assert result.stale == {"a.py::REP001": 2, "b.py::REP002": 1}

    def test_new_file_fails(self):
        result = compare([self.F3], {"a.py::REP001": 1})
        assert not result.ok
        assert result.new == (self.F3,)

    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "lint-baseline.json"
        baseline_mod.save([self.F1, self.F2, self.F3], path)
        assert baseline_mod.load(path) == {"a.py::REP001": 2, "b.py::REP002": 1}
        doc = json.loads(path.read_text())
        assert doc["version"] == 1

    def test_load_missing_file_is_empty(self, tmp_path):
        assert baseline_mod.load(tmp_path / "absent.json") == {}


def make_repo(tmp_path, source="import time\nt = time.time()\n"):
    """A minimal lintable repo: pyproject marker + one in-scope module."""
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
    pkg = tmp_path / "src" / "repro" / "simulate"
    pkg.mkdir(parents=True)
    target = pkg / "mod.py"
    target.write_text(source)
    return target


class TestLintCli:
    def test_violation_exits_nonzero(self, tmp_path, capsys):
        make_repo(tmp_path)
        assert lint_main(["--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "REP002" in out and "new finding" in out

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        make_repo(tmp_path)
        assert lint_main(["--root", str(tmp_path), "--update-baseline"]) == 0
        assert (tmp_path / "lint-baseline.json").exists()
        capsys.readouterr()
        assert lint_main(["--root", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "[baseline]" in out  # grandfathered debt stays visible

    def test_fixed_debt_reports_stale(self, tmp_path, capsys):
        target = make_repo(tmp_path)
        lint_main(["--root", str(tmp_path), "--update-baseline"])
        target.write_text("x = 1\n")
        capsys.readouterr()
        assert lint_main(["--root", str(tmp_path)]) == 0
        assert "no longer occur" in capsys.readouterr().out

    def test_no_baseline_reports_everything(self, tmp_path, capsys):
        make_repo(tmp_path)
        lint_main(["--root", str(tmp_path), "--update-baseline"])
        capsys.readouterr()
        assert lint_main(["--root", str(tmp_path), "--no-baseline"]) == 1

    def test_rules_filter(self, tmp_path):
        make_repo(tmp_path)
        assert lint_main(["--root", str(tmp_path), "--rules", "REP001"]) == 0
        assert lint_main(["--root", str(tmp_path), "--rules", "rep002"]) == 1

    def test_unknown_rule_exits_2(self, tmp_path):
        make_repo(tmp_path)
        assert lint_main(["--root", str(tmp_path), "--rules", "REP999"]) == 2

    def test_json_format(self, tmp_path, capsys):
        make_repo(tmp_path)
        assert lint_main(["--root", str(tmp_path), "--format", "json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["new"] and doc["new"][0]["rule"] == "REP002"
        assert doc["grandfathered"] == []

    def test_no_interprocedural_skips_project_rules(self, tmp_path):
        leaky = (
            "def f(state):\n"
            "    state.begin()\n"
            "    state.move(0, 1)\n"
            "    state.commit()\n"
        )
        make_repo(tmp_path, leaky)
        assert lint_main(["--root", str(tmp_path)]) == 1
        assert lint_main(["--root", str(tmp_path), "--no-interprocedural"]) == 0

    def test_explain_prints_contract(self, capsys):
        assert lint_main(["--explain", "REP007"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("REP007 (txn-balance)")
        for section in ("Contract", "Rationale", "Suppression"):
            assert section in out

    def test_explain_covers_every_registered_rule(self, capsys):
        for rule in all_rules():
            assert lint_main(["--explain", rule.rule_id]) == 0
            out = capsys.readouterr().out
            assert "Suppression" in out, rule.rule_id

    def test_explain_unknown_rule_exits_2(self, capsys):
        assert lint_main(["--explain", "REP999"]) == 2
        err = capsys.readouterr().err
        assert "REP001" in err  # lists the known pack

    def test_failure_message_points_at_explain(self, tmp_path, capsys):
        make_repo(tmp_path)
        assert lint_main(["--root", str(tmp_path)]) == 1
        assert "--explain REP002" in capsys.readouterr().out

    def test_callgraph_dot(self, tmp_path, capsys):
        make_repo(tmp_path, "def g():\n    return 1\n\ndef f():\n    return g()\n")
        assert lint_main(["--root", str(tmp_path), "--callgraph", "dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert '"repro.simulate.mod.f" -> "repro.simulate.mod.g"' in out

    def test_callgraph_json(self, tmp_path, capsys):
        make_repo(tmp_path, "def g():\n    return 1\n\ndef f():\n    return g()\n")
        assert lint_main(["--root", str(tmp_path), "--callgraph", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert "repro.simulate.mod.f" in doc["nodes"]
        assert any(
            e["caller"].endswith(".f") and e["callee"].endswith(".g")
            for e in doc["edges"]
        )

    def test_repo_at_head_lints_clean(self, capsys):
        """Self-check: the repository satisfies its own invariants —
        including the interprocedural pack, which runs by default and
        carries *no* grandfathered debt."""
        assert lint_main(["--root", str(REPO_ROOT)]) == 0
        out = capsys.readouterr().out
        # The committed baseline holds only experiment-module RNG debt;
        # REP006-REP009 entered with an empty grandfather list.
        for line in out.splitlines():
            if line.endswith("[baseline]"):
                assert line.startswith("src/repro/experiments/")
                assert "REP001" in line


MYPY_OUTPUT = """\
src/repro/obs/tracer.py:10: error: Missing return statement  [return]
src/repro/obs/tracer.py:20: error: Incompatible types  [assignment]
src/repro/cluster/state.py:5: error: Bad thing  [misc]
src/repro/cli.py:7: error: Other thing  [misc]
src/repro/obs/tracer.py:11: note: this is a note, not an error
Found 4 errors in 3 files (checked 50 source files)
"""

STRICT_PYPROJECT = """\
[tool.mypy]
python_version = "3.11"

[[tool.mypy.overrides]]
module = "repro.obs.*"
disallow_untyped_defs = true

[[tool.mypy.overrides]]
module = "repro.lenient.*"
check_untyped_defs = true
"""


class TestTypingRatchet:
    def test_package_of(self):
        assert typing_ratchet.package_of("src/repro/obs/tracer.py") == "repro.obs"
        assert typing_ratchet.package_of("src/repro/cli.py") == "repro"
        assert typing_ratchet.package_of("src/repro/analysis/rules.py") == "repro.analysis"

    def test_parse_mypy_output(self):
        counts = typing_ratchet.parse_mypy_output(MYPY_OUTPUT)
        assert counts == {"repro.obs": 2, "repro.cluster": 1, "repro": 1}

    def test_parse_ignores_non_error_lines(self):
        assert typing_ratchet.parse_mypy_output("Success: no issues found\n") == {}

    def test_strict_packages_from_pyproject(self):
        strict = typing_ratchet.strict_packages_from_pyproject(STRICT_PYPROJECT)
        # Only the override carrying the strict flag counts.
        assert strict == frozenset({"repro.obs"})

    def test_evaluate_ok(self):
        failures = typing_ratchet.evaluate(
            {"repro.cluster": 2},
            {"total_errors": 2, "strict_packages": ["repro.obs"]},
            frozenset({"repro.obs"}),
        )
        assert failures == []

    def test_evaluate_strict_regression_fails(self):
        failures = typing_ratchet.evaluate(
            {"repro.obs": 1},
            {"total_errors": 5, "strict_packages": ["repro.obs"]},
            frozenset({"repro.obs"}),
        )
        assert any("repro.obs regressed" in f for f in failures)

    def test_evaluate_demotion_fails(self):
        failures = typing_ratchet.evaluate(
            {},
            {"total_errors": 0, "strict_packages": ["repro.obs"]},
            frozenset(),
        )
        assert any("demoted" in f for f in failures)

    def test_evaluate_total_growth_fails(self):
        failures = typing_ratchet.evaluate(
            {"repro.cluster": 3},
            {"total_errors": 2, "strict_packages": []},
            frozenset(),
        )
        assert any("grew" in f for f in failures)

    def test_main_with_saved_output(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").write_text(STRICT_PYPROJECT)
        out = tmp_path / "mypy.txt"
        out.write_text("")
        baseline = tmp_path / "typing-baseline.json"
        assert typing_ratchet.main([
            "--root", str(tmp_path), "--mypy-output", str(out),
            "--baseline", str(baseline), "--update-baseline",
        ]) == 0
        doc = json.loads(baseline.read_text())
        assert doc["total_errors"] == 0
        assert doc["strict_packages"] == ["repro.obs"]
        capsys.readouterr()
        assert typing_ratchet.main([
            "--root", str(tmp_path), "--mypy-output", str(out),
            "--baseline", str(baseline),
        ]) == 0

    def test_main_fails_on_regression(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(STRICT_PYPROJECT)
        clean = tmp_path / "clean.txt"
        clean.write_text("")
        baseline = tmp_path / "typing-baseline.json"
        typing_ratchet.main([
            "--root", str(tmp_path), "--mypy-output", str(clean),
            "--baseline", str(baseline), "--update-baseline",
        ])
        regressed = tmp_path / "bad.txt"
        regressed.write_text("src/repro/obs/tracer.py:1: error: boom  [misc]\n")
        assert typing_ratchet.main([
            "--root", str(tmp_path), "--mypy-output", str(regressed),
            "--baseline", str(baseline),
        ]) == 1

    def test_main_fails_on_demotion(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(STRICT_PYPROJECT)
        clean = tmp_path / "clean.txt"
        clean.write_text("")
        baseline = tmp_path / "typing-baseline.json"
        typing_ratchet.main([
            "--root", str(tmp_path), "--mypy-output", str(clean),
            "--baseline", str(baseline), "--update-baseline",
        ])
        # Demote repro.obs by dropping its strict override.
        (tmp_path / "pyproject.toml").write_text("[tool.mypy]\n")
        assert typing_ratchet.main([
            "--root", str(tmp_path), "--mypy-output", str(clean),
            "--baseline", str(baseline),
        ]) == 1

    def test_missing_baseline_exits_2(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(STRICT_PYPROJECT)
        out = tmp_path / "mypy.txt"
        out.write_text("")
        assert typing_ratchet.main([
            "--root", str(tmp_path), "--mypy-output", str(out),
            "--baseline", str(tmp_path / "absent.json"),
        ]) == 2

    @pytest.mark.skipif(
        importlib.util.find_spec("mypy") is not None,
        reason="mypy installed; the skip path is unreachable",
    )
    def test_missing_mypy_skips(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(STRICT_PYPROJECT)
        assert typing_ratchet.main(["--root", str(tmp_path)]) == 0
        assert typing_ratchet.main(
            ["--root", str(tmp_path), "--require-mypy"]
        ) == 2

    def test_repo_strict_promotions_are_baselined(self):
        """pyproject's strict tier and the committed baseline agree."""
        strict = typing_ratchet.strict_packages_from_pyproject(
            (REPO_ROOT / "pyproject.toml").read_text()
        )
        assert {"repro.obs", "repro.metrics", "repro.analysis"} <= strict
        doc = json.loads((REPO_ROOT / "typing-baseline.json").read_text())
        assert sorted(strict) == doc["strict_packages"]
        assert doc["total_errors"] == 0
