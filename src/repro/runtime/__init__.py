"""Unified event-driven simulation runtime.

One event-heap kernel (:class:`Runtime`) under every time loop in the
repo.  Serving, migration execution, workload drift and rebalancing are
pluggable *processes* sharing a single simulated clock, so questions the
old per-subsystem loops could not pose — "what does p99 look like
*while* wave 3 of the migration saturates machine 7's NIC?" — fall out
of composing them.

Layers
------
:mod:`repro.runtime.kernel`
    ``SimClock`` + ``EventQueue`` + the :class:`Process` protocol.
:mod:`repro.runtime.machines`
    Piecewise-constant-speed FCFS serving machines (analytic between
    speed changes; bit-for-bit the legacy loop at constant speed).
:mod:`repro.runtime.serving`
    :class:`QueryArrivalProcess` — replays arrival traces against the
    fleet through the live shard→machine map.
:mod:`repro.runtime.migration`
    :class:`MigrationExecutor` — runs a wave schedule in simulated time
    with NIC derating and transient dual holds.
:mod:`repro.runtime.processes`
    :class:`DriftProcess` and :class:`RebalanceController` — the online
    control loop as clock-driven processes.
:mod:`repro.runtime.controller`
    :class:`EwmaDriftDetector` and :class:`IncrementalRebalanceController`
    — continuous rebalancing: drift/hotspot detection over the obs
    metrics stream gating warm-started, budget-bounded SRA rounds.
:mod:`repro.runtime.profile`
    :func:`synthetic_profile` — snapshot-derived work matrices for
    engine-free runs.

The legacy entry points (``repro.simulate.simulate_serving``,
``repro.online.OnlineSimulator``) are facades over these pieces and keep
their exact historical outputs.
"""

from repro.runtime.controller import (
    DriftDetectorConfig,
    EwmaDriftDetector,
    IncrementalRebalanceController,
)
from repro.runtime.kernel import EventQueue, Process, Runtime, SimClock
from repro.runtime.machines import FCFSMachine, QueryRecord, ServingFleet
from repro.runtime.migration import MigrationExecutor
from repro.runtime.processes import (
    ClusterHandle,
    DriftProcess,
    EpisodeOutcome,
    RebalanceController,
)
from repro.runtime.profile import synthetic_profile
from repro.runtime.serving import QueryArrivalProcess

__all__ = [
    "SimClock",
    "EventQueue",
    "Process",
    "Runtime",
    "QueryRecord",
    "FCFSMachine",
    "ServingFleet",
    "QueryArrivalProcess",
    "MigrationExecutor",
    "ClusterHandle",
    "DriftProcess",
    "RebalanceController",
    "EpisodeOutcome",
    "DriftDetectorConfig",
    "EwmaDriftDetector",
    "IncrementalRebalanceController",
    "synthetic_profile",
]
