"""The shipped rule pack: REP001–REP005.

Each rule encodes an invariant of this reproduction that no
off-the-shelf linter knows about (docs/ARCHITECTURE.md, "Static
analysis & invariants", explains the why behind each):

* **REP001** ``rng-seed`` — RNG construction with a literal or missing
  seed.  Bitwise-reproducible trajectories require every stream to
  derive from a configured seed (or ``SeedSequence.spawn``); PR 2 fixed
  a recovery bug of exactly this class (``default_rng(0)`` shadowing
  the configured seed).
* **REP002** ``wall-clock`` — wall-clock reads (``time.*``,
  ``datetime.now``…) or stdlib ``random`` in simulation/algorithm code,
  where simulated time (``repro.runtime.SimClock``) or an injected
  clock must be used.  ``parallel/``, ``obs/`` and the experiment
  drivers legitimately measure real time and are out of scope; the few
  runtime-*reporting* sites inside scope carry inline allows.
* **REP003** ``state-mutation`` — direct writes to ``ClusterState``
  internals (private caches, live array views, copy-returning
  properties) outside ``cluster/state.py``.  Such writes bypass the
  undo journal and desynchronize the delta-evaluation caches.
* **REP004** ``span-context`` — ``Tracer.span(...)`` used other than as
  a ``with`` context manager.  A manually entered span leaks on any
  exception path and corrupts the trace tree.
* **REP005** ``unordered-fold`` — float accumulation over ``set`` /
  ``frozenset`` iteration in ``algorithms/`` / ``metrics/``.  Float
  addition is not associative, so set iteration order changes results
  between runs/processes even with identical seeds.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.engine import Rule, register
from repro.analysis.findings import Finding

__all__ = [
    "RngSeedRule",
    "WallClockRule",
    "StateMutationRule",
    "SpanContextRule",
    "UnorderedFoldRule",
]

_DYNAMIC_NODES = (
    ast.Name,
    ast.Attribute,
    ast.Call,
    ast.Subscript,
    ast.Starred,
    ast.Lambda,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
)


def _is_static(node: ast.AST) -> bool:
    """True when *node* is a compile-time constant expression (no names,
    calls or subscripts anywhere inside it)."""
    return not any(isinstance(sub, _DYNAMIC_NODES) for sub in ast.walk(node))


def _seed_argument(call: ast.Call, keyword: str) -> ast.AST | None:
    if call.args and not isinstance(call.args[0], ast.Starred):
        return call.args[0]
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


@register
class RngSeedRule(Rule):
    """RNG constructed with a literal or missing seed.

    Contract:
        Every ``numpy.random.default_rng(...)`` / ``SeedSequence(...)``
        call receives a *dynamic* seed expression — a config value, a
        parameter, or a ``SeedSequence.spawn`` child.  Literal seeds,
        missing seeds, and the legacy ``numpy.random.seed`` /
        ``RandomState`` APIs are all violations.

    Rationale:
        Bitwise-reproducible trajectories require every stream to derive
        from the one configured seed.  A literal shadows that seed
        silently: the run "works" but replays a fixed realization no
        matter what the config says (PR 2 fixed a recovery bug of
        exactly this class).  REP008 extends this check across call
        boundaries to seeds laundered through helper parameters.

    Suppression:
        ``# repro: allow-rng-seed`` on the offending line (or alone on
        the line above), with a comment saying why this stream must not
        follow the configured seed — e.g. a deliberately adversarial
        fixture generator.
    """

    rule_id = "REP001"
    slug = "rng-seed"
    description = (
        "RNG constructed with a literal or missing seed; seeds must flow "
        "from config or SeedSequence.spawn"
    )

    def check(self, mod: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            target = mod.resolve(node.func)
            if target is None:
                continue
            if target == "default_rng" or target.endswith(".default_rng"):
                yield from self._check_seeded(mod, node, "default_rng", "seed")
            elif target == "SeedSequence" or target.endswith(".SeedSequence"):
                yield from self._check_seeded(mod, node, "SeedSequence", "entropy")
            elif target in ("numpy.random.seed", "numpy.random.RandomState") or (
                target.endswith("random.RandomState")
            ):
                yield self.finding(
                    mod,
                    node,
                    f"legacy numpy RNG API ({target.rsplit('.', 1)[-1]}) — "
                    "construct a Generator via default_rng(configured_seed)",
                )

    def _check_seeded(
        self, mod: ModuleContext, node: ast.Call, name: str, keyword: str
    ) -> Iterator[Finding]:
        seed = _seed_argument(node, keyword)
        if seed is None or (
            isinstance(seed, ast.Constant) and seed.value is None
        ):
            yield self.finding(
                mod,
                node,
                f"{name}() without a seed is nondeterministic — thread the "
                "configured seed through",
            )
        elif _is_static(seed):
            yield self.finding(
                mod,
                node,
                f"{name}({ast.unparse(seed)}) hard-codes its seed — seeds "
                "must flow from config or SeedSequence.spawn",
            )


#: Call targets that read the wall clock.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Modules where real time is the measured quantity, not a bug.
_WALL_CLOCK_ALLOWED_PREFIXES = (
    "src/repro/experiments/",
    "src/repro/parallel/",
    "src/repro/obs/",
    "src/repro/analysis/",
)
_WALL_CLOCK_ALLOWED_FILES = frozenset(
    {"src/repro/cli.py", "src/repro/__main__.py"}
)


@register
class WallClockRule(Rule):
    """Wall-clock read (or stdlib ``random``) in simulation/algorithm code.

    Contract:
        Inside ``src/repro/`` — excluding ``experiments/``,
        ``parallel/``, ``obs/``, ``analysis/`` and the CLI entry points,
        where real time is the measured quantity — no call to
        ``time.*`` clock readers or ``datetime`` "now" constructors, and
        no import of stdlib ``random``.

    Rationale:
        Simulated components must take time from
        ``repro.runtime.SimClock`` (or an injected clock) so traces are
        deterministic and replayable; a wall-clock read makes results
        depend on host speed.  Stdlib ``random`` is a second, unseeded
        RNG source next to the numpy Generator threaded from config.

    Suppression:
        ``# repro: allow-wall-clock`` on the line, reserved for genuine
        runtime *reporting* sites inside scope (progress timestamps in
        logs) — never for anything that feeds back into results.
    """

    rule_id = "REP002"
    slug = "wall-clock"
    description = (
        "wall-clock read (or stdlib random) in simulation/algorithm code; "
        "use repro.runtime.SimClock or an injected clock"
    )

    def applies_to(self, rel: str) -> bool:
        if not rel.startswith("src/repro/"):
            return False
        if rel in _WALL_CLOCK_ALLOWED_FILES:
            return False
        return not rel.startswith(_WALL_CLOCK_ALLOWED_PREFIXES)

    def check(self, mod: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Call):
                target = mod.resolve(node.func)
                if target in _WALL_CLOCK_CALLS:
                    yield self.finding(
                        mod,
                        node,
                        f"{target}() reads the wall clock inside simulation/"
                        "algorithm code — use simulated time "
                        "(repro.runtime.SimClock) or an injected clock",
                    )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            mod,
                            node,
                            "stdlib random is a second, unseeded RNG source — "
                            "use the numpy Generator threaded from config",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "random":
                    yield self.finding(
                        mod,
                        node,
                        "stdlib random is a second, unseeded RNG source — "
                        "use the numpy Generator threaded from config",
                    )


#: ClusterState's private caches (cluster/state.py is the one writer).
_STATE_PRIVATE_ATTRS = frozenset(
    {
        "_assign",
        "_loads",
        "_counts",
        "_peak",
        "_peak_dirty",
        "_peak_any_dirty",
        "_num_unassigned",
        "_num_vacant",
        "_replica_hosts",
        "_replica_conflicts",
        "_norm_demand",
        "_loads_t",
        "_peak_block",
        "_block_dirty",
        "_block_any_dirty",
    }
)
_STATE_PRIVATE_METHODS = frozenset(
    {
        "_rebuild_caches",
        "_journal_shard",
        "_journal_machine",
        "_refreshed_peaks",
        "_host_enter",
        "_host_leave",
    }
)
#: Properties returning live arrays ("do not mutate") or copies (writes
#: are silently lost): subscript stores through them are always bugs.
_STATE_VIEW_PROPS = frozenset(
    {
        "loads",
        "capacity",
        "demand",
        "sizes",
        "assignment",
        "blocked_mask",
        "offline_mask",
        "exchange_mask",
    }
)
_STATE_VIEW_CALLS = frozenset(
    {
        "assignment_view",
        "shard_counts_view",
        "machine_peak_utilization_view",
    }
)


@register
class StateMutationRule(Rule):
    """Direct mutation of ``ClusterState`` internals outside
    ``cluster/state.py``.

    Contract:
        Outside ``src/repro/cluster/state.py``, no attribute or
        subscript write to the private caches (``_loads``, ``_peak``,
        ``_loads_t``, ``_peak_block``, …), no call to the private
        maintenance methods, and no subscript store through the
        view-returning properties (``loads``, ``assignment``, …) or
        ``*_view()`` accessors.

    Rationale:
        Every legal mutation flows through the transactional API
        (``begin`` / ``move`` / ``assign_shard`` / ``commit`` /
        ``rollback``) so the undo journal and the delta-evaluation
        caches stay coherent.  A direct write bypasses both: rollback
        silently restores stale values and incremental objectives drift
        from the arrays.  REP009 extends this to *aliases* of the
        mirror arrays that cross function boundaries.

    Suppression:
        ``# repro: allow-state-mutation`` on the line.  Legitimate only
        in code that provably owns a private copy (e.g. a frame restored
        from a snapshot) — say so in an adjacent comment.
    """

    rule_id = "REP003"
    slug = "state-mutation"
    description = (
        "direct mutation of ClusterState internals outside cluster/state.py; "
        "use the transactional API (begin/move/assign_shard/commit/rollback)"
    )

    def applies_to(self, rel: str) -> bool:
        return rel.startswith("src/repro/") and rel != "src/repro/cluster/state.py"

    def check(self, mod: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    yield from self._check_target(mod, target)
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _STATE_PRIVATE_METHODS
                    and not _is_self(func.value)
                ):
                    yield self.finding(
                        mod,
                        node,
                        f"call to ClusterState-private {func.attr}() outside "
                        "cluster/state.py bypasses the transactional API",
                    )

    def _check_target(self, mod: ModuleContext, target: ast.AST) -> Iterator[Finding]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from self._check_target(mod, elt)
            return
        if (
            isinstance(target, ast.Attribute)
            and target.attr in _STATE_PRIVATE_ATTRS
            # A foreign write goes through a state reference
            # (state._loads = ...); a bare-self attribute is another
            # class's own field that happens to share the name.
            and not _is_self(target.value)
        ):
            yield self.finding(
                mod,
                target,
                f"write to ClusterState private cache .{target.attr} outside "
                "cluster/state.py bypasses the undo journal",
            )
            return
        if isinstance(target, ast.Subscript):
            value = target.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr in _STATE_PRIVATE_ATTRS
                and not _is_self(value.value)
            ):
                yield self.finding(
                    mod,
                    target,
                    f"subscript write into ClusterState private cache "
                    f".{value.attr} outside cluster/state.py bypasses the "
                    "undo journal",
                )
            elif (
                isinstance(value, ast.Attribute)
                and value.attr in _STATE_VIEW_PROPS
                and not _is_self(value.value)
            ):
                kind = (
                    "a copy (the write is silently lost)"
                    if value.attr == "assignment"
                    else "a live cache view"
                )
                yield self.finding(
                    mod,
                    target,
                    f"subscript write through .{value.attr} mutates {kind} — "
                    "use move()/assign_shard()/apply_assignment()",
                )
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr in _STATE_VIEW_CALLS
            ):
                yield self.finding(
                    mod,
                    target,
                    f"subscript write through {value.func.attr}() mutates the "
                    "live array — copy it or use the transactional API",
                )


def _is_self(node: ast.AST) -> bool:
    return isinstance(node, ast.Name) and node.id == "self"


@register
class SpanContextRule(Rule):
    """``Tracer.span(...)`` used other than as a ``with`` context manager.

    Contract:
        Every call whose attribute name is ``span`` appears as the
        context expression of a ``with`` item; assigning the span object
        and entering it manually is a violation.

    Rationale:
        A manually entered span leaks on any exception path between
        ``__enter__`` and the matching exit, which corrupts the trace
        tree for every later span in the same tracer — the damage shows
        up far from the bug.

    Suppression:
        ``# repro: allow-span-context`` on the line, for the rare
        framework-level site that stores a span across an async boundary
        and provably closes it in a ``finally``.
    """

    rule_id = "REP004"
    slug = "span-context"
    description = (
        "Tracer.span(...) used other than as a context manager; a manually "
        "entered span leaks on exception paths"
    )

    def check(self, mod: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
            ):
                parent = mod.parent(node)
                if isinstance(parent, ast.withitem) and parent.context_expr is node:
                    continue
                yield self.finding(
                    mod,
                    node,
                    "use `with tracer.span(...) as sp:` — a span entered "
                    "manually leaks on exceptions and corrupts the trace tree",
                )


_SUM_CALLS = frozenset({"sum", "math.fsum", "numpy.sum"})


def _is_unordered(mod: ModuleContext, node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        target = mod.resolve(node.func)
        return target in ("set", "frozenset")
    return False


@register
class UnorderedFoldRule(Rule):
    """Float accumulation over ``set`` / ``frozenset`` iteration.

    Contract:
        In ``src/repro/algorithms/`` and ``src/repro/metrics/``, no
        ``for``-loop accumulation (``+=`` in the body) over a set
        expression, and no ``sum()`` / ``math.fsum()`` / ``numpy.sum()``
        over a set or a comprehension drawing from one.

    Rationale:
        Float addition is not associative, and set iteration order
        varies with hash seeding and insertion history — so the same
        inputs with the same seeds can fold to different totals between
        runs or processes.  Iterate ``sorted(...)`` to pin the order.

    Suppression:
        ``# repro: allow-unordered-fold`` on the line, when the
        accumulator is order-insensitive (integer counts, max/min) and
        a comment says so.
    """

    rule_id = "REP005"
    slug = "unordered-fold"
    description = (
        "float accumulation over set iteration; float addition is not "
        "associative, so unordered folds are run-to-run nondeterministic"
    )

    def applies_to(self, rel: str) -> bool:
        return rel.startswith(("src/repro/algorithms/", "src/repro/metrics/"))

    def check(self, mod: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.For) and _is_unordered(mod, node.iter):
                if any(
                    isinstance(sub, ast.AugAssign)
                    for stmt in node.body
                    for sub in ast.walk(stmt)
                ):
                    yield self.finding(
                        mod,
                        node,
                        "accumulation over set iteration is order-"
                        "nondeterministic — iterate sorted(...) instead",
                    )
            elif isinstance(node, ast.Call):
                target = mod.resolve(node.func)
                if target not in _SUM_CALLS or not node.args:
                    continue
                arg = node.args[0]
                if _is_unordered(mod, arg):
                    yield self.finding(
                        mod,
                        node,
                        f"{target}() over a set is order-nondeterministic — "
                        "sum sorted(...) instead",
                    )
                elif isinstance(arg, (ast.GeneratorExp, ast.ListComp)) and any(
                    _is_unordered(mod, gen.iter) for gen in arg.generators
                ):
                    yield self.finding(
                        mod,
                        node,
                        f"{target}() over set iteration is order-"
                        "nondeterministic — iterate sorted(...) instead",
                    )
