"""Repair operators for the LNS.

A repair operator reinserts the shards a destroy operator removed.  Both
operators share the placement scoring: inserting shard *j* on machine *i*
is scored by the machine's peak utilization after insertion, with a large
penalty when the insertion overflows capacity (so overflow is used only
when nothing fits, and the objective's overload penalty then drives the
search away from it).  Blocked machines (SRA's designated-return
machines) score ``inf`` and are never chosen, as are machines hosting a
replica sibling of the shard being scored.

* :func:`greedy_best_fit` — insert largest-demand first, each on its
  best-scoring machine.
* :func:`regret2_insertion` — classic regret-2: repeatedly insert the
  shard whose best option beats its second-best by the most (the shard
  that will suffer most if postponed).

Implementation notes (this is the hottest code in the library — see the
"Delta evaluation contract" section of docs/ARCHITECTURE.md):

* Both operators keep a (removed × machines) score matrix *current*: an
  insertion changes exactly one machine, so exactly one column is
  refreshed per step.  Placements are always the true first-index argmin
  of the current row.
* Score kernels are written as per-dimension operations on contiguous
  column copies: axis-1 reductions over (m, d) arrays cost 3-10× more
  than the equivalent d-step fold at the sizes this library runs, and a
  scalar bound check skips overflow detection entirely when no removed
  shard can overflow the refreshed machine.
* Regret-2 re-ranks the pending shards after every insertion (one
  partition over the active rows) while ``m <= _EXACT_REGRET_MAX``.  On
  balanced instances incremental rank maintenance degenerates — every
  row prefers the same few machines, so each insertion disturbs most
  rows' top-2 — which makes the per-step partition the honest cost
  floor.  Above the threshold the O(q·m) per-step re-rank would
  dominate, so regret-2 freezes the insertion *order* at its build-time
  regrets (placements remain exact argmins of the current scores); see
  docs/ARCHITECTURE.md for the trade-off discussion.
* Greedy (all sizes) and regret-2 (up to the threshold) match the
  pre-optimization reference bitwise, pinned by the fixed-seed engine
  tests and `tools/bench_alns.py --check`.
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro.cluster import ClusterState

__all__ = [
    "RepairOperator",
    "greedy_best_fit",
    "regret2_insertion",
    "DEFAULT_REPAIR_OPS",
]

#: Score penalty for a placement that overflows capacity.
_OVERFLOW_PENALTY = 1e3

#: Largest machine count for which regret-2 re-ranks pending shards after
#: every insertion.  Above it, ranks are frozen at repair start.
_EXACT_REGRET_MAX = 128


class RepairOperator(Protocol):
    """Signature of a repair operator."""

    __name__: str

    def __call__(
        self,
        state: ClusterState,
        rng: np.random.Generator,
        removed: Sequence[int],
    ) -> None: ...


class _ScoreKernel:
    """Shared scoring machinery for one repair batch.

    Holds the removed shards, their demands (plus a transposed contiguous
    copy), contiguous per-dimension load/capacity columns (synced with
    the state by :meth:`refresh_machine`), and the score matrix.
    ``scores[r, i]`` is the peak utilization of machine ``i`` after
    inserting removed shard ``r`` there (+ overflow penalty, inf when
    blocked or replica-anti-affine).
    """

    def __init__(self, state: ClusterState, removed: Sequence[int]) -> None:
        self.state = state
        self.shards = np.asarray(removed, dtype=np.int64)
        self.demand = state.demand[self.shards]  # (q, d)
        self.demand_t = np.ascontiguousarray(self.demand.T)  # (d, q)
        q, d = self.demand.shape
        m = state.num_machines
        self.q = q
        self.m = m
        self.d = d
        capacity = state.capacity
        self.cap_cols = [np.ascontiguousarray(capacity[:, k]) for k in range(d)]
        self.cap_tol_cols = [c + 1e-12 for c in self.cap_cols]
        self.load_cols = [np.ascontiguousarray(state.loads[:, k]) for k in range(d)]
        # Largest per-dimension demand in the batch: lets column_scores()
        # prove "no removed shard overflows machine i" with d scalar
        # comparisons instead of d vector ones.
        self.demand_max = [self.demand_t[k].max() for k in range(d)]
        self.group_rows: dict[int, list[int]] = {}
        if state.replica_groups:
            for row, j in enumerate(self.shards.tolist()):
                g = state.shards[j].replica_of
                if g >= 0:
                    self.group_rows.setdefault(g, []).append(row)
        self.scores = self._build_matrix()

    def _build_matrix(self) -> np.ndarray:
        state = self.state
        q, m, d = self.q, self.m, self.d
        scores = np.empty((q, m))
        work = np.empty((q, m))
        overflow = np.zeros((q, m), dtype=bool)
        over_k = np.empty((q, m), dtype=bool)
        for k in range(d):
            np.add(self.load_cols[k], self.demand[:, k, None], out=work)
            np.greater(work, self.cap_tol_cols[k], out=over_k)
            np.logical_or(overflow, over_k, out=overflow)
            np.divide(work, self.cap_cols[k], out=work)
            if k == 0:
                np.copyto(scores, work)
            else:
                np.maximum(scores, work, out=scores)
        scores += _OVERFLOW_PENALTY * overflow
        scores[:, state.blocked_mask] = np.inf
        if self.group_rows:
            for row in range(q):
                hosts = state.replica_peer_machines(int(self.shards[row]))
                if hosts.size:
                    scores[row, hosts] = np.inf
        return scores

    def refresh_machine(self, machine: int) -> None:
        """Sync the contiguous load columns after an insertion."""
        loads = self.state.loads
        for k in range(self.d):
            self.load_cols[k][machine] = loads[machine, k]

    def column_scores(self, machine: int) -> np.ndarray:
        """(q,) current scores of every removed shard on *machine* (no
        inf marks — callers overlay blocked/struck state)."""
        can_overflow = False
        for k in range(self.d):
            if self.load_cols[k][machine] + self.demand_max[k] > self.cap_tol_cols[k][machine]:
                can_overflow = True
                break
        a0 = self.load_cols[0][machine] + self.demand_t[0]
        col = a0 / self.cap_cols[0][machine]
        if can_overflow:
            over = a0 > self.cap_tol_cols[0][machine]
        for k in range(1, self.d):
            a = self.load_cols[k][machine] + self.demand_t[k]
            np.maximum(col, a / self.cap_cols[k][machine], out=col)
            if can_overflow:
                over |= a > self.cap_tol_cols[k][machine]
        if can_overflow:
            col += _OVERFLOW_PENALTY * over
        return col

    def refresh_column(self, machine: int) -> None:
        """Recompute the score matrix column of *machine*, preserving inf
        (blocked / struck) entries."""
        old = self.scores[:, machine]
        col = self.column_scores(machine)
        col[~np.isfinite(old)] = np.inf
        self.scores[:, machine] = col

    def fallback_machine(self, row: int) -> int:
        """Least-loaded open machine — used when every machine is blocked
        or anti-affine (replication factor near the machine count); the
        objective's replica penalty then drives repair next round."""
        state = self.state
        peak = ((state.loads + self.demand[row]) / state.capacity).max(axis=1)
        peak[state.blocked_mask] = np.inf
        return int(np.argmin(peak))

    def best_machine(self, row: int) -> int:
        """First-index argmin over the row's current scores."""
        row_scores = self.scores[row]
        choice = int(np.argmin(row_scores))
        if np.isfinite(row_scores[choice]):
            return choice
        return self.fallback_machine(row)

    def insert(self, row: int, machine: int) -> int:
        """Assign row's shard to *machine* and refresh caches.  Returns
        the shard's replica group (-1 when unreplicated) so callers can
        strike siblings."""
        shard_id = int(self.shards[row])
        self.state.assign_shard(shard_id, machine)
        self.refresh_machine(machine)
        if self.group_rows:
            return self.state.shards[shard_id].replica_of
        return -1


def _insert_in_order(kern: _ScoreKernel, order: Sequence[int]) -> None:
    """Insert rows in the given order, each on the current best machine,
    refreshing the touched column and striking replica siblings that are
    still pending."""
    pending_pos = {int(row): pos for pos, row in enumerate(order)}
    scores = kern.scores
    for pos, row in enumerate(order):
        row = int(row)
        machine = kern.best_machine(row)
        group = kern.insert(row, machine)
        if pos + 1 < kern.q:
            kern.refresh_column(machine)
        if group >= 0:
            for sibling in kern.group_rows.get(group, ()):
                if pending_pos[sibling] > pos:
                    scores[sibling, machine] = np.inf


def greedy_best_fit(
    state: ClusterState, rng: np.random.Generator, removed: Sequence[int]
) -> None:
    """Insert removed shards, largest demand first, on best-scoring machines."""
    if not removed:
        return
    order = sorted(removed, key=lambda j: -float(state.demand[j].sum()))
    kern = _ScoreKernel(state, order)
    _insert_in_order(kern, range(kern.q))


def _regret2_exact(state: ClusterState, removed: Sequence[int]) -> None:
    """Regret-2 with re-ranking after every insertion (m <= threshold).

    Regrets are recomputed each step with one partition over the active
    rows of the maintained score matrix — at small m the whole active
    submatrix is a few KB, so this costs less than any bookkeeping that
    would avoid it.
    """
    kern = _ScoreKernel(state, removed)
    scores = kern.scores
    demand_mass = kern.demand.sum(axis=1)
    active = np.arange(kern.q)
    for _ in range(kern.q):
        if kern.m == 1:
            reg = np.full(active.size, np.inf)
        else:
            part = np.partition(scores[active], 1, axis=1)
            reg = part[:, 1] - part[:, 0]
        # Tie-break regret by demand so big shards go early.
        key = reg + 1e-9 * demand_mass[active]
        row = int(active[np.argmax(key)])
        machine = kern.best_machine(row)
        group = kern.insert(row, machine)
        active = active[active != row]
        if active.size == 0:
            break
        kern.refresh_column(machine)
        if group >= 0:
            for sibling in kern.group_rows.get(group, ()):
                if sibling != row:
                    scores[sibling, machine] = np.inf


def _regret2_frozen(state: ClusterState, removed: Sequence[int]) -> None:
    """Regret-2 with the insertion order frozen at build-time regrets.

    Placements stay exact (argmin of the maintained current scores);
    only the *priority* in which pending shards are visited is computed
    once, from the initial score matrix.  At large m this trades the
    O(affected·m)-per-step rank maintenance for one O(q·m) partition.
    """
    kern = _ScoreKernel(state, removed)
    if kern.m > 1:
        part = np.partition(kern.scores, 1, axis=1)
        reg = part[:, 1] - part[:, 0]
    else:
        reg = np.full(kern.q, np.inf)
    key = reg + 1e-9 * kern.demand.sum(axis=1)
    order = np.argsort(-key, kind="stable")
    _insert_in_order(kern, order)


def regret2_insertion(
    state: ClusterState, rng: np.random.Generator, removed: Sequence[int]
) -> None:
    """Regret-2 insertion: place the shard with the largest regret first."""
    if not removed:
        return
    if state.num_machines > _EXACT_REGRET_MAX:
        _regret2_frozen(state, list(removed))
    else:
        _regret2_exact(state, list(removed))


#: Default operator portfolio of SRA.
DEFAULT_REPAIR_OPS: tuple[RepairOperator, ...] = (greedy_best_fit, regret2_insertion)
