"""E16 — replica routing policies (extension).

With a 2×-replicated index placed by SRA (anti-affinity enforced), the
broker still chooses which replica serves each query.  This experiment
measures tail latency under the three routing policies, on the measured
engine work profile, plus a 1×-replication control at equal capacity.

Claims: least-loaded ≤ round-robin ≤ random in p99; 2× replication with
load-aware routing beats 1× at equal capacity (scheduling freedom).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import AlnsConfig, SRA, SRAConfig
from repro.cluster import ClusterState, Machine, Shard
from repro.engine import CorpusConfig, ShardedIndex, generate_corpus, generate_queries
from repro.experiments.harness import register
from repro.simulate import ServingConfig, WorkProfile, simulate_routed_serving

_QPS = 55.0
_PPCS = 2e5


@register("e16")
def run(fast: bool = True, *, placement_seed: int = 41) -> list[dict]:
    num_docs = 3000 if fast else 15000
    num_logical = 16 if fast else 32
    num_machines = 6 if fast else 12
    iterations = 400 if fast else 1500

    cfg = CorpusConfig(num_docs=num_docs, vocab_size=3000, seed=21)
    docs = generate_corpus(cfg)
    index = ShardedIndex.build(docs, num_logical)
    queries = generate_queries(cfg, 120 if fast else 400)
    profile = WorkProfile.measure(index, queries)
    logical_shards = index.to_cluster_shards(
        queries, queries_per_second=_QPS, postings_per_cpu_second=_PPCS
    )
    logical_demand = np.stack([s.demand for s in logical_shards])
    capacity = logical_demand.sum(axis=0) / (num_machines * 0.7)
    machines = Machine.homogeneous(
        num_machines,
        {n: float(c) for n, c in zip(logical_shards[0].schema.names, capacity, strict=True)},
    )
    serving = ServingConfig(
        arrival_rate=_QPS,
        duration=40.0 if fast else 120.0,
        postings_per_cpu_second=_PPCS,
        seed=31,
    )

    rows = []
    for k in (1, 2):
        state, logical_of = _replicated_cluster(
            machines, logical_demand, k, placement_seed
        )
        balanced = _rebalance(state, iterations)
        for policy in ("random", "round_robin", "least_loaded"):
            report = simulate_routed_serving(
                balanced, profile, logical_of, serving, policy=policy
            )
            rows.append(
                {
                    "replication": k,
                    "policy": policy,
                    "peak_util": balanced.peak_utilization(),
                    "p50_ms": 1e3 * report.latency.p50,
                    "p95_ms": 1e3 * report.latency.p95,
                    "p99_ms": 1e3 * report.latency.p99,
                    "peak_busy": report.peak_busy_fraction,
                }
            )
    return rows


def _replicated_cluster(machines, logical_demand, k, placement_seed):
    shards = []
    logical_of = []
    n_logical = logical_demand.shape[0]
    for g in range(n_logical):
        for _ in range(k):
            shards.append(
                Shard(
                    id=len(shards),
                    demand=logical_demand[g] / k,
                    replica_of=g if k > 1 else -1,
                )
            )
            logical_of.append(g)
    rng = np.random.default_rng(placement_seed)
    m = len(machines)
    assign = []
    for _g in range(n_logical):
        hosts = rng.choice(m, size=k, replace=False)
        assign.extend(int(h) for h in hosts)
    state = ClusterState(list(machines), shards, assign)
    return state, logical_of


def _rebalance(state, iterations):
    result = SRA(SRAConfig(alns=AlnsConfig(iterations=iterations, seed=1))).rebalance(
        state
    )
    out = state.copy()
    out.apply_assignment(result.target_assignment)
    return out
