"""Per-module analysis context shared by every rule.

A :class:`ModuleContext` is built once per source file and hands rules
everything they need: the parsed AST, a child→parent node map (the
stdlib AST has no parent links), resolved import aliases (so
``import numpy.random as nr; nr.default_rng(...)`` still resolves to
``numpy.random.default_rng``), and the ``# repro: allow-<rule>``
suppression table.

Suppressions
------------
A comment token ``# repro: allow-<token>`` suppresses findings whose
rule id (``rep002``) or slug (``wall-clock``) matches *token* — or every
rule, for ``allow-all`` — on the comment's own line; a comment-only line
also covers the line directly below it, so a suppression can sit above
the statement it blesses.  Suppressions are deliberately line-scoped:
blanket file-level opt-outs would defeat the ratchet.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

__all__ = ["ModuleContext", "dotted_name"]

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow-([a-z0-9-]+)")


class ModuleContext:
    """One parsed source file plus the lookup structures rules share."""

    def __init__(self, path: Path, rel: str, source: str) -> None:
        self.path = path
        #: Repo-relative POSIX path (the ``file`` of every finding).
        self.rel = rel
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=rel)
        self.parents: dict[ast.AST, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
        #: local name -> dotted origin, e.g. ``np`` -> ``numpy``,
        #: ``perf_counter`` -> ``time.perf_counter``.
        self.aliases: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    origin = alias.name if alias.asname else alias.name.split(".")[0]
                    self.aliases[local] = origin
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        self._suppressed = self._collect_suppressions()

    # ------------------------------------------------------------ suppression
    def _collect_suppressions(self) -> dict[int, frozenset[str]]:
        table: dict[int, frozenset[str]] = {}
        for lineno, text in enumerate(self.lines, start=1):
            tokens = frozenset(_ALLOW_RE.findall(text))
            if not tokens:
                continue
            table[lineno] = table.get(lineno, frozenset()) | tokens
            if text.lstrip().startswith("#"):
                # A comment-only line blesses the line below it too.
                nxt = lineno + 1
                table[nxt] = table.get(nxt, frozenset()) | tokens
        return table

    def is_suppressed(self, line: int, rule_id: str, slug: str) -> bool:
        """True when ``# repro: allow-…`` covers *line* for this rule."""
        tokens = self._suppressed.get(line)
        if not tokens:
            return False
        return bool(tokens & {rule_id.lower(), slug, "all"})

    # -------------------------------------------------------------- resolving
    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted origin of a Name/Attribute chain, through import aliases.

        ``nr.default_rng`` (after ``import numpy.random as nr``) resolves
        to ``numpy.random.default_rng``; an unresolvable or non-chain
        expression resolves to None.  Local variables that were never
        import-bound resolve to their literal chain text, which lets
        rules match on suffixes (``*.default_rng``).
        """
        parts: list[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        base = self.aliases.get(cur.id, cur.id)
        parts.append(base)
        return ".".join(reversed(parts))
