"""Unit tests for the resource schema and vector algebra."""

import numpy as np
import pytest

from repro.cluster import DEFAULT_SCHEMA, ResourceSchema, dominates, safe_ratio


class TestResourceSchema:
    def test_dims_and_iteration(self):
        schema = ResourceSchema(("cpu", "ram"))
        assert schema.dims == 2
        assert list(schema) == ["cpu", "ram"]
        assert len(schema) == 2

    def test_default_schema_has_three_dims(self):
        assert DEFAULT_SCHEMA.names == ("cpu", "ram", "disk")

    def test_index_lookup(self):
        assert DEFAULT_SCHEMA.index("ram") == 1

    def test_index_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown resource"):
            DEFAULT_SCHEMA.index("gpu")

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            ResourceSchema(())

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ResourceSchema(("cpu", "cpu"))

    def test_vector_from_mapping_fills_missing_with_zero(self):
        vec = DEFAULT_SCHEMA.vector({"disk": 3.0})
        np.testing.assert_allclose(vec, [0.0, 0.0, 3.0])

    def test_vector_from_mapping_orders_by_schema(self):
        vec = DEFAULT_SCHEMA.vector({"ram": 2.0, "cpu": 1.0, "disk": 3.0})
        np.testing.assert_allclose(vec, [1.0, 2.0, 3.0])

    def test_vector_from_scalar_broadcasts(self):
        np.testing.assert_allclose(DEFAULT_SCHEMA.vector(2.5), [2.5, 2.5, 2.5])

    def test_vector_from_sequence(self):
        np.testing.assert_allclose(DEFAULT_SCHEMA.vector([1, 2, 3]), [1.0, 2.0, 3.0])

    def test_vector_rejects_unknown_names(self):
        with pytest.raises(KeyError, match="unknown resources"):
            DEFAULT_SCHEMA.vector({"gpu": 1.0})

    def test_vector_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="dimensions"):
            DEFAULT_SCHEMA.vector([1.0, 2.0])

    def test_vector_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            DEFAULT_SCHEMA.vector([-1.0, 0.0, 0.0])

    def test_as_mapping_roundtrip(self):
        vec = DEFAULT_SCHEMA.vector({"cpu": 1.0, "ram": 2.0, "disk": 3.0})
        assert DEFAULT_SCHEMA.as_mapping(vec) == {"cpu": 1.0, "ram": 2.0, "disk": 3.0}

    def test_schemas_are_hashable_and_comparable(self):
        assert ResourceSchema(("cpu",)) == ResourceSchema(("cpu",))
        assert hash(ResourceSchema(("cpu",))) == hash(ResourceSchema(("cpu",)))


class TestDominates:
    def test_equal_vectors_dominate(self):
        assert dominates(np.array([1.0, 2.0]), np.array([1.0, 2.0]))

    def test_strictly_greater_dominates(self):
        assert dominates(np.array([2.0, 3.0]), np.array([1.0, 2.0]))

    def test_one_smaller_component_fails(self):
        assert not dominates(np.array([2.0, 1.0]), np.array([1.0, 2.0]))

    def test_atol_tolerance(self):
        assert dominates(np.array([1.0]), np.array([1.0 + 1e-12]))


class TestSafeRatio:
    def test_plain_division(self):
        np.testing.assert_allclose(safe_ratio(np.array([2.0]), np.array([4.0])), [0.5])

    def test_zero_over_zero_is_zero(self):
        np.testing.assert_allclose(safe_ratio(np.array([0.0]), np.array([0.0])), [0.0])

    def test_positive_over_zero_is_inf(self):
        assert safe_ratio(np.array([1.0]), np.array([0.0]))[0] == np.inf

    def test_broadcasting(self):
        out = safe_ratio(np.ones((2, 3)), np.array([1.0, 2.0, 4.0]))
        np.testing.assert_allclose(out, [[1.0, 0.5, 0.25]] * 2)
