"""Tests for the work profile and the serving simulator.

The headline invariant (the paper's motivation): with identical total
work, an imbalanced placement produces strictly worse tail latency than a
balanced one.
"""

import numpy as np
import pytest

from repro.cluster import ClusterState, Machine, Shard
from repro.engine import CorpusConfig, ShardedIndex, generate_corpus, generate_queries
from repro.simulate import (
    ServingConfig,
    WorkProfile,
    simulate_serving,
    summarize,
)


class TestLatencySummary:
    def test_percentiles(self):
        s = summarize(np.arange(1, 101, dtype=float))
        assert s.count == 100
        assert s.p50 == pytest.approx(50.5)
        assert s.p99 == pytest.approx(99.01)
        assert s.max == 100.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            summarize([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            summarize([-1.0])

    def test_row_keys(self):
        row = summarize([1.0, 2.0]).row()
        assert set(row) == {"count", "mean", "p50", "p90", "p95", "p99", "max"}


class TestWorkProfile:
    def test_measure_from_real_engine(self):
        cfg = CorpusConfig(num_docs=150, vocab_size=400, seed=2)
        docs = generate_corpus(cfg)
        index = ShardedIndex.build(docs, 4)
        queries = generate_queries(cfg, 12)
        profile = WorkProfile.measure(index, queries)
        assert profile.num_queries == 12
        assert profile.num_shards == 4
        assert profile.work.sum() > 0

    def test_shard_load_share_sums_to_one(self):
        profile = WorkProfile(np.array([[1.0, 3.0], [2.0, 2.0]]))
        share = profile.shard_load_share()
        assert share.sum() == pytest.approx(1.0)
        np.testing.assert_allclose(share, [3 / 8, 5 / 8])

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            WorkProfile(np.array([1.0, 2.0]))
        with pytest.raises(ValueError, match="non-negative"):
            WorkProfile(np.array([[-1.0]]))

    def test_empty_queries_rejected(self):
        docs = generate_corpus(CorpusConfig(num_docs=50, seed=0))
        index = ShardedIndex.build(docs, 2)
        with pytest.raises(ValueError, match="non-empty"):
            WorkProfile.measure(index, [])


def uniform_profile(num_shards, work=1000.0):
    """Every query costs the same on every shard."""
    return WorkProfile(np.full((4, num_shards), work))


def cluster(num_machines, assignment, cap=4.0):
    machines = Machine.homogeneous(num_machines, {"cpu": cap, "ram": 100.0, "disk": 100.0})
    shards = Shard.uniform(len(assignment), {"cpu": 1.0, "ram": 1.0, "disk": 1.0})
    return ClusterState(machines, shards, assignment)


class TestSimulateServing:
    def test_deterministic(self):
        state = cluster(2, [0, 1])
        prof = uniform_profile(2)
        cfg = ServingConfig(arrival_rate=20, duration=10, seed=3)
        a = simulate_serving(state, prof, config=cfg)
        b = simulate_serving(state, prof, config=cfg)
        assert a.latency == b.latency

    def test_low_load_latency_is_service_time(self):
        state = cluster(2, [0, 1])
        prof = uniform_profile(2, work=1000.0)
        cfg = ServingConfig(
            arrival_rate=0.5, duration=100, seed=1, postings_per_cpu_second=1000.0
        )
        report = simulate_serving(state, prof, config=cfg)
        # speed = 4 cpu * 1000 = 4000 postings/s; service = 1000/4000 = 0.25s
        assert report.latency.p50 == pytest.approx(0.25, rel=0.05)

    def test_higher_load_increases_latency(self):
        state = cluster(2, [0, 1])
        prof = uniform_profile(2)
        low = simulate_serving(
            state, prof, config=ServingConfig(arrival_rate=1.0, duration=50, seed=2)
        )
        high = simulate_serving(
            state, prof, config=ServingConfig(arrival_rate=100.0, duration=50, seed=2)
        )
        assert high.latency.p99 > low.latency.p99

    def test_imbalanced_placement_has_worse_tail(self):
        # 4 shards on 4 machines vs all 4 shards on one machine.
        balanced = cluster(4, [0, 1, 2, 3])
        imbalanced = cluster(4, [0, 0, 0, 0])
        prof = uniform_profile(4)
        cfg = ServingConfig(arrival_rate=10.0, duration=30, seed=4)
        b = simulate_serving(balanced, prof, config=cfg)
        i = simulate_serving(imbalanced, prof, config=cfg)
        assert i.latency.p99 > b.latency.p99
        assert i.latency.p50 > b.latency.p50
        assert i.peak_busy_fraction > b.peak_busy_fraction

    def test_background_load_slows_machine(self):
        state = cluster(2, [0, 1])
        prof = uniform_profile(2)
        plain = simulate_serving(
            state, prof, config=ServingConfig(arrival_rate=20, duration=20, seed=5)
        )
        derated = simulate_serving(
            state,
            prof,
            config=ServingConfig(
                arrival_rate=20, duration=20, seed=5, background_load={0: 0.5}
            ),
        )
        assert derated.latency.p99 > plain.latency.p99

    def test_busy_fraction_tracks_utilization(self):
        state = cluster(1, [0])
        prof = uniform_profile(1, work=1000.0)
        # speed 4*2e5=8e5 -> service 1.25e-3 s; 100 qps -> busy ~ 0.125
        report = simulate_serving(
            state, prof, config=ServingConfig(arrival_rate=100, duration=50, seed=6)
        )
        assert report.machine_busy_fraction[0] == pytest.approx(0.125, rel=0.1)

    def test_mapping_validation(self):
        state = cluster(2, [0, 1])
        prof = uniform_profile(2)
        with pytest.raises(ValueError, match="every cluster shard"):
            simulate_serving(state, prof, shard_to_engine_shard=[0])
        with pytest.raises(ValueError, match="unknown engine shards"):
            simulate_serving(state, prof, shard_to_engine_shard=[0, 5])

    def test_unassigned_state_rejected(self):
        machines = Machine.homogeneous(2, 4.0)
        shards = Shard.uniform(2, 1.0)
        state = ClusterState(machines, shards)
        with pytest.raises(ValueError, match="fully assigned"):
            simulate_serving(state, uniform_profile(2))

    def test_background_load_unknown_machine(self):
        state = cluster(2, [0, 1])
        with pytest.raises(ValueError, match="unknown machine"):
            simulate_serving(
                state,
                uniform_profile(2),
                config=ServingConfig(background_load={9: 0.5}),
            )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServingConfig(arrival_rate=0)
        with pytest.raises(ValueError):
            ServingConfig(duration=-1)
        with pytest.raises(ValueError, match="must be < 1"):
            ServingConfig(background_load={0: 1.0})


class TestBusyFraction:
    """Busy fractions are measured over the arrival window, not the
    drain-inclusive horizon, and include background load."""

    def test_overload_exceeds_one(self):
        # 3 queries at t=0, each 1 s of service, in a 1 s arrival window:
        # the machine was offered 3x its capacity.  Dividing by the drain
        # horizon (3 s) would report a misleading 1.0 here.
        state = cluster(1, [0])
        prof = uniform_profile(1, work=8e5)  # 8e5 / (4 * 2e5) = 1 s/task
        report = simulate_serving(
            state,
            prof,
            config=ServingConfig(duration=1.0),
            arrival_times=np.zeros(3),
        )
        assert report.peak_busy_fraction == pytest.approx(3.0)

    def test_idle_tail_counts_against_busyness(self):
        state = cluster(1, [0])
        prof = uniform_profile(1, work=8e5)
        report = simulate_serving(
            state,
            prof,
            config=ServingConfig(duration=4.0),
            arrival_times=np.zeros(1),
        )
        assert report.peak_busy_fraction == pytest.approx(0.25)

    def test_window_stretches_to_late_explicit_arrivals(self):
        state = cluster(1, [0])
        prof = uniform_profile(1, work=8e5)
        report = simulate_serving(
            state,
            prof,
            config=ServingConfig(duration=1.0),
            arrival_times=np.array([0.0, 5.0]),
        )
        # 2 s busy over a window stretched to the last arrival (5 s).
        assert report.peak_busy_fraction == pytest.approx(0.4)

    def test_background_load_included(self):
        state = cluster(2, [0, 1])
        prof = uniform_profile(2, work=8e5)
        report = simulate_serving(
            state,
            prof,
            config=ServingConfig(duration=4.0, background_load={0: 0.5}),
            arrival_times=np.zeros(1),
        )
        # Machine 0: derated speed doubles service to 2 s -> 2/4 + 0.5 bg.
        assert report.machine_busy_fraction[0] == pytest.approx(1.0)
        # Machine 1: 1 s / 4 s, no background.
        assert report.machine_busy_fraction[1] == pytest.approx(0.25)

    def test_no_arrivals_still_reports_background(self):
        state = cluster(1, [0])
        report = simulate_serving(
            state,
            uniform_profile(1),
            config=ServingConfig(duration=2.0, background_load={0: 0.3}),
            arrival_times=np.array([]),
        )
        assert report.queries_completed == 0
        assert report.peak_busy_fraction == pytest.approx(0.3)


class TestWorkProfilePersistence:
    def test_json_roundtrip(self, tmp_path):
        profile = WorkProfile(np.array([[1.0, 2.5], [0.0, 7.0]]))
        path = tmp_path / "profile.json"
        profile.save_json(path)
        clone = WorkProfile.load_json(path)
        np.testing.assert_allclose(clone.work, profile.work)

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 9, "work": [[1.0]]}')
        with pytest.raises(ValueError, match="version"):
            WorkProfile.load_json(path)
