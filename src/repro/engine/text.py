"""Tokenization and synthetic corpus/query generation.

The engine substrate needs text whose statistics look like web text:
Zipf-distributed term frequencies, lognormal document lengths, and a
query stream whose term popularity correlates with (but is not equal to)
corpus term frequency.  The generator produces token streams directly —
there is no reason to detour through strings and re-tokenize — but
:func:`tokenize` exists for user-supplied documents and queries.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro._validation import check_positive

__all__ = ["tokenize", "Document", "Query", "CorpusConfig", "generate_corpus", "generate_queries"]

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> list[str]:
    """Lowercase alphanumeric tokenization (the engine's only analyzer)."""
    return _TOKEN_RE.findall(text.lower())


@dataclass(frozen=True)
class Document:
    """A document: dense integer id plus its token list."""

    doc_id: int
    tokens: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.doc_id < 0:
            raise ValueError(f"doc_id must be >= 0, got {self.doc_id}")
        if not self.tokens:
            raise ValueError("document must contain at least one token")

    @staticmethod
    def from_text(doc_id: int, text: str) -> "Document":
        return Document(doc_id, tuple(tokenize(text)))

    def __len__(self) -> int:
        return len(self.tokens)


@dataclass(frozen=True)
class Query:
    """A query: token list (analyzed the same way as documents)."""

    terms: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.terms:
            raise ValueError("query must contain at least one term")

    @staticmethod
    def from_text(text: str) -> "Query":
        toks = tokenize(text)
        if not toks:
            raise ValueError(f"query text {text!r} has no tokens")
        return Query(tuple(toks))


@dataclass(frozen=True)
class CorpusConfig:
    """Synthetic corpus parameters.

    Attributes
    ----------
    num_docs:
        Corpus size.
    vocab_size:
        Distinct terms; term ``t<k>`` has Zipf rank ``k``.
    zipf_alpha:
        Term-frequency skew (≈1.0 for natural language).
    mean_doc_len / sigma_doc_len:
        Lognormal document length parameters (tokens).
    seed:
        RNG seed.
    """

    num_docs: int = 1000
    vocab_size: int = 5000
    zipf_alpha: float = 1.05
    mean_doc_len: float = 120.0
    sigma_doc_len: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("num_docs", self.num_docs)
        check_positive("vocab_size", self.vocab_size)
        check_positive("zipf_alpha", self.zipf_alpha)
        check_positive("mean_doc_len", self.mean_doc_len)
        check_positive("sigma_doc_len", self.sigma_doc_len)


def _term_probs(vocab_size: int, alpha: float) -> np.ndarray:
    ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
    p = ranks ** (-alpha)
    return p / p.sum()


def generate_corpus(cfg: CorpusConfig) -> list[Document]:
    """Generate a deterministic synthetic corpus (see :class:`CorpusConfig`)."""
    rng = np.random.default_rng(cfg.seed)
    probs = _term_probs(cfg.vocab_size, cfg.zipf_alpha)
    # Lognormal lengths centred on mean_doc_len.
    mu = np.log(cfg.mean_doc_len) - cfg.sigma_doc_len**2 / 2
    lengths = np.maximum(
        1, rng.lognormal(mu, cfg.sigma_doc_len, size=cfg.num_docs).astype(np.int64)
    )
    vocab = np.array([f"t{k}" for k in range(cfg.vocab_size)])
    docs: list[Document] = []
    for doc_id in range(cfg.num_docs):
        term_ids = rng.choice(cfg.vocab_size, size=int(lengths[doc_id]), p=probs)
        docs.append(Document(doc_id, tuple(vocab[term_ids])))
    return docs


def generate_queries(
    cfg: CorpusConfig,
    num_queries: int,
    *,
    terms_per_query: tuple[int, int] = (1, 4),
    popularity_alpha: float = 0.9,
    seed: int | None = None,
) -> list[Query]:
    """Generate a query stream against a :func:`generate_corpus` corpus.

    Query-term popularity follows its own (milder) Zipf law over the same
    vocabulary — popular corpus terms tend to be popular query terms, the
    correlation that makes some shards hot.
    """
    check_positive("num_queries", num_queries)
    lo, hi = terms_per_query
    if not 1 <= lo <= hi:
        raise ValueError(f"terms_per_query must satisfy 1 <= lo <= hi, got {terms_per_query}")
    rng = np.random.default_rng((cfg.seed + 104729) if seed is None else seed)
    probs = _term_probs(cfg.vocab_size, popularity_alpha)
    queries: list[Query] = []
    for _ in range(num_queries):
        k = int(rng.integers(lo, hi + 1))
        term_ids = rng.choice(cfg.vocab_size, size=k, p=probs, replace=False)
        queries.append(Query(tuple(f"t{t}" for t in term_ids)))
    return queries
