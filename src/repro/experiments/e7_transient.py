"""E7 — transient feasibility (paper analogue: the stringent-environment
figure).

Quantifies the motivation: on tight instances, how often is a good
target assignment *directly* migratable, and what do exchange machines
buy?  For each instance we compute a strong target (SRA's answer) and
then try to execute the move set three ways:

* ``direct``       — wave scheduling only, no staging (what an operator
  without spare machines can run);
* ``staged-B0``    — staging allowed, but only through in-service
  headroom;
* ``staged-B{b}``  — staging with ``b`` borrowed vacant machines.

Reported: feasibility, stranded moves, staging hops and makespan waves.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import ExchangeLedger
from repro.experiments.common import make_sra
from repro.experiments.harness import register
from repro.migration import StagingPlanner, WaveScheduler, diff_moves
from repro.workloads import make_exchange_machines, tight_suite


@register("e7")
def run(fast: bool = True) -> list[dict]:
    seeds = (0, 1) if fast else (0, 1, 2, 3, 4)
    iterations = 600 if fast else 2000
    budgets = (1, 2) if fast else (1, 2, 4)
    rows = []
    for name, state in tight_suite(seeds=seeds):
        # A strong target computed without exchange machines, so the same
        # move set is attempted by every execution mode.
        target = make_sra(iterations, seed=1, feasibility_coupling=False).rebalance(
            state
        ).target_assignment
        moves = diff_moves(state, target)

        direct = WaveScheduler().schedule(state, moves)
        rows.append(_row(name, "direct", len(moves), direct.feasible,
                         len(direct.stranded), 0, direct.num_waves))

        plan0 = StagingPlanner().plan(state, target)
        rows.append(_row(name, "staged-B0", len(moves), plan0.feasible,
                         len(plan0.schedule.stranded), plan0.num_hops,
                         plan0.schedule.num_waves))

        for b in budgets:
            grown, _ = ExchangeLedger.borrow(state, make_exchange_machines(state, b))
            planb = StagingPlanner().plan(grown, np.asarray(target))
            rows.append(_row(name, f"staged-B{b}", len(moves), planb.feasible,
                             len(planb.schedule.stranded), planb.num_hops,
                             planb.schedule.num_waves))
    return rows


def _row(instance, mode, moves, feasible, stranded, hops, waves):
    return {
        "instance": instance,
        "mode": mode,
        "moves": moves,
        "feasible": feasible,
        "stranded": stranded,
        "staging_hops": hops,
        "waves": waves,
    }
