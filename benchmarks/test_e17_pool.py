"""E17 — shared pool across clusters (extension).

Shape claims: every episode is feasible and balance-improving; the pool
size is invariant across episodes; at least one episode performs a real
exchange (keeps a lent machine, returns a drained one).
"""

from repro.experiments import REGISTRY, is_full_run


def test_e17_pool(benchmark, save_table):
    rows = benchmark.pedantic(
        REGISTRY["e17"], kwargs={"fast": not is_full_run()}, rounds=1, iterations=1
    )
    save_table("e17", rows, "E17 — one pool, many clusters: episode audit")

    assert len(rows) >= 4
    for r in rows:
        assert r["feasible"], r["cluster"]
        assert r["peak_after"] < r["peak_before"], r["cluster"]
        assert r["lent"] == r["returned"] == 2
        assert r["pool_size_after"] == 4  # invariant inventory
    assert any(r["exchanged"] > 0 for r in rows), "no episode exchanged machines"
