"""The interprocedural rule pack: REP006–REP009.

These rules run over a whole :class:`~repro.analysis.callgraph.Project`
— symbol table, call graph, and (for REP007) per-function CFGs with a
forward dataflow pass — because the contracts they check are violated
*across* function and module boundaries:

* **REP006** ``shm-lock`` — writes to the shared-memory incumbent slot
  (``_SlotView`` / ``IncumbentSlot`` arrays, the version counter)
  outside a ``with <lock>:`` region, including writes buried in helpers
  that are only ever called under the lock (the call-graph fixpoint
  blesses those), and worker-side re-enabling of read-only attached
  views (``view.flags.writeable = True``).
* **REP007** ``txn-balance`` — a ``state.begin()`` with a path (normal
  *or* exception edge) to function exit on which neither ``commit()``
  nor ``rollback()`` definitely ran.  A leaked journal silently
  corrupts the next search.
* **REP008** ``seed-provenance`` — a literal seed laundered through one
  or more helper calls into ``default_rng`` / ``SeedSequence``.  REP001
  catches ``default_rng(42)`` at the call site; this rule catches
  ``make_rng(42)`` where ``make_rng`` forwards to ``default_rng``.
* **REP009** ``soa-mirror`` — writes to the SoA load/capacity mirrors
  (``loads_by_dim()`` / ``capacity_by_dim()`` / ``inv_capacity_by_dim()``
  returns, ``_loads_t`` / ``_peak_block`` attributes) from outside
  ``cluster/state.py``, extending REP003 across the call graph: the
  mirrors are zero-copy views whose only licensed writers are the
  journalled mutators.

Every rule documents its Contract / Rationale / Suppression sections in
its class docstring — ``repro lint --explain REPnnn`` prints them.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import CallSite, FunctionInfo, Project
from repro.analysis.cfg import CFG, _header_exprs, build_cfg
from repro.analysis.context import ModuleContext
from repro.analysis.dataflow import ForwardAnalysis, run_forward
from repro.analysis.engine import ProjectRule, register
from repro.analysis.findings import Finding
from repro.analysis.rules import _is_static

__all__ = [
    "ShmLockDisciplineRule",
    "TransactionBalanceRule",
    "SeedProvenanceRule",
    "SoaMirrorDisciplineRule",
]


# --------------------------------------------------------------------------
# shared helpers
# --------------------------------------------------------------------------

def _walk_shallow(fn: ast.AST) -> Iterator[ast.AST]:
    """Walk *fn*'s body without descending into nested defs/lambdas —
    nested functions have their own :class:`FunctionInfo` and are
    analysed in their own right (with their own lock/taint context)."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            stack.extend(ast.iter_child_nodes(node))


def _is_lock_expr(mod: ModuleContext, expr: ast.expr) -> bool:
    """True when *expr* looks like acquiring a lock: a Name/Attribute
    chain (or a call on one) whose dotted text mentions ``lock``."""
    target = expr.func if isinstance(expr, ast.Call) else expr
    resolved = mod.resolve(target)
    return resolved is not None and "lock" in resolved.lower()


def _inside_with_lock(mod: ModuleContext, node: ast.AST) -> bool:
    """True when *node* sits lexically inside ``with <lock-like>:``."""
    cur: ast.AST | None = node
    while cur is not None:
        cur = mod.parent(cur)
        if isinstance(cur, (ast.With, ast.AsyncWith)) and any(
            _is_lock_expr(mod, item.context_expr) for item in cur.items
        ):
            return True
    return False


def _assign_targets(node: ast.AST) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    return []


def _propagate_params(
    project: Project,
    is_tainted_expr: "_TaintTest",
) -> set[tuple[str, str]]:
    """Forward interprocedural parameter taint: ``(qualname, param)`` is
    tainted when *any* call site passes a tainted argument, where the
    caller's own tainted params feed the test.  Plain fixpoint —
    monotone over a finite set, so it terminates."""
    tainted: set[tuple[str, str]] = set()
    changed = True
    while changed:
        changed = False
        for site in project.graph.sites:
            caller = project.functions.get(site.caller)
            mod = project.modules[site.module_rel]
            for param, arg in site.args.items():
                key = (site.callee, param)
                if key in tainted:
                    continue
                if is_tainted_expr(project, mod, caller, arg, tainted):
                    tainted.add(key)
                    changed = True
    return tainted


class _TaintTest:
    """Callable protocol stand-in: is *arg* tainted in *caller*?"""

    def __call__(
        self,
        project: Project,
        mod: ModuleContext,
        caller: FunctionInfo | None,
        arg: ast.expr,
        tainted_params: set[tuple[str, str]],
    ) -> bool:
        raise NotImplementedError


# --------------------------------------------------------------------------
# REP006 — shm lock discipline
# --------------------------------------------------------------------------

#: Classes whose arrays share one multiprocessing lock.
_SLOT_CLASS_NAMES = frozenset({"_SlotView", "IncumbentSlot"})
#: The shared ndarrays inside a slot (writes must hold the lock).
_SLOT_ARRAY_ATTRS = frozenset({"version", "objective", "assign", "blocked"})


class _SlotTaint(_TaintTest):
    def __call__(
        self,
        project: Project,
        mod: ModuleContext,
        caller: FunctionInfo | None,
        arg: ast.expr,
        tainted_params: set[tuple[str, str]],
    ) -> bool:
        if (
            isinstance(arg, ast.Name)
            and caller is not None
            and (caller.qualname, arg.id) in tainted_params
        ):
            return True
        env = project.env_of(caller) if caller is not None else {}
        cls = project.class_of_expr(
            mod, arg, env, caller.cls if caller is not None else None
        )
        return cls is not None and cls.rpartition(".")[2] in _SLOT_CLASS_NAMES


@register
class ShmLockDisciplineRule(ProjectRule):
    """Writes to shared incumbent-slot memory must hold the slot lock.

    Contract
    --------
    Every store into a ``_SlotView`` / ``IncumbentSlot`` shared array
    (``.assign``, ``.objective``, ``.blocked``) or its ``.version``
    counter happens lexically inside ``with <lock>:``, or inside a
    helper whose *every* transitive call site holds the lock.  Attached
    read-only state views are never re-enabled for writing
    (``view.flags.writeable = True``) outside ``parallel/shm.py``.

    Rationale
    ---------
    The incumbent exchange publishes (objective, assignment) pairs via a
    seqlock-style version counter; an unlocked write can interleave with
    a reader and hand a worker a torn incumbent, which silently degrades
    the cooperative search (indistinguishable from a worse algorithm).

    Suppression
    -----------
    ``# repro: allow-shm-lock`` on the write's line, with a justification
    comment — e.g. pre-publication initialisation in ``__init__`` before
    any other process can hold a reference.
    """

    rule_id = "REP006"
    slug = "shm-lock"
    description = (
        "write to shared incumbent-slot memory (slot arrays, version "
        "counter) outside a lock region; see `repro lint --explain REP006`"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        slot_params = _propagate_params(project, _SlotTaint())
        locked = self._always_locked(project)
        taint = _SlotTaint()
        for info in project.functions.values():
            mod = project.modules[info.module_rel]
            fn_locked = info.qualname in locked
            for node in _walk_shallow(info.node):
                for target in _assign_targets(node):
                    write = self._slot_write(
                        project, mod, info, target, slot_params, taint
                    )
                    if write is None:
                        continue
                    if fn_locked or _inside_with_lock(mod, node):
                        continue
                    yield Finding(
                        file=mod.rel,
                        line=getattr(target, "lineno", 0),
                        rule_id=self.rule_id,
                        message=(
                            f"write to shared slot array .{write} outside a "
                            "`with lock:` region — a torn write hands readers "
                            "a corrupt incumbent"
                        ),
                    )
                # Worker-side unlocking of read-only attached views.
                if (
                    isinstance(node, ast.Assign)
                    and mod.rel != "src/repro/parallel/shm.py"
                ):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and target.attr == "writeable"
                            and isinstance(target.value, ast.Attribute)
                            and target.value.attr == "flags"
                        ):
                            yield Finding(
                                file=mod.rel,
                                line=target.lineno,
                                rule_id=self.rule_id,
                                message=(
                                    "re-enabling writes on an attached "
                                    "read-only view — workers must treat "
                                    "attached state as immutable"
                                ),
                            )

    def _slot_write(
        self,
        project: Project,
        mod: ModuleContext,
        info: FunctionInfo,
        target: ast.expr,
        slot_params: set[tuple[str, str]],
        taint: _SlotTaint,
    ) -> str | None:
        """The slot-array attr being written through *target*, or None."""
        # slot.assign[...] = x   /   slot.version[...] += 1
        if isinstance(target, ast.Subscript):
            value = target.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr in _SLOT_ARRAY_ATTRS
                and taint(project, mod, info, value.value, slot_params)
            ):
                return value.attr
            return None
        # slot.objective = x  (rebinding the view attribute itself) —
        # except through `self`: a slot class constructing/rebinding its
        # own views is definitionally pre-publication.
        if (
            isinstance(target, ast.Attribute)
            and target.attr in _SLOT_ARRAY_ATTRS
            and not (
                isinstance(target.value, ast.Name) and target.value.id == "self"
            )
            and taint(project, mod, info, target.value, slot_params)
        ):
            return target.attr
        return None

    def _always_locked(self, project: Project) -> set[str]:
        """Greatest fixpoint of "every transitive call site holds the
        lock".  Start from everything, strip functions with no call
        sites or any unlocked site; what survives is provably only ever
        entered under the lock.  (Mutually-recursive helpers with no
        outside caller survive vacuously — dead code, no findings.)"""
        locked = set(project.functions)
        changed = True
        while changed:
            changed = False
            for qualname in sorted(locked):
                sites = project.graph.callers_of(qualname)
                ok = bool(sites)
                for site in sites:
                    mod = project.modules[site.module_rel]
                    if _inside_with_lock(mod, site.node):
                        continue
                    if site.caller in locked:
                        continue
                    ok = False
                    break
                if not ok:
                    locked.discard(qualname)
                    changed = True
        return locked


# --------------------------------------------------------------------------
# REP007 — transaction balance
# --------------------------------------------------------------------------

_OPEN = "open"
_MAYBE = "maybe"
_CLOSED = "closed"

#: One must-alias group of transaction handles: the names, the lattice
#: status, and the line of the ``begin()`` that opened it.
_Group = tuple[frozenset[str], str, int]
#: Whole state: a frozenset of groups (canonical — see ``_normalize``).
_TxnState = frozenset[_Group]


def _receiver_key(expr: ast.expr) -> str | None:
    """Stable key of a transaction handle: ``x`` or ``self.attr``."""
    if isinstance(expr, ast.Name):
        return expr.id
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return f"self.{expr.attr}"
    return None


def _normalize(groups: Iterator[_Group] | list[_Group]) -> _TxnState:
    """Canonical form: drop empty groups and closed singletons (closed
    multi-name groups keep their alias information)."""
    out = []
    for names, status, line in groups:
        if not names:
            continue
        if status == _CLOSED and len(names) == 1:
            continue
        out.append((names, status, line))
    return frozenset(out)


class _TxnAnalysis(ForwardAnalysis[_TxnState]):
    """Forward must-alias transaction tracking (REP007's engine)."""

    def initial(self) -> _TxnState:
        return frozenset()

    # -- helpers ----------------------------------------------------------
    @staticmethod
    def _group_of(state: _TxnState, key: str) -> _Group | None:
        for group in state:
            if key in group[0]:
                return group
        return None

    @staticmethod
    def _drop(state: _TxnState, key: str) -> list[_Group]:
        out = []
        for names, status, line in state:
            out.append((names - {key}, status, line))
        return out

    def _set_status(self, state: _TxnState, key: str, status: str, line: int) -> _TxnState:
        group = self._group_of(state, key)
        if group is None:
            if status == _OPEN:
                return _normalize(list(state) + [(frozenset({key}), _OPEN, line)])
            return state
        names, _, old_line = group
        rest = [g for g in state if g is not group]
        keep_line = old_line if status != _OPEN else line
        return _normalize(rest + [(names, status, keep_line)])

    @staticmethod
    def _executed_exprs(node: ast.AST) -> list[ast.AST]:
        """What this CFG node actually evaluates: for compound-statement
        headers only the header expression (the body is its own nodes —
        walking the whole ``ast.If`` here would apply a begin() buried
        in the branch body at the header, on *both* branches)."""
        if isinstance(node, ast.stmt):
            return _header_exprs(node)
        return [node]

    # -- transfer ---------------------------------------------------------
    def transfer(self, node: ast.AST | None, state: _TxnState) -> _TxnState:
        if node is None:
            return state
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return state  # defining a nested scope executes nothing
        # Alias tracking: `a = b` joins a into b's group.
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            tkey = _receiver_key(target)
            if tkey is not None:
                groups = self._drop(state, tkey)
                vkey = (
                    _receiver_key(node.value)
                    if isinstance(node.value, (ast.Name, ast.Attribute))
                    else None
                )
                if vkey is not None:
                    for i, (names, status, line) in enumerate(groups):
                        if vkey in names:
                            groups[i] = (names | {tkey}, status, line)
                            return _normalize(groups)
                    # Track the alias pair even while closed, so a later
                    # begin() through either name covers both.
                    groups.append((frozenset({tkey, vkey}), _CLOSED, 0))
                return _normalize(groups)
        # begin/commit/rollback calls this node actually evaluates.
        for expr in self._executed_exprs(node):
            for sub in ast.walk(expr):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in ("begin", "commit", "rollback")
                ):
                    key = _receiver_key(sub.func.value)
                    if key is None:
                        continue
                    if sub.func.attr == "begin":
                        state = self._set_status(state, key, _OPEN, sub.lineno)
                    else:
                        state = self._set_status(state, key, _CLOSED, 0)
        return state

    def transfer_exception(self, node: ast.AST | None, state: _TxnState) -> _TxnState:
        """State carried on the exception edge.  A raising ``begin()``
        did not open anything (in-state, the framework default) — but a
        raising ``commit()``/``rollback()`` still *consumed* the
        bracket: the contract asked for the call to be reached, and it
        was; whatever it raised is the caller's problem.  Without this,
        every ``except: rollback(); raise`` handler would be flagged for
        the path where rollback itself blows up."""
        if node is None or isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return state
        for expr in self._executed_exprs(node):
            for sub in ast.walk(expr):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in ("commit", "rollback")
                ):
                    key = _receiver_key(sub.func.value)
                    if key is not None:
                        state = self._set_status(state, key, _CLOSED, 0)
        return state

    def assume(self, cond: ast.expr, branch: bool, state: _TxnState) -> _TxnState:
        while isinstance(cond, ast.UnaryOp) and isinstance(cond.op, ast.Not):
            cond = cond.operand
            branch = not branch
        if isinstance(cond, ast.Attribute) and cond.attr == "in_transaction":
            key = _receiver_key(cond.value)
            if key is not None:
                group = self._group_of(state, key)
                if group is not None:
                    names, status, line = group
                    rest = [g for g in state if g is not group]
                    if not branch:
                        return _normalize(rest + [(names, _CLOSED, line)])
                    if status == _MAYBE:
                        return _normalize(rest + [(names, _OPEN, line)])
        return state

    def join(self, a: _TxnState, b: _TxnState) -> _TxnState:
        if a == b:
            return a
        names = {n for g in a for n in g[0]} | {n for g in b for n in g[0]}

        def locate(state: _TxnState, name: str) -> tuple[object, str, int]:
            group = self._group_of(state, name)
            if group is None:
                return (name, _CLOSED, 0)  # untracked == closed singleton
            return (id(group), group[1], group[2])

        clusters: dict[tuple[object, object], tuple[set[str], str, int]] = {}
        for name in names:
            ga, sa, la = locate(a, name)
            gb, sb, lb = locate(b, name)
            status = sa if sa == sb else _MAYBE
            line = max(la, lb) if status != _CLOSED else 0
            if status == _MAYBE and line == 0:
                line = max(la, lb)
            key = (ga, gb)
            if key in clusters:
                clusters[key][0].add(name)
            else:
                clusters[key] = ({name}, status, line)
        return _normalize(
            [(frozenset(ns), st, ln) for ns, st, ln in clusters.values()]
        )


@register
class TransactionBalanceRule(ProjectRule):
    """Every ``begin()`` definitely reaches ``commit()`` or ``rollback()``.

    Contract
    --------
    On every path from a ``state.begin()`` to function exit — including
    the exception edge of every intervening call — either ``commit()``
    or ``rollback()`` has run on that state (through any must-alias of
    it).  Guarding cleanup with ``if state.in_transaction:`` is
    understood.

    Rationale
    ---------
    A leaked journal corrupts the *next* search on the same state: undo
    entries pile up and a later ``rollback()`` rewinds through someone
    else's accepted moves.  The bug class is identical to PR 5's three
    span leaks, but on exception paths no test exercises.

    Suppression
    -----------
    ``# repro: allow-txn-balance`` on the ``begin()`` line, e.g. for a
    deliberate open-transaction handoff documented at the call site.

    The analysis reports only *definite* leaks (an ``open`` lattice
    value on an exit edge, never ``maybe``), so correlated branches —
    ``if use_delta: begin()`` … ``if use_delta: commit()`` — do not
    produce false positives; they join to ``maybe`` and stay silent.
    """

    rule_id = "REP007"
    slug = "txn-balance"
    description = (
        "state.begin() with a path (incl. exception edges) to exit where "
        "neither commit() nor rollback() definitely ran; see "
        "`repro lint --explain REP007`"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        for info in project.functions.values():
            has_begin = any(
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr == "begin"
                for sub in ast.walk(info.node)
            )
            if not has_begin:
                continue
            mod = project.modules[info.module_rel]
            yield from self._check_function(mod, info)

    def _check_function(
        self, mod: ModuleContext, info: FunctionInfo
    ) -> Iterator[Finding]:
        cfg: CFG = build_cfg(info.node)
        result = run_forward(cfg, _TxnAnalysis())
        leaks: dict[int, str] = {}
        for idx, edge in enumerate(cfg.edges):
            if edge.dst not in (cfg.exit, cfg.raise_exit):
                continue
            state = result.edge_states.get(idx)
            if state is None:
                continue
            how = "an exception path" if edge.dst == cfg.raise_exit else "a return path"
            for names, status, line in state:
                if status == _OPEN and line > 0:
                    # Exception exits dominate the message when both leak.
                    if line not in leaks or edge.dst == cfg.raise_exit:
                        leaks[line] = how
        for line in sorted(leaks):
            yield Finding(
                file=mod.rel,
                line=line,
                rule_id=self.rule_id,
                message=(
                    f"transaction opened here can leak via {leaks[line]} of "
                    f"{info.qualname.rsplit('.', 1)[-1]}() without commit/"
                    "rollback — wrap in try/except or try/finally"
                ),
            )


# --------------------------------------------------------------------------
# REP008 — seed provenance
# --------------------------------------------------------------------------

def _is_rng_constructor(mod: ModuleContext, call: ast.Call) -> str | None:
    target = mod.resolve(call.func)
    if target is None:
        return None
    if target == "default_rng" or target.endswith(".default_rng"):
        return "seed"
    if target == "SeedSequence" or target.endswith(".SeedSequence"):
        return "entropy"
    return None


def _seed_expr(call: ast.Call, keyword: str) -> ast.expr | None:
    if call.args and not isinstance(call.args[0], ast.Starred):
        return call.args[0]
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


@register
class SeedProvenanceRule(ProjectRule):
    """Literal seeds cannot be laundered through helper wrappers.

    Contract
    --------
    No compile-time-constant seed reaches ``default_rng`` /
    ``SeedSequence`` through a chain of helper calls (a *conduit*
    parameter).  Conduit parameters must not carry literal defaults
    either.  Direct literal-seeded construction is REP001's finding;
    this rule reports only laundered ones (≥ 1 call hop), so nothing is
    double-reported.  Passing an explicit ``None`` is not flagged — it
    is the documented "use the configured default" signal.

    Rationale
    ---------
    PR 2's recovery bug (``default_rng(0)`` shadowing the configured
    seed) resurfaces trivially as ``make_rng(0)`` once a wrapper exists;
    call-site matching cannot see through the wrapper, an
    interprocedural conduit analysis can.

    Suppression
    -----------
    ``# repro: allow-seed-provenance`` on the offending call or def
    line — e.g. a demo entry point whose fixed seed is the point.

    Experiment drivers (``src/repro/experiments/``) are out of scope:
    they are the configuration origin, where a published default seed
    *is* the reproducibility contract (same scoping rationale as
    REP002's wall-clock carve-out).
    """

    rule_id = "REP008"
    slug = "seed-provenance"
    description = (
        "literal seed laundered through helper calls into default_rng/"
        "SeedSequence; see `repro lint --explain REP008`"
    )

    def applies_to(self, rel: str) -> bool:
        return rel.startswith("src/repro/") and not rel.startswith(
            "src/repro/experiments/"
        )

    def check_project(self, project: Project) -> Iterator[Finding]:
        conduits = self._conduit_params(project)
        if not conduits:
            return
        # Findings: call sites passing a static literal into a conduit.
        for site in project.graph.sites:
            mod = project.modules[site.module_rel]
            for param, arg in site.args.items():
                if (site.callee, param) not in conduits:
                    continue
                if isinstance(arg, ast.Constant) and arg.value is None:
                    continue
                if _is_static(arg):
                    helper = site.callee.rsplit(".", 1)[-1]
                    yield Finding(
                        file=mod.rel,
                        line=site.lineno,
                        rule_id=self.rule_id,
                        message=(
                            f"literal seed {ast.unparse(arg)} laundered "
                            f"through {helper}({param}=...) into an RNG "
                            "constructor — thread the configured seed instead"
                        ),
                    )
        # Findings: conduit params with static non-None defaults.
        for (qualname, param), _ in sorted(conduits.items()):
            info = project.functions.get(qualname)
            if info is None:
                continue
            default = self._default_of(info, param)
            if default is None:
                continue
            if isinstance(default, ast.Constant) and default.value is None:
                continue
            if _is_static(default):
                mod = project.modules[info.module_rel]
                yield Finding(
                    file=mod.rel,
                    line=info.lineno,
                    rule_id=self.rule_id,
                    message=(
                        f"parameter {param}={ast.unparse(default)} defaults a "
                        "seed that reaches an RNG constructor — default to "
                        "None and thread the configured seed"
                    ),
                )

    @staticmethod
    def _default_of(info: FunctionInfo, param: str) -> ast.expr | None:
        args = info.node.args
        positional = [*args.posonlyargs, *args.args]
        defaults = args.defaults
        offset = len(positional) - len(defaults)
        for i, arg in enumerate(positional):
            if arg.arg == param and i >= offset:
                return defaults[i - offset]
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if arg.arg == param and default is not None:
                return default
        return None

    def _conduit_params(self, project: Project) -> dict[tuple[str, str], int]:
        """Backward fixpoint: ``(qualname, param) -> hop count`` for
        params whose value flows into an RNG constructor's seed slot,
        directly (hop 1) or through a conduit of a callee (hop n+1)."""
        sites_by_node = {id(site.node): site for site in project.graph.sites}
        conduits: dict[tuple[str, str], int] = {}
        changed = True
        while changed:
            changed = False
            for info in project.functions.values():
                mod = project.modules[info.module_rel]
                params = set(info.kw_params)
                if not params:
                    continue
                aliases = self._param_aliases(info, params)
                for call in (
                    sub
                    for sub in ast.walk(info.node)
                    if isinstance(sub, ast.Call)
                ):
                    hop = self._call_consumes(
                        mod, call, aliases, conduits, sites_by_node
                    )
                    if hop is None:
                        continue
                    param, depth = hop
                    key = (info.qualname, param)
                    if key not in conduits or conduits[key] > depth:
                        conduits[key] = depth
                        changed = True
        return conduits

    @staticmethod
    def _param_aliases(
        info: FunctionInfo, params: set[str]
    ) -> dict[str, str]:
        """name -> param it copies, flow-insensitively (x = seed)."""
        aliases = {p: p for p in params}
        changed = True
        while changed:
            changed = False
            for sub in ast.walk(info.node):
                if (
                    isinstance(sub, ast.Assign)
                    and len(sub.targets) == 1
                    and isinstance(sub.targets[0], ast.Name)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id in aliases
                    and sub.targets[0].id not in aliases
                ):
                    aliases[sub.targets[0].id] = aliases[sub.value.id]
                    changed = True
        return aliases

    @staticmethod
    def _call_consumes(
        mod: ModuleContext,
        call: ast.Call,
        aliases: dict[str, str],
        conduits: dict[tuple[str, str], int],
        sites_by_node: dict[int, CallSite],
    ) -> tuple[str, int] | None:
        """(param, hops) when *call* feeds a caller param into a seed
        slot: an RNG constructor directly, or a callee's conduit."""
        keyword = _is_rng_constructor(mod, call)
        if keyword is not None:
            seed = _seed_expr(call, keyword)
            if isinstance(seed, ast.Name) and seed.id in aliases:
                return (aliases[seed.id], 1)
            return None
        site = sites_by_node.get(id(call))
        if site is None:
            return None
        for param, arg in site.args.items():
            depth = conduits.get((site.callee, param))
            if depth is None:
                continue
            if isinstance(arg, ast.Name) and arg.id in aliases:
                return (aliases[arg.id], depth + 1)
        return None


# --------------------------------------------------------------------------
# REP009 — SoA mirror discipline
# --------------------------------------------------------------------------

#: Zero-copy accessors returning the live SoA mirrors.
_MIRROR_CALLS = frozenset({"loads_by_dim", "capacity_by_dim", "inv_capacity_by_dim"})
#: The mirror attributes themselves (ClusterState internals).
_MIRROR_ATTRS = frozenset({"_loads_t", "_peak_block"})
#: The one module licensed to write the mirrors.
_MIRROR_HOME = "src/repro/cluster/state.py"


class _MirrorTaint(_TaintTest):
    """Is *arg* (transitively) one of the live SoA mirror views?"""

    def __call__(
        self,
        project: Project,
        mod: ModuleContext,
        caller: FunctionInfo | None,
        arg: ast.expr,
        tainted_params: set[tuple[str, str]],
    ) -> bool:
        local = _local_mirror_names(project, caller, tainted_params)
        return _expr_is_mirror(arg, local, _class_mirror_attrs(project, caller))


def _class_mirror_attrs(
    project: Project, caller: FunctionInfo | None
) -> frozenset[str]:
    """Attributes of the caller's class holding a mirror view
    (``self._lt = state.loads_by_dim()`` in ``__init__``)."""
    if caller is None or caller.cls is None:
        return frozenset()
    info = project.classes.get(caller.cls)
    if info is None:
        return frozenset()
    out = set()
    for attr, values in info.attr_values.items():
        for value in values:
            if _expr_is_mirror(value, frozenset(), frozenset()):
                out.add(attr)
                break
    return frozenset(out)


def _expr_is_mirror(
    expr: ast.expr, local_names: frozenset[str], self_attrs: frozenset[str]
) -> bool:
    """Syntactic mirror test.  Taint flows through name copies, slices
    and ``self.attr`` loads — **not** through BinOp and friends, whose
    results are fresh arrays (``loads * inv_cap`` is safe to own)."""
    if isinstance(expr, ast.Name):
        return expr.id in local_names
    if isinstance(expr, ast.Call):
        return (
            isinstance(expr.func, ast.Attribute)
            and expr.func.attr in _MIRROR_CALLS
        )
    if isinstance(expr, ast.Attribute):
        if expr.attr in _MIRROR_ATTRS:
            return True
        if (
            isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in self_attrs
        ):
            return True
        return False
    if isinstance(expr, ast.Subscript):
        return _expr_is_mirror(expr.value, local_names, self_attrs)
    return False


def _local_mirror_names(
    project: Project,
    info: FunctionInfo | None,
    tainted_params: set[tuple[str, str]],
) -> frozenset[str]:
    """Names bound to a mirror view inside *info*, flow-insensitively:
    tainted params plus copy/slice assignments, to a fixpoint."""
    if info is None:
        return frozenset()
    names = {
        param
        for param in info.kw_params
        if (info.qualname, param) in tainted_params
    }
    self_attrs = _class_mirror_attrs(project, info)
    changed = True
    while changed:
        changed = False
        for sub in _walk_shallow(info.node):
            if (
                isinstance(sub, ast.Assign)
                and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Name)
                and sub.targets[0].id not in names
                and _expr_is_mirror(sub.value, frozenset(names), self_attrs)
            ):
                names.add(sub.targets[0].id)
                changed = True
    return frozenset(names)


@register
class SoaMirrorDisciplineRule(ProjectRule):
    """The SoA load/capacity mirrors are written only by state.py.

    Contract
    --------
    Arrays returned by ``loads_by_dim()`` / ``capacity_by_dim()`` /
    ``inv_capacity_by_dim()`` (and the underlying ``_loads_t`` /
    ``_peak_block`` attributes) are read-only everywhere outside
    ``cluster/state.py`` — no subscript stores, augmented assigns,
    ``.fill()`` or ``np.copyto`` into them, even when the view arrived
    through helper parameters or was stashed on ``self`` in
    ``__init__``.  Products and sums *derived* from a mirror
    (``loads * inv_cap``) are fresh arrays and freely writable.

    Rationale
    ---------
    The mirrors are zero-copy transposes kept consistent with the undo
    journal by state.py's mutators (REP003's contract, extended across
    the call graph).  An out-of-band write desynchronizes delta
    evaluation — objectives silently drift from the true loads.

    Suppression
    -----------
    ``# repro: allow-soa-mirror`` on the write line, with justification.
    """

    rule_id = "REP009"
    slug = "soa-mirror"
    description = (
        "write into a live SoA mirror view (loads_by_dim()/_loads_t and "
        "friends) outside cluster/state.py; see `repro lint --explain REP009`"
    )

    def applies_to(self, rel: str) -> bool:
        return rel.startswith("src/repro/") and rel != _MIRROR_HOME

    def check_project(self, project: Project) -> Iterator[Finding]:
        tainted_params = _propagate_params(project, _MirrorTaint())
        for info in project.functions.values():
            mod = project.modules[info.module_rel]
            if mod.rel == _MIRROR_HOME:
                continue
            local = _local_mirror_names(project, info, tainted_params)
            self_attrs = _class_mirror_attrs(project, info)
            for node in _walk_shallow(info.node):
                yield from self._check_stmt(mod, node, local, self_attrs)

    def _check_stmt(
        self,
        mod: ModuleContext,
        node: ast.AST,
        local: frozenset[str],
        self_attrs: frozenset[str],
    ) -> Iterator[Finding]:
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            for target in _assign_targets(node):
                if isinstance(target, ast.Subscript) and _expr_is_mirror(
                    target.value, local, self_attrs
                ):
                    yield self._write(mod, target, "subscript store into")
                elif (
                    isinstance(node, ast.AugAssign)
                    and isinstance(target, ast.Name)
                    and target.id in local
                ):
                    yield self._write(mod, target, "augmented assignment to")
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "fill"
                and _expr_is_mirror(func.value, local, self_attrs)
            ):
                yield self._write(mod, node, ".fill() on")
            else:
                resolved = mod.resolve(func)
                if (
                    resolved is not None
                    and resolved.endswith("copyto")
                    and node.args
                    and _expr_is_mirror(node.args[0], local, self_attrs)
                ):
                    yield self._write(mod, node, "np.copyto() into")

    def _write(self, mod: ModuleContext, node: ast.AST, how: str) -> Finding:
        return Finding(
            file=mod.rel,
            line=getattr(node, "lineno", 0),
            rule_id=self.rule_id,
            message=(
                f"{how} a live SoA mirror view outside cluster/state.py — "
                "the mirrors are journal-consistent internals; copy() the "
                "view or use the transactional API"
            ),
        )
