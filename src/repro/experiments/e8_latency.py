"""E8 — serving latency before/after rebalancing (paper analogue: the
quality-of-service figure; the paper's motivation made measurable).

Pipeline:

1. generate a corpus and query stream, build a sharded inverted index;
2. **measure** per-shard resource demands and per-query work by executing
   the real engine (no invented numbers);
3. place the shards on a machine fleet with a skewed initial placement;
4. rebalance with SRA (+2 exchange machines);
5. simulate Poisson query serving (fan-out, FCFS queues) before and
   after, and report latency percentiles.

Claim to verify: tail latency tracks peak machine utilization, so the
rebalanced placement cuts p99 substantially while p50 moves little.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import ClusterState, Machine
from repro.engine import CorpusConfig, ShardedIndex, generate_corpus, generate_queries
from repro.experiments.common import run_sra_with_exchange
from repro.experiments.harness import register
from repro.simulate import ServingConfig, WorkProfile, simulate_serving

#: Engine→cluster calibration shared by demand model and simulator.
_QPS = 60.0
_POSTINGS_PER_CPU_SECOND = 2e5


@register("e8")
def run(fast: bool = True, *, placement_seed: int = 7) -> list[dict]:
    num_docs = 4000 if fast else 20000
    num_shards = 24 if fast else 48
    num_machines = 6 if fast else 12
    num_queries = 150 if fast else 500
    iterations = 500 if fast else 2000
    duration = 40.0 if fast else 120.0

    cfg = CorpusConfig(num_docs=num_docs, vocab_size=4000, seed=3)
    docs = generate_corpus(cfg)
    index = ShardedIndex.build(docs, num_shards)
    queries = generate_queries(cfg, num_queries)
    profile = WorkProfile.measure(index, queries)
    shards = index.to_cluster_shards(
        queries,
        queries_per_second=_QPS,
        postings_per_cpu_second=_POSTINGS_PER_CPU_SECOND,
    )

    # Fleet sized for ~75% mean utilization on the binding dimension.
    demand = np.stack([s.demand for s in shards])
    capacity = demand.sum(axis=0) / (num_machines * 0.75)
    machines = Machine.homogeneous(
        num_machines, {n: float(c) for n, c in zip(shards[0].schema.names, capacity, strict=True)}
    )

    # Skewed initial placement (capacity-feasible first-fit on a biased order).
    rng = np.random.default_rng(placement_seed)
    weights = rng.dirichlet(np.full(num_machines, 1.5))
    assign = _biased_feasible_placement(demand, capacity, weights, rng)
    state = ClusterState(machines, shards, assign)

    result, grown, _ = run_sra_with_exchange(state, 2, iterations=iterations, seed=1)
    after = grown.copy()
    after.apply_assignment(result.target_assignment)

    serving = ServingConfig(
        arrival_rate=_QPS,
        duration=duration,
        postings_per_cpu_second=_POSTINGS_PER_CPU_SECOND,
        seed=11,
    )
    mapping = list(range(len(shards)))
    rows = []
    for label, st in (("before", grown), ("after-sra", after)):
        report = simulate_serving(st, profile, mapping, serving)
        lat = report.latency
        rows.append(
            {
                "placement": label,
                "peak_util": st.peak_utilization(),
                "p50_ms": 1e3 * lat.p50,
                "p90_ms": 1e3 * lat.p90,
                "p95_ms": 1e3 * lat.p95,
                "p99_ms": 1e3 * lat.p99,
                "mean_ms": 1e3 * lat.mean,
                "queries": lat.count,
                "peak_busy": report.peak_busy_fraction,
            }
        )
    return rows


def _biased_feasible_placement(demand, capacity, weights, rng) -> np.ndarray:
    """Weight-biased placement that stays within capacity (falls back to
    the least-loaded machine when the drawn machine is full)."""
    m = weights.shape[0]
    loads = np.zeros((m, demand.shape[1]))
    assign = np.empty(demand.shape[0], dtype=np.int64)
    for j in rng.permutation(demand.shape[0]):
        order = list(rng.choice(m, size=m, replace=False, p=weights))
        placed = False
        for i in order:
            if np.all(loads[i] + demand[j] <= capacity + 1e-12):
                assign[j] = i
                loads[i] += demand[j]
                placed = True
                break
        if not placed:
            util = ((loads + demand[j]) / capacity).max(axis=1)
            i = int(np.argmin(util))
            assign[j] = i
            loads[i] += demand[j]
    return assign
