"""Tests for migration background load and the three-phase window sim."""

import numpy as np
import pytest

from repro.cluster import ClusterState, Machine, Shard
from repro.migration import BandwidthModel, StagingPlanner
from repro.simulate import (
    ServingConfig,
    WorkProfile,
    migration_background_load,
    simulate_migration_window,
)


def cluster_and_plan():
    machines = Machine.homogeneous(3, {"cpu": 4.0, "ram": 100.0, "disk": 100.0})
    shards = [
        Shard(id=j, demand=np.array([1.0, 10.0, 10.0]), size_bytes=1000.0)
        for j in range(4)
    ]
    state = ClusterState(machines, shards, [0, 0, 0, 1])
    target = np.array([0, 1, 2, 1])
    plan = StagingPlanner().plan(state, target)
    assert plan.feasible
    return state, target, plan


class TestBackgroundLoad:
    def test_transferring_machines_are_derated(self):
        state, _, plan = cluster_and_plan()
        load = migration_background_load(
            plan, state.num_machines, bandwidth=BandwidthModel(bandwidth=100.0)
        )
        # machine 0 sends two shards; machines 1 and 2 each receive one.
        assert set(load) == {0, 1, 2}
        assert all(0 < v <= 0.3 for v in load.values())
        assert load[0] >= load[1]  # the sender is busiest

    def test_no_moves_no_load(self):
        state, _, _ = cluster_and_plan()
        plan = StagingPlanner().plan(state, state.assignment)
        assert migration_background_load(plan, state.num_machines) == {}

    def test_overhead_scales(self):
        state, _, plan = cluster_and_plan()
        lo = migration_background_load(
            plan, state.num_machines, transfer_overhead=0.1,
            bandwidth=BandwidthModel(bandwidth=100.0),
        )
        hi = migration_background_load(
            plan, state.num_machines, transfer_overhead=0.2,
            bandwidth=BandwidthModel(bandwidth=100.0),
        )
        for m in lo:
            assert hi[m] == pytest.approx(2 * lo[m])

    def test_invalid_overhead(self):
        state, _, plan = cluster_and_plan()
        with pytest.raises(ValueError, match="transfer_overhead"):
            migration_background_load(plan, state.num_machines, transfer_overhead=1.5)


class TestMigrationWindow:
    def test_three_phases_ordering(self):
        state, target, plan = cluster_and_plan()
        profile = WorkProfile(np.full((4, 4), 2000.0))
        config = ServingConfig(
            arrival_rate=30.0, duration=20.0, postings_per_cpu_second=1e4, seed=3
        )
        report = simulate_migration_window(
            state, target, plan, profile, config,
            bandwidth=BandwidthModel(bandwidth=100.0),
            transfer_overhead=0.3,
        )
        # Migration hurts while it runs; the final placement wins overall.
        assert report.during.latency.p99 >= report.before.latency.p99
        assert report.after.latency.p99 <= report.before.latency.p99
        assert report.makespan_seconds > 0

    def test_rows_shape(self):
        state, target, plan = cluster_and_plan()
        profile = WorkProfile(np.full((2, 4), 1000.0))
        config = ServingConfig(arrival_rate=5.0, duration=10.0, seed=1)
        report = simulate_migration_window(state, target, plan, profile, config)
        rows = report.rows()
        assert [r["phase"] for r in rows] == ["before", "during", "after"]
        assert all("p99_ms" in r for r in rows)

    def test_same_arrivals_across_phases(self):
        state, target, plan = cluster_and_plan()
        profile = WorkProfile(np.full((2, 4), 1000.0))
        config = ServingConfig(arrival_rate=20.0, duration=10.0, seed=5)
        report = simulate_migration_window(state, target, plan, profile, config)
        assert (
            report.before.latency.count
            == report.during.latency.count
            == report.after.latency.count
        )
