"""Tests for repro.obs: tracer, metrics registry, ambient context.

The key end-to-end contract — instrumentation must not perturb results —
is pinned by a hypothesis property: a full facade episode produces a
bitwise-identical report whether observability is active or not.
"""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import obs
from repro.algorithms import AlnsConfig, SRA, SRAConfig
from repro.core import ResourceExchangeRebalancer
from repro.obs import (
    Histogram,
    LATENCY_EDGES_S,
    MetricsRegistry,
    NULL_OBS,
    NULL_REGISTRY,
    NULL_TRACER,
    Obs,
    Tracer,
    UTILIZATION_EDGES,
    iter_spans,
    read_jsonl,
)
from repro.workloads import SyntheticConfig, generate


class FakeClock:
    """Deterministic monotonic clock for span timing assertions."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        self.t += 1.0
        return self.t


class TestTracerSpans:
    def test_nesting_parent_ids_and_depth(self):
        tr = Tracer(clock=FakeClock())
        assert tr.depth == 0 and tr.current_span is None
        with tr.span("outer") as outer:
            assert tr.depth == 1 and tr.current_span is outer
            with tr.span("inner") as inner:
                assert tr.depth == 2 and tr.current_span is inner
                assert inner.parent_id == outer.span_id
            assert tr.depth == 1
        assert tr.depth == 0
        spans = {s["name"]: s for s in iter_spans(tr.records())}
        assert spans["outer"]["parent"] is None
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        # Children close before parents, so completion order is inner-first.
        assert [s["name"] for s in iter_spans(tr.records())] == ["inner", "outer"]

    def test_span_timing_attrs_and_counters(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("work", size=7) as sp:
            sp.set("feasible", True)
            sp.add("moves", 2)
            sp.add("moves", 3)
        (rec,) = iter_spans(tr.records())
        assert rec["t1"] > rec["t0"]
        assert rec["attrs"] == {"size": 7, "feasible": True}
        assert rec["counters"] == {"moves": 5.0}

    def test_event_attaches_to_innermost_span(self):
        tr = Tracer(clock=FakeClock())
        tr.event("orphan")
        with tr.span("outer"):
            with tr.span("inner") as inner:
                tr.event("hit", it=3)
                inner_id = inner.span_id
        events = [r for r in tr.records() if r["kind"] == "event"]
        assert events[0]["span"] is None
        assert events[1]["span"] == inner_id
        assert events[1]["attrs"] == {"it": 3}

    def test_add_outside_span_goes_to_root_counters(self):
        tr = Tracer()
        tr.add("loose", 2.0)
        tr.add("loose")
        assert tr.root_counters == {"loose": 3.0}
        assert tr.records()[-1] == {"kind": "counters", "counters": {"loose": 3.0}}

    def test_exception_recorded_and_not_swallowed(self):
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("boom"):
                raise RuntimeError("bad")
        (rec,) = iter_spans(tr.records())
        assert "RuntimeError" in rec["attrs"]["error"]

    def test_misnested_exit_unwinds_to_span(self):
        tr = Tracer()
        outer = tr.span("outer")
        inner = tr.span("inner")
        outer.__enter__()
        inner.__enter__()
        # Closing the outer span unwinds the abandoned inner one too.
        outer.__exit__(None, None, None)
        assert tr.depth == 0

    def test_jsonl_round_trip(self, tmp_path):
        tr = Tracer(clock=FakeClock())
        with tr.span("episode", machines=np.int64(20)):
            tr.event("iter", objective=np.float64(0.5))
        tr.add("root", 1.0)
        path = tmp_path / "trace.jsonl"
        tr.export_jsonl(path)
        loaded = read_jsonl(path)
        # numpy scalars serialize as plain JSON numbers.
        assert loaded == json.loads(json.dumps(loaded))
        assert [r["kind"] for r in loaded] == ["event", "span", "counters"]
        (span,) = iter_spans(loaded)
        assert span["attrs"] == {"machines": 20}


class TestNullTracer:
    def test_disabled_and_inert(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("x", a=1) as sp:
            sp.set("k", 1)
            sp.add("c")
            assert NULL_TRACER.depth == 0
            assert NULL_TRACER.current_span is None
        NULL_TRACER.event("x")
        NULL_TRACER.add("x")
        assert NULL_TRACER.records() == []
        assert NULL_TRACER.root_counters == {}

    def test_shared_null_span(self):
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b")

    def test_export_refused(self, tmp_path):
        with pytest.raises(RuntimeError, match="NULL_TRACER"):
            NULL_TRACER.export_jsonl(tmp_path / "t.jsonl")


class TestHistogram:
    def test_bucket_rule_edges_inclusive_upper(self):
        h = Histogram("h", (1.0, 2.0, 3.0))
        # bucket i holds edges[i-1] < v <= edges[i]; last bucket overflows.
        assert h.bucket_of(0.5) == 0
        assert h.bucket_of(1.0) == 0
        assert h.bucket_of(1.5) == 1
        assert h.bucket_of(2.0) == 1
        assert h.bucket_of(3.0) == 2
        assert h.bucket_of(3.5) == 3  # overflow
        h.observe_many([0.5, 1.0, 2.0, 99.0])
        assert h.counts == [2, 1, 0, 1]
        assert h.count == 4
        assert h.min == 0.5 and h.max == 99.0
        assert h.mean == pytest.approx((0.5 + 1.0 + 2.0 + 99.0) / 4)

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one edge"):
            Histogram("h", ())
        with pytest.raises(ValueError, match="increasing"):
            Histogram("h", (1.0, 1.0, 2.0))

    def test_standard_edge_sets_valid(self):
        for edges in (LATENCY_EDGES_S, UTILIZATION_EDGES):
            assert all(a < b for a, b in zip(edges, edges[1:], strict=False))

    def test_empty_to_dict(self):
        d = Histogram("h", (1.0,)).to_dict()
        assert d["count"] == 0 and d["min"] is None and d["max"] is None
        assert d["counts"] == [0, 0]


class TestMetricsRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h", (1.0, 2.0)) is reg.histogram("h", (1.0, 2.0))

    def test_histogram_edge_conflict(self):
        reg = MetricsRegistry()
        reg.histogram("h", (1.0, 2.0))
        with pytest.raises(ValueError, match="different edges"):
            reg.histogram("h", (1.0, 3.0))

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            MetricsRegistry().counter("c").inc(-1.0)

    def test_gauge_starts_unset(self):
        g = MetricsRegistry().gauge("g")
        assert g.value is None
        g.set(3)
        assert g.value == 3.0

    def test_export_round_trip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("runs").inc(2)
        reg.gauge("peak").set(0.9)
        reg.histogram("lat", (0.1, 1.0)).observe(0.5)
        path = tmp_path / "metrics.json"
        reg.export_json(path)
        loaded = json.loads(path.read_text())
        assert loaded == reg.to_dict()
        assert loaded["counters"] == {"runs": 2.0}
        assert loaded["gauges"] == {"peak": 0.9}
        assert loaded["histograms"]["lat"]["counts"] == [0, 1, 0]

    def test_null_registry_inert_and_refuses_export(self, tmp_path):
        assert NULL_REGISTRY.enabled is False
        NULL_REGISTRY.counter("c").inc()
        NULL_REGISTRY.gauge("g").set(1.0)
        NULL_REGISTRY.histogram("h").observe(1.0)
        assert NULL_REGISTRY.to_dict() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }
        with pytest.raises(RuntimeError, match="NULL_REGISTRY"):
            NULL_REGISTRY.export_json(tmp_path / "m.json")


class TestAmbientContext:
    def test_default_is_null(self):
        assert obs.current() is NULL_OBS
        assert NULL_OBS.enabled is False

    def test_activate_deactivate_restores(self):
        bundle = Obs(Tracer(), MetricsRegistry())
        previous = obs.activate(bundle)
        try:
            assert obs.current() is bundle
            assert bundle.enabled is True
        finally:
            obs.deactivate(previous)
        assert obs.current() is previous

    def test_observed_nests_and_restores(self):
        with obs.observed() as outer:
            assert obs.current() is outer
            with obs.observed() as inner:
                assert obs.current() is inner
            assert obs.current() is outer
        assert obs.current() is NULL_OBS

    def test_observed_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with obs.observed():
                raise RuntimeError("bad")
        assert obs.current() is NULL_OBS


def _episode(seed, util, exchange, observe):
    state = generate(
        SyntheticConfig(
            num_machines=8,
            shards_per_machine=5,
            target_utilization=util,
            placement_skew=0.5,
            max_shard_fraction=0.35,
            seed=seed,
        )
    )
    rebalancer = ResourceExchangeRebalancer(
        SRA(SRAConfig(alns=AlnsConfig(iterations=80, seed=seed))),
        exchange_machines=exchange,
    )
    if observe:
        with obs.observed():
            return rebalancer.run(state)
    return rebalancer.run(state)


@given(
    seed=st.integers(min_value=0, max_value=200),
    util=st.sampled_from([0.6, 0.8]),
    exchange=st.integers(min_value=0, max_value=2),
)
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_property_instrumentation_does_not_perturb_results(seed, util, exchange):
    """Tracer-on and tracer-off episodes are bitwise identical."""
    off = _episode(seed, util, exchange, observe=False)
    on = _episode(seed, util, exchange, observe=True)
    assert repr(off.result.peak_after) == repr(on.result.peak_after)
    assert repr(off.after.peak_utilization) == repr(on.after.peak_utilization)
    assert off.result.history == on.result.history
    np.testing.assert_array_equal(
        off.result.target_assignment, on.result.target_assignment
    )
    assert off.migration.num_moves == on.migration.num_moves
    assert off.feasible == on.feasible
    # Only the observed run carries artifacts.
    assert off.trace is None and off.metrics is None
    assert on.trace is not None and on.metrics is not None
    span_names = {r["name"] for r in on.trace if r.get("kind") == "span"}
    assert {"episode", "search", "evaluate"} <= span_names
    assert on.metrics["counters"]["episode.runs"] == 1.0


def test_report_artifact_savers(tmp_path):
    report_off = _episode(3, 0.8, 0, observe=False)
    with pytest.raises(ValueError, match="trace"):
        report_off.save_trace_jsonl(tmp_path / "t.jsonl")
    with pytest.raises(ValueError, match="metrics"):
        report_off.save_metrics_json(tmp_path / "m.json")
    report_on = _episode(3, 0.8, 0, observe=True)
    report_on.save_trace_jsonl(tmp_path / "t.jsonl")
    report_on.save_metrics_json(tmp_path / "m.json")
    assert read_jsonl(tmp_path / "t.jsonl") == report_on.trace
    assert json.loads((tmp_path / "m.json").read_text()) == report_on.metrics
