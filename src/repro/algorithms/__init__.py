"""Rebalancing algorithms: SRA (the paper's contribution) and baselines."""

from repro.algorithms.base import RebalanceResult, Rebalancer, finalize_result
from repro.algorithms.baselines import (
    GreedyRebalancer,
    LocalSearchRebalancer,
    NoopRebalancer,
    RandomRestartRebalancer,
)
from repro.algorithms.budget import MigrationBudget
from repro.algorithms.destroy import (
    DEFAULT_DESTROY_OPS,
    BudgetLocalityBias,
    exchange_swap_removal,
    random_removal,
    shaw_removal,
    vacancy_removal,
    worst_machine_removal,
)
from repro.algorithms.lns import AlnsConfig, AlnsEngine, AlnsOutcome
from repro.algorithms.objective import Objective, ObjectiveWeights
from repro.algorithms.portfolio import PortfolioRebalancer
from repro.algorithms.repair import (
    DEFAULT_REPAIR_OPS,
    Regret2Insertion,
    greedy_best_fit,
    regret2_insertion,
)
from repro.algorithms.sra import SRA
from repro.algorithms.sra_config import SRAConfig

__all__ = [
    "Rebalancer",
    "RebalanceResult",
    "finalize_result",
    "NoopRebalancer",
    "GreedyRebalancer",
    "LocalSearchRebalancer",
    "RandomRestartRebalancer",
    "Objective",
    "ObjectiveWeights",
    "AlnsConfig",
    "AlnsEngine",
    "AlnsOutcome",
    "SRA",
    "SRAConfig",
    "MigrationBudget",
    "BudgetLocalityBias",
    "PortfolioRebalancer",
    "random_removal",
    "worst_machine_removal",
    "shaw_removal",
    "vacancy_removal",
    "exchange_swap_removal",
    "DEFAULT_DESTROY_OPS",
    "greedy_best_fit",
    "Regret2Insertion",
    "regret2_insertion",
    "DEFAULT_REPAIR_OPS",
]
