"""Tests for the parallel seed-portfolio rebalancer."""

import numpy as np
import pytest

from repro.algorithms import AlnsConfig, PortfolioRebalancer, SRA, SRAConfig
from repro.cluster import ExchangeLedger
from repro.workloads import SyntheticConfig, generate, make_exchange_machines


def state():
    return generate(
        SyntheticConfig(
            num_machines=12,
            shards_per_machine=6,
            target_utilization=0.85,
            placement_skew=0.5,
            max_shard_fraction=0.35,
            seed=3,
        )
    )


def cfg(iterations=150):
    return SRAConfig(alns=AlnsConfig(iterations=iterations, seed=10))


class TestPortfolio:
    def test_sequential_beats_or_ties_single_run(self):
        st = state()
        single = SRA(cfg()).rebalance(st)
        best4 = PortfolioRebalancer(cfg(), runs=4, n_jobs=1).rebalance(st)
        assert best4.feasible
        assert best4.peak_after <= single.peak_after + 1e-9
        assert best4.algorithm == "sra-portfolio"

    def test_iterations_totalled(self):
        st = state()
        result = PortfolioRebalancer(cfg(100), runs=3, n_jobs=1).rebalance(st)
        assert result.iterations == 300

    def test_parallel_matches_sequential(self):
        st = state()
        seq = PortfolioRebalancer(cfg(), runs=2, n_jobs=1).rebalance(st)
        par = PortfolioRebalancer(cfg(), runs=2, n_jobs=2).rebalance(st)
        np.testing.assert_array_equal(seq.target_assignment, par.target_assignment)
        assert seq.peak_after == par.peak_after

    def test_with_exchange_ledger(self):
        st = state()
        grown, ledger = ExchangeLedger.borrow(st, make_exchange_machines(st, 1))
        result = PortfolioRebalancer(cfg(), runs=2, n_jobs=1).rebalance(grown, ledger)
        assert result.feasible
        assert result.settlement is not None

    def test_validation(self):
        with pytest.raises(ValueError, match="runs"):
            PortfolioRebalancer(runs=0)
        with pytest.raises(ValueError, match="n_jobs"):
            PortfolioRebalancer(n_jobs=0)
