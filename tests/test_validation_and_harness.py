"""Tests for the shared validation helpers and the experiment harness."""

import numpy as np
import pytest

from repro._validation import (
    as_demand_array,
    check_fraction,
    check_in,
    check_non_negative,
    check_positive,
)
from repro.experiments import REGISTRY
from repro.experiments.harness import format_table, is_full_run, register


class TestValidationHelpers:
    def test_check_positive(self):
        assert check_positive("x", 1.5) == 1.5
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0)

    def test_check_non_negative(self):
        assert check_non_negative("x", 0.0) == 0.0
        with pytest.raises(ValueError, match=">= 0"):
            check_non_negative("x", -1)

    def test_check_fraction(self):
        assert check_fraction("x", 0.5) == 0.5
        for bad in (-0.1, 1.1):
            with pytest.raises(ValueError, match=r"\[0, 1\]"):
                check_fraction("x", bad)

    def test_check_in(self):
        assert check_in("mode", "a", ("a", "b")) == "a"
        with pytest.raises(ValueError, match="one of"):
            check_in("mode", "c", ("a", "b"))

    def test_as_demand_array_scalar(self):
        np.testing.assert_allclose(as_demand_array("d", 2.0), [2.0])

    def test_as_demand_array_rejects_bad_inputs(self):
        with pytest.raises(ValueError, match="1-D"):
            as_demand_array("d", np.ones((2, 2)))
        with pytest.raises(ValueError, match="finite"):
            as_demand_array("d", [np.inf])
        with pytest.raises(ValueError, match="non-negative"):
            as_demand_array("d", [-1.0])
        with pytest.raises(ValueError, match="dimensions"):
            as_demand_array("d", [1.0, 2.0], dims=3)


class TestHarness:
    def test_format_table_alignment_and_types(self):
        rows = [
            {"name": "a", "value": 0.123456, "count": 3, "ok": True},
            {"name": "bb", "value": 1e7, "count": 10, "ok": False},
        ]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "yes" in text and "no" in text
        assert "1e+07" in text  # large numbers go scientific

    def test_format_table_union_of_columns(self):
        rows = [{"a": 1}, {"b": 2}]
        text = format_table(rows)
        assert "a" in text and "b" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="T")

    def test_is_full_run_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not is_full_run()
        monkeypatch.setenv("REPRO_FULL", "1")
        assert is_full_run()
        monkeypatch.setenv("REPRO_FULL", "0")
        assert not is_full_run()

    def test_register_decorator(self):
        @register("zz-test")
        def run(fast=True):
            return [{"x": 1}]

        try:
            assert REGISTRY["zz-test"]() == [{"x": 1}]
        finally:
            del REGISTRY["zz-test"]

    def test_all_experiments_registered(self):
        expected = {f"e{i}" for i in range(1, 17)}
        assert expected <= set(REGISTRY)
