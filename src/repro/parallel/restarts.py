"""Parallel SRA restarts: independent seeds, best-of-K selection.

LNS restarts share nothing, so K restarts scale across processes
trivially — the companion resource-equivalence-classes argument (see
PAPERS.md) for treating local search as embarrassingly restartable.
Restart ``k`` runs the configured SRA with seed
``spawn_seeds(master_seed, K)[k]``, so the restart set is a pure
function of the master seed: the same K restarts run with 1, 2 or 8
workers produce bitwise-identical per-restart results, and the winner
is selected by a deterministic rule over the task-ordered results
(feasibility first, then peak utilization, then move count — the same
rule :class:`~repro.algorithms.PortfolioRebalancer` uses).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Sequence

from repro.parallel.runner import ParallelRunner, TaskResult, TaskSpec
from repro.parallel.seeds import spawn_seeds

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (sra imports us)
    from repro.algorithms.base import RebalanceResult
    from repro.algorithms.sra_config import SRAConfig
    from repro.cluster import ClusterState, ExchangeLedger

__all__ = ["RestartReport", "run_sra_restarts"]


@dataclass
class RestartReport:
    """Outcome of a restart fan-out.

    ``best`` carries the winning restart's full result with
    ``iterations`` re-totalled across every successful restart (the work
    actually spent).  ``results`` keeps every per-restart row, failures
    included, in restart order.
    """

    best: "RebalanceResult"
    results: list[TaskResult]
    seeds: tuple[int, ...]

    @property
    def num_failed(self) -> int:
        return sum(1 for r in self.results if not r.ok)


def _run_one(
    config: "SRAConfig", state: "ClusterState", ledger: "ExchangeLedger | None"
) -> "RebalanceResult":
    from repro.algorithms.sra import SRA

    return SRA(config).rebalance(state, ledger)


def run_sra_restarts(
    state: "ClusterState",
    ledger: "ExchangeLedger | None" = None,
    *,
    config: "SRAConfig",
    restarts: int,
    n_workers: int = 1,
    timeout_s: float | None = None,
) -> RestartReport:
    """Run *restarts* independent SRA searches; return the best result.

    Each restart gets its spawned seed and ``restarts=1, n_workers=1``
    (so a restart never recursively fans out).  Raises ``RuntimeError``
    when every restart failed.
    """
    if restarts < 1:
        raise ValueError(f"restarts must be >= 1, got {restarts}")
    seeds = spawn_seeds(config.alns.seed, restarts)
    specs = [
        TaskSpec(
            fn=_run_one,
            args=(replace(config, seed=seed, restarts=1, n_workers=1), state, ledger),
            name=f"sra.restart[{k}]",
            seed=seed,
        )
        for k, seed in enumerate(seeds)
    ]
    results = ParallelRunner(n_workers, timeout_s=timeout_s).run(specs)
    succeeded = [r for r in results if r.ok]
    if not succeeded:
        errors = "; ".join(f"{r.name}: {r.error}" for r in results)
        raise RuntimeError(f"all {restarts} SRA restarts failed ({errors})")
    best_row = min(succeeded, key=_selection_key)
    best: "RebalanceResult" = best_row.value
    best.iterations = sum(r.value.iterations for r in succeeded)
    return RestartReport(best=best, results=results, seeds=seeds)


def _selection_key(row: TaskResult) -> tuple[bool, float, int]:
    result: "RebalanceResult" = row.value
    return (not result.feasible, result.peak_after, result.num_moves)


def restart_seeds(config: "SRAConfig", restarts: int) -> Sequence[int]:
    """The per-restart seeds a fan-out of *restarts* would use."""
    return spawn_seeds(config.alns.seed, restarts)
