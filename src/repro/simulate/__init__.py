"""Discrete-event simulation of query serving under a placement."""

from repro.simulate.des import ServingConfig, ServingReport, simulate_serving
from repro.simulate.migration_load import (
    MigrationWindowReport,
    TimelineWindowReport,
    migration_background_load,
    simulate_migration_timeline,
    simulate_migration_window,
)
from repro.simulate.latency import LatencySummary, summarize
from repro.simulate.routing import RoutingPolicy, simulate_routed_serving
from repro.simulate.traces import diurnal_rate, nonhomogeneous_arrivals
from repro.simulate.workprofile import WorkProfile

__all__ = [
    "ServingConfig",
    "ServingReport",
    "simulate_serving",
    "LatencySummary",
    "summarize",
    "WorkProfile",
    "migration_background_load",
    "MigrationWindowReport",
    "simulate_migration_window",
    "TimelineWindowReport",
    "simulate_migration_timeline",
    "RoutingPolicy",
    "simulate_routed_serving",
    "diurnal_rate",
    "nonhomogeneous_arrivals",
]
