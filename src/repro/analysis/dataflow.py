"""A small forward-dataflow framework over :mod:`repro.analysis.cfg`.

The classic worklist fixpoint, shaped for invariant rules:

* a client subclasses :class:`ForwardAnalysis` with an *immutable* state
  type (states are compared with ``==`` to detect the fixpoint — mutable
  aliased states would terminate early or never);
* :meth:`transfer` produces the state after one statement;
* :meth:`transfer_exception` produces the state carried along an
  exception edge — the default is the **in**-state, because a statement
  that raises did not complete (``x.commit()`` raising leaves the
  transaction open);
* :meth:`assume` refines the state along conditional edges, enabling
  the light path-sensitivity REP007 needs for the guarded-rollback idiom
  (``if state.in_transaction: state.rollback()``);
* :meth:`join` merges states at control-flow merges.  Clients that
  report only *definite* facts (join to a MAYBE element, never report
  MAYBE) get conservative, false-positive-free findings out of the box.

:func:`run_forward` returns per-node input states **and** per-edge
states; rules that care where a path *leaves* the function (REP007's
leak-at-exit check) read the edge states into ``cfg.exit`` and
``cfg.raise_exit`` rather than the joined sink state, keeping one
clean path's verdict from being smeared by another's.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Generic, TypeVar

from repro.analysis.cfg import CFG, EXCEPTION

__all__ = ["ForwardAnalysis", "DataflowResult", "run_forward"]

S = TypeVar("S")


class ForwardAnalysis(Generic[S]):
    """Client interface of the forward worklist solver."""

    def initial(self) -> S:
        """State on entry to the function."""
        raise NotImplementedError

    def transfer(self, node: ast.AST | None, state: S) -> S:
        """State after executing *node* (synthetic nodes pass ``None``)."""
        raise NotImplementedError

    def transfer_exception(self, node: ast.AST | None, state: S) -> S:
        """State carried on *node*'s exception edge (default: in-state —
        a raising statement did not complete)."""
        return state

    def assume(self, cond: ast.expr, branch: bool, state: S) -> S:
        """Refine *state* knowing *cond* evaluated to *branch*."""
        return state

    def join(self, a: S, b: S) -> S:
        raise NotImplementedError


@dataclass
class DataflowResult(Generic[S]):
    """Fixpoint of one analysis over one CFG.

    ``in_states[n]`` is the joined state entering node ``n`` (absent for
    unreachable nodes); ``edge_states[i]`` is the state flowing along
    ``cfg.edges[i]`` after transfer/assume refinement.
    """

    in_states: dict[int, S]
    edge_states: dict[int, S]


def run_forward(cfg: CFG, analysis: ForwardAnalysis[S]) -> DataflowResult[S]:
    """Worklist fixpoint of *analysis* over *cfg* (see module docstring)."""
    succ: dict[int, list[int]] = {}
    for idx, edge in enumerate(cfg.edges):
        succ.setdefault(edge.src, []).append(idx)

    in_states: dict[int, S] = {cfg.entry: analysis.initial()}
    edge_states: dict[int, S] = {}
    worklist: list[int] = [cfg.entry]
    # Deterministic processing order: lowest node id first.  The result
    # is order-independent (it is a fixpoint) but the trace is stable.
    while worklist:
        worklist.sort()
        node = worklist.pop(0)
        state = in_states[node]
        out = analysis.transfer(cfg.nodes[node], state)
        exc = analysis.transfer_exception(cfg.nodes[node], state)
        for idx in succ.get(node, ()):
            edge = cfg.edges[idx]
            carried = exc if edge.kind == EXCEPTION else out
            if edge.cond is not None and edge.branch is not None:
                carried = analysis.assume(edge.cond, edge.branch, carried)
            if idx not in edge_states or edge_states[idx] != carried:
                edge_states[idx] = carried
            old = in_states.get(edge.dst)
            new = carried if old is None else analysis.join(old, carried)
            if old is None or new != old:
                in_states[edge.dst] = new
                if edge.dst not in worklist:
                    worklist.append(edge.dst)
    return DataflowResult(in_states, edge_states)
