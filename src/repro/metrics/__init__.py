"""Balance and migration metrics."""

from repro.metrics.imbalance import (
    ImbalanceReport,
    coefficient_of_variation,
    imbalance_ratio,
    imbalance_report,
    jain_index,
)
from repro.metrics.migration import MigrationSummary, summarize_plan

__all__ = [
    "coefficient_of_variation",
    "jain_index",
    "imbalance_ratio",
    "ImbalanceReport",
    "imbalance_report",
    "MigrationSummary",
    "summarize_plan",
]
