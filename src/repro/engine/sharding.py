"""Document partitioning and the sharded index.

A :class:`ShardedIndex` splits a corpus into per-shard inverted indexes
(document partitioning, the architecture of all large web search
engines) and derives each shard's *resource demand* from measured index
statistics plus a query sample:

* **cpu**   — expected postings traversed per query (measured by running
  the query sample against the shard);
* **ram**   — shard index size (hot portion assumed proportional);
* **disk**  — shard index size in bytes.

This is the bridge between the engine substrate and the cluster model:
shard demands handed to the rebalancer are measured from a real executable
index rather than invented, which is what the repro band's
"realistic engine performance harder" hint asks for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

import numpy as np

from repro._validation import check_positive
from repro.cluster import DEFAULT_SCHEMA, ResourceSchema, Shard
from repro.engine.index import InvertedIndex
from repro.engine.scoring import BM25Scorer, CollectionStats
from repro.engine.text import Document, Query

__all__ = ["partition_documents", "ShardedIndex"]


def partition_documents(
    docs: Sequence[Document],
    num_shards: int,
    *,
    strategy: Literal["hash", "round-robin"] = "hash",
) -> list[list[Document]]:
    """Split *docs* into *num_shards* groups.

    ``hash`` uses a deterministic mix of the doc id (stable across runs
    and machines); ``round-robin`` cycles — useful to build intentionally
    size-balanced shards in tests.
    """
    check_positive("num_shards", num_shards)
    groups: list[list[Document]] = [[] for _ in range(num_shards)]
    for pos, doc in enumerate(docs):
        if strategy == "hash":
            h = (doc.doc_id * 2654435761) & 0xFFFFFFFF  # Knuth multiplicative hash
            groups[h % num_shards].append(doc)
        elif strategy == "round-robin":
            groups[pos % num_shards].append(doc)
        else:
            raise ValueError(f"unknown strategy {strategy!r}")
    empty = [g for g in groups if not g]
    if empty:
        raise ValueError(
            f"{len(empty)} shard(s) received no documents; use fewer shards"
        )
    return groups


@dataclass
class _ShardStats:
    postings_per_query: float
    size_bytes: float


class ShardedIndex:
    """A document-partitioned index with per-shard scorers and demand model.

    Per-shard scorers are built with **global** collection statistics
    (merged across shards) so that scores are comparable and the broker's
    top-k merge is exact — the distributed-idf design of production
    engines.
    """

    def __init__(self, shards: Sequence[InvertedIndex]) -> None:
        if not shards:
            raise ValueError("ShardedIndex requires at least one shard")
        self.indexes = list(shards)
        self.stats = self._merged_stats(self.indexes)
        self.scorers = [BM25Scorer(ix, stats=self.stats) for ix in self.indexes]

    @staticmethod
    def _merged_stats(indexes: Sequence[InvertedIndex]) -> CollectionStats:
        num_docs = sum(ix.num_docs for ix in indexes)
        total_len = sum(ix.avg_doc_length * ix.num_docs for ix in indexes)
        dfs: dict[str, int] = {}
        for ix in indexes:
            for term in ix.terms():
                dfs[term] = dfs.get(term, 0) + ix.document_frequency(term)
        return CollectionStats(
            num_docs=num_docs,
            avg_doc_length=total_len / max(num_docs, 1),
            document_frequencies=dfs,
        )

    @staticmethod
    def build(
        docs: Sequence[Document],
        num_shards: int,
        *,
        strategy: Literal["hash", "round-robin"] = "hash",
    ) -> "ShardedIndex":
        groups = partition_documents(docs, num_shards, strategy=strategy)
        return ShardedIndex([InvertedIndex.build(g) for g in groups])

    @property
    def num_shards(self) -> int:
        return len(self.indexes)

    @property
    def num_docs(self) -> int:
        return sum(ix.num_docs for ix in self.indexes)

    # ---------------------------------------------------------- demand model
    def measure(self, query_sample: Sequence[Query]) -> list[_ShardStats]:
        """Measure per-shard cost statistics by executing *query_sample*."""
        if not query_sample:
            raise ValueError("query_sample must be non-empty")
        stats: list[_ShardStats] = []
        for ix, scorer in zip(self.indexes, self.scorers, strict=True):
            total_work = 0
            for q in query_sample:
                _, work = scorer.search(q, k=10)
                total_work += work
            stats.append(
                _ShardStats(
                    postings_per_query=total_work / len(query_sample),
                    size_bytes=float(ix.size_bytes()),
                )
            )
        return stats

    def to_cluster_shards(
        self,
        query_sample: Sequence[Query],
        *,
        schema: ResourceSchema = DEFAULT_SCHEMA,
        queries_per_second: float = 100.0,
        postings_per_cpu_second: float = 5e6,
        ram_fraction: float = 0.5,
    ) -> list[Shard]:
        """Derive :class:`repro.cluster.Shard` demands from measurements.

        ``cpu`` demand is cores needed at *queries_per_second* given the
        measured postings/query and a postings/cpu-second throughput;
        ``ram`` is ``ram_fraction`` of the index bytes; ``disk`` is the
        index bytes.  Requires the default (cpu, ram, disk) schema shape.
        """
        check_positive("queries_per_second", queries_per_second)
        check_positive("postings_per_cpu_second", postings_per_cpu_second)
        if schema.dims != 3:
            raise ValueError("to_cluster_shards expects a (cpu, ram, disk) schema")
        stats = self.measure(query_sample)
        shards: list[Shard] = []
        for sid, st in enumerate(stats):
            cpu = queries_per_second * st.postings_per_query / postings_per_cpu_second
            demand = np.array(
                [max(cpu, 1e-6), ram_fraction * st.size_bytes, st.size_bytes]
            )
            shards.append(
                Shard(id=sid, demand=demand, schema=schema, size_bytes=st.size_bytes)
            )
        return shards
