"""Online processes: workload drift and mid-stream rebalancing.

:class:`DriftProcess` applies a drift model at epoch boundaries on the
shared clock.  :class:`RebalanceController` watches the cluster's peak
utilization and, per policy, runs an SRA episode — either
*instantaneously* (the legacy ``OnlineSimulator`` contract, preserved
bit-for-bit by the facade) or *simulated*, where the resulting plan is
handed to a :class:`~repro.runtime.migration.MigrationExecutor` and
executed wave-by-wave while queries keep arriving.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro import obs
from repro._validation import check_in, check_non_negative, check_positive
from repro.cluster import ClusterState, ExchangeLedger, settle_fleet
from repro.migration.costmodel import BandwidthModel
from repro.runtime.kernel import Runtime
from repro.runtime.machines import ServingFleet
from repro.runtime.migration import MigrationExecutor
from repro.workloads import make_exchange_machines

__all__ = ["ClusterHandle", "DriftProcess", "RebalanceController", "EpisodeOutcome"]


class ClusterHandle:
    """Mutable reference to the evolving cluster state.

    Processes share one handle so that drift (which *replaces* the state
    with a re-demanded copy) and rebalancing (which mutates or replaces
    the assignment) always see each other's latest view.
    """

    __slots__ = ("state",)

    def __init__(self, state: ClusterState) -> None:
        self.state = state


class DriftProcess:
    """Applies a drift model at each epoch boundary.

    Epoch ``e`` (0-based) fires at ``start_at + (e + 1) * epoch_length``:
    the workload the cluster *wakes up to* at the end of each epoch.
    Subscribers run synchronously after the drift lands, in subscription
    order — the rebalance controller subscribes here so its policy always
    evaluates the post-drift peak.
    """

    def __init__(
        self,
        handle: ClusterHandle,
        drift: Any,
        *,
        epochs: int,
        epoch_length: float = 1.0,
        start_at: float = 0.0,
    ) -> None:
        check_positive("epochs", epochs)
        check_positive("epoch_length", epoch_length)
        check_non_negative("start_at", start_at)
        self.handle = handle
        self.drift = drift
        self.epochs = int(epochs)
        self.epoch_length = epoch_length
        self.start_at = start_at
        self._epoch = 0
        self._subscribers: List[Callable[[Runtime, int], None]] = []

    def subscribe(self, fn: Callable[[Runtime, int], None]) -> None:
        """Run *fn(rt, epoch)* after each epoch's drift is applied."""
        self._subscribers.append(fn)

    def start(self, rt: Runtime) -> None:
        rt.at(self.start_at + self.epoch_length, self._on_epoch)

    def _on_epoch(self, rt: Runtime) -> None:
        epoch = self._epoch
        self.handle.state = self.drift.step(self.handle.state)
        tracer = obs.current().tracer
        if tracer.enabled:
            tracer.event(
                "runtime.epoch",
                epoch=epoch,
                peak=self.handle.state.peak_utilization(),
            )
        for fn in self._subscribers:
            fn(rt, epoch)
        self._epoch = epoch + 1
        if self._epoch < self.epochs:
            rt.at(self.start_at + (self._epoch + 1) * self.epoch_length, self._on_epoch)


@dataclass(frozen=True)
class EpisodeOutcome:
    """Synchronous result of one rebalancing decision.

    ``in_flight`` is True for simulated executions, whose migration cost
    lands in the controller's ``episodes`` record once the last wave
    retires.
    """

    attempted: bool
    feasible: bool = True
    moves: int = 0
    bytes_moved: float = 0.0
    in_flight: bool = False


class RebalanceController:
    """Policy-gated SRA episodes on the shared clock.

    Parameters
    ----------
    handle:
        The cluster the policy watches and episodes rewrite.
    rebalancer:
        Any object with ``rebalance(state, ledger) -> RebalanceResult``.
    policy / threshold:
        ``"always"`` rebalances on every check, ``"threshold"`` only when
        the peak utilization exceeds *threshold*, ``"never"`` is the
        do-nothing control.
    exchange_budget:
        Machines borrowed per instantaneous episode (returned at its
        settlement).  Simulated execution requires a budget of 0: the
        serving fleet cannot grow mid-run (yet).
    execution:
        ``"instant"`` applies the settled state at the decision instant
        (the legacy epoch-loop semantics); ``"simulated"`` executes the
        plan's wave schedule on the clock via a
        :class:`MigrationExecutor` while serving continues.
    fleet / location / bandwidth / transfer_overhead:
        Simulated-execution wiring (required iff simulated).
    check_interval / horizon:
        Optional periodic self-scheduled policy checks every
        *check_interval* seconds until *horizon*.
    trigger_at:
        Optional one-shot policy check at an absolute time.
    cooldown:
        Minimum simulated seconds between an episode's *completion* and
        the next trigger (0 = legacy behavior).  Together with the
        in-flight guard this is the anti-thrash hysteresis: a new
        episode can neither start while a migration schedule is still
        executing, nor immediately after it lands while the fleet is
        still absorbing the moves.
    """

    def __init__(
        self,
        handle: ClusterHandle,
        rebalancer: Any,
        *,
        policy: str = "threshold",
        threshold: float = 0.95,
        exchange_budget: int = 0,
        execution: str = "instant",
        fleet: Optional[ServingFleet] = None,
        location: Optional[np.ndarray] = None,
        bandwidth: Optional[BandwidthModel] = None,
        transfer_overhead: float = 0.3,
        check_interval: Optional[float] = None,
        horizon: Optional[float] = None,
        trigger_at: Optional[float] = None,
        cooldown: float = 0.0,
    ) -> None:
        check_in("policy", policy, ("always", "threshold", "never"))
        check_in("execution", execution, ("instant", "simulated"))
        check_positive("threshold", threshold)
        check_non_negative("exchange_budget", exchange_budget)
        check_non_negative("cooldown", cooldown)
        if execution == "simulated":
            if fleet is None or location is None:
                raise ValueError("simulated execution requires fleet and location")
            if exchange_budget != 0:
                raise ValueError(
                    "simulated execution cannot borrow machines mid-run; "
                    "grow the fleet before serving starts instead"
                )
        if check_interval is not None:
            check_positive("check_interval", check_interval)
            if horizon is None:
                raise ValueError("check_interval requires a horizon")
        self.handle = handle
        self.rebalancer = rebalancer
        self.policy = policy
        self.threshold = threshold
        self.exchange_budget = int(exchange_budget)
        self.execution = execution
        self.fleet = fleet
        self.location = location
        self.bandwidth = bandwidth or BandwidthModel()
        self.transfer_overhead = transfer_overhead
        self.check_interval = check_interval
        self.horizon = horizon
        self.trigger_at = trigger_at
        self.cooldown = float(cooldown)
        #: One record per attempted episode (mutated on async completion).
        self.episodes: List[Dict[str, Any]] = []
        self._in_flight = False
        self._pending_target: Optional[np.ndarray] = None
        self._executor: Optional[MigrationExecutor] = None
        self._last_completed: Optional[float] = None

    # ------------------------------------------------------------------ hooks
    def start(self, rt: Runtime) -> None:
        if self.trigger_at is not None:
            rt.at(self.trigger_at, self._check)
        if self.check_interval is not None:
            rt.at(rt.now + self.check_interval, self._tick)

    def on_epoch(self, rt: Runtime, epoch: int) -> None:
        """DriftProcess subscriber: policy check after each epoch's drift."""
        self._check(rt)

    # ----------------------------------------------------------------- policy
    def _tick(self, rt: Runtime) -> None:
        self._check(rt)
        assert self.check_interval is not None and self.horizon is not None
        next_t = rt.now + self.check_interval
        if next_t <= self.horizon:
            rt.at(next_t, self._tick)

    def _check(self, rt: Runtime) -> None:
        self.maybe_rebalance(rt)

    def should_rebalance(self, peak: float, now: Optional[float] = None) -> bool:
        if self._in_flight or self.policy == "never":
            return False
        if (
            self.cooldown > 0.0
            and now is not None
            and self._last_completed is not None
            and now - self._last_completed < self.cooldown
        ):
            return False
        return self._policy_fires(peak)

    def _policy_fires(self, peak: float) -> bool:
        """The policy's trigger verdict, after the in-flight/cooldown
        guards have passed (subclass hook: the incremental controller
        substitutes its drift detector here)."""
        return self.policy == "always" or peak > self.threshold

    def maybe_rebalance(self, rt: Runtime) -> EpisodeOutcome:
        """Run one policy-gated episode; returns what happened."""
        peak = self.handle.state.peak_utilization()
        if not self.should_rebalance(peak, now=rt.now):
            return EpisodeOutcome(attempted=False)
        return self.rebalance_now(rt, peak_before=peak)

    # ---------------------------------------------------------------- episode
    def _open_episode(self, current: ClusterState) -> tuple[ClusterState, ExchangeLedger]:
        """Borrow for one episode (subclass hook: pool-sized loans)."""
        return ExchangeLedger.borrow(
            current, make_exchange_machines(current, self.exchange_budget)
        )

    def _solve(self, grown: ClusterState, ledger: ExchangeLedger) -> Any:
        """Run the rebalancer (subclass hook: warm-started solves)."""
        return self.rebalancer.rebalance(grown, ledger)

    def _on_infeasible(self, ledger: ExchangeLedger) -> None:
        """Subclass hook: undo episode borrowing after an infeasible solve."""

    def _on_settled(self, settlement: Any, returned: List[Any]) -> None:
        """Subclass hook: route instantly-settled returns (e.g. to a pool)."""

    def rebalance_now(self, rt: Runtime, *, peak_before: float) -> EpisodeOutcome:
        current = self.handle.state
        grown, ledger = self._open_episode(current)
        result = self._solve(grown, ledger)
        record: Dict[str, Any] = {
            "time": rt.now,
            "peak_before": peak_before,
            "feasible": bool(result.feasible),
            "moves": 0,
            "bytes_moved": 0.0,
            "waves": 0,
            "window_seconds": 0.0,
            "completed_at": None,
        }
        self.episodes.append(record)
        tracer = obs.current().tracer
        if tracer.enabled:
            tracer.event(
                "runtime.rebalance",
                time=rt.now,
                peak_before=peak_before,
                feasible=bool(result.feasible),
            )
        if not result.feasible:
            self._on_infeasible(ledger)
            return EpisodeOutcome(attempted=True, feasible=False)
        if self.execution == "instant":
            final = grown.copy()
            final.apply_assignment(result.target_assignment)
            settled, settlement, returned = settle_fleet(final, ledger)
            self.handle.state = settled
            self._on_settled(settlement, returned)
            moved_bytes = (
                result.plan.schedule.total_bytes() if result.plan else 0.0
            )
            record.update(
                moves=result.num_moves,
                bytes_moved=moved_bytes,
                completed_at=rt.now,
            )
            self._last_completed = rt.now
            return EpisodeOutcome(
                attempted=True,
                feasible=True,
                moves=result.num_moves,
                bytes_moved=moved_bytes,
            )
        # Simulated: hand the plan's waves to an executor on the clock.
        assert self.fleet is not None and self.location is not None
        if result.plan is None or not result.plan.schedule.waves:
            # Nothing to move: the episode completes at the decision instant.
            self.handle.state = self.handle.state.copy()
            self.handle.state.apply_assignment(result.target_assignment)
            record.update(moves=result.num_moves, completed_at=rt.now)
            self._last_completed = rt.now
            return EpisodeOutcome(attempted=True, feasible=True, moves=result.num_moves)
        self._in_flight = True
        self._pending_target = np.asarray(result.target_assignment, dtype=np.int64)
        executor = MigrationExecutor(
            schedule=result.plan.schedule,
            fleet=self.fleet,
            location=self.location,
            loads=current.loads.copy(),
            capacity=current.capacity,
            demand=current.demand,
            model=self.bandwidth,
            transfer_overhead=self.transfer_overhead,
            start_at=rt.now,
            on_complete=self._complete,
        )
        self._executor = executor
        record.update(moves=result.num_moves, waves=len(result.plan.schedule.waves))
        rt.add(executor)
        return EpisodeOutcome(
            attempted=True, feasible=True, moves=result.num_moves, in_flight=True
        )

    def _complete(self, rt: Runtime) -> None:
        assert self._executor is not None and self._pending_target is not None
        record = self.episodes[-1]
        record.update(
            bytes_moved=self._executor.bytes_transferred,
            window_seconds=rt.now - float(record["time"]),
            completed_at=rt.now,
        )
        state = self.handle.state.copy()
        state.apply_assignment(self._pending_target)
        self.handle.state = state
        self._executor = None
        self._pending_target = None
        self._in_flight = False
        self._last_completed = rt.now
