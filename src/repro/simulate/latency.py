"""Latency collection and percentile summaries."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["LatencySummary", "summarize"]


@dataclass(frozen=True)
class LatencySummary:
    """Percentile summary of a latency sample (seconds)."""

    count: int
    mean: float
    p50: float
    p90: float
    p95: float
    p99: float
    max: float

    def row(self) -> dict[str, float]:
        """Flat dict for table printing."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.p90,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


def summarize(latencies: Sequence[float] | np.ndarray) -> LatencySummary:
    """Summarize a non-empty latency sample."""
    arr = np.asarray(latencies, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty latency sample")
    if np.any(arr < 0):
        raise ValueError("latencies must be non-negative")
    return LatencySummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        p50=float(np.percentile(arr, 50)),
        p90=float(np.percentile(arr, 90)),
        p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)),
        max=float(arr.max()),
    )
