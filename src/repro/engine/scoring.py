"""BM25 scoring over an inverted index.

Standard Okapi BM25 with the usual parameters (k1 = 1.2, b = 0.75).
Scoring is term-at-a-time with NumPy accumulation: for each query term
the posting list contributes ``idf · tf·(k1+1) / (tf + k1·norm)`` to its
documents' scores, and the top-k is taken at the end.  This is the
exhaustive (unpruned) evaluation path — the cost model charges exactly
the postings traversed, which is what makes hot shards expensive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro._validation import check_positive
from repro.engine.index import InvertedIndex
from repro.engine.text import Query

__all__ = ["ScoredDoc", "CollectionStats", "BM25Scorer"]


@dataclass(frozen=True)
class ScoredDoc:
    """One result: document id and its BM25 score."""

    doc_id: int
    score: float


@dataclass(frozen=True)
class CollectionStats:
    """Corpus-wide statistics used for scoring.

    In a sharded deployment these are **global** numbers distributed to
    every shard by the broker tier (the standard distributed-idf design):
    scoring with local shard statistics would make per-shard scores
    incomparable and break top-k merging.
    """

    num_docs: int
    avg_doc_length: float
    document_frequencies: Mapping[str, int]

    @staticmethod
    def from_index(index: InvertedIndex) -> "CollectionStats":
        """Stats of a single monolithic index."""
        return CollectionStats(
            num_docs=index.num_docs,
            avg_doc_length=index.avg_doc_length,
            document_frequencies={},  # filled lazily via fallback below
        )

    def df(self, term: str, fallback: InvertedIndex | None = None) -> int:
        if term in self.document_frequencies:
            return self.document_frequencies[term]
        return fallback.document_frequency(term) if fallback is not None else 0


class BM25Scorer:
    """Okapi BM25 over one :class:`InvertedIndex`.

    Parameters
    ----------
    stats:
        Collection statistics to score with.  Defaults to the index's own
        statistics (correct for a monolithic index); a sharded deployment
        must pass the merged global statistics.
    k1, b:
        The usual BM25 free parameters.
    """

    def __init__(
        self,
        index: InvertedIndex,
        *,
        stats: CollectionStats | None = None,
        k1: float = 1.2,
        b: float = 0.75,
    ) -> None:
        check_positive("k1", k1)
        if not 0.0 <= b <= 1.0:
            raise ValueError(f"b must be in [0, 1], got {b}")
        self.index = index
        self.stats = stats or CollectionStats.from_index(index)
        self.k1 = k1
        self.b = b
        # Dense doc-id remap for fast accumulation.
        self._doc_ids = index.doc_ids()
        self._id_to_row = {int(d): r for r, d in enumerate(self._doc_ids)}
        lengths = index.doc_lengths_map()
        dl = np.array([lengths[int(d)] for d in self._doc_ids], dtype=np.float64)
        avgdl = max(self.stats.avg_doc_length, 1e-9)
        self._norm = self.k1 * (1.0 - self.b + self.b * dl / avgdl)

    def idf(self, term: str) -> float:
        """BM25 idf with the standard +1 smoothing (never negative)."""
        n = self.stats.num_docs
        df = self.stats.df(term, fallback=self.index)
        return math.log(1.0 + (n - df + 0.5) / (df + 0.5))

    def search(self, query: Query, k: int = 10) -> tuple[list[ScoredDoc], int]:
        """Top-*k* documents for *query*.

        Returns ``(results, postings_scored)`` — the second component is
        the work performed, consumed by the broker's cost model.
        """
        check_positive("k", k)
        scores = np.zeros(len(self._doc_ids), dtype=np.float64)
        work = 0
        for term in query.terms:
            plist = self.index.postings(term)
            if plist is None:
                continue
            work += len(plist)
            rows = np.array(
                [self._id_to_row[int(d)] for d in plist.doc_ids], dtype=np.int64
            )
            tf = plist.term_freqs.astype(np.float64)
            contrib = self.idf(term) * tf * (self.k1 + 1.0) / (tf + self._norm[rows])
            scores[rows] += contrib
        if work == 0:
            return [], 0
        nz = np.flatnonzero(scores > 0)
        if nz.size == 0:
            return [], work
        take = min(k, nz.size)
        top = nz[np.argpartition(-scores[nz], take - 1)[:take]]
        top = top[np.argsort(-scores[top], kind="stable")]
        results = [ScoredDoc(int(self._doc_ids[r]), float(scores[r])) for r in top]
        return results, work
