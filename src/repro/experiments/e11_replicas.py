"""E11 — replicated indexes (extension; no paper analogue).

Production indexes replicate shards 2–3× with anti-affinity.  This
experiment verifies the full pipeline under replication: SRA and the
baselines must balance *without ever colocating siblings*, and the
anti-affinity constraint's cost (how much balance it forgoes) is
measured by comparing against an unconstrained control in which the
same shards carry no replica labels.
"""

from __future__ import annotations


from repro.algorithms import LocalSearchRebalancer
from repro.cluster import ClusterState, Shard
from repro.experiments.common import make_sra, scenario_instance
from repro.experiments.harness import register


def _strip_replicas(state: ClusterState) -> ClusterState:
    """Same instance with replica labels removed (the unconstrained control)."""
    shards = [
        Shard(
            id=sh.id,
            demand=sh.demand.copy(),
            schema=sh.schema,
            size_bytes=sh.size_bytes,
            replica_of=-1,
        )
        for sh in state.shards
    ]
    return ClusterState(list(state.machines), shards, state.assignment)


@register("e11")
def run(fast: bool = True) -> list[dict]:
    seeds = (0, 1) if fast else (0, 1, 2, 3)
    factors = (2, 3) if fast else (1, 2, 3, 4)
    iterations = 500 if fast else 2000
    rows = []
    for seed in seeds:
        for k in factors:
            state = scenario_instance(
                "replicated-shards",
                {
                    "num_machines": 20,
                    "shards_per_machine": 4,
                    "target_utilization": 0.8,
                    "placement_skew": 0.55,
                    "max_shard_fraction": 0.35,
                    "replication_factor": k,
                },
                seed=seed,
            )
            for algo_name, result, final_state in _runs(state, iterations):
                rows.append(
                    {
                        "instance": f"rep-k{k}-s{seed}",
                        "replication": k,
                        "algorithm": algo_name,
                        "peak_before": result.peak_before,
                        "peak_after": result.peak_after,
                        "conflicts": len(final_state.replica_conflicts()),
                        "moves": result.num_moves,
                        "feasible": result.feasible,
                    }
                )
    return rows


def _runs(state: ClusterState, iterations: int):
    for name, algo, st in (
        ("local-search", LocalSearchRebalancer(seed=1), state),
        ("sra", make_sra(iterations, seed=1), state),
        ("sra-unconstrained", make_sra(iterations, seed=1), _strip_replicas(state)),
    ):
        result = algo.rebalance(st)
        final = st.copy()
        final.apply_assignment(result.target_assignment)
        if name == "sra-unconstrained":
            # Report conflicts against the *labelled* instance, to show
            # what ignoring anti-affinity would have produced.
            labelled = state.copy()
            labelled.apply_assignment(result.target_assignment)
            final = labelled
        yield name, result, final
