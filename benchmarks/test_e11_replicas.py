"""E11 — replicated indexes with anti-affinity (extension).

Shape claims: constrained algorithms never colocate siblings; the
unconstrained control does (showing the constraint binds); the price of
anti-affinity in peak utilization is small; SRA still matches or beats
local search under the constraint.
"""

from collections import defaultdict

from repro.experiments import REGISTRY, is_full_run


def test_e11_replicas(benchmark, save_table):
    rows = benchmark.pedantic(
        REGISTRY["e11"], kwargs={"fast": not is_full_run()}, rounds=1, iterations=1
    )
    save_table("e11", rows, "E11 — replica anti-affinity: balance and violations")

    by_instance = defaultdict(dict)
    for r in rows:
        by_instance[r["instance"]][r["algorithm"]] = r

    unconstrained_conflicts = 0
    for instance, algos in by_instance.items():
        for name in ("local-search", "sra"):
            assert algos[name]["conflicts"] == 0, f"{instance}/{name}"
            assert algos[name]["feasible"], f"{instance}/{name}"
        unconstrained_conflicts += algos["sra-unconstrained"]["conflicts"]
        # Anti-affinity costs little balance vs the unconstrained control.
        assert (
            algos["sra"]["peak_after"]
            <= algos["sra-unconstrained"]["peak_after"] + 0.05
        ), instance
        # SRA at least matches local search under the constraint.
        assert (
            algos["sra"]["peak_after"] <= algos["local-search"]["peak_after"] + 0.01
        ), instance
    # The constraint must actually bind somewhere, else the experiment
    # tests nothing.
    assert unconstrained_conflicts > 0
