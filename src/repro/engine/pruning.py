"""MaxScore dynamic pruning.

Exhaustive BM25 (``BM25Scorer``) touches every posting of every query
term.  MaxScore (Turtle & Flood 1995) skips documents that provably
cannot enter the top-k: terms are ordered by their *maximum possible
score contribution*; once the top-k heap's threshold exceeds the summed
bounds of the lowest-impact ("non-essential") terms, documents appearing
**only** in those lists can be skipped entirely, and per-document
evaluation stops early when the remaining bounds cannot lift the score
over the threshold.

This is the query-processing optimization the authors' companion paper
("Hybrid Dynamic Pruning", 2020) studies; here it serves two purposes:
(a) an engine-substrate feature a production system would have, and
(b) a second, cheaper service-cost profile for the serving simulation.

The results are exact: :class:`MaxScoreScorer` returns the same top-k
(same scores) as the exhaustive scorer.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro._validation import check_positive
from repro.engine.index import InvertedIndex
from repro.engine.scoring import BM25Scorer, CollectionStats, ScoredDoc
from repro.engine.text import Query

__all__ = ["MaxScoreScorer"]


class MaxScoreScorer:
    """Top-k BM25 with MaxScore pruning (exact; see module docstring).

    Parameters mirror :class:`BM25Scorer`; the ``work`` counter returned
    by :meth:`search` counts postings *touched* (cursor reads and random
    lookups), making it directly comparable to the exhaustive scorer's
    postings count.
    """

    def __init__(
        self,
        index: InvertedIndex,
        *,
        stats: CollectionStats | None = None,
        k1: float = 1.2,
        b: float = 0.75,
    ) -> None:
        # Reuse the exhaustive scorer's normalization machinery.
        self._exhaustive = BM25Scorer(index, stats=stats, k1=k1, b=b)
        self.index = index
        self.k1 = k1
        self.b = b
        # Per-term score upper bounds, computed once at build time (real
        # engines store these next to the posting lists).
        self._max_score: dict[str, float] = {}
        doc_rows = self._exhaustive._id_to_row
        norm = self._exhaustive._norm
        for term in index.terms():
            plist = index.postings(term)
            rows = np.fromiter(
                (doc_rows[int(d)] for d in plist.doc_ids),
                dtype=np.int64,
                count=len(plist),
            )
            tf = plist.term_freqs.astype(np.float64)
            contrib = (
                self._exhaustive.idf(term) * tf * (k1 + 1.0) / (tf + norm[rows])
            )
            self._max_score[term] = float(contrib.max()) if contrib.size else 0.0

    # ---------------------------------------------------------------- query
    def term_upper_bound(self, term: str) -> float:
        """Maximum score contribution *term* can make to any document."""
        return self._max_score.get(term, 0.0)

    def search(self, query: Query, k: int = 10) -> tuple[list[ScoredDoc], int]:
        """Exact top-*k* with pruning; returns ``(results, postings_touched)``."""
        check_positive("k", k)
        scorer = self._exhaustive
        terms = [t for t in dict.fromkeys(query.terms) if self.index.postings(t)]
        if not terms:
            return [], 0
        # Order by increasing max contribution; prefix sums give the
        # bound of the first s ("non-essential") terms.
        terms.sort(key=self.term_upper_bound)
        bounds = np.array([self.term_upper_bound(t) for t in terms])
        prefix = np.concatenate([[0.0], np.cumsum(bounds)])

        plists = [self.index.postings(t) for t in terms]
        cursors = [0] * len(terms)
        work = 0
        heap: list[tuple[float, int]] = []  # (score, row) min-heap of top-k

        def threshold() -> float:
            return heap[0][0] if len(heap) >= k else 0.0

        # s = number of non-essential terms (their combined bound <= θ).
        while True:
            theta = threshold()
            s = int(np.searchsorted(prefix, theta, side="right")) - 1
            s = min(s, len(terms) - 1)  # at least one essential term
            # Next candidate: min current doc over essential lists.
            candidate = None
            for t in range(s, len(terms)):
                c = cursors[t]
                if c < len(plists[t]):
                    d = int(plists[t].doc_ids[c])
                    if candidate is None or d < candidate:
                        candidate = d
            if candidate is None:
                break

            row = scorer._id_to_row[candidate]
            score = 0.0
            # Essential terms: advance cursors and score.
            for t in range(s, len(terms)):
                plist = plists[t]
                c = cursors[t]
                if c < len(plist) and int(plist.doc_ids[c]) == candidate:
                    tf = float(plist.term_freqs[c])
                    score += (
                        scorer.idf(terms[t])
                        * tf
                        * (self.k1 + 1.0)
                        / (tf + scorer._norm[row])
                    )
                    cursors[t] = c + 1
                    work += 1
            # Non-essential terms, highest bound first, with early exit.
            for t in range(s - 1, -1, -1):
                if score + prefix[t + 1] <= theta:
                    break  # cannot reach the top-k even with all bounds
                plist = plists[t]
                pos = int(np.searchsorted(plist.doc_ids, candidate))
                work += 1
                if pos < len(plist) and int(plist.doc_ids[pos]) == candidate:
                    tf = float(plist.term_freqs[pos])
                    score += (
                        scorer.idf(terms[t])
                        * tf
                        * (self.k1 + 1.0)
                        / (tf + scorer._norm[row])
                    )
            if score > theta or len(heap) < k:
                if len(heap) < k:
                    heapq.heappush(heap, (score, row))
                elif score > heap[0][0]:
                    heapq.heapreplace(heap, (score, row))

        doc_ids = scorer._doc_ids
        out = sorted(
            (ScoredDoc(int(doc_ids[row]), float(sc)) for sc, row in heap),
            key=lambda d: -d.score,
        )
        return out, work
