"""Index-shard descriptions.

A :class:`Shard` is an immutable description of one index partition: its
multi-dimensional resource demand plus the byte size that determines its
migration cost.  Which machine a shard currently lives on is state, held
by :class:`repro.cluster.state.ClusterState`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro._validation import as_demand_array, check_non_negative
from repro.cluster.resources import DEFAULT_SCHEMA, ResourceSchema

__all__ = ["Shard"]


@dataclass(frozen=True)
class Shard:
    """An immutable index-shard description.

    Attributes
    ----------
    id:
        Dense integer identifier; also the shard's index in the cluster's
        assignment array.
    demand:
        Per-dimension resource demand (schema order).  For a search shard
        this is CPU at peak query rate, resident RAM, and postings disk.
    size_bytes:
        Bytes that must cross the network to migrate the shard; the weight
        used by migration-cost terms.  Defaults to the disk demand scaled
        to bytes when the schema has a ``disk`` dimension, else 0.
    replica_of:
        When shards are replicas of a logical shard, the logical id; -1
        for unreplicated shards.  Replica-aware placement constraints (no
        two replicas on one machine) consume this.
    """

    id: int
    demand: np.ndarray
    schema: ResourceSchema = DEFAULT_SCHEMA
    size_bytes: float = -1.0
    replica_of: int = -1

    def __post_init__(self) -> None:
        if self.id < 0:
            raise ValueError(f"shard id must be >= 0, got {self.id}")
        dem = as_demand_array("demand", self.demand, self.schema.dims)
        if not np.any(dem > 0):
            raise ValueError(f"shard demand must be non-zero, got {dem}")
        object.__setattr__(self, "demand", dem)
        if self.size_bytes < 0:
            # Default migration weight: proportional to disk footprint when
            # the schema tracks disk, else to the demand L1 norm.
            if "disk" in self.schema.names:
                default = float(dem[self.schema.index("disk")])
            else:
                default = float(dem.sum())
            object.__setattr__(self, "size_bytes", default)
        else:
            check_non_negative("size_bytes", self.size_bytes)

    def demand_of(self, resource: str) -> float:
        """Demand along a named dimension."""
        return float(self.demand[self.schema.index(resource)])

    @staticmethod
    def uniform(
        count: int,
        demand: Mapping[str, float] | Sequence[float] | float,
        *,
        schema: ResourceSchema = DEFAULT_SCHEMA,
        start_id: int = 0,
    ) -> list["Shard"]:
        """Build *count* identical shards — the common test fixture."""
        if count <= 0:
            raise ValueError(f"count must be > 0, got {count}")
        dem = schema.vector(demand)
        return [Shard(id=start_id + k, demand=dem.copy(), schema=schema) for k in range(count)]
