"""Shared benchmark fixtures.

Each benchmark regenerates one experiment (DESIGN.md §4), asserts its
shape claim, and writes its table to ``benchmarks/results/<name>.txt`` so
the output survives pytest's capture.  ``REPRO_FULL=1`` switches every
benchmark from the fast CI scale to full scale.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import format_table

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture()
def save_table():
    """Fixture: save_table(name, rows, title) — print + persist a table."""

    def _save(name: str, rows, title: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = format_table(rows, title=title)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _save


@pytest.fixture()
def save_figure():
    """Fixture: save_figure(name, text) — print + persist an ASCII figure."""

    def _save(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.figure.txt").write_text(text + "\n")
        print()
        print(text)

    return _save
