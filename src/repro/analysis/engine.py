"""Rule registry and the lint driver.

A rule is a subclass of :class:`Rule` registered with :func:`register`;
the driver (:func:`lint_paths`) walks the target tree, builds one
:class:`~repro.analysis.context.ModuleContext` per ``.py`` file, runs
every (selected) rule over it, drops findings covered by inline
``# repro: allow-<rule>`` suppressions, and returns the survivors in
deterministic (file, line, rule) order.

Interprocedural rules subclass :class:`ProjectRule` instead: they see a
:class:`~repro.analysis.callgraph.Project` — every module at once, plus
the symbol table and call graph built from them — and run after the
per-module pass (:func:`lint_paths` with ``interprocedural=True``, the
default).  Their findings go through the same suppression and ratchet
machinery, keyed by the module each finding lands in.

The engine is deliberately zero-dependency (stdlib ``ast`` only): the
invariants it checks — seeded determinism, simulated-time discipline,
transactional state mutation — are exactly the ones that must hold in
minimal environments where ruff/mypy may not be installed.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from repro.analysis.callgraph import Project
from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding

__all__ = [
    "Rule",
    "ProjectRule",
    "register",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "lint_project",
    "load_contexts",
]


class Rule:
    """Base class for one invariant check.

    Subclasses set :attr:`rule_id` (``REPnnn``), :attr:`slug` (the
    suppression token), :attr:`description`, and implement
    :meth:`check`, yielding findings for one module.  :meth:`applies_to`
    scopes the rule by repo-relative path; the default is all of
    ``src/repro``.
    """

    rule_id: str = ""
    slug: str = ""
    description: str = ""

    def applies_to(self, rel: str) -> bool:
        return rel.startswith("src/repro/")

    def check(self, mod: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, mod: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            file=mod.rel,
            line=getattr(node, "lineno", 0),
            rule_id=self.rule_id,
            message=message,
        )


class ProjectRule(Rule):
    """Base class for one *interprocedural* invariant check.

    Subclasses implement :meth:`check_project`, yielding findings over a
    whole :class:`~repro.analysis.callgraph.Project` (symbol table +
    call graph).  The per-module :meth:`check` hook is a no-op: project
    rules produce nothing when the driver runs single-module
    (``lint_source``, or ``lint_paths(interprocedural=False)``) — which
    is exactly the property the cross-module fixtures in
    ``tests/test_analysis.py`` pin down.

    :meth:`applies_to` filters project findings by the file each one
    lands in, same semantics as for module rules.
    """

    def check(self, mod: ModuleContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: "Project") -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of *cls* to the registry."""
    rule = cls()
    if not rule.rule_id or not rule.slug:
        raise ValueError(f"{cls.__name__} must define rule_id and slug")
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> tuple[Rule, ...]:
    """Registered rules in rule-id order."""
    return tuple(_REGISTRY[k] for k in sorted(_REGISTRY))


def get_rule(rule_id: str) -> Rule:
    return _REGISTRY[rule_id.upper()]


def _iter_py_files(paths: Sequence[Path]) -> Iterator[Path]:
    for path in paths:
        if path.is_dir():
            yield from sorted(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py":
            yield path


def lint_source(
    source: str,
    rel: str,
    *,
    rules: Iterable[Rule] | None = None,
    path: Path | None = None,
) -> list[Finding]:
    """Lint one in-memory module (the unit the fixture tests drive)."""
    mod = ModuleContext(path or Path(rel), rel, source)
    out: list[Finding] = []
    for rule in rules if rules is not None else all_rules():
        if not rule.applies_to(rel):
            continue
        for finding in rule.check(mod):
            if not mod.is_suppressed(finding.line, rule.rule_id, rule.slug):
                out.append(finding)
    return sorted(out)


def load_contexts(
    paths: Sequence[Path], root: Path
) -> tuple[dict[str, ModuleContext], list[Finding]]:
    """Parse every ``.py`` file under *paths* into a ModuleContext keyed
    by repo-relative path; unparseable files become REP000 findings."""
    contexts: dict[str, ModuleContext] = {}
    errors: list[Finding] = []
    for path in _iter_py_files(paths):
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        source = path.read_text(encoding="utf-8")
        try:
            contexts[rel] = ModuleContext(path, rel, source)
        except SyntaxError as exc:  # pragma: no cover - repo parses today
            errors.append(
                Finding(rel, exc.lineno or 0, "REP000", f"syntax error: {exc.msg}")
            )
    return contexts, errors


def _run_project_rules(
    project: Project, rules: Sequence[ProjectRule]
) -> list[Finding]:
    out: list[Finding] = []
    for rule in rules:
        for finding in rule.check_project(project):
            if not rule.applies_to(finding.file):
                continue
            mod = project.context_of(finding.file)
            if mod is not None and mod.is_suppressed(
                finding.line, rule.rule_id, rule.slug
            ):
                continue
            out.append(finding)
    return out


def lint_project(
    sources: Mapping[str, str],
    *,
    rules: Iterable[Rule] | None = None,
) -> list[Finding]:
    """Lint an in-memory multi-module project ``{rel: source}`` — the
    unit the cross-module fixture tests drive.  Runs both the per-module
    and the interprocedural passes."""
    selected = tuple(rules) if rules is not None else all_rules()
    module_rules = [r for r in selected if not isinstance(r, ProjectRule)]
    project_rules = [r for r in selected if isinstance(r, ProjectRule)]
    findings: list[Finding] = []
    contexts: dict[str, ModuleContext] = {}
    for rel in sorted(sources):
        mod = ModuleContext(Path(rel), rel, sources[rel])
        contexts[rel] = mod
        for rule in module_rules:
            if not rule.applies_to(rel):
                continue
            for finding in rule.check(mod):
                if not mod.is_suppressed(finding.line, rule.rule_id, rule.slug):
                    findings.append(finding)
    if project_rules and contexts:
        findings.extend(
            _run_project_rules(Project(contexts.values()), project_rules)
        )
    return sorted(findings)


def lint_paths(
    paths: Sequence[Path],
    root: Path,
    *,
    rules: Iterable[Rule] | None = None,
    interprocedural: bool = True,
) -> list[Finding]:
    """Lint every ``.py`` file under *paths*; findings are repo-relative
    to *root* and sorted (file, line, rule).  With *interprocedural*
    (the default), the whole target is additionally analysed as one
    :class:`~repro.analysis.callgraph.Project` and the
    :class:`ProjectRule` pack runs over its call graph."""
    selected = tuple(rules) if rules is not None else all_rules()
    module_rules = [r for r in selected if not isinstance(r, ProjectRule)]
    project_rules = [r for r in selected if isinstance(r, ProjectRule)]
    contexts, findings = load_contexts(paths, root)
    for rel, mod in contexts.items():
        for rule in module_rules:
            if not rule.applies_to(rel):
                continue
            for finding in rule.check(mod):
                if not mod.is_suppressed(finding.line, rule.rule_id, rule.slug):
                    findings.append(finding)
    if interprocedural and project_rules and contexts:
        findings.extend(
            _run_project_rules(Project(contexts.values()), project_rules)
        )
    return sorted(findings)
