"""Machine descriptions.

A :class:`Machine` is an immutable description of a server: a capacity
vector plus bookkeeping flags.  Mutable placement state (which shards live
where, current loads) lives in :class:`repro.cluster.state.ClusterState`,
so machines can be shared freely between cluster snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

import numpy as np

from repro._validation import as_demand_array
from repro.cluster.resources import DEFAULT_SCHEMA, ResourceSchema

__all__ = ["Machine", "MachineClass"]


@dataclass(frozen=True)
class MachineClass:
    """A hardware class: a named capacity profile machines are stamped from.

    Real datacenters contain a handful of machine generations; the
    datacenter workload generator draws machines from a mix of classes.
    """

    name: str
    capacity: np.ndarray
    schema: ResourceSchema = DEFAULT_SCHEMA

    def __post_init__(self) -> None:
        cap = as_demand_array("capacity", self.capacity, self.schema.dims)
        if np.any(cap <= 0):
            raise ValueError(f"MachineClass capacity must be strictly positive, got {cap}")
        object.__setattr__(self, "capacity", cap)

    def stamp(self, machine_id: int, *, exchange: bool = False) -> "Machine":
        """Create a machine of this class with the given id."""
        return Machine(
            id=machine_id,
            capacity=self.capacity.copy(),
            schema=self.schema,
            cls=self.name,
            exchange=exchange,
        )


@dataclass(frozen=True)
class Machine:
    """An immutable server description.

    Attributes
    ----------
    id:
        Dense integer identifier; also the machine's row in the cluster's
        load matrix.
    capacity:
        Per-dimension capacity vector (schema order).
    schema:
        Resource schema the capacity is expressed in.
    cls:
        Hardware-class label (informational).
    exchange:
        True when this machine was borrowed from the exchange pool — it
        starts vacant and participates in the vacancy-return accounting.
    """

    id: int
    capacity: np.ndarray
    schema: ResourceSchema = DEFAULT_SCHEMA
    cls: str = "default"
    exchange: bool = field(default=False)

    def __post_init__(self) -> None:
        if self.id < 0:
            raise ValueError(f"machine id must be >= 0, got {self.id}")
        cap = as_demand_array("capacity", self.capacity, self.schema.dims)
        if np.any(cap <= 0):
            raise ValueError(f"Machine capacity must be strictly positive, got {cap}")
        object.__setattr__(self, "capacity", cap)

    def with_id(self, new_id: int) -> "Machine":
        """Copy of this machine under a different id (used when appending
        borrowed machines to an existing cluster)."""
        return replace(self, id=new_id)

    def capacity_of(self, resource: str) -> float:
        """Capacity along a named dimension."""
        return float(self.capacity[self.schema.index(resource)])

    @staticmethod
    def homogeneous(
        count: int,
        capacity: Mapping[str, float] | Sequence[float] | float,
        *,
        schema: ResourceSchema = DEFAULT_SCHEMA,
        cls: str = "default",
        start_id: int = 0,
    ) -> list["Machine"]:
        """Build *count* identical machines — the common test fixture."""
        if count <= 0:
            raise ValueError(f"count must be > 0, got {count}")
        cap = schema.vector(capacity)
        return [
            Machine(id=start_id + k, capacity=cap.copy(), schema=schema, cls=cls)
            for k in range(count)
        ]
