"""Synthetic work profiles derived from a cluster snapshot.

The measured :class:`~repro.simulate.workprofile.WorkProfile` is the
gold standard (real postings traversed per query per shard), but the
``repro runtime`` CLI must also run from a bare cluster snapshot with no
engine attached.  :func:`synthetic_profile` builds a profile whose
*expected* per-machine utilization under the requested query rate equals
the snapshot's recorded CPU loads — so the runtime's busy fractions line
up with ``state.utilization()`` up to sampling noise, and hotspots in
the snapshot appear as hotspots in the simulation.
"""

from __future__ import annotations

import numpy as np

from repro._validation import check_non_negative, check_positive
from repro.cluster import ClusterState
from repro.simulate.workprofile import WorkProfile

__all__ = ["synthetic_profile"]


def synthetic_profile(
    state: ClusterState,
    *,
    queries_per_second: float,
    postings_per_cpu_second: float,
    num_queries: int = 64,
    noise: float = 0.25,
    seed: int | None = None,
) -> WorkProfile:
    """Build a per-query work matrix matching *state*'s CPU demand.

    A shard with CPU demand ``d`` (capacity units) should keep its host
    busy for a fraction ``d / capacity`` of every second.  With machine
    speed ``capacity * postings_per_cpu_second`` and ``queries_per_second``
    arrivals, that pins the expected per-query work on shard ``j`` to
    ``demand[j] * postings_per_cpu_second / queries_per_second``; rows
    are that expectation times per-cell lognormal noise with unit mean
    (``noise`` is the log-space sigma, 0 for a deterministic profile).
    """
    check_positive("queries_per_second", queries_per_second)
    check_positive("postings_per_cpu_second", postings_per_cpu_second)
    check_positive("num_queries", num_queries)
    check_non_negative("noise", noise)
    if noise > 0 and seed is None:
        raise ValueError(
            "seed is required when noise > 0 — thread the configured seed "
            "(a silent default would fix every 'random' profile to one "
            "realization)"
        )
    cpu_idx = state.schema.index("cpu") if "cpu" in state.schema.names else 0
    per_query = (
        state.demand[:, cpu_idx] * postings_per_cpu_second / queries_per_second
    )
    work = np.tile(per_query, (int(num_queries), 1))
    if noise > 0:
        rng = np.random.default_rng(seed)
        # mean-1 lognormal: E[exp(N(-s^2/2, s^2))] = 1
        factors = rng.lognormal(
            mean=-0.5 * noise * noise, sigma=noise, size=work.shape
        )
        work = work * factors
    return WorkProfile(work)
