"""Event-heap simulation kernel: one clock for every simulated process.

The repo historically modelled time three different ways — the serving
DES precomputed constant machine speeds for a whole run, the wave
scheduler ordered moves into ordinals with no clock, and the online loop
rebalanced instantaneously between epochs.  This kernel unifies them:
a :class:`Runtime` owns a :class:`SimClock` and an :class:`EventQueue`,
and **processes** (anything implementing :class:`Process`) schedule
callbacks on it.  Query arrivals, migration waves, workload drift and
rebalancing decisions all interleave on the same simulated timeline, so
transient effects (a machine derated while a shard copy is in flight,
queries arriving mid-migration) are resolved event-by-event instead of
window-averaged.

Determinism contract: events fire in ``(time, scheduling order)`` order —
ties are FIFO by when they were scheduled — and nothing in the kernel
consults wall-clock time or ambient RNG state, so a run is a pure
function of its processes' inputs.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Protocol, Tuple

from repro import obs

__all__ = ["Callback", "SimClock", "EventQueue", "Process", "Runtime"]

#: An event handler; receives the runtime whose clock is at the event time.
Callback = Callable[["Runtime"], None]


class SimClock:
    """Simulated time in seconds; advanced only by the event loop."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now: float = 0.0


class EventQueue:
    """Min-heap of ``(time, seq, callback)``; FIFO among equal times."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callback]] = []
        self._seq = 0

    def push(self, time: float, fn: Callback) -> None:
        heapq.heappush(self._heap, (time, self._seq, fn))
        self._seq += 1

    def pop(self) -> Tuple[float, int, Callback]:
        return heapq.heappop(self._heap)

    def peek_time(self) -> float | None:
        """Time of the next event, or None when the queue is empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)


class Process(Protocol):
    """Anything that schedules its first event(s) when added to a runtime."""

    def start(self, rt: "Runtime") -> None: ...


class Runtime:
    """The simulation kernel: clock + event queue + registered processes.

    Usage::

        rt = Runtime()
        rt.add(QueryArrivalProcess(...))
        rt.add(MigrationExecutor(...))
        rt.run()

    ``run`` drains the event queue in time order; each callback may
    schedule further events via :meth:`at` / :meth:`after`.  Events are
    never cancelled — processes that stop simply stop rescheduling
    themselves (the wave executor and the arrival process both follow
    this pattern), which keeps the kernel state monotone and replayable.
    """

    def __init__(self) -> None:
        self.clock = SimClock()
        self.events = EventQueue()
        self._processes: List[Process] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    def add(self, process: Process) -> Process:
        """Register *process* and let it schedule its initial events."""
        self._processes.append(process)
        process.start(self)
        return process

    def at(self, time: float, fn: Callback) -> None:
        """Schedule *fn* at absolute simulated *time* (>= now)."""
        if time < self.clock.now:
            raise ValueError(
                f"cannot schedule an event at t={time} before now={self.clock.now}"
            )
        self.events.push(time, fn)

    def after(self, delay: float, fn: Callback) -> None:
        """Schedule *fn* after *delay* seconds of simulated time."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.events.push(self.clock.now + delay, fn)

    def run(self, until: float | None = None) -> float:
        """Process events in time order; returns the final clock value.

        With *until*, events scheduled strictly after it are left on the
        queue and the clock is advanced to *until* exactly (useful for
        bounded horizons with self-rescheduling processes).
        """
        tracer = obs.current().tracer
        with tracer.span("runtime.run", until=until) as span:
            processed = 0
            while len(self.events):
                next_time = self.events.peek_time()
                if next_time is None or (until is not None and next_time > until):
                    break
                time, _, fn = self.events.pop()
                self.clock.now = time
                fn(self)
                processed += 1
            if until is not None and until > self.clock.now:
                self.clock.now = until
            span.set("events", processed)
            span.set("end_time", self.clock.now)
        return self.clock.now
