"""Destroy operators for the LNS.

A destroy operator removes a set of shards from the working state (they
become unassigned); the paired repair operator reinserts them.  Each
operator encodes one intuition about where the current assignment is
wrong:

* :func:`random_removal` — diversification.
* :func:`worst_machine_removal` — the peak machine is by definition part
  of the problem; rip shards off it.
* :func:`shaw_removal` — related shards (similar demand shape) are likely
  to be mutually exchangeable; removing a related group lets the repair
  re-pack them jointly.
* :func:`vacancy_removal` — empty the in-service machine that is closest
  to vacant, minting a returnable machine (the operator that implements
  the exchange semantics inside the search; ablated in E10).
* :class:`BudgetLocalityBias` — wrapper installed by SRA when a bounded
  :class:`~repro.algorithms.budget.MigrationBudget` is configured: at
  the budget boundary, removal is redirected to already-moved shards so
  the search explores *within* budget instead of generating candidates
  the best filter must veto.

Every operator has the uniform signature
``op(state, rng, quantity) -> list[int]`` and leaves removed shards
unassigned in *state*.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.algorithms.budget import MigrationBudget
from repro.cluster import ClusterState

__all__ = [
    "DestroyOperator",
    "random_removal",
    "worst_machine_removal",
    "shaw_removal",
    "vacancy_removal",
    "exchange_swap_removal",
    "BudgetLocalityBias",
    "DEFAULT_DESTROY_OPS",
]


class DestroyOperator(Protocol):
    """Signature of a destroy operator."""

    __name__: str

    def __call__(
        self, state: ClusterState, rng: np.random.Generator, quantity: int
    ) -> list[int]: ...


def _remove(state: ClusterState, shard_ids: np.ndarray | list[int]) -> list[int]:
    out = [int(j) for j in shard_ids]
    state.unassign_many(out)
    return out


def random_removal(
    state: ClusterState, rng: np.random.Generator, quantity: int
) -> list[int]:
    """Remove *quantity* uniformly random assigned shards."""
    assigned = np.flatnonzero(state.assignment_view() >= 0)
    if assigned.size == 0:
        return []
    take = min(quantity, assigned.size)
    return _remove(state, rng.choice(assigned, size=take, replace=False))


def worst_machine_removal(
    state: ClusterState, rng: np.random.Generator, quantity: int
) -> list[int]:
    """Remove the largest shards from the highest-peak machines.

    Equivalent to walking machines in decreasing peak utilization and
    taking each one's largest shards until *quantity* are collected, but
    implemented as one top-K selection over the peak cache plus one
    lexsort over the shards of the selected machines — no per-machine
    Python loop, so the cost scales with the shards actually examined
    rather than the fleet size.
    """
    peaks = state.machine_peak_utilization_view()
    counts = state.shard_counts_view()
    m = state.num_machines
    # Grow K until the K hottest machines hold enough shards (almost
    # always the first try: quantity is capped and hot machines are full).
    k = min(4, m)
    while True:
        if k < m:
            top = np.argpartition(-peaks, k - 1)[:k]
        else:
            top = np.arange(m)
        if int(counts[top].sum()) >= quantity or k == m:
            break
        k = min(4 * k, m)
    # Rank selected machines by peak; unselected machines rank last.
    top = top[np.argsort(-peaks[top], kind="stable")]
    rank = np.full(m, m, dtype=np.int64)
    rank[top] = np.arange(top.size)
    assign = state.assignment_view()
    shard_rank = np.where(assign >= 0, rank[np.maximum(assign, 0)], m)
    sel = np.flatnonzero(shard_rank < m)
    if sel.size == 0:
        return []
    mass = state.demand[sel].sum(axis=1)
    # Primary key: machine rank (hotter first); secondary: largest shards.
    order = np.lexsort((-mass, shard_rank[sel]))
    return _remove(state, sel[order[:quantity]])


def shaw_removal(
    state: ClusterState, rng: np.random.Generator, quantity: int
) -> list[int]:
    """Remove a seed shard and its most similar peers (Shaw relatedness).

    Similarity is the L1 distance between normalized demand vectors;
    related shards are interchangeable in a packing, so re-inserting them
    together lets the repair shuffle them across machines.
    """
    assigned = np.flatnonzero(state.assignment_view() >= 0)
    if assigned.size == 0:
        return []
    seed = int(rng.choice(assigned))
    norm = state.normalized_demand()
    base = norm if assigned.size == state.num_shards else norm[assigned]
    dist = np.abs(base - norm[seed]).sum(axis=1)
    take = min(quantity, assigned.size)
    if take < assigned.size:
        # Select the `take` nearest, then order just those by distance —
        # O(n + take log take) instead of a full sort.
        part = np.argpartition(dist, take - 1)[:take]
        nearest = assigned[part[np.argsort(dist[part], kind="stable")]]
    else:
        nearest = assigned[np.argsort(dist, kind="stable")]
    return _remove(state, nearest)


def vacancy_removal(
    state: ClusterState, rng: np.random.Generator, quantity: int
) -> list[int]:
    """Empty the non-vacant machine with the least total demand.

    All of its shards are removed (up to *quantity*; if the machine holds
    more, its smallest shards stay, which still usually leads the repair
    to finish the job next round).  Prefers in-service machines over
    borrowed ones: emptying an in-service machine is what enables the
    exchange to return it.
    """
    occupied = np.flatnonzero(state.shard_counts_view() > 0)
    if occupied.size == 0:
        return []
    # Prefer in-service machines, then least loaded (L1 of utilization).
    load_score = (state.loads[occupied] / state.capacity[occupied]).sum(axis=1)
    is_exchange = state.exchange_mask[occupied]
    order = np.lexsort((load_score, is_exchange))
    target = int(occupied[order[0]])
    members = state.machine_shards(target)
    # Largest first so a partial removal still drains most of the load.
    members = members[np.argsort(-state.demand[members].sum(axis=1))]
    return _remove(state, members[:quantity])


def exchange_swap_removal(
    state: ClusterState, rng: np.random.Generator, quantity: int
) -> list[int]:
    """Swap which machine is *designated for return*.

    SRA keeps ``R`` machines blocked (empty, to be handed back).  This
    operator unblocks a random blocked machine and blocks the open
    machine with the least load instead, removing all of that machine's
    shards so the repair can re-pack them — the move that lets the search
    *exchange* a fresh borrowed machine for a drained in-service one.

    No-op (empty removal) when nothing is blocked.  ``quantity`` is
    ignored: correctness requires removing every shard of the newly
    blocked machine.
    """
    blocked = np.flatnonzero(state.blocked_mask & ~state.offline_mask)
    if blocked.size == 0:
        return []
    open_machines = np.flatnonzero(~state.blocked_mask)
    # Candidate to close: open machine with least utilization mass
    # (cheapest to drain).  Vacant open machines are ideal.
    score = (state.loads[open_machines] / state.capacity[open_machines]).sum(axis=1)
    close = int(open_machines[np.argmin(score)])
    release = int(rng.choice(blocked))
    if close == release:
        return []
    members = _remove(state, state.machine_shards(close))
    state.unblock_machine(release)
    state.block_machine(close)
    return members


class BudgetLocalityBias:
    """Move-budget locality wrapper around a destroy operator.

    While the working state's placement delta from *reference* is still
    inside *budget*, the wrapped operator runs unchanged.  At or beyond
    the boundary (:meth:`MigrationBudget.exhausted` over the moved-shard
    count and their summed index sizes) removal is redirected to the
    *already-moved* shards, drawn uniformly by the same rng: a moved
    shard's reinsertion can only keep or shrink the move set, so the
    search walks the budget boundary — swapping which shards spend the
    budget — instead of bouncing off the best-filter veto.

    The byte side of the boundary check uses raw moved-shard sizes (no
    staging hops); the authoritative byte cap is enforced by the best
    filter against the scheduled plan.
    """

    def __init__(
        self,
        base: DestroyOperator,
        reference: np.ndarray,
        sizes: np.ndarray,
        budget: MigrationBudget,
    ) -> None:
        self.base = base
        self.reference = np.asarray(reference, dtype=np.int64)
        self.sizes = np.asarray(sizes, dtype=np.float64)
        self.budget = budget
        self.__name__ = f"budget[{base.__name__}]"

    def __call__(
        self, state: ClusterState, rng: np.random.Generator, quantity: int
    ) -> list[int]:
        moved = np.flatnonzero(state.assignment_view() != self.reference)
        if moved.size == 0 or not self.budget.exhausted(
            int(moved.size), float(self.sizes[moved].sum())
        ):
            return self.base(state, rng, quantity)
        take = min(quantity, int(moved.size))
        return _remove(state, rng.choice(moved, size=take, replace=False))


#: Default operator portfolio of SRA.
DEFAULT_DESTROY_OPS: tuple[DestroyOperator, ...] = (
    random_removal,
    worst_machine_removal,
    shaw_removal,
    vacancy_removal,
    exchange_swap_removal,
)
