"""Tests for the datacenter snapshot generator and experiment suites."""

import numpy as np
import pytest

from repro.workloads import (
    DatacenterConfig,
    datacenter_suite,
    generate_datacenter,
    scaling_suite,
    small_suite,
    synthetic_suite,
    tight_suite,
)


class TestDatacenterConfig:
    def test_defaults_valid(self):
        DatacenterConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_machines": 0},
            {"target_utilization": 0.0},
            {"drift": 1.5},
            {"machine_mix": ()},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DatacenterConfig(**kwargs)


class TestGenerateDatacenter:
    def test_shapes_and_assignment(self):
        state = generate_datacenter(DatacenterConfig(num_machines=30, shards_per_machine=6))
        assert state.num_machines == 30
        assert state.num_shards == 180
        assert state.is_fully_assigned()

    def test_determinism(self):
        cfg = DatacenterConfig(num_machines=20, shards_per_machine=5, seed=9)
        a, b = generate_datacenter(cfg), generate_datacenter(cfg)
        np.testing.assert_allclose(a.demand, b.demand)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_heterogeneous_fleet(self):
        state = generate_datacenter(DatacenterConfig(num_machines=60, seed=2))
        classes = {m.cls for m in state.machines}
        assert len(classes) >= 2  # several hardware generations present

    def test_tightness_close_to_target(self):
        cfg = DatacenterConfig(num_machines=40, target_utilization=0.8, seed=1)
        state = generate_datacenter(cfg)
        assert 0.6 <= state.mean_utilization().max() <= 0.85

    def test_drift_creates_imbalance(self):
        calm = generate_datacenter(DatacenterConfig(num_machines=40, drift=0.0, seed=3))
        drifted = generate_datacenter(DatacenterConfig(num_machines=40, drift=0.5, seed=3))
        assert (
            drifted.machine_peak_utilization().std()
            > calm.machine_peak_utilization().std()
        )

    def test_zero_drift_is_roughly_balanced(self):
        state = generate_datacenter(DatacenterConfig(num_machines=40, drift=0.0, seed=4))
        peak = state.machine_peak_utilization()
        assert peak.max() - peak.min() < 0.30

    def test_shard_sizes_are_disk_bytes(self):
        state = generate_datacenter(DatacenterConfig(num_machines=20, seed=5))
        disk_idx = state.schema.index("disk")
        np.testing.assert_allclose(state.sizes, state.demand[:, disk_idx])


class TestSuites:
    def test_small_suite_sizes(self):
        suite = small_suite(seeds=(0,))
        assert len(suite) == 3
        assert all(state.num_machines <= 8 for _, state in suite)

    def test_synthetic_suite_covers_dists_and_utils(self):
        suite = synthetic_suite(utilizations=(0.6,), seeds=(0,), num_machines=10)
        names = [name for name, _ in suite]
        assert any("uniform" in n for n in names)
        assert any("zipf" in n for n in names)

    def test_tight_suite_is_tight(self):
        for _, state in tight_suite(seeds=(0,)):
            assert state.mean_utilization().max() > 0.8

    def test_datacenter_suite(self):
        suite = datacenter_suite(seeds=(0,))
        assert len(suite) == 2
        for name, state in suite:
            assert name.startswith("dc-")
            assert state.is_fully_assigned()

    def test_scaling_suite_grows(self):
        suite = scaling_suite(sizes=((10, 5), (20, 5)))
        assert suite[0][1].num_shards < suite[1][1].num_shards

    def test_suites_are_deterministic(self):
        a = synthetic_suite(utilizations=(0.6,), seeds=(0,), num_machines=10)
        b = synthetic_suite(utilizations=(0.6,), seeds=(0,), num_machines=10)
        for (_, sa), (_, sb) in zip(a, b, strict=True):
            np.testing.assert_array_equal(sa.assignment, sb.assignment)
