"""Shared exchange-machine pool: lend, rebalance, settle."""

from repro.pool.manager import MachinePool, PoolEpisode, rebalance_with_pool

__all__ = ["MachinePool", "PoolEpisode", "rebalance_with_pool"]
