"""Tests for the shared exchange-machine pool."""

import numpy as np
import pytest

from repro.algorithms import AlnsConfig, NoopRebalancer, SRA, SRAConfig
from repro.cluster import Machine
from repro.pool import MachinePool, rebalance_with_pool
from repro.workloads import SyntheticConfig, generate, make_exchange_machines


def tight_state(seed=0):
    return generate(
        SyntheticConfig(
            num_machines=16,
            shards_per_machine=6,
            target_utilization=0.85,
            placement_skew=0.5,
            max_shard_fraction=0.35,
            seed=seed,
        )
    )


def quick_sra(iterations=300, seed=1):
    return SRA(SRAConfig(alns=AlnsConfig(iterations=iterations, seed=seed)))


class TestMachinePool:
    def test_inventory_accounting(self):
        pool = MachinePool(Machine.homogeneous(3, 10.0))
        assert pool.size == 3
        lent = pool.lend(2)
        assert len(lent) == 2 and pool.size == 1
        assert all(m.exchange for m in lent)
        pool.accept(lent)
        assert pool.size == 3

    def test_lend_largest_first(self):
        small = Machine(id=0, capacity=np.full(3, 5.0))
        big = Machine(id=1, capacity=np.full(3, 50.0))
        pool = MachinePool([small, big])
        lent = pool.lend(1)
        np.testing.assert_allclose(lent[0].capacity, 50.0)

    def test_overlend_rejected(self):
        pool = MachinePool(Machine.homogeneous(1, 10.0))
        with pytest.raises(ValueError, match="cannot lend"):
            pool.lend(2)

    def test_total_capacity(self):
        pool = MachinePool(Machine.homogeneous(2, 10.0))
        np.testing.assert_allclose(pool.total_capacity(), 20.0)

    def test_empty_pool(self):
        pool = MachinePool()
        assert pool.size == 0
        assert pool.lend(0) == []


class TestRebalanceWithPool:
    def test_pool_size_conserved_on_success(self):
        state = tight_state()
        pool = MachinePool(make_exchange_machines(state, 4))
        slim, result = rebalance_with_pool(pool, state, quick_sra(), budget=2)
        assert result.feasible
        assert pool.size == 4
        assert slim.num_machines == state.num_machines
        assert slim.peak_utilization() < state.peak_utilization()

    def test_exchange_changes_pool_composition(self):
        state = tight_state()
        before = {id(m) for m in make_exchange_machines(state, 4)}
        pool = MachinePool(make_exchange_machines(state, 4))
        initial_caps = sorted(float(m.capacity.sum()) for m in pool.inventory())
        rebalance_with_pool(pool, state, quick_sra(600), budget=2)
        episode = pool.history[-1]
        if episode.exchanged > 0:
            # Returned machines came from the cluster: composition changed.
            after_caps = sorted(float(m.capacity.sum()) for m in pool.inventory())
            assert pool.size == 4
            # (capacities may coincide; the audit trail is authoritative)
            assert episode.returned == 2

    def test_infeasible_episode_restores_pool(self):
        # A rebalancer that proposes nothing cannot satisfy R=budget>0
        # vacancies on a fully packed cluster -> infeasible episode.
        state = tight_state()
        pool = MachinePool(make_exchange_machines(state, 2))

        class Stubborn(NoopRebalancer):
            pass

        slim, result = rebalance_with_pool(pool, state, Stubborn(), budget=2)
        # Noop keeps borrowed machines vacant: contract satisfiable, so it
        # is actually feasible — returned machines are the lent ones.
        assert pool.size == 2
        np.testing.assert_array_equal(slim.assignment, state.assignment)

    def test_history_recorded(self):
        state = tight_state()
        pool = MachinePool(make_exchange_machines(state, 2))
        rebalance_with_pool(pool, state, quick_sra(), budget=1, label="prod-7")
        assert len(pool.history) == 1
        ep = pool.history[0]
        assert ep.cluster_label == "prod-7"
        assert ep.lent == 1
        assert ep.pool_size_after == 2

    def test_sequential_episodes_across_clusters(self):
        pool = MachinePool(make_exchange_machines(tight_state(), 3))
        for seed in (0, 1, 2):
            state = tight_state(seed)
            slim, result = rebalance_with_pool(
                pool, state, quick_sra(seed=seed), budget=2, label=f"c{seed}"
            )
            assert pool.size == 3  # conserved after every episode
        assert len(pool.history) == 3
        assert all(ep.feasible for ep in pool.history)
