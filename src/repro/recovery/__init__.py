"""Machine-failure recovery on top of the rebalancing machinery."""

from repro.recovery.planner import RecoveryPlanner, RecoveryResult, fail_machine

__all__ = ["fail_machine", "RecoveryPlanner", "RecoveryResult"]
