"""Shared experiment helpers."""

from __future__ import annotations

from repro.algorithms import AlnsConfig, SRA, SRAConfig
from repro.cluster import ClusterState, ExchangeLedger
from repro.workloads import make_exchange_machines

__all__ = ["make_sra", "run_sra_with_exchange"]


def make_sra(iterations: int, seed: int = 0, **sra_kwargs) -> SRA:
    """SRA with the experiment-standard configuration."""
    return SRA(SRAConfig(alns=AlnsConfig(iterations=iterations, seed=seed), **sra_kwargs))


def run_sra_with_exchange(
    state: ClusterState,
    budget: int,
    *,
    iterations: int,
    seed: int = 0,
    required_returns: int | None = None,
    **sra_kwargs,
):
    """Borrow *budget* machines, run SRA, return (result, grown, ledger)."""
    grown, ledger = ExchangeLedger.borrow(
        state,
        make_exchange_machines(state, budget),
        required_returns=required_returns,
    )
    result = make_sra(iterations, seed, **sra_kwargs).rebalance(grown, ledger)
    return result, grown, ledger
