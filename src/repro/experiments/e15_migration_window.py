"""E15 — serving latency through the migration window (extension).

The move penalty λ of the objective exists because migrating is not
free: during the window, transferring machines serve slower.  This
experiment runs SRA at two λ settings (balance-greedy vs move-frugal)
on the same engine-derived cluster and reports the three-phase latency
(before / during / after) plus the window length.

Claims: during-migration tail latency is worse than before; the final
placement is much better; a larger λ shortens the window and softens the
during-phase penalty at a small cost in final balance.

Two views of the same question:

* ``mode="static"`` — the original three-phase runs with the window
  derating averaged over the makespan;
* ``mode="timeline"`` — one continuous run on the event runtime with the
  migration kicked off a quarter of the way in: per-wave latency rows
  (queries arriving while that wave's transfers are in flight) plus
  pooled ``window`` / ``outside`` rows.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import AlnsConfig, ObjectiveWeights, SRA, SRAConfig
from repro.cluster import ClusterState, ExchangeLedger, Machine
from repro.engine import CorpusConfig, ShardedIndex, generate_corpus, generate_queries
from repro.experiments.e8_latency import _biased_feasible_placement
from repro.experiments.harness import register
from repro.migration import BandwidthModel
from repro.simulate import (
    ServingConfig,
    WorkProfile,
    simulate_migration_timeline,
    simulate_migration_window,
)
from repro.workloads import make_exchange_machines

_QPS = 60.0
_PPCS = 2e5


@register("e15")
def run(fast: bool = True, *, placement_seed: int = 7) -> list[dict]:
    num_docs = 4000 if fast else 20000
    num_shards = 24 if fast else 48
    num_machines = 6 if fast else 12
    iterations = 500 if fast else 2000

    cfg = CorpusConfig(num_docs=num_docs, vocab_size=4000, seed=3)
    docs = generate_corpus(cfg)
    index = ShardedIndex.build(docs, num_shards)
    queries = generate_queries(cfg, 150 if fast else 500)
    profile = WorkProfile.measure(index, queries)
    shards = index.to_cluster_shards(
        queries, queries_per_second=_QPS, postings_per_cpu_second=_PPCS
    )
    demand = np.stack([s.demand for s in shards])
    capacity = demand.sum(axis=0) / (num_machines * 0.75)
    machines = Machine.homogeneous(
        num_machines, {n: float(c) for n, c in zip(shards[0].schema.names, capacity, strict=True)}
    )
    rng = np.random.default_rng(placement_seed)
    weights = rng.dirichlet(np.full(num_machines, 1.5))
    assign = _biased_feasible_placement(demand, capacity, weights, rng)
    state = ClusterState(machines, shards, assign)

    serving = ServingConfig(
        arrival_rate=_QPS,
        duration=40.0 if fast else 120.0,
        postings_per_cpu_second=_PPCS,
        seed=11,
    )
    # Engine shard sizes are index bytes; the bandwidth model is bytes/s.
    # A deliberately slow replication NIC (so the window is non-trivial
    # relative to byte volume) — production would throttle similarly.
    net = BandwidthModel(bandwidth=5e5)

    rows = []
    for label, penalty in (("balance-greedy λ=0.002", 0.002), ("move-frugal λ=0.30", 0.30)):
        grown, ledger = ExchangeLedger.borrow(state, make_exchange_machines(state, 1))
        sra = SRA(
            SRAConfig(
                alns=AlnsConfig(iterations=iterations, seed=1),
                weights=ObjectiveWeights(move_penalty=penalty),
            )
        )
        result = sra.rebalance(grown, ledger)
        report = simulate_migration_window(
            grown,
            result.target_assignment,
            result.plan,
            profile,
            serving,
            bandwidth=net,
            transfer_overhead=0.3,
            shard_to_engine_shard=list(range(num_shards)),
        )
        for phase_row in report.rows():
            rows.append(
                {
                    "variant": label,
                    "mode": "static",
                    **phase_row,
                    "moves": result.num_moves,
                    "window_s": report.makespan_seconds,
                }
            )
        timeline = simulate_migration_timeline(
            grown,
            result.target_assignment,
            result.plan,
            profile,
            serving,
            bandwidth=net,
            transfer_overhead=0.3,
            migration_start=0.25 * serving.duration,
            shard_to_engine_shard=list(range(num_shards)),
        )
        for phase_row in timeline.rows():
            rows.append(
                {
                    "variant": label,
                    "mode": "timeline",
                    **phase_row,
                    "moves": result.num_moves,
                    "window_s": timeline.migration_end - timeline.migration_start,
                }
            )
    return rows
