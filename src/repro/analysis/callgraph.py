"""Cross-module symbol table and call graph for ``src/repro``.

:class:`Project` indexes every module the linter sees — functions,
classes, methods, module-level function aliases — and resolves each
``ast.Call`` to a callee where static resolution is honest:

* **imports** — through :class:`~repro.analysis.context.ModuleContext`'s
  alias table (``from repro.x import helper`` / ``import repro.x as y``),
  so a call in ``repro.a`` binds to the definition in ``repro.x``;
* **methods via class-attribute lookup** — ``self.m()`` and ``cls.m()``
  bind through the enclosing class (and its resolvable bases);
  ``obj.m()`` binds when ``obj``'s class is locally inferable (annotated
  parameter, ``obj = ClassName(...)`` constructor assignment, or a
  ``self.attr`` whose class attribute was assigned one of those), with a
  guarded unique-name fallback for otherwise-unresolvable receivers;
* **first-order function values** — ``g = helper; g(...)`` binds through
  a per-function alias pass, and ``ClassName(...)`` binds to
  ``ClassName.__init__`` so constructor keyword arguments participate in
  interprocedural taint (REP008's seed laundering check).

Soundness limits (a *static* call graph of a dynamic language is always
a bargain; docs/ARCHITECTURE.md spells the terms out): higher-order
calls through containers or callbacks, monkey-patching, and
``getattr``-style dynamic dispatch produce **no** edge — rules built on
the graph are therefore best-effort detectors, not verifiers.  The
unique-method fallback refuses ubiquitous method names (``copy``,
``run``, ``close``…) so numpy/stdlib receivers cannot generate junk
edges that would poison the lock-discipline fixpoint.

Everything is built from modules **sorted by repo-relative path**, so
the graph — and every finding derived from it — is byte-identical
regardless of filesystem enumeration order (pinned by a hypothesis
property in ``tests/test_callgraph.py``).
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.analysis.context import ModuleContext

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "CallSite",
    "CallGraph",
    "Project",
    "module_name",
]

#: Method names too common across numpy/stdlib objects for the
#: unique-name fallback to be trustworthy.
_FALLBACK_DENYLIST = frozenset(
    {
        "add", "append", "clear", "close", "copy", "count", "extend", "get",
        "index", "items", "join", "keys", "max", "mean", "min", "open",
        "pop", "read", "remove", "run", "sort", "split", "spawn", "sum",
        "update", "values", "write",
    }
)


def module_name(rel: str) -> str:
    """Dotted module name of a repo-relative path.

    ``src/repro/algorithms/lns.py`` → ``repro.algorithms.lns``;
    ``src/repro/cluster/__init__.py`` → ``repro.cluster``.  Paths not
    under ``src/`` keep their stem-derived name, which is enough for
    fixture projects in tests.
    """
    parts = rel.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition in the project."""

    qualname: str
    module_rel: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    lineno: int
    #: Qualname of the defining class, or None for plain functions.
    cls: str | None = None
    #: Positional parameter names in order (including ``self``).
    params: tuple[str, ...] = ()
    #: Every keyword-addressable parameter name.
    kw_params: frozenset[str] = frozenset()


@dataclass
class ClassInfo:
    """One class definition plus what the rules need from it."""

    qualname: str
    module_rel: str
    node: ast.ClassDef
    #: Resolved (dotted) base-class names, unresolved text otherwise.
    bases: tuple[str, ...] = ()
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr> = <expr>`` assignments anywhere in the class body,
    #: in source order — the flow-insensitive attribute value table the
    #: taint rules and receiver typing read.
    attr_values: dict[str, list[ast.expr]] = field(default_factory=dict)


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge."""

    caller: str  #: qualname of the calling function, or ``<rel>::<module>``
    callee: str  #: qualname of the resolved callee
    module_rel: str
    node: ast.Call
    lineno: int
    #: Callee parameter name -> argument expression, for the arguments
    #: that map statically (no ``*args`` spill, no ``**kwargs``).
    args: Mapping[str, ast.expr] = field(default_factory=dict)


class CallGraph:
    """The resolved call sites plus caller/callee indexes."""

    def __init__(self, sites: Iterable[CallSite]) -> None:
        self.sites: tuple[CallSite, ...] = tuple(sites)
        self._by_callee: dict[str, list[CallSite]] = {}
        self._by_caller: dict[str, list[CallSite]] = {}
        for site in self.sites:
            self._by_callee.setdefault(site.callee, []).append(site)
            self._by_caller.setdefault(site.caller, []).append(site)

    def callers_of(self, qualname: str) -> tuple[CallSite, ...]:
        return tuple(self._by_callee.get(qualname, ()))

    def callees_of(self, qualname: str) -> tuple[CallSite, ...]:
        return tuple(self._by_caller.get(qualname, ()))

    def to_json(self) -> dict[str, object]:
        """Deterministic JSON document (sorted nodes and edges)."""
        edges = sorted(
            {
                (s.caller, s.callee, s.module_rel, s.lineno)
                for s in self.sites
            }
        )
        nodes = sorted({s.caller for s in self.sites} | {s.callee for s in self.sites})
        return {
            "version": 1,
            "nodes": nodes,
            "edges": [
                {"caller": c, "callee": e, "file": f, "line": ln}
                for c, e, f, ln in edges
            ],
        }

    def to_dot(self) -> str:
        """Graphviz rendering (deduplicated caller->callee edges)."""
        lines = ["digraph callgraph {", "  rankdir=LR;", "  node [shape=box];"]
        for caller, callee in sorted({(s.caller, s.callee) for s in self.sites}):
            lines.append(f'  "{caller}" -> "{callee}";')
        lines.append("}")
        return "\n".join(lines) + "\n"


class Project:
    """Cross-module analysis context (see module docstring)."""

    def __init__(self, contexts: Iterable[ModuleContext]) -> None:
        #: rel -> context, in sorted-rel order (determinism anchor).
        self.modules: dict[str, ModuleContext] = {
            mod.rel: mod for mod in sorted(contexts, key=lambda m: m.rel)
        }
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: Module-level ``name = function`` aliases: dotted alias -> qualname.
        self._value_aliases: dict[str, str] = {}
        #: method name -> qualnames of classes defining it (fallback index).
        self._method_index: dict[str, list[str]] = {}
        self._env_cache: dict[str, dict[str, str]] = {}
        #: (class, attr) frames currently being typed (cycle guard).
        self._typing_stack: set[tuple[str, str]] = set()
        #: Re-export table: ``repro.simulate.nonhomogeneous_arrivals`` ->
        #: ``repro.simulate.traces.nonhomogeneous_arrivals`` (built from
        #: every module's import aliases, so package ``__init__``
        #: re-exports resolve to the defining module).
        self._export_aliases: dict[str, str] = {}
        for mod in self.modules.values():
            self._index_module(mod)
        self._resolve_value_aliases()
        self.graph = CallGraph(self._build_sites())

    @classmethod
    def from_sources(cls, sources: Mapping[str, str]) -> "Project":
        """Build a project from ``{rel: source}`` (the fixture-test door)."""
        from pathlib import Path

        return cls(
            ModuleContext(Path(rel), rel, text) for rel, text in sources.items()
        )

    # ------------------------------------------------------------- indexing
    def _index_module(self, mod: ModuleContext) -> None:
        modname = module_name(mod.rel)
        for local, origin in mod.aliases.items():
            if "." in origin:
                self._export_aliases[f"{modname}.{local}"] = origin
        for stmt in mod.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(mod, stmt, f"{modname}.{stmt.name}", None)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(mod, stmt, f"{modname}.{stmt.name}")
            elif isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Name):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        origin = mod.resolve(stmt.value)
                        if origin is not None:
                            self._value_aliases[f"{modname}.{target.id}"] = (
                                origin
                                if "." in origin
                                else f"{modname}.{origin}"
                            )

    def _index_function(
        self,
        mod: ModuleContext,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
        cls: str | None,
    ) -> None:
        args = node.args
        params = tuple(a.arg for a in (*args.posonlyargs, *args.args))
        kw_params = frozenset(params) | {a.arg for a in args.kwonlyargs}
        self.functions[qualname] = FunctionInfo(
            qualname=qualname,
            module_rel=mod.rel,
            node=node,
            lineno=node.lineno,
            cls=cls,
            params=params,
            kw_params=kw_params,
        )
        # Nested defs are indexed (callable by bare name from the
        # enclosing function) but not exported as module attributes.
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(mod, stmt, f"{qualname}.{stmt.name}", cls)

    def _index_class(self, mod: ModuleContext, node: ast.ClassDef, qualname: str) -> None:
        bases: list[str] = []
        for base in node.bases:
            resolved = mod.resolve(base)
            if resolved is not None:
                bases.append(
                    resolved
                    if "." in resolved
                    else f"{module_name(mod.rel)}.{resolved}"
                )
        info = ClassInfo(
            qualname=qualname, module_rel=mod.rel, node=node, bases=tuple(bases)
        )
        self.classes[qualname] = info
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                method_qualname = f"{qualname}.{stmt.name}"
                self._index_function(mod, stmt, method_qualname, qualname)
                info.methods[stmt.name] = self.functions[method_qualname]
                self._method_index.setdefault(stmt.name, []).append(qualname)
        # self.<attr> = <expr> anywhere in the class body.
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        info.attr_values.setdefault(target.attr, []).append(sub.value)
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                target2 = sub.target
                if (
                    isinstance(target2, ast.Attribute)
                    and isinstance(target2.value, ast.Name)
                    and target2.value.id == "self"
                ):
                    info.attr_values.setdefault(target2.attr, []).append(sub.value)

    def _resolve_value_aliases(self) -> None:
        # Chase alias chains (a = b; b = f) to a known function, bounded.
        for alias, origin in list(self._value_aliases.items()):
            seen = 0
            while origin not in self.functions and origin in self._value_aliases:
                origin = self._value_aliases[origin]
                seen += 1
                if seen > 8:
                    break
            if origin in self.functions:
                self._value_aliases[alias] = origin
            else:
                del self._value_aliases[alias]

    # ------------------------------------------------------------ resolution
    def lookup_method(self, cls_qualname: str, name: str) -> FunctionInfo | None:
        """Method *name* on *cls_qualname* or its resolvable bases (MRO-ish
        depth-first, cycle-guarded)."""
        seen: set[str] = set()
        stack = [cls_qualname]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            if name in info.methods:
                return info.methods[name]
            stack.extend(info.bases)
        return None

    def class_of_expr(
        self,
        mod: ModuleContext,
        expr: ast.expr,
        env: Mapping[str, str],
        cls: str | None,
    ) -> str | None:
        """Best-effort class of *expr* (see module docstring for limits)."""
        if isinstance(expr, ast.Name):
            if expr.id in ("self", "cls") and cls is not None:
                return cls
            if expr.id in env:
                return env[expr.id]
            resolved = mod.resolve(expr)
            if resolved is not None and self._as_class(mod, resolved) is not None:
                return self._as_class(mod, resolved)
            return None
        if isinstance(expr, ast.Attribute):
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and cls is not None
            ):
                # Cycle guard: self.a = self.b.make() chains can recurse
                # through attr_values indefinitely; one (cls, attr) frame
                # at a time is enough for every honest case.
                key = (cls, expr.attr)
                if key in self._typing_stack:
                    return None
                info = self.classes.get(cls)
                if info is not None:
                    self._typing_stack.add(key)
                    try:
                        for value in info.attr_values.get(expr.attr, ()):
                            inferred = self.class_of_expr(mod, value, {}, cls)
                            if inferred is not None:
                                return inferred
                    finally:
                        self._typing_stack.discard(key)
                return None
            resolved = mod.resolve(expr)
            if resolved is not None:
                return self._as_class(mod, resolved)
            return None
        if isinstance(expr, ast.Call):
            callee = self.resolve_callee(mod, expr, {}, cls)
            if callee is not None and callee.endswith(".__init__"):
                return callee[: -len(".__init__")]
            # Constructor of a class without __init__.
            ctor = self._constructor_class(mod, expr)
            if ctor is not None:
                return ctor
        return None

    def _canonical(self, dotted: str) -> str:
        """Chase re-export aliases to the defining module, bounded."""
        for _ in range(8):
            if dotted in self.functions or dotted in self.classes:
                return dotted
            target = self._export_aliases.get(dotted)
            if target is None:
                return dotted
            dotted = target
        return dotted

    def _as_class(self, mod: ModuleContext, dotted: str) -> str | None:
        dotted = self._canonical(dotted)
        if dotted in self.classes:
            return dotted
        local = self._canonical(f"{module_name(mod.rel)}.{dotted}")
        return local if local in self.classes else None

    def _constructor_class(self, mod: ModuleContext, call: ast.Call) -> str | None:
        resolved = mod.resolve(call.func)
        if resolved is None:
            return None
        return self._as_class(mod, resolved)

    def resolve_callee(
        self,
        mod: ModuleContext,
        call: ast.Call,
        env: Mapping[str, str],
        cls: str | None,
        caller: str | None = None,
        local_fn_aliases: Mapping[str, str] | None = None,
    ) -> str | None:
        """Qualname of *call*'s callee, or None when resolution would be
        a guess the rules cannot afford."""
        func = call.func
        modname = module_name(mod.rel)

        if isinstance(func, ast.Name):
            if local_fn_aliases and func.id in local_fn_aliases:
                return local_fn_aliases[func.id]
            if caller is not None and f"{caller}.{func.id}" in self.functions:
                return f"{caller}.{func.id}"  # nested def
            resolved = mod.resolve(func)
            if resolved is None:
                return None
            for raw in (resolved, f"{modname}.{resolved}"):
                candidate = self._canonical(raw)
                if candidate in self.functions:
                    return candidate
                if candidate in self._value_aliases:
                    return self._value_aliases[candidate]
                as_cls = candidate if candidate in self.classes else None
                if as_cls is not None:
                    init = self.lookup_method(as_cls, "__init__")
                    return init.qualname if init is not None else f"{as_cls}.__init__"
            return None

        if isinstance(func, ast.Attribute):
            resolved = mod.resolve(func)
            if resolved is not None:
                for raw in (resolved, f"{modname}.{resolved}"):
                    candidate = self._canonical(raw)
                    if candidate in self.functions:
                        return candidate
                    if candidate in self._value_aliases:
                        return self._value_aliases[candidate]
                    # ClassName.m(...) — unbound method call.
                    head, _, attr = candidate.rpartition(".")
                    as_cls = self._canonical(head)
                    if as_cls in self.classes:
                        method = self.lookup_method(as_cls, attr)
                        if method is not None:
                            return method.qualname
            receiver = self.class_of_expr(mod, func.value, env, cls)
            if receiver is not None:
                method = self.lookup_method(receiver, func.attr)
                if method is not None:
                    return method.qualname
                return None
            # Guarded unique-name fallback (class-attribute lookup).
            if func.attr not in _FALLBACK_DENYLIST:
                owners = self._method_index.get(func.attr, [])
                if len(owners) == 1:
                    return self.classes[owners[0]].methods[func.attr].qualname
            return None
        return None

    # ------------------------------------------------------------ call sites
    def _local_env(
        self, mod: ModuleContext, info: FunctionInfo
    ) -> tuple[dict[str, str], dict[str, str]]:
        """(variable -> class, variable -> function qualname) for one
        function body: annotated params, constructor assignments and
        first-order function aliases, flow-insensitively."""
        env: dict[str, str] = {}
        fn_aliases: dict[str, str] = {}
        args = info.node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if arg.annotation is not None:
                ann = arg.annotation
                if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
                    try:
                        ann = ast.parse(ann.value, mode="eval").body
                    except SyntaxError:
                        continue
                resolved = mod.resolve(ann) if isinstance(ann, (ast.Name, ast.Attribute)) else None
                if resolved is not None:
                    as_cls = self._as_class(mod, resolved)
                    if as_cls is not None:
                        env[arg.arg] = as_cls
        for sub in ast.walk(info.node):
            if not isinstance(sub, ast.Assign) or len(sub.targets) != 1:
                continue
            target = sub.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if isinstance(sub.value, ast.Call):
                ctor = self._constructor_class(mod, sub.value)
                if ctor is not None:
                    env[target.id] = ctor
            elif isinstance(sub.value, ast.Name):
                resolved = mod.resolve(sub.value)
                if resolved is not None:
                    modname = module_name(mod.rel)
                    for candidate in (resolved, f"{modname}.{resolved}"):
                        if candidate in self.functions:
                            fn_aliases[target.id] = candidate
                            break
        return env, fn_aliases

    def _map_args(
        self, info: FunctionInfo, call: ast.Call, bound: bool
    ) -> dict[str, ast.expr]:
        """Callee param name -> argument expression (static subset)."""
        mapping: dict[str, ast.expr] = {}
        params = info.params[1:] if bound and info.params else info.params
        for i, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break
            if i < len(params):
                mapping[params[i]] = arg
        for kw in call.keywords:
            if kw.arg is not None and kw.arg in info.kw_params:
                mapping[kw.arg] = kw.value
        return mapping

    def _build_sites(self) -> list[CallSite]:
        sites: list[CallSite] = []
        for mod in self.modules.values():
            # Map: every node inside a function body -> owning function,
            # innermost wins (set in indexing order, nested defs last).
            owner: dict[int, str] = {}
            for qualname, info in self.functions.items():
                if info.module_rel != mod.rel:
                    continue
                for sub in ast.walk(info.node):
                    owner[id(sub)] = qualname
            # Re-assert innermost ownership for nested defs: walk again
            # in qualname-length order so deeper functions overwrite.
            for qualname in sorted(
                (q for q, i in self.functions.items() if i.module_rel == mod.rel),
                key=lambda q: q.count("."),
            ):
                info = self.functions[qualname]
                for sub in ast.walk(info.node):
                    owner[id(sub)] = qualname

            env_cache: dict[str, tuple[dict[str, str], dict[str, str]]] = {}
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Call):
                    continue
                caller = owner.get(id(node), f"{mod.rel}::<module>")
                caller_info = self.functions.get(caller)
                if caller_info is not None:
                    if caller not in env_cache:
                        env_cache[caller] = self._local_env(mod, caller_info)
                    env, fn_aliases = env_cache[caller]
                    cls = caller_info.cls
                else:
                    env, fn_aliases = {}, {}
                    cls = None
                callee = self.resolve_callee(
                    mod, node, env, cls, caller=caller, local_fn_aliases=fn_aliases
                )
                if callee is None:
                    continue
                callee_info = self.functions.get(callee)
                if callee_info is None:
                    continue
                bound = callee_info.cls is not None and self._is_bound_call(
                    mod, node, callee_info, env, cls
                )
                sites.append(
                    CallSite(
                        caller=caller,
                        callee=callee,
                        module_rel=mod.rel,
                        node=node,
                        lineno=node.lineno,
                        args=self._map_args(callee_info, node, bound),
                    )
                )
        return sites

    def _is_bound_call(
        self,
        mod: ModuleContext,
        call: ast.Call,
        callee: FunctionInfo,
        env: Mapping[str, str],
        cls: str | None,
    ) -> bool:
        """True when the receiver is an instance (skip ``self`` in the
        arg map), False for ``ClassName.m(obj, ...)`` unbound calls and
        constructor calls (``__init__`` gets self skipped too)."""
        if callee.node.name == "__init__" and not isinstance(call.func, ast.Attribute):
            return True  # ClassName(...) — self is implicit
        func = call.func
        if not isinstance(func, ast.Attribute):
            return True
        resolved = mod.resolve(func)
        if resolved is not None:
            head = resolved.rpartition(".")[0]
            if self._as_class(mod, head) is not None:
                return False  # explicit ClassName.m(instance, ...)
        return True
    # ------------------------------------------------------------------ misc

    def context_of(self, rel: str) -> ModuleContext | None:
        return self.modules.get(rel)

    def env_of(self, info: FunctionInfo) -> Mapping[str, str]:
        """Flow-insensitive ``variable -> class qualname`` map of one
        function body (the receiver-typing environment rules reuse).
        Cached — rule fixpoints query it repeatedly."""
        cached = self._env_cache.get(info.qualname)
        if cached is None:
            mod = self.modules[info.module_rel]
            cached = self._local_env(mod, info)[0]
            self._env_cache[info.qualname] = cached
        return cached
