"""Tests for drift models and the online rebalancing loop."""

import numpy as np
import pytest

from repro.algorithms import AlnsConfig, LocalSearchRebalancer, SRA, SRAConfig
from repro.cluster import ClusterState, Machine, Shard
from repro.online import OnlineSimulator, PopularityDrift, apply_demands
from repro.workloads import SyntheticConfig, generate


def base_state(util=0.7, seed=0, m=12):
    return generate(
        SyntheticConfig(
            num_machines=m,
            shards_per_machine=6,
            target_utilization=util,
            placement_skew=0.0,
            max_shard_fraction=0.35,
            seed=seed,
        )
    )


def quick_sra(iterations=200, seed=1):
    return SRA(SRAConfig(alns=AlnsConfig(iterations=iterations, seed=seed)))


class TestApplyDemands:
    def test_assignment_and_structure_preserved(self):
        state = base_state()
        new = state.demand * 0.5
        drifted = apply_demands(state, new)
        np.testing.assert_array_equal(drifted.assignment, state.assignment)
        np.testing.assert_allclose(drifted.demand, new)
        np.testing.assert_allclose(drifted.sizes, state.sizes)  # sizes carry over

    def test_shape_mismatch_rejected(self):
        state = base_state()
        with pytest.raises(ValueError, match="shape"):
            apply_demands(state, np.ones((3, 3)))

    def test_replica_labels_preserved(self):
        machines = Machine.homogeneous(2, 10.0)
        shards = [
            Shard(id=0, demand=np.ones(3), replica_of=0),
            Shard(id=1, demand=np.ones(3), replica_of=0),
        ]
        state = ClusterState(machines, shards, [0, 1])
        drifted = apply_demands(state, state.demand * 2)
        assert drifted.shards[1].replica_of == 0


class TestPopularityDrift:
    def test_cpu_total_matches_target(self):
        state = base_state()
        drift = PopularityDrift(drift=0.3, target_utilization=0.75, seed=1)
        drifted = drift.step(state)
        cpu = state.schema.index("cpu")
        total_cap = state.capacity[:, cpu].sum()
        assert drifted.demand[:, cpu].sum() == pytest.approx(0.75 * total_cap, rel=1e-6)

    def test_non_cpu_dims_untouched(self):
        state = base_state()
        drifted = PopularityDrift(seed=1).step(state)
        ram = state.schema.index("ram")
        disk = state.schema.index("disk")
        np.testing.assert_allclose(drifted.demand[:, ram], state.demand[:, ram])
        np.testing.assert_allclose(drifted.demand[:, disk], state.demand[:, disk])

    def test_zero_drift_changes_nothing_much(self):
        state = base_state()
        model = PopularityDrift(drift=0.0, target_utilization=0.7, seed=1)
        a = model.step(state)
        b = model.step(a)
        cpu = state.schema.index("cpu")
        np.testing.assert_allclose(a.demand[:, cpu], b.demand[:, cpu], rtol=1e-9)

    def test_strong_drift_creates_imbalance(self):
        state = base_state()
        drifted = PopularityDrift(drift=0.8, target_utilization=0.7, seed=3).step(state)
        assert drifted.peak_utilization() > state.peak_utilization()

    def test_deterministic(self):
        state = base_state()
        a = PopularityDrift(drift=0.5, seed=7).step(state)
        b = PopularityDrift(drift=0.5, seed=7).step(state)
        np.testing.assert_allclose(a.demand, b.demand)

    def test_validation(self):
        with pytest.raises(ValueError):
            PopularityDrift(drift=1.5)
        with pytest.raises(ValueError):
            PopularityDrift(alpha=0.0)


class TestOnlineSimulator:
    def test_always_policy_rebalances_every_epoch(self):
        sim = OnlineSimulator(
            rebalancer=quick_sra(),
            drift=PopularityDrift(drift=0.3, target_utilization=0.7, seed=2),
            policy="always",
        )
        reports = sim.run(base_state(), 3)
        assert len(reports) == 3
        assert all(r.rebalanced for r in reports)
        assert all(r.peak_after <= r.peak_before + 1e-9 for r in reports)

    def test_never_policy_lets_imbalance_accumulate(self):
        drift = PopularityDrift(drift=0.4, target_utilization=0.7, seed=2)
        sim = OnlineSimulator(rebalancer=quick_sra(), drift=drift, policy="never")
        reports = sim.run(base_state(), 3)
        assert all(not r.rebalanced for r in reports)
        assert all(r.bytes_moved == 0 for r in reports)
        assert reports[-1].cumulative_bytes == 0

    def test_threshold_policy_skips_calm_epochs(self):
        sim = OnlineSimulator(
            rebalancer=quick_sra(),
            drift=PopularityDrift(drift=0.1, target_utilization=0.6, seed=4),
            policy="threshold",
            threshold=0.9,
        )
        reports = sim.run(base_state(util=0.6), 4)
        assert any(not r.rebalanced for r in reports)

    def test_cumulative_bytes_monotone(self):
        sim = OnlineSimulator(
            rebalancer=quick_sra(),
            drift=PopularityDrift(drift=0.3, target_utilization=0.7, seed=5),
            policy="always",
        )
        reports = sim.run(base_state(), 3)
        cum = [r.cumulative_bytes for r in reports]
        assert all(a <= b + 1e-9 for a, b in zip(cum, cum[1:], strict=False))

    def test_exchange_budget_fleet_size_is_conserved(self):
        state = base_state()
        sim = OnlineSimulator(
            rebalancer=quick_sra(),
            drift=PopularityDrift(drift=0.3, target_utilization=0.7, seed=6),
            policy="always",
            exchange_budget=2,
        )
        reports = sim.run(state, 2)
        # Machines borrowed per episode are returned: the loop's invariant
        # is a constant in-service fleet size, checked indirectly via a
        # third epoch running without errors and peaks staying sane.
        assert all(r.feasible for r in reports)
        assert all(r.peak_after <= 1.0 for r in reports)

    def test_works_with_baseline_rebalancer(self):
        sim = OnlineSimulator(
            rebalancer=LocalSearchRebalancer(seed=1),
            drift=PopularityDrift(drift=0.3, target_utilization=0.7, seed=7),
            policy="always",
        )
        reports = sim.run(base_state(), 2)
        assert all(r.peak_after <= r.peak_before + 1e-9 for r in reports)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            OnlineSimulator(
                rebalancer=quick_sra(),
                drift=PopularityDrift(),
                policy="sometimes",  # type: ignore[arg-type]
            )

    def test_zero_epochs_rejected(self):
        sim = OnlineSimulator(rebalancer=quick_sra(), drift=PopularityDrift())
        with pytest.raises(ValueError, match="epochs"):
            sim.run(base_state(), 0)
