"""Exchange-pool accounting.

The resource-exchange contract of the paper: the operator lends the
rebalancer ``B`` initially vacant machines; after rebalancing, the
rebalancer must hand back ``R`` vacant machines (default ``R = B``) — not
necessarily the ones it borrowed.  :class:`ExchangeLedger` records the
borrow, validates the return against a finished :class:`ClusterState`, and
selects which concrete machines to return.

Two return policies are supported:

``"count"`` (default)
    Any ``R`` vacant machines satisfy the contract.  This is the weakest
    reading of "return some vacant machines as compensation".
``"capacity"``
    The summed capacity of the returned machines must dominate the summed
    capacity of the borrowed machines in every dimension — the exchange
    is resource-neutral for the pool, not merely machine-count-neutral.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Sequence

import numpy as np

from repro.cluster.machine import Machine
from repro.cluster.resources import dominates
from repro.cluster.state import ClusterState

__all__ = ["ExchangeLedger", "ExchangeViolation", "ExchangeSettlement", "settle_fleet"]

ReturnPolicy = Literal["count", "capacity"]


class ExchangeViolation(ValueError):
    """Raised when a final state cannot satisfy the vacancy-return contract."""


@dataclass
class ExchangeLedger:
    """Borrow/return bookkeeping for one rebalancing episode.

    Attributes
    ----------
    borrowed_ids:
        Machine ids (in the *augmented* cluster) of the borrowed machines.
    required_returns:
        Number of vacant machines that must be returned, ``R``.
    policy:
        Return policy, see module docstring.
    """

    borrowed_ids: tuple[int, ...] = ()
    required_returns: int = 0
    policy: ReturnPolicy = "count"
    _borrowed_capacity: np.ndarray | None = field(default=None, repr=False)

    @staticmethod
    def borrow(
        state: ClusterState,
        machines: Sequence[Machine],
        *,
        required_returns: int | None = None,
        policy: ReturnPolicy = "count",
    ) -> tuple[ClusterState, "ExchangeLedger"]:
        """Augment *state* with borrowed *machines* and open a ledger.

        Returns the augmented state (new object; the input is untouched)
        and the ledger tracking the debt.  ``required_returns`` defaults
        to the number of borrowed machines.
        """
        if required_returns is None:
            required_returns = len(machines)
        if required_returns < 0:
            raise ValueError(f"required_returns must be >= 0, got {required_returns}")
        if required_returns > state.num_machines + len(machines):
            raise ValueError("cannot owe more returns than machines exist")
        augmented = state.with_extra_machines(machines) if machines else state.copy()
        start = state.num_machines
        ids = tuple(range(start, start + len(machines)))
        cap = (
            np.stack([m.capacity for m in machines]).sum(axis=0)
            if machines
            else np.zeros(state.dims)
        )
        ledger = ExchangeLedger(
            borrowed_ids=ids,
            required_returns=required_returns,
            policy=policy,
            _borrowed_capacity=cap,
        )
        return augmented, ledger

    @property
    def num_borrowed(self) -> int:
        return len(self.borrowed_ids)

    def borrowed_capacity(self) -> np.ndarray:
        """Summed capacity vector of the borrowed machines."""
        if self._borrowed_capacity is None:
            raise ValueError("ledger was not opened via ExchangeLedger.borrow")
        return self._borrowed_capacity

    # ------------------------------------------------------------ validation
    def candidate_returns(self, state: ClusterState) -> np.ndarray:
        """Vacant machines eligible to be returned, best first.

        Preference order: vacant borrowed machines first (returning the
        loaner's own machines is always acceptable), then vacant in-service
        machines by descending capacity (so a ``capacity`` policy is
        satisfied with the fewest machines).
        """
        vacant = state.vacant_machines()
        vacant = vacant[~state.offline_mask[vacant]]  # dead machines can't be returned
        if vacant.size == 0:
            return vacant
        borrowed = np.isin(vacant, np.asarray(self.borrowed_ids, dtype=np.int64))
        caps = state.capacity[vacant].sum(axis=1)
        # Sort: borrowed first, then by capacity descending.
        order = np.lexsort((-caps, ~borrowed))
        return vacant[order]

    def select_returns(self, state: ClusterState) -> np.ndarray:
        """Choose the machines to return, or raise :class:`ExchangeViolation`.

        For the ``count`` policy this is the first ``R`` candidates.  For
        the ``capacity`` policy, candidates are accumulated (largest first
        among in-service machines) until the borrowed capacity is covered;
        at least ``R`` machines are always returned.
        """
        candidates = self.candidate_returns(state)
        if candidates.size < self.required_returns:
            raise ExchangeViolation(
                f"need {self.required_returns} vacant machines to return, "
                f"only {candidates.size} are vacant"
            )
        if self.policy == "count":
            return candidates[: self.required_returns]
        # capacity policy
        target = self.borrowed_capacity()
        chosen: list[int] = []
        total = np.zeros_like(target)
        for mid in candidates:
            if len(chosen) >= self.required_returns and dominates(total, target):
                break
            chosen.append(int(mid))
            total += state.capacity[mid]
        if len(chosen) < self.required_returns or not dominates(total, target):
            raise ExchangeViolation(
                "vacant machines cannot cover borrowed capacity "
                f"(have {total}, owe {target})"
            )
        return np.asarray(chosen, dtype=np.int64)

    def is_satisfiable(self, state: ClusterState) -> bool:
        """True when :meth:`select_returns` would succeed on *state*."""
        try:
            self.select_returns(state)
        except ExchangeViolation:
            return False
        return True

    def settle(self, state: ClusterState) -> "ExchangeSettlement":
        """Validate and close the ledger against a finished state."""
        returned = self.select_returns(state)
        kept = [mid for mid in self.borrowed_ids if mid not in set(returned.tolist())]
        return ExchangeSettlement(
            returned_ids=tuple(int(r) for r in returned),
            retained_borrowed_ids=tuple(kept),
            returned_capacity=state.capacity[returned].sum(axis=0)
            if returned.size
            else np.zeros(state.dims),
        )


@dataclass(frozen=True)
class ExchangeSettlement:
    """Outcome of closing an :class:`ExchangeLedger`.

    ``retained_borrowed_ids`` lists borrowed machines that stay in service
    (an equal number of formerly in-service machines was emptied and
    returned instead) — the "exchange" the paper is named for.
    """

    returned_ids: tuple[int, ...]
    retained_borrowed_ids: tuple[int, ...]
    returned_capacity: np.ndarray


def settle_fleet(
    final: ClusterState, ledger: ExchangeLedger
) -> tuple[ClusterState, ExchangeSettlement, list[Machine]]:
    """Close the episode: drop the returned machines from the fleet.

    Returns the post-settlement cluster (returned machines removed,
    remaining machines re-indexed densely, assignment preserved), the
    settlement, and the returned machine descriptions (what goes back
    into the pool).
    """
    settlement = ledger.settle(final)
    returned = set(settlement.returned_ids)
    returned_machines = [final.machines[mid] for mid in settlement.returned_ids]
    if not returned:
        return final.copy(), settlement, returned_machines
    keep = [m for m in range(final.num_machines) if m not in returned]
    remap = {old: new for new, old in enumerate(keep)}
    machines = [final.machines[old].with_id(remap[old]) for old in keep]
    assignment = np.array(
        [remap[int(a)] for a in final.assignment_view()], dtype=np.int64
    )
    slim = ClusterState(machines, list(final.shards), assignment)
    return slim, settlement, returned_machines
