"""E1 — instance characteristics (paper Table 1 analogue).

Regenerates the table describing the synthetic and datacenter suites;
the benchmark time is the cost of instance generation itself.
"""

from repro.experiments import REGISTRY, is_full_run


def test_e1_instances(benchmark, save_table):
    rows = benchmark.pedantic(
        REGISTRY["e1"], kwargs={"fast": not is_full_run()}, rounds=1, iterations=1
    )
    save_table("e1", rows, "E1 — instance characteristics (Table 1 analogue)")

    assert rows, "suite generated no instances"
    for r in rows:
        # Generators must hit their advertised tightness and start imbalanced.
        assert 0.4 <= r["tightness"] <= 1.0
        assert r["init_peak"] >= r["tightness"] - 1e-6
        assert r["shards"] > r["machines"]
    # Both data sources are present.
    names = {r["instance"].split("-")[0] for r in rows}
    assert {"uniform", "zipf", "dc"} <= names
