"""Schema genericity: the pipeline is not hard-wired to (cpu, ram, disk).

Runs the rebalancing stack end-to-end on a 1-D and a 4-D resource
schema built by hand.
"""

import numpy as np
import pytest

from repro.algorithms import AlnsConfig, GreedyRebalancer, SRA, SRAConfig
from repro.cluster import (
    ClusterState,
    ExchangeLedger,
    Machine,
    ResourceSchema,
    Shard,
)
from repro.migration import StagingPlanner
from repro.model import MilpSolver, ModelConfig


def build_state(schema, m, n, cap, seed):
    rng = np.random.default_rng(seed)
    machines = Machine.homogeneous(m, cap, schema=schema)
    demands = rng.uniform(0.5, 2.0, size=(n, schema.dims))
    shards = [Shard(id=j, demand=demands[j], schema=schema) for j in range(n)]
    assign = rng.integers(0, m, size=n)
    return ClusterState(machines, shards, assign)


@pytest.mark.parametrize(
    "schema",
    [
        ResourceSchema(("cpu",)),
        ResourceSchema(("cpu", "ram", "disk", "net")),
    ],
    ids=["1d", "4d"],
)
class TestSchemaGeneric:
    def test_sra_runs(self, schema):
        state = build_state(schema, m=6, n=24, cap=20.0, seed=1)
        result = SRA(SRAConfig(alns=AlnsConfig(iterations=120, seed=1))).rebalance(state)
        assert result.feasible
        assert result.peak_after <= result.peak_before + 1e-9

    def test_exchange_episode(self, schema):
        state = build_state(schema, m=6, n=24, cap=20.0, seed=2)
        loaner = Machine(id=0, capacity=np.full(schema.dims, 20.0), schema=schema,
                         exchange=True)
        grown, ledger = ExchangeLedger.borrow(state, [loaner])
        result = SRA(SRAConfig(alns=AlnsConfig(iterations=120, seed=1))).rebalance(
            grown, ledger
        )
        assert result.feasible
        assert result.settlement is not None

    def test_greedy_and_planner(self, schema):
        state = build_state(schema, m=5, n=15, cap=20.0, seed=3)
        result = GreedyRebalancer().rebalance(state)
        plan = StagingPlanner().plan(state, result.target_assignment)
        assert plan.feasible

    def test_milp(self, schema):
        state = build_state(schema, m=3, n=6, cap=20.0, seed=4)
        result = MilpSolver(ModelConfig(move_penalty=0.0)).solve(state)
        assert result.ok
        final = state.copy()
        final.apply_assignment(result.assignment)
        assert final.is_within_capacity()
