"""Workload and instance generators (synthetic + datacenter substitution)."""

from repro.workloads.datacenter import DEFAULT_MACHINE_MIX, DatacenterConfig, generate_datacenter
from repro.workloads.replicated import ReplicatedConfig, generate_replicated
from repro.workloads.suites import (
    datacenter_suite,
    scaling_suite,
    small_suite,
    synthetic_suite,
    tight_suite,
)
from repro.workloads.synthetic import (
    SyntheticConfig,
    generate,
    generate_uniform,
    generate_zipf,
    make_exchange_machines,
)

__all__ = [
    "SyntheticConfig",
    "generate",
    "generate_uniform",
    "generate_zipf",
    "make_exchange_machines",
    "DatacenterConfig",
    "generate_datacenter",
    "DEFAULT_MACHINE_MIX",
    "ReplicatedConfig",
    "generate_replicated",
    "small_suite",
    "synthetic_suite",
    "tight_suite",
    "datacenter_suite",
    "scaling_suite",
]
