"""repro.analysis — AST invariant linter and typing ratchet.

Zero-dependency static analysis for the invariants this reproduction's
credibility rests on (docs/ARCHITECTURE.md, "Static analysis &
invariants"):

* a rule engine (:class:`Rule`, :func:`register`, :func:`lint_paths`)
  walking stdlib ASTs, with line-scoped ``# repro: allow-<rule>``
  suppressions and a committed ratchet baseline (new violations fail,
  grandfathered ones are listed and may only shrink);
* the shipped per-module rule pack REP001–REP005
  (:mod:`repro.analysis.rules`): seeded RNG construction, wall-clock
  discipline, ClusterState transaction discipline, span context-manager
  usage, unordered float folds;
* an interprocedural layer — cross-module symbol table and call graph
  (:mod:`repro.analysis.callgraph`), per-function CFGs with exception
  edges (:mod:`repro.analysis.cfg`) and a forward-dataflow framework
  (:mod:`repro.analysis.dataflow`) — carrying the project-wide pack
  REP006–REP009 (:mod:`repro.analysis.interp`): shared-memory lock
  discipline, transaction balance over all paths, seed provenance
  through helper wrappers, SoA mirror write discipline;
* a mypy strictness ratchet (:mod:`repro.analysis.typing_ratchet`).

Entry points: ``repro lint`` and ``python -m repro.analysis``.
"""

from repro.analysis import interp, rules  # noqa: F401  (registers the rule packs)
from repro.analysis.baseline import BaselineResult, compare, group_findings
from repro.analysis.callgraph import CallGraph, Project
from repro.analysis.cli import main
from repro.analysis.context import ModuleContext
from repro.analysis.engine import (
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
    lint_paths,
    lint_project,
    lint_source,
    register,
)
from repro.analysis.findings import Finding

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "ProjectRule",
    "Project",
    "CallGraph",
    "register",
    "all_rules",
    "get_rule",
    "lint_paths",
    "lint_project",
    "lint_source",
    "BaselineResult",
    "compare",
    "group_findings",
    "main",
]
