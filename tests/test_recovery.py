"""Tests for machine-failure recovery."""

import numpy as np
import pytest

from repro.algorithms import AlnsConfig, SRAConfig
from repro.cluster import ClusterState, ExchangeLedger, Machine, Shard
from repro.recovery import RecoveryPlanner, fail_machine
from repro.workloads import (
    ReplicatedConfig,
    SyntheticConfig,
    generate,
    generate_replicated,
    make_exchange_machines,
)


class TestFailMachine:
    def test_orphans_and_blocking(self):
        machines = Machine.homogeneous(3, 10.0)
        shards = Shard.uniform(6, 1.0)
        state = ClusterState(machines, shards, [0, 0, 1, 1, 2, 2])
        degraded, orphans = fail_machine(state, 1)
        assert orphans == [2, 3]
        assert set(degraded.unassigned_shards()) == {2, 3}
        assert degraded.blocked_mask[1]
        # Input untouched.
        assert state.machine_of(2) == 1
        assert not state.blocked_mask[1]

    def test_failing_vacant_machine(self):
        machines = Machine.homogeneous(2, 10.0)
        shards = Shard.uniform(1, 1.0)
        state = ClusterState(machines, shards, [0])
        degraded, orphans = fail_machine(state, 1)
        assert orphans == []
        assert degraded.blocked_mask[1]

    def test_unknown_machine_rejected(self):
        machines = Machine.homogeneous(2, 10.0)
        shards = Shard.uniform(1, 1.0)
        state = ClusterState(machines, shards, [0])
        with pytest.raises(ValueError, match="unknown machine"):
            fail_machine(state, 5)


class TestRecoveryPlanner:
    def test_recovers_simple_failure(self):
        state = generate(
            SyntheticConfig(
                num_machines=10, shards_per_machine=5, target_utilization=0.6, seed=1
            )
        )
        hottest = int(np.argmax(state.machine_peak_utilization()))
        degraded, orphans = fail_machine(state, hottest)
        result = RecoveryPlanner().recover(degraded, orphans)
        assert result.feasible
        assert result.peak_after <= 1.0
        # Nothing landed on the failed machine.
        assert not np.any(result.assignment == hottest)
        assert result.rebuild_bytes == pytest.approx(
            float(state.sizes[orphans].sum())
        )

    def test_rebuild_sources_prefer_siblings(self):
        cfg = ReplicatedConfig(
            base=SyntheticConfig(
                num_machines=8, shards_per_machine=3, target_utilization=0.6, seed=2
            ),
            replication_factor=2,
        )
        state = generate_replicated(cfg)
        degraded, orphans = fail_machine(state, 0)
        assert orphans  # machine 0 hosted something
        result = RecoveryPlanner().recover(degraded, orphans)
        assert result.feasible
        for j in orphans:
            src = result.rebuild_sources[j]
            assert src >= 0, "replicated shard should rebuild from a sibling"
            assert src != 0  # not the dead machine

    def test_unreplicated_orphans_rebuild_from_cold_storage(self):
        state = generate(
            SyntheticConfig(
                num_machines=6, shards_per_machine=4, target_utilization=0.6, seed=3
            )
        )
        degraded, orphans = fail_machine(state, 0)
        result = RecoveryPlanner().recover(degraded, orphans)
        assert all(result.rebuild_sources[j] == -1 for j in orphans)

    def test_recovery_respects_anti_affinity(self):
        cfg = ReplicatedConfig(
            base=SyntheticConfig(
                num_machines=8, shards_per_machine=3, target_utilization=0.65, seed=4
            ),
            replication_factor=2,
        )
        state = generate_replicated(cfg)
        degraded, orphans = fail_machine(state, 1)
        result = RecoveryPlanner().recover(degraded, orphans)
        final = degraded.copy()
        final.apply_assignment(result.assignment)
        assert not final.has_replica_conflicts()

    def test_tight_cluster_recovery_fails_without_spares(self):
        state = generate(
            SyntheticConfig(
                num_machines=8,
                shards_per_machine=6,
                target_utilization=0.88,
                placement_skew=0.0,
                seed=5,
            )
        )
        degraded, orphans = fail_machine(state, 0)
        result = RecoveryPlanner().recover(degraded, orphans)
        # 0.88 * 8/7 > 1: the surviving machines cannot absorb the load.
        assert not result.feasible

    def test_exchange_machines_absorb_the_failure(self):
        state = generate(
            SyntheticConfig(
                num_machines=8,
                shards_per_machine=6,
                target_utilization=0.88,
                placement_skew=0.0,
                seed=5,
            )
        )
        grown, ledger = ExchangeLedger.borrow(
            state, make_exchange_machines(state, 2), required_returns=0
        )
        degraded, orphans = fail_machine(grown, 0)
        result = RecoveryPlanner().recover(degraded, orphans, ledger)
        assert result.feasible
        assert result.peak_after <= 1.0

    def test_rebalance_after_recovery(self):
        state = generate(
            SyntheticConfig(
                num_machines=10, shards_per_machine=5, target_utilization=0.6, seed=6
            )
        )
        degraded, orphans = fail_machine(state, 2)
        planner = RecoveryPlanner(
            rebalance_after=True,
            sra_config=SRAConfig(alns=AlnsConfig(iterations=150, seed=1)),
        )
        plain = RecoveryPlanner().recover(degraded, orphans)
        improved = planner.recover(degraded, orphans)
        assert improved.rebalance is not None
        assert improved.feasible
        assert improved.peak_after <= plain.peak_after + 1e-9
        # The rebalance never resurrects the dead machine.
        assert not np.any(improved.assignment == 2)


class TestRecoverySeeding:
    """The placement/rebalance RNG derives from the configured ALNS seed."""

    def _recover(self, seed):
        state = generate(
            SyntheticConfig(
                num_machines=10, shards_per_machine=5, target_utilization=0.6, seed=6
            )
        )
        degraded, orphans = fail_machine(state, 2)
        planner = RecoveryPlanner(
            rebalance_after=True,
            sra_config=SRAConfig(alns=AlnsConfig(iterations=150, seed=seed)),
        )
        return planner.recover(degraded, orphans)

    def test_equal_seeds_agree(self):
        a, b = self._recover(1), self._recover(1)
        np.testing.assert_array_equal(a.assignment, b.assignment)
        assert a.peak_after == b.peak_after
        assert a.rebuild_bytes == b.rebuild_bytes

    def test_seed_controls_the_plan(self):
        # Regression: the RNG was hardcoded to default_rng(0), so every
        # configured seed produced the same recovery plan.
        a, b = self._recover(1), self._recover(2)
        assert a.feasible and b.feasible
        assert not np.array_equal(a.assignment, b.assignment)
