"""E13 — online rebalancing under repeated drift (extension).

Runs the drift→rebalance loop for several policies and reports the
trajectory: per-epoch peak utilization and cumulative migrated bytes.

Claims: without rebalancing the drifted peak stays high every epoch;
rebalancing every epoch holds the peak near the tightness floor at a
linear byte cost; a threshold policy buys most of the balance for a
fraction of the bytes.
"""

from __future__ import annotations

from repro.algorithms import AlnsConfig, SRA, SRAConfig
from repro.experiments.common import scenario_instance
from repro.experiments.harness import register
from repro.online import OnlineSimulator, PopularityDrift


@register("e13")
def run(fast: bool = True) -> list[dict]:
    epochs = 5 if fast else 12
    iterations = 300 if fast else 1200
    seeds = (0,) if fast else (0, 1, 2)
    rows = []
    for seed in seeds:
        state = scenario_instance(
            "zipf-popularity",
            {
                "num_machines": 16,
                "shards_per_machine": 6,
                "target_utilization": 0.75,
                "placement_skew": 0.0,
                "max_shard_fraction": 0.35,
            },
            seed=seed,
        )
        for policy, threshold in (("never", 1.0), ("threshold", 0.92), ("always", 1.0)):
            sim = OnlineSimulator(
                rebalancer=SRA(SRAConfig(alns=AlnsConfig(iterations=iterations, seed=1))),
                drift=PopularityDrift(
                    drift=0.25, target_utilization=0.75, seed=100 + seed
                ),
                policy=policy,  # type: ignore[arg-type]
                threshold=threshold,
                exchange_budget=1,
            )
            for r in sim.run(state, epochs):
                rows.append(
                    {
                        "seed": seed,
                        "policy": policy,
                        "epoch": r.epoch,
                        "peak_before": r.peak_before,
                        "peak_after": r.peak_after,
                        "rebalanced": r.rebalanced,
                        "moves": r.moves,
                        "cum_bytes": r.cumulative_bytes,
                    }
                )
    return rows
