#!/usr/bin/env python3
"""Quickstart: rebalance an imbalanced search cluster with resource exchange.

Builds a synthetic 20-machine cluster running hot (85% tightness) with a
skewed placement, borrows two exchange machines, runs SRA, and prints the
episode report: balance before/after, migration cost, and the exchange
settlement (which machines were returned — often not the borrowed ones).

Run:  python examples/quickstart.py
"""

from repro import ResourceExchangeRebalancer, SRA, SRAConfig
from repro.algorithms import AlnsConfig
from repro.workloads import SyntheticConfig, generate


def main() -> None:
    # 1. An imbalanced cluster: 20 machines, 120 Zipf-sized shards, hot.
    state = generate(
        SyntheticConfig(
            num_machines=20,
            shards_per_machine=6,
            target_utilization=0.85,
            placement_skew=0.55,
            max_shard_fraction=0.35,
            demand_dist="zipf",
            seed=42,
        )
    )
    print(f"cluster: {state.num_machines} machines, {state.num_shards} shards")
    print(f"initial peak utilization: {state.peak_utilization():.3f}")
    print(f"mean utilization (tightness): {state.mean_utilization().max():.3f}")
    print()

    # 2. Borrow 2 vacant machines, rebalance, return 2 vacant machines.
    rebalancer = ResourceExchangeRebalancer(
        SRA(SRAConfig(alns=AlnsConfig(iterations=1200, seed=1))),
        exchange_machines=2,
    )
    report = rebalancer.run(state)

    # 3. The full episode report.
    print(report.format_table())
    print()
    settlement = report.result.settlement
    if settlement is not None and settlement.retained_borrowed_ids:
        print(
            f"exchange happened: borrowed machines {settlement.retained_borrowed_ids} "
            f"stayed in service; drained machines {settlement.returned_ids} "
            "were returned instead."
        )
    elif settlement is not None:
        print(f"returned machines: {settlement.returned_ids}")


if __name__ == "__main__":
    main()
