"""Migration planning under transient resource constraints."""

from repro.migration.costmodel import BandwidthModel, MigrationCost
from repro.migration.moves import Move, diff_moves
from repro.migration.scheduler import Schedule, WaveScheduler
from repro.migration.staging import (
    PlanResult,
    StagingPlanner,
    deadlock_cycles,
    dependency_graph,
)

__all__ = [
    "Move",
    "diff_moves",
    "Schedule",
    "WaveScheduler",
    "StagingPlanner",
    "PlanResult",
    "dependency_graph",
    "deadlock_cycles",
    "BandwidthModel",
    "MigrationCost",
]
