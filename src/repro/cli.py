"""Command-line interface.

``python -m repro <command>``:

* ``generate``   — write an instance snapshot (JSON) from a generator;
* ``info``       — print a snapshot's balance metrics;
* ``run`` / ``rebalance`` — rebalance a snapshot with SRA or a baseline,
  print the episode report, optionally write the resulting snapshot and
  the observability artifacts (``--trace out.jsonl``, ``--metrics
  out.json`` — see docs/ARCHITECTURE.md, "Observability");
* ``runtime``    — serve a snapshot on the unified event runtime
  (``repro.runtime``): Poisson or diurnal arrivals, synthetic or
  measured work profiles, and optionally a mid-run SRA rebalance whose
  migration executes wave-by-wave while queries keep arriving — either
  a one-shot ``--rebalance-at T`` check or a continuous ``--controller``
  loop (``incremental`` = EWMA drift detection gating warm-started,
  budget-bounded rounds; compose with ``--drift`` to exercise it);
* ``experiment`` — regenerate one experiment table (E1–E21) or, with
  ``--all``, the whole suite — optionally fanned across worker
  processes (``--workers N``) by the ``repro.parallel`` driver, with
  the same artifact flags plus ``--out-dir`` for machine-readable
  tables;
* ``scenarios``  — the parametric scenario registry
  (``repro.scenarios``): ``list`` enumerates the generator families
  with their parameter schemas, ``show`` prints one family in detail,
  ``generate`` writes an instance snapshot from a spec (``--param k=v``
  overrides, content-addressed by spec hash), and ``matrix`` sweeps a
  scenario×algorithm grid through the parallel driver, writing per-cell
  row tables plus an ``index.json`` (the CI scenario-matrix jobs are
  thin wrappers over this subcommand);
* ``lint``       — run the AST invariant linter (rules REP001–REP005:
  seeded RNG construction, wall-clock discipline, ClusterState
  transaction discipline, span usage, unordered float folds) with the
  committed ratchet baseline — see docs/ARCHITECTURE.md, "Static
  analysis & invariants".  Also available as
  ``python -m repro.analysis``.

``run``/``rebalance`` accept ``--restarts K --workers N`` to fan K
independent SRA restarts across N worker processes (best-of-K wins;
results are identical for any worker count — see docs/ARCHITECTURE.md,
"Parallel execution").

Every command is a thin shell over the library API, so anything the CLI
does is equally scriptable in Python.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro import obs
from repro.algorithms import (
    AlnsConfig,
    GreedyRebalancer,
    LocalSearchRebalancer,
    NoopRebalancer,
    RandomRestartRebalancer,
    SRA,
    SRAConfig,
)
from repro.cluster import load_json, save_json
from repro.core import ResourceExchangeRebalancer
from repro.metrics import imbalance_report
from repro.workloads import (
    DatacenterConfig,
    ReplicatedConfig,
    SyntheticConfig,
    generate,
    generate_datacenter,
    generate_replicated,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Resource-exchange shard rebalancing (ICPP 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate an instance snapshot")
    gen.add_argument("--kind", choices=("synthetic", "datacenter", "replicated"),
                     default="synthetic")
    gen.add_argument("--machines", type=int, default=20)
    gen.add_argument("--shards-per-machine", type=int, default=6)
    gen.add_argument("--utilization", type=float, default=0.8)
    gen.add_argument("--skew", type=float, default=0.55)
    gen.add_argument("--replication", type=int, default=2,
                     help="replication factor (replicated kind only)")
    gen.add_argument("--drift", type=float, default=0.35,
                     help="popularity drift (datacenter kind only)")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", required=True, help="output snapshot path (JSON)")

    info = sub.add_parser("info", help="print a snapshot's balance metrics")
    info.add_argument("snapshot", help="snapshot path (JSON)")

    for name, help_text in (
        ("run", "run a full rebalancing episode on a snapshot"),
        ("rebalance", "alias of `run`"),
    ):
        reb = sub.add_parser(name, help=help_text)
        reb.add_argument("snapshot", help="snapshot path (JSON)")
        reb.add_argument("--algorithm", choices=("sra", "local-search", "greedy",
                                                 "random-restart", "noop"),
                         default="sra")
        reb.add_argument("--exchange", type=int, default=0,
                         help="number of machines to borrow (B)")
        reb.add_argument("--returns", type=int, default=None,
                         help="vacant machines to return (R); defaults to B")
        reb.add_argument("--iterations", type=int, default=2000,
                         help="SRA search iterations")
        reb.add_argument("--seed", type=int, default=0)
        reb.add_argument("--restarts", type=int, default=1, metavar="K",
                         help="independent SRA restarts, best-of-K; restart "
                              "seeds are spawned deterministically from --seed "
                              "(SRA only)")
        reb.add_argument("--workers", type=int, default=1, metavar="N",
                         help="worker processes the restarts are fanned "
                              "across (1 = serial; results are identical for "
                              "any worker count unless --cooperative)")
        reb.add_argument("--cooperative", action="store_true",
                         help="let restarts exchange incumbents through a "
                              "shared best-solution slot (portfolio search; "
                              "pooled results become timing-dependent, serial "
                              "stays deterministic)")
        reb.add_argument("--out", default=None,
                         help="write the rebalanced snapshot here")
        _add_obs_arguments(reb)

    rt = sub.add_parser(
        "runtime",
        help="serve a snapshot on the event runtime, optionally migrating mid-run",
    )
    rt.add_argument("snapshot", help="snapshot path (JSON); must be fully assigned")
    rt.add_argument("--duration", type=float, default=60.0,
                    help="seconds of simulated arrivals")
    rt.add_argument("--arrival-rate", type=float, default=50.0,
                    help="mean query arrivals per second")
    rt.add_argument("--arrival-trace", choices=("poisson", "diurnal"),
                    default="poisson",
                    help="homogeneous Poisson stream, or a diurnal "
                         "(sinusoidal-rate) trace over --duration")
    rt.add_argument("--peak-ratio", type=float, default=3.0,
                    help="diurnal peak-to-trough ratio (diurnal trace only)")
    rt.add_argument("--postings-per-cpu-second", type=float, default=2e5,
                    help="machine speed per unit of CPU capacity")
    rt.add_argument("--profile", default=None, metavar="PATH",
                    help="measured WorkProfile JSON; a synthetic profile "
                         "matching the snapshot's CPU demand is derived "
                         "when omitted")
    rt.add_argument("--noise", type=float, default=0.25,
                    help="lognormal sigma of the synthetic profile's "
                         "per-query work (0 = deterministic)")
    rt.add_argument("--seed", type=int, default=0)
    rt.add_argument("--rebalance-at", type=float, default=None, metavar="T",
                    help="run a rebalance policy check at simulated time T "
                         "and execute the resulting migration wave-by-wave")
    rt.add_argument("--rebalance-policy", choices=("always", "threshold"),
                    default="always",
                    help="rebalance unconditionally at T, or only if peak "
                         "utilization exceeds --rebalance-threshold")
    rt.add_argument("--rebalance-threshold", type=float, default=0.95)
    rt.add_argument("--iterations", type=int, default=500,
                    help="SRA search iterations for the episode")
    rt.add_argument("--transfer-overhead", type=float, default=0.3,
                    help="serving-speed fraction lost while a NIC transfers")
    rt.add_argument("--bandwidth", type=float, default=1.25e9,
                    help="per-machine NIC bandwidth in bytes/second")
    rt.add_argument("--controller",
                    choices=("off", "always", "threshold", "never", "incremental"),
                    default="off",
                    help="continuous rebalance controller: policy checked every "
                         "--check-interval seconds over the whole run; "
                         "'incremental' gates warm-started, budget-bounded SRA "
                         "rounds on an EWMA drift detector (exclusive with "
                         "--rebalance-at)")
    rt.add_argument("--check-interval", type=float, default=15.0,
                    help="controller policy-check period (simulated seconds)")
    rt.add_argument("--cooldown", type=float, default=0.0,
                    help="minimum simulated seconds between an episode's "
                         "completion and the next controller trigger")
    rt.add_argument("--budget-moves", type=int, default=None,
                    help="incremental controller: max shards moved per round")
    rt.add_argument("--budget-bytes", type=float, default=None,
                    help="incremental controller: max bytes migrated per round "
                         "(scheduled plan, staging hops included)")
    rt.add_argument("--hot-threshold", type=float, default=0.9,
                    help="incremental detector: smoothed fleet peak that fires "
                         "regardless of trend")
    rt.add_argument("--slope-threshold", type=float, default=0.002,
                    help="incremental detector: smoothed-peak rise per second "
                         "that fires early")
    rt.add_argument("--drift", type=float, default=None, metavar="D",
                    help="perturb the snapshot's demand with PopularityDrift(D) "
                         "at --drift-epochs epoch boundaries (the controller "
                         "loop sees the drifted cluster; the serving work "
                         "profile stays fixed)")
    rt.add_argument("--drift-epochs", type=int, default=4,
                    help="number of drift epochs across --duration")
    rt.add_argument("--drift-target", type=float, default=0.7,
                    help="drift re-demand target mean utilization")
    rt.add_argument("--episodes-out", default=None, metavar="PATH",
                    help="write the controller's episode records as JSON "
                         "(simulated-time fields only — bitwise reproducible)")
    _add_obs_arguments(rt)

    lint = sub.add_parser(
        "lint",
        help="run the AST invariant linter (per-module REP001-REP005, "
             "interprocedural REP006-REP009) with the committed ratchet "
             "baseline",
    )
    from repro.analysis.cli import add_arguments as _add_lint_arguments

    _add_lint_arguments(lint)

    scen = sub.add_parser(
        "scenarios",
        help="parametric scenario registry: list/show/generate/matrix",
    )
    scen_sub = scen.add_subparsers(dest="scenarios_command", required=True)

    scen_sub.add_parser("list", help="list generator families and their schemas")

    show = scen_sub.add_parser("show", help="print one family's full schema")
    show.add_argument("name", help="scenario family name (see `scenarios list`)")

    sgen = scen_sub.add_parser(
        "generate", help="generate an instance snapshot from a scenario spec"
    )
    sgen.add_argument("name", help="scenario family name")
    sgen.add_argument("--param", action="append", default=[], metavar="K=V",
                      help="parameter override (repeatable)")
    sgen.add_argument("--seed", type=int, default=0)
    sgen.add_argument("--out", required=True, help="output snapshot path (JSON)")

    mat = scen_sub.add_parser(
        "matrix", help="run a scenario×algorithm matrix on the parallel driver"
    )
    mat.add_argument("--scenario", action="append", default=[], metavar="NAME",
                     help="scenario family to include, at its default "
                          "parameters (repeatable)")
    mat.add_argument("--param", action="append", default=[], metavar="NAME.K=V",
                     help="parameter override for one included scenario "
                          "(repeatable; e.g. --param zipf-popularity.num_machines=10)")
    mat.add_argument("--smoke", action="store_true",
                     help="use the built-in small spec set (what CI runs) "
                          "instead of --scenario")
    mat.add_argument("--algorithms", default="sra,greedy",
                     help="comma-separated algorithm axis "
                          "(sra, portfolio, greedy, local-search, noop)")
    mat.add_argument("--iterations", type=int, default=400,
                     help="search iterations per SRA/portfolio cell")
    mat.add_argument("--seed", type=int, default=0)
    mat.add_argument("--workers", type=int, default=1, metavar="N",
                     help="worker processes cells are fanned across (cell "
                          "rows are identical for any worker count)")
    mat.add_argument("--out-dir", default=None, metavar="DIR",
                     help="write per-cell tables plus index.json into DIR")
    mat.add_argument("--verify-determinism", action="store_true",
                     help="rerun the first cell after the matrix and fail "
                          "unless its rows are bitwise-identical")
    _add_obs_arguments(mat)

    exp = sub.add_parser("experiment", help="regenerate experiment tables")
    exp.add_argument("id", nargs="?", default=None,
                     help="experiment id, e.g. e3 (omit with --all)")
    exp.add_argument("--all", action="store_true",
                     help="run every registered experiment (E1-E21)")
    exp.add_argument("--workers", type=int, default=1, metavar="N",
                     help="worker processes to run experiments on (row "
                          "tables are identical for any worker count, "
                          "wall-clock columns aside)")
    exp.add_argument("--out-dir", default=None, metavar="DIR",
                     help="write each table as <id>.txt/<id>.json plus an "
                          "index.json manifest into DIR")
    exp.add_argument("--full", action="store_true",
                     help="full scale instead of the fast CI scale "
                          "(REPRO_FULL=1 in the environment does the same)")
    _add_obs_arguments(exp)
    return parser


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a JSONL span/event trace of the run")
    parser.add_argument("--metrics", default=None, metavar="PATH",
                        help="write the run's metrics registry as JSON")


class _ObsSession:
    """Activate observability for a command when artifacts were requested."""

    def __init__(self, args: argparse.Namespace) -> None:
        self.trace_path = getattr(args, "trace", None)
        self.metrics_path = getattr(args, "metrics", None)
        self._previous: obs.Obs | None = None
        self.bundle = obs.NULL_OBS

    def __enter__(self) -> "_ObsSession":
        if self.trace_path or self.metrics_path:
            self.bundle = obs.Obs(obs.Tracer(), obs.MetricsRegistry())
            self._previous = obs.activate(self.bundle)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._previous is not None:
            obs.deactivate(self._previous)
            if exc is None:
                if self.trace_path:
                    self.bundle.tracer.export_jsonl(self.trace_path)
                    print(f"wrote trace -> {self.trace_path}")
                if self.metrics_path:
                    self.bundle.metrics.export_json(self.metrics_path)
                    print(f"wrote metrics -> {self.metrics_path}")
        return False


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "synthetic":
        state = generate(
            SyntheticConfig(
                num_machines=args.machines,
                shards_per_machine=args.shards_per_machine,
                target_utilization=args.utilization,
                placement_skew=args.skew,
                max_shard_fraction=0.35,
                seed=args.seed,
            )
        )
    elif args.kind == "datacenter":
        state = generate_datacenter(
            DatacenterConfig(
                num_machines=args.machines,
                shards_per_machine=args.shards_per_machine,
                target_utilization=args.utilization,
                drift=args.drift,
                seed=args.seed,
            )
        )
    else:
        state = generate_replicated(
            ReplicatedConfig(
                base=SyntheticConfig(
                    num_machines=args.machines,
                    shards_per_machine=args.shards_per_machine,
                    target_utilization=args.utilization,
                    placement_skew=args.skew,
                    max_shard_fraction=0.35,
                    seed=args.seed,
                ),
                replication_factor=args.replication,
            )
        )
    save_json(state, args.out)
    print(
        f"wrote {args.kind} snapshot: {state.num_machines} machines, "
        f"{state.num_shards} shards, peak {state.peak_utilization():.3f} -> {args.out}"
    )
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    state = load_json(args.snapshot)
    rep = imbalance_report(state)
    print(f"machines            {state.num_machines}")
    print(f"shards              {state.num_shards}")
    print(f"resource dims       {state.dims} {tuple(state.schema.names)}")
    print(f"tightness           {state.mean_utilization().max():.4f}")
    print(f"peak utilization    {rep.peak_utilization:.4f}")
    print(f"cv / jain / ratio   {rep.cv:.4f} / {rep.jain:.4f} / {rep.ratio:.4f}")
    print(f"overloaded machines {rep.overloaded_machines}")
    print(f"vacant machines     {rep.vacant_machines}")
    print(f"replica groups      {len(state.replica_groups)}")
    return 0


def _make_algorithm(args: argparse.Namespace):
    if args.algorithm == "sra":
        return SRA(
            SRAConfig(
                alns=AlnsConfig(iterations=args.iterations, seed=args.seed),
                restarts=args.restarts,
                n_workers=args.workers,
                cooperative=args.cooperative,
            )
        )
    if args.algorithm == "local-search":
        return LocalSearchRebalancer(seed=args.seed)
    if args.algorithm == "greedy":
        return GreedyRebalancer()
    if args.algorithm == "random-restart":
        return RandomRestartRebalancer(seed=args.seed)
    return NoopRebalancer()


def _cmd_rebalance(args: argparse.Namespace) -> int:
    state = load_json(args.snapshot)
    rebalancer = ResourceExchangeRebalancer(
        _make_algorithm(args),
        exchange_machines=args.exchange,
        required_returns=args.returns,
    )
    with _ObsSession(args):
        report = rebalancer.run(state)
    print(report.format_table())
    if not report.feasible:
        print("\nWARNING: no feasible rebalancing found", file=sys.stderr)
    if args.out:
        # Persist the augmented fleet with the final assignment.
        from repro.cluster import ExchangeLedger
        from repro.workloads import make_exchange_machines

        grown, _ = ExchangeLedger.borrow(
            state, make_exchange_machines(state, args.exchange)
        )
        grown.apply_assignment(report.result.target_assignment)
        save_json(grown, args.out)
        print(f"\nwrote rebalanced snapshot -> {args.out}")
    return 0 if report.feasible else 1


def _cmd_runtime(args: argparse.Namespace) -> int:
    # Local imports: the runtime stack pulls in the simulation layers,
    # which the other subcommands don't need at startup.
    import numpy as np

    from repro.algorithms import SRA as _SRA
    from repro.algorithms import AlnsConfig as _AlnsConfig
    from repro.algorithms import MigrationBudget as _MigrationBudget
    from repro.algorithms import SRAConfig as _SRAConfig
    from repro.migration import BandwidthModel
    from repro.online import PopularityDrift
    from repro.runtime import (
        ClusterHandle,
        DriftDetectorConfig,
        DriftProcess,
        IncrementalRebalanceController,
        QueryArrivalProcess,
        RebalanceController,
        Runtime,
        ServingFleet,
        synthetic_profile,
    )
    from repro.simulate import WorkProfile, diurnal_rate, nonhomogeneous_arrivals, summarize

    state = load_json(args.snapshot)
    if not state.is_fully_assigned():
        print("runtime: snapshot must be fully assigned", file=sys.stderr)
        return 2
    if args.controller != "off" and args.rebalance_at is not None:
        print(
            "runtime: --controller and --rebalance-at are exclusive "
            "(one rebalancing loop per run)",
            file=sys.stderr,
        )
        return 2
    if args.episodes_out and args.controller == "off" and args.rebalance_at is None:
        print("runtime: --episodes-out needs a controller", file=sys.stderr)
        return 2
    if args.profile:
        profile = WorkProfile.load_json(args.profile)
        if profile.num_shards != state.num_shards:
            print(
                f"runtime: profile covers {profile.num_shards} shards, "
                f"snapshot has {state.num_shards}",
                file=sys.stderr,
            )
            return 2
    else:
        profile = synthetic_profile(
            state,
            queries_per_second=args.arrival_rate,
            postings_per_cpu_second=args.postings_per_cpu_second,
            noise=args.noise,
            seed=args.seed,
        )

    rng = np.random.default_rng(args.seed)
    if args.arrival_trace == "diurnal":
        rate = diurnal_rate(
            args.arrival_rate, peak_ratio=args.peak_ratio, period=args.duration
        )
        times = nonhomogeneous_arrivals(rate, args.duration, seed=args.seed)
    else:
        n = rng.poisson(args.arrival_rate * args.duration)
        times = np.sort(rng.uniform(0.0, args.duration, size=n))
    query_rows = rng.integers(0, profile.num_queries, size=times.size)

    cpu_idx = state.schema.index("cpu") if "cpu" in state.schema.names else 0
    speeds = state.capacity[:, cpu_idx] * args.postings_per_cpu_second

    with _ObsSession(args):
        fleet = ServingFleet(speeds)
        location = state.assignment_view().copy()
        arrivals = QueryArrivalProcess(
            fleet, location, profile.work, np.arange(state.num_shards), times, query_rows
        )
        runtime = Runtime()
        runtime.add(arrivals)
        handle = ClusterHandle(state)
        if args.drift is not None:
            runtime.add(
                DriftProcess(
                    handle,
                    PopularityDrift(
                        drift=args.drift,
                        target_utilization=args.drift_target,
                        seed=args.seed,
                    ),
                    epochs=args.drift_epochs,
                    epoch_length=args.duration / args.drift_epochs,
                )
            )
        controller = None
        if args.rebalance_at is not None:
            controller = RebalanceController(
                handle,
                _SRA(
                    _SRAConfig(
                        alns=_AlnsConfig(iterations=args.iterations, seed=args.seed)
                    )
                ),
                policy=args.rebalance_policy,
                threshold=args.rebalance_threshold,
                execution="simulated",
                fleet=fleet,
                location=location,
                bandwidth=BandwidthModel(bandwidth=args.bandwidth),
                transfer_overhead=args.transfer_overhead,
                trigger_at=args.rebalance_at,
            )
            runtime.add(controller)
        elif args.controller != "off":
            budget = None
            if args.budget_moves is not None or args.budget_bytes is not None:
                budget = _MigrationBudget(
                    max_moves=args.budget_moves, max_bytes=args.budget_bytes
                )
            sra = _SRA(
                _SRAConfig(
                    alns=_AlnsConfig(iterations=args.iterations, seed=args.seed),
                    migration_budget=budget,
                )
            )
            common = dict(
                execution="simulated",
                fleet=fleet,
                location=location,
                bandwidth=BandwidthModel(bandwidth=args.bandwidth),
                transfer_overhead=args.transfer_overhead,
                check_interval=args.check_interval,
                horizon=args.duration,
                cooldown=args.cooldown,
            )
            if args.controller == "incremental":
                controller = IncrementalRebalanceController(
                    handle,
                    sra,
                    detector_config=DriftDetectorConfig(
                        hot_threshold=args.hot_threshold,
                        slope_threshold=args.slope_threshold,
                    ),
                    **common,
                )
            else:
                controller = RebalanceController(
                    handle,
                    sra,
                    policy=args.controller,
                    threshold=args.rebalance_threshold,
                    **common,
                )
            runtime.add(controller)
        end = runtime.run()
        fleet.flush()

        lat = arrivals.latencies()
        window = max(args.duration, float(times[-1])) if times.size else args.duration
        busy = fleet.busy_fraction(window)
        print(f"queries           {arrivals.queries_completed}")
        print(f"simulated end (s) {end:.3f}")
        if lat.size:
            summary = summarize(lat)
            print(f"latency p50 (ms)  {1e3 * summary.p50:.3f}")
            print(f"latency p95 (ms)  {1e3 * summary.p95:.3f}")
            print(f"latency p99 (ms)  {1e3 * summary.p99:.3f}")
        print(f"peak busy         {float(busy.max()):.4f}")
        if controller is not None:
            for ep in controller.episodes:
                print(
                    f"rebalance at t={ep['time']:.2f}: feasible={ep['feasible']} "
                    f"moves={ep['moves']} waves={ep['waves']} "
                    f"bytes={ep['bytes_moved']:.3g} "
                    f"window={ep['window_seconds']:.3f}s"
                )
            if not controller.episodes:
                print("rebalance         not triggered")
            if args.episodes_out:
                import json

                with open(args.episodes_out, "w", encoding="utf-8") as fh:
                    json.dump(controller.episodes, fh, indent=2, sort_keys=True)
                    fh.write("\n")
    return 0


def _parse_param_overrides(pairs: Sequence[str]) -> dict[str, str]:
    """Parse repeated ``--param k=v`` flags into a dict (raw strings;
    type coercion happens against the scenario schema)."""
    overrides: dict[str, str] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"--param expects K=V, got {pair!r}")
        overrides[key] = value
    return overrides


def _scenario_schema_lines(family) -> list[str]:
    return [f"    {p.describe():44s} {p.doc}" for p in family.params]


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro import scenarios

    if args.scenarios_command == "list":
        for family in scenarios.list_families():
            print(f"{family.name}  —  {family.summary}")
            for line in _scenario_schema_lines(family):
                print(line)
        return 0

    if args.scenarios_command == "show":
        try:
            family = scenarios.get_family(args.name)
        except ValueError as exc:
            print(f"scenarios: {exc}", file=sys.stderr)
            return 2
        spec = scenarios.ScenarioSpec(family.name, {}, seed=0)
        _, resolved, digest = scenarios.resolve(spec)
        print(family.name)
        print(f"  {family.summary}")
        print("  parameters:")
        for line in _scenario_schema_lines(family):
            print(line)
        print(f"  default spec hash (seed 0): {digest}")
        return 0

    if args.scenarios_command == "generate":
        try:
            overrides = _parse_param_overrides(args.param)
            spec = scenarios.ScenarioSpec(args.name, overrides, seed=args.seed)
            _, resolved, digest = scenarios.resolve(spec)
            state = scenarios.generate_instance(spec)
        except ValueError as exc:
            print(f"scenarios: {exc}", file=sys.stderr)
            return 2
        save_json(state, args.out)
        print(
            f"wrote scenario {args.name!r} (hash {digest}): "
            f"{state.num_machines} machines, {state.num_shards} shards, "
            f"peak {state.peak_utilization():.3f} -> {args.out}"
        )
        return 0

    assert args.scenarios_command == "matrix"
    return _cmd_scenarios_matrix(args)


def _cmd_scenarios_matrix(args: argparse.Namespace) -> int:
    import json as _json

    from repro import scenarios

    algorithms = [a.strip() for a in args.algorithms.split(",") if a.strip()]
    try:
        if args.smoke:
            specs = scenarios.smoke_specs(seed=args.seed)
        else:
            if not args.scenario:
                print(
                    "scenarios matrix: give --smoke or at least one --scenario",
                    file=sys.stderr,
                )
                return 2
            per_scenario: dict[str, dict[str, str]] = {
                name: {} for name in args.scenario
            }
            for pair in args.param:
                target, sep, kv = pair.partition(".")
                if not sep or target not in per_scenario:
                    raise ValueError(
                        f"--param expects NAME.K=V for an included scenario, "
                        f"got {pair!r} (included: {sorted(per_scenario)})"
                    )
                per_scenario[target].update(_parse_param_overrides([kv]))
            specs = [
                scenarios.ScenarioSpec(name, overrides, seed=args.seed)
                for name, overrides in per_scenario.items()
            ]
        for spec in specs:
            scenarios.resolve(spec)
        unknown = [a for a in algorithms if a not in scenarios.ALGORITHMS]
        if unknown:
            raise ValueError(
                f"unknown algorithm(s) {unknown}; "
                f"available: {sorted(scenarios.ALGORITHMS)}"
            )
    except ValueError as exc:
        print(f"scenarios: {exc}", file=sys.stderr)
        return 2

    with _ObsSession(args):
        cells = scenarios.run_matrix(
            specs, algorithms, iterations=args.iterations, n_workers=args.workers
        )
    from repro.experiments import print_table

    for cell in cells:
        print_table(cell.rows, title=f"matrix cell {cell.cell}")
        if not cell.ok:
            print(f"cell {cell.cell} FAILED: {cell.error}", file=sys.stderr)
    if args.out_dir:
        scenarios.save_matrix(cells, args.out_dir)
        print(f"\nwrote {len(cells)} cells -> {args.out_dir}")
    ok = all(cell.ok for cell in cells)

    if args.verify_determinism and cells:
        first = cells[0]
        rerun = scenarios.run_cell(
            first.spec.to_dict(), first.algorithm, args.iterations
        )
        if _json.dumps(rerun, sort_keys=True) != _json.dumps(
            first.rows, sort_keys=True
        ):
            print(
                f"determinism violation: rerun of cell {first.cell} diverged",
                file=sys.stderr,
            )
            return 1
        print(f"determinism verified: cell {first.cell} rerun is identical")
    return 0 if ok else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import REGISTRY, is_full_run, print_table
    from repro.parallel import registry_order, run_experiments, save_tables

    if args.all:
        keys = None
    elif args.id is None:
        print("experiment: give an id (e.g. e3) or --all", file=sys.stderr)
        return 2
    else:
        key = args.id.lower()
        if key not in REGISTRY:
            print(
                f"unknown experiment {args.id!r}; "
                f"available: {sorted(REGISTRY, key=registry_order)}",
                file=sys.stderr,
            )
            return 2
        keys = [key]
    fast = not (args.full or is_full_run())
    with _ObsSession(args):
        results = run_experiments(keys, fast=fast, n_workers=args.workers)
    for res in results:
        print_table(res.rows, title=f"experiment {res.key}")
        if not res.ok:
            print(f"experiment {res.key} FAILED: {res.error}", file=sys.stderr)
    if args.out_dir:
        save_tables(results, args.out_dir)
        print(f"\nwrote {len(results)} tables -> {args.out_dir}")
    return 0 if all(res.ok for res in results) else 1


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "generate":
        return _cmd_generate(args)
    if args.command == "info":
        return _cmd_info(args)
    if args.command in ("run", "rebalance"):
        return _cmd_rebalance(args)
    if args.command == "runtime":
        return _cmd_runtime(args)
    if args.command == "lint":
        from repro.analysis.cli import run as _run_lint

        return _run_lint(args)
    if args.command == "scenarios":
        return _cmd_scenarios(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover - `python -m repro.cli`
    raise SystemExit(main())
