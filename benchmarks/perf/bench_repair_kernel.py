#!/usr/bin/env python
"""Microbenchmarks for the repair-operator scoring kernel.

Times the primitives behind greedy/regret-2 repairs (score-matrix build,
single-column refresh, per-step partition) and each repair operator
end-to-end at two instance sizes.  These are the numbers to watch when
touching src/repro/algorithms/repair.py — see the implementation notes
in that module's docstring for why the kernel avoids axis-1 reductions.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

import numpy as np  # noqa: E402

from repro.algorithms import destroy as destroy_ops  # noqa: E402
from repro.algorithms import repair as repair_ops  # noqa: E402
from repro.workloads import scaling_suite  # noqa: E402


def bench(label: str, func, n: int = 200) -> None:
    func()
    t0 = time.perf_counter()
    for _ in range(n):
        func()
    per = (time.perf_counter() - t0) / n
    unit, scale = ("us", 1e6) if per < 1e-3 else ("ms", 1e3)
    print(f"{label:46s} {per * scale:9.2f} {unit}")


def main() -> None:
    for m, spm in ((50, 6), (400, 6)):
        ((name, state),) = list(scaling_suite(sizes=((m, spm),)))
        print(f"--- {name} ---")
        rng = np.random.default_rng(0)
        work = state.copy()
        removed = destroy_ops.random_removal(work, rng, 100)

        kern = repair_ops._ScoreKernel(work, removed)
        bench("score-matrix build (q x m)", lambda: repair_ops._ScoreKernel(work, removed))
        bench("column refresh (one machine)", lambda: kern.refresh_column(3))
        bench("best_machine (argmin of row)", lambda: kern.best_machine(0))
        active = np.arange(kern.q)
        bench(
            "per-step regret partition (active rows)",
            lambda: np.partition(kern.scores[active], 1, axis=1),
        )

        for op in (repair_ops.greedy_best_fit, repair_ops.regret2_insertion):

            def e2e(op=op):
                trial = state.copy()
                batch = destroy_ops.random_removal(trial, rng, 100)
                op(trial, rng, batch)

            bench(f"{op.__name__} end-to-end (destroy 100)", e2e, n=30)
        print()


if __name__ == "__main__":
    main()
