"""Transaction (undo journal) tests for ClusterState.

The delta-evaluated ALNS loop mutates the incumbent in place and rolls
back rejected candidates, so these tests pin the contract the search
relies on (docs/ARCHITECTURE.md, "Delta evaluation contract"):

* rollback restores every observable — assignment, loads, counts, peak
  cache, vacancy, blocking, replica conflicts — **bitwise**, in both
  snapshot and journal modes;
* commit keeps the mutation and leaves every incremental cache equal to
  a from-scratch recomputation (``validate()`` audits all of them);
* real destroy/repair operator pairs ride transactions cleanly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.destroy import DEFAULT_DESTROY_OPS, exchange_swap_removal
from repro.algorithms.repair import DEFAULT_REPAIR_OPS
from repro.cluster import ClusterState, Machine, Shard
from repro.workloads.replicated import ReplicatedConfig, generate_replicated
from repro.workloads.synthetic import SyntheticConfig, generate

MODES = ("snapshot", "journal")


def synthetic_state(seed=0, m=8, spm=5):
    return generate(
        SyntheticConfig(
            num_machines=m,
            shards_per_machine=spm,
            target_utilization=0.8,
            seed=seed,
        )
    )


def replicated_state(seed=2):
    return generate_replicated(
        ReplicatedConfig(
            base=SyntheticConfig(num_machines=8, shards_per_machine=4, seed=seed),
            replication_factor=2,
        )
    )


def observables(state: ClusterState) -> dict:
    return {
        "assignment": state.assignment,
        "loads": state.loads.copy(),
        "counts": state.shard_counts(),
        "peaks": state.machine_peak_utilization(),
        "peak": state.peak_utilization(),
        "vacant": state.num_vacant_in_service,
        "vacant_ids": state.vacant_machines().tolist(),
        "unassigned": state.unassigned_shards().tolist(),
        "blocked": state.blocked_mask.copy(),
        "conflicts": state.replica_conflicts(),
        "conflict_count": state.replica_conflict_count,
    }


def assert_observables_equal(a: dict, b: dict) -> None:
    """Bitwise equality — what rollback guarantees (value restore)."""
    for key in a:
        got, want = a[key], b[key]
        if isinstance(want, np.ndarray):
            # Bitwise: array_equal, not allclose.
            assert np.array_equal(got, want), key
        else:
            assert got == want, key


def assert_observables_consistent(a: dict, b: dict) -> None:
    """Committed caches vs a from-scratch rebuild: structural observables
    are exact; accumulated floats (loads, peaks) agree to accumulation
    round-off — a committed delta sums demands in move order, a rebuild
    sums them in shard order."""
    for key in a:
        got, want = a[key], b[key]
        if isinstance(want, np.ndarray) and want.dtype.kind == "f":
            np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)
        elif isinstance(want, np.ndarray):
            assert np.array_equal(got, want), key
        elif isinstance(want, float):
            assert got == pytest.approx(want, rel=1e-12, abs=1e-12), key
        else:
            assert got == want, key


class TestTransactionBasics:
    @pytest.mark.parametrize("mode", MODES)
    def test_rollback_restores_single_ops(self, mode):
        state = synthetic_state()
        before = observables(state)
        shard = int(np.flatnonzero(state.assignment_view() >= 0)[0])
        other = (state.machine_of(shard) + 1) % state.num_machines
        state.begin(mode=mode)
        state.move(shard, other)
        state.unassign(shard + 1)
        state.assign_shard(shard + 1, other)
        state.rollback()
        assert_observables_equal(observables(state), before)
        state.validate()

    @pytest.mark.parametrize("mode", MODES)
    def test_commit_keeps_changes_and_caches(self, mode):
        state = synthetic_state()
        shard = int(np.flatnonzero(state.assignment_view() >= 0)[0])
        other = (state.machine_of(shard) + 1) % state.num_machines
        state.begin(mode=mode)
        state.move(shard, other)
        state.commit()
        assert state.machine_of(shard) == other
        state.validate()
        # Caches equal a from-scratch rebuild on an identical twin.
        twin = synthetic_state()
        twin.apply_assignment(state.assignment)
        assert_observables_consistent(observables(state), observables(twin))

    def test_nested_begin_rejected(self):
        state = synthetic_state()
        state.begin()
        with pytest.raises(RuntimeError, match="transaction"):
            state.begin()
        state.rollback()

    def test_commit_and_rollback_require_transaction(self):
        state = synthetic_state()
        with pytest.raises(RuntimeError, match="without begin"):
            state.commit()
        with pytest.raises(RuntimeError, match="without begin"):
            state.rollback()

    def test_copy_and_apply_assignment_refused_in_transaction(self):
        state = synthetic_state()
        state.begin()
        with pytest.raises(RuntimeError, match="transaction"):
            state.copy()
        with pytest.raises(RuntimeError, match="transaction"):
            state.apply_assignment(state.assignment)
        state.rollback()

    @pytest.mark.parametrize("mode", MODES)
    def test_blocking_rolls_back(self, mode):
        state = synthetic_state()
        before = observables(state)
        state.begin(mode=mode)
        state.unassign_many([int(j) for j in state.machine_shards(0)])
        state.block_machine(0)
        state.unassign_many([int(j) for j in state.machine_shards(1)])
        state.rollback()
        assert_observables_equal(observables(state), before)
        assert not state.blocked_mask[0]
        state.validate()


class TestOperatorTransactions:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("replicated", [False, True])
    def test_destroy_repair_rollback_is_bitwise(self, mode, replicated):
        state = replicated_state() if replicated else synthetic_state(seed=4)
        rng = np.random.default_rng(7)
        for round_idx in range(12):
            before = observables(state)
            destroy = DEFAULT_DESTROY_OPS[round_idx % len(DEFAULT_DESTROY_OPS)]
            repair = DEFAULT_REPAIR_OPS[round_idx % len(DEFAULT_REPAIR_OPS)]
            state.begin(mode=mode)
            removed = destroy(state, rng, int(rng.integers(1, 8)))
            repair(state, rng, removed)
            if round_idx % 3 == 0:
                state.commit()
                state.validate()
            else:
                state.rollback()
                assert_observables_equal(observables(state), before)
                state.validate()

    @pytest.mark.parametrize("mode", MODES)
    def test_exchange_swap_blocking_rolls_back(self, mode):
        state = synthetic_state(seed=5)
        for j in state.machine_shards(2):
            state.move(int(j), 3)
        state.block_machine(2)
        before = observables(state)
        rng = np.random.default_rng(3)
        state.begin(mode=mode)
        removed = exchange_swap_removal(state, rng, 4)
        DEFAULT_REPAIR_OPS[0](state, rng, removed)
        state.rollback()
        assert_observables_equal(observables(state), before)
        state.validate()


class TestJournalProperties:
    @given(
        seed=st.integers(0, 30),
        ops=st.lists(st.integers(0, 99), min_size=1, max_size=25),
        mode=st.sampled_from(MODES),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_mutation_sequences_roll_back(self, seed, ops, mode):
        machines = Machine.homogeneous(4, 12.0)
        shards = Shard.uniform(10, 1.0)
        state = ClusterState(machines, shards, [j % 4 for j in range(10)])
        rng = np.random.default_rng(seed)
        before = observables(state)
        state.begin(mode=mode)
        for code in ops:
            j = int(rng.integers(state.num_shards))
            i = int(rng.integers(state.num_machines))
            kind = code % 4
            if kind == 0:
                if state.machine_of(j) >= 0 and not state.blocked_mask[i]:
                    state.move(j, i)
            elif kind == 1:
                if state.machine_of(j) >= 0:
                    state.unassign(j)
            elif kind == 2:
                if state.machine_of(j) < 0 and not state.blocked_mask[i]:
                    state.assign_shard(j, i)
            else:
                if state.blocked_mask[i]:
                    state.unblock_machine(i)
                elif not state.machine_shards(i).size:
                    state.block_machine(i)
        state.rollback()
        assert_observables_equal(observables(state), before)
        state.validate()

    @given(
        seed=st.integers(0, 30),
        mode=st.sampled_from(MODES),
    )
    @settings(max_examples=30, deadline=None)
    def test_committed_caches_match_rebuild(self, seed, mode):
        state = replicated_state(seed=seed % 5)
        rng = np.random.default_rng(seed)
        state.begin(mode=mode)
        for _ in range(15):
            j = int(rng.integers(state.num_shards))
            i = int(rng.integers(state.num_machines))
            if state.machine_of(j) >= 0:
                state.move(j, i)
        state.commit()
        state.validate()
        twin = replicated_state(seed=seed % 5)
        twin.apply_assignment(state.assignment)
        assert_observables_consistent(observables(state), observables(twin))
