"""Inverted index with NumPy postings.

Postings are stored per term as parallel arrays ``(doc_ids, term_freqs)``
sorted by doc id — the structure every search engine core uses, minus
compression.  Index statistics (document count, average length, per-term
document frequency) feed the BM25 scorer, and the byte/size accessors
feed the shard demand model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.engine.text import Document

__all__ = ["Postings", "InvertedIndex"]


@dataclass(frozen=True)
class Postings:
    """One term's posting list: doc ids (sorted) and term frequencies."""

    doc_ids: np.ndarray
    term_freqs: np.ndarray

    def __post_init__(self) -> None:
        if self.doc_ids.shape != self.term_freqs.shape:
            raise ValueError("doc_ids and term_freqs must be parallel arrays")

    def __len__(self) -> int:
        return int(self.doc_ids.shape[0])


class InvertedIndex:
    """Immutable inverted index over a document collection.

    Build with :meth:`build`; query via :meth:`postings` (returns None for
    out-of-vocabulary terms).  Document ids are the original ``doc_id``
    values — they need not be dense, so per-shard indexes keep global ids.
    """

    def __init__(
        self,
        postings: Mapping[str, Postings],
        doc_lengths: Mapping[int, int],
    ) -> None:
        self._postings = dict(postings)
        self._doc_lengths = dict(doc_lengths)
        total = sum(self._doc_lengths.values())
        self._avgdl = total / len(self._doc_lengths) if self._doc_lengths else 0.0

    # ---------------------------------------------------------------- build
    @staticmethod
    def build(docs: Iterable[Document]) -> "InvertedIndex":
        """Build an index from documents (single pass, O(total tokens))."""
        doc_lengths: dict[int, int] = {}
        term_docs: dict[str, dict[int, int]] = {}
        for doc in docs:
            if doc.doc_id in doc_lengths:
                raise ValueError(f"duplicate doc_id {doc.doc_id}")
            doc_lengths[doc.doc_id] = len(doc)
            for tok in doc.tokens:
                term_docs.setdefault(tok, {})
                term_docs[tok][doc.doc_id] = term_docs[tok].get(doc.doc_id, 0) + 1
        if not doc_lengths:
            raise ValueError("cannot build an index over zero documents")
        postings: dict[str, Postings] = {}
        for term, tfs in term_docs.items():
            ids = np.fromiter(tfs.keys(), dtype=np.int64, count=len(tfs))
            freqs = np.fromiter(tfs.values(), dtype=np.int64, count=len(tfs))
            order = np.argsort(ids)
            postings[term] = Postings(ids[order], freqs[order])
        return InvertedIndex(postings, doc_lengths)

    # -------------------------------------------------------------- queries
    @property
    def num_docs(self) -> int:
        return len(self._doc_lengths)

    @property
    def num_terms(self) -> int:
        return len(self._postings)

    @property
    def avg_doc_length(self) -> float:
        return self._avgdl

    def postings(self, term: str) -> Postings | None:
        """Posting list of *term*, or None when out of vocabulary."""
        return self._postings.get(term)

    def document_frequency(self, term: str) -> int:
        p = self._postings.get(term)
        return len(p) if p is not None else 0

    def doc_length(self, doc_id: int) -> int:
        try:
            return self._doc_lengths[doc_id]
        except KeyError:
            raise KeyError(f"unknown doc_id {doc_id}") from None

    def doc_ids(self) -> np.ndarray:
        """All document ids in this index (sorted)."""
        return np.array(sorted(self._doc_lengths), dtype=np.int64)

    def terms(self) -> Iterable[str]:
        """All indexed terms (arbitrary order)."""
        return self._postings.keys()

    def doc_lengths_map(self) -> dict[int, int]:
        """Copy of the doc-length table (used by the scorer)."""
        return dict(self._doc_lengths)

    # ----------------------------------------------------------- size model
    def total_postings(self) -> int:
        """Number of (term, doc) entries — the traversal-cost unit."""
        return sum(len(p) for p in self._postings.values())

    def size_bytes(self) -> int:
        """Approximate on-disk size: 8 bytes per posting entry pair + term table."""
        return 16 * self.total_postings() + sum(
            len(t) for t in self._postings
        )
