"""Tests for moves, wave scheduling, staging and the cost model.

Includes the canonical deadlock fixture of the paper's motivation: two
full machines that must swap shards can never migrate directly, but one
vacant exchange machine makes the swap feasible.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterState, Machine, Shard
from repro.migration import (
    BandwidthModel,
    Move,
    StagingPlanner,
    WaveScheduler,
    deadlock_cycles,
    dependency_graph,
    diff_moves,
)
from repro.workloads import SyntheticConfig, generate


def swap_deadlock_state(extra_vacant=0, cap=10.0, dem=6.0):
    """Two machines each holding one big shard; target is to swap them."""
    machines = Machine.homogeneous(2 + extra_vacant, cap)
    shards = Shard.uniform(2, dem)
    state = ClusterState(machines, shards, [0, 1])
    target = np.array([1, 0] + [], dtype=np.int64)
    return state, target


def execute_schedule(state, schedule):
    """Replay a schedule wave by wave, asserting the transient constraint
    holds at every instant; returns the final state."""
    sim = state.copy()
    for wave in schedule.waves:
        # All moves in flight: demand occupies src (already) and dst.
        inflight = np.zeros_like(sim.loads)
        for mv in wave:
            assert sim.machine_of(mv.shard_id) == mv.src
            inflight[mv.dst] += sim.demand[mv.shard_id]
        assert np.all(sim.loads + inflight <= sim.capacity + 1e-9), "transient overflow"
        for mv in wave:
            sim.move(mv.shard_id, mv.dst)
    return sim


class TestMove:
    def test_self_move_rejected(self):
        with pytest.raises(ValueError, match="src == dst"):
            Move(shard_id=0, src=1, dst=1, bytes=10.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError, match="bytes"):
            Move(shard_id=0, src=0, dst=1, bytes=-1.0)

    def test_staged_hop_flag(self):
        assert Move(0, 0, 1, 1.0, hop_of=0).is_staged_hop
        assert not Move(0, 0, 1, 1.0).is_staged_hop


class TestDiffMoves:
    def test_identity_yields_no_moves(self):
        state, _ = swap_deadlock_state()
        assert diff_moves(state, state.assignment) == []

    def test_changed_shards_only(self):
        machines = Machine.homogeneous(3, 10.0)
        shards = Shard.uniform(3, 1.0)
        state = ClusterState(machines, shards, [0, 1, 2])
        moves = diff_moves(state, np.array([0, 2, 2]))
        assert len(moves) == 1
        assert moves[0].shard_id == 1 and moves[0].src == 1 and moves[0].dst == 2

    def test_bytes_from_shard_sizes(self):
        machines = Machine.homogeneous(2, 10.0)
        shards = [Shard(id=0, demand=np.ones(3), size_bytes=77.0)]
        state = ClusterState(machines, shards, [0])
        moves = diff_moves(state, np.array([1]))
        assert moves[0].bytes == 77.0

    def test_invalid_target_rejected(self):
        state, _ = swap_deadlock_state()
        with pytest.raises(ValueError, match="unknown machines"):
            diff_moves(state, np.array([5, 0]))

    def test_wrong_shape_rejected(self):
        state, _ = swap_deadlock_state()
        with pytest.raises(ValueError, match="shape"):
            diff_moves(state, np.array([0]))


class TestWaveScheduler:
    def test_single_wave_when_room(self):
        machines = Machine.homogeneous(2, 10.0)
        shards = Shard.uniform(2, 2.0)
        state = ClusterState(machines, shards, [0, 0])
        sched = WaveScheduler().schedule(state, diff_moves(state, np.array([1, 1])))
        assert sched.feasible
        assert sched.num_waves == 1
        final = execute_schedule(state, sched)
        assert final.machine_of(0) == 1 and final.machine_of(1) == 1

    def test_sequencing_across_waves(self):
        # m0 holds 8/10, m1 holds 8/10; move s(3) m0->m1 requires first
        # moving s(3) m1->m2 to free space.
        machines = Machine.homogeneous(3, 10.0)
        shards = [
            Shard(id=0, demand=np.full(3, 5.0)),
            Shard(id=1, demand=np.full(3, 3.0)),
            Shard(id=2, demand=np.full(3, 5.0)),
            Shard(id=3, demand=np.full(3, 3.0)),
        ]
        state = ClusterState(machines, shards, [0, 0, 1, 1])
        target = np.array([0, 1, 1, 2])  # shard1 -> m1, shard3 -> m2
        sched = WaveScheduler().schedule(state, diff_moves(state, target))
        assert sched.feasible
        final = execute_schedule(state, sched)
        np.testing.assert_array_equal(final.assignment, target)

    def test_swap_without_spare_machine_is_stranded(self):
        state, target = swap_deadlock_state()
        sched = WaveScheduler().schedule(state, diff_moves(state, target))
        assert not sched.feasible
        assert len(sched.stranded) == 2

    def test_peak_transient_utilization_counts_inflight(self):
        machines = Machine.homogeneous(2, 10.0)
        shards = Shard.uniform(1, 6.0)
        state = ClusterState(machines, shards, [0])
        sched = WaveScheduler().schedule(state, diff_moves(state, np.array([1])))
        # During flight both machines hold 6/10.
        assert sched.peak_transient_utilization == pytest.approx(0.6)

    def test_is_feasible_helper(self):
        state, target = swap_deadlock_state()
        assert not WaveScheduler().is_feasible(state, diff_moves(state, target))

    def test_empty_moves(self):
        state, _ = swap_deadlock_state()
        sched = WaveScheduler().schedule(state, [])
        assert sched.feasible and sched.num_waves == 0 and sched.num_moves == 0

    def test_empty_moves_report_current_fleet_peak(self):
        # "No migration" still leaves machines loaded: the transient peak
        # of an empty schedule is the fleet's current peak, not 0.0.
        state, _ = swap_deadlock_state()  # both machines at 6/10
        sched = WaveScheduler().schedule(state, [])
        assert sched.peak_transient_utilization == pytest.approx(0.6)

    def test_transient_peak_never_below_fleet_peak(self):
        machines = Machine.homogeneous(2, 10.0)
        shards = Shard.uniform(2, 3.0)
        state = ClusterState(machines, shards, [0, 0])  # m0 at 0.6, m1 empty
        target = np.array([0, 1], dtype=np.int64)
        sched = WaveScheduler().schedule(state, diff_moves(state, target))
        assert sched.feasible
        assert sched.peak_transient_utilization >= 0.6 - 1e-12


class TestDependencyGraph:
    def test_swap_creates_two_cycle(self):
        state, target = swap_deadlock_state()
        moves = diff_moves(state, target)
        cycles = deadlock_cycles(state, moves)
        assert any(set(c) == {0, 1} for c in cycles)

    def test_no_cycle_when_room(self):
        machines = Machine.homogeneous(2, 100.0)
        shards = Shard.uniform(2, 1.0)
        state = ClusterState(machines, shards, [0, 1])
        moves = diff_moves(state, np.array([1, 0]))
        assert deadlock_cycles(state, moves) == []

    def test_graph_has_all_machines_as_nodes(self):
        state, target = swap_deadlock_state(extra_vacant=1)
        g = dependency_graph(state, diff_moves(state, target))
        assert set(g.nodes) == {0, 1, 2}


class TestStagingPlanner:
    def test_direct_when_possible(self):
        machines = Machine.homogeneous(2, 10.0)
        shards = Shard.uniform(2, 2.0)
        state = ClusterState(machines, shards, [0, 0])
        plan = StagingPlanner().plan(state, np.array([0, 1]))
        assert plan.feasible and plan.direct_feasible
        assert plan.num_hops == 0

    def test_swap_deadlock_broken_by_vacant_machine(self):
        state, target = swap_deadlock_state(extra_vacant=1)
        plan = StagingPlanner().plan(state, target)
        assert plan.feasible
        assert not plan.direct_feasible
        assert plan.num_hops == 2  # one shard staged = two hop moves
        assert len(plan.staged_shards) == 1
        final = execute_schedule(state, plan.schedule)
        np.testing.assert_array_equal(final.assignment, target)

    def test_swap_deadlock_without_host_is_infeasible(self):
        state, target = swap_deadlock_state(extra_vacant=0)
        plan = StagingPlanner().plan(state, target)
        assert not plan.feasible
        assert not plan.direct_feasible

    def test_prefers_exchange_host(self):
        # Two candidate hosts: in-service m2 (vacant) and exchange m3.
        machines = Machine.homogeneous(3, 10.0) + [
            Machine(id=3, capacity=np.full(3, 10.0), exchange=True)
        ]
        shards = Shard.uniform(2, 6.0)
        state = ClusterState(machines, shards, [0, 1])
        plan = StagingPlanner().plan(state, np.array([1, 0]))
        assert plan.feasible
        hop_hosts = {mv.dst for mv in plan.schedule.all_moves() if mv.is_staged_hop}
        assert 3 in hop_hosts  # staged via the exchange machine

    def test_hop_limit_respected(self):
        state, target = swap_deadlock_state(extra_vacant=1)
        plan = StagingPlanner(max_hops_per_shard=1).plan(state, target)
        # One hop (src->host->dst counts as one staging decision).
        assert plan.feasible

    def test_invalid_hop_limit(self):
        with pytest.raises(ValueError, match="max_hops"):
            StagingPlanner(max_hops_per_shard=0)


class TestBandwidthModel:
    def test_wave_duration_busiest_nic(self):
        model = BandwidthModel(bandwidth=100.0)
        wave = [Move(0, 0, 1, 300.0), Move(1, 0, 2, 200.0)]
        # machine 0 sends 500 bytes -> 5 seconds
        assert model.wave_duration(wave, 3) == pytest.approx(5.0)

    def test_cost_summary(self):
        machines = Machine.homogeneous(3, 10.0)
        shards = [Shard(id=j, demand=np.ones(3), size_bytes=100.0) for j in range(2)]
        state = ClusterState(machines, shards, [0, 0])
        sched = WaveScheduler().schedule(state, diff_moves(state, np.array([1, 2])))
        cost = BandwidthModel(bandwidth=100.0).cost(sched, state.num_machines)
        assert cost.num_moves == 2
        assert cost.total_bytes == 200.0
        assert cost.makespan_seconds > 0

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth"):
            BandwidthModel(bandwidth=0.0)


# ---------------------------------------------------------------------------
# Property: planner output is always safe and complete.
# ---------------------------------------------------------------------------

@given(seed=st.integers(min_value=0, max_value=200))
@settings(max_examples=30, deadline=None)
def test_property_planner_schedules_are_safe(seed):
    """For random instances and random capacity-feasible targets, the plan
    (when feasible) executes without ever violating capacity and lands
    exactly on the target assignment."""
    rng = np.random.default_rng(seed)
    state = generate(
        SyntheticConfig(
            num_machines=6,
            shards_per_machine=5,
            target_utilization=0.7,
            placement_skew=0.4,
            seed=seed,
        )
    )
    # Build a random capacity-feasible target by shuffling with first-fit.
    target = state.assignment
    trial = state.copy()
    for j in rng.permutation(state.num_shards)[:10]:
        candidates = rng.permutation(state.num_machines)
        for i in candidates:
            if i != trial.machine_of(int(j)) and trial.fits(int(j), int(i)):
                trial.move(int(j), int(i))
                target[j] = i
                break
    plan = StagingPlanner().plan(state, target)
    if plan.feasible:
        final = execute_schedule(state, plan.schedule)
        np.testing.assert_array_equal(final.assignment, target)
