"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.cluster import load_json


@pytest.fixture()
def snapshot(tmp_path):
    path = tmp_path / "snap.json"
    code = main(
        [
            "generate",
            "--kind", "synthetic",
            "--machines", "8",
            "--shards-per-machine", "4",
            "--utilization", "0.7",
            "--seed", "3",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_synthetic_snapshot_written(self, snapshot):
        state = load_json(snapshot)
        assert state.num_machines == 8
        assert state.num_shards == 32

    def test_datacenter_kind(self, tmp_path, capsys):
        out = tmp_path / "dc.json"
        assert main(
            ["generate", "--kind", "datacenter", "--machines", "20", "--out", str(out)]
        ) == 0
        assert "datacenter snapshot" in capsys.readouterr().out
        assert load_json(out).num_machines == 20

    def test_replicated_kind(self, tmp_path):
        out = tmp_path / "rep.json"
        assert main(
            [
                "generate", "--kind", "replicated", "--machines", "8",
                "--replication", "2", "--out", str(out),
            ]
        ) == 0
        state = load_json(out)
        assert len(state.replica_groups) > 0
        assert not state.has_replica_conflicts()

    def test_snapshot_is_valid_json(self, snapshot):
        data = json.loads(snapshot.read_text())
        assert data["version"] == 1


class TestInfo:
    def test_prints_metrics(self, snapshot, capsys):
        assert main(["info", str(snapshot)]) == 0
        out = capsys.readouterr().out
        for needle in ("machines", "peak utilization", "tightness", "vacant"):
            assert needle in out


class TestRebalance:
    def test_sra_rebalance(self, snapshot, capsys):
        code = main(
            [
                "rebalance", str(snapshot),
                "--algorithm", "sra",
                "--iterations", "150",
                "--exchange", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "peak before" in out and "peak after" in out

    def test_baseline_algorithms(self, snapshot, capsys):
        for algo in ("greedy", "local-search", "noop"):
            assert main(["rebalance", str(snapshot), "--algorithm", algo]) == 0

    def test_output_snapshot_written(self, snapshot, tmp_path):
        out = tmp_path / "after.json"
        code = main(
            [
                "rebalance", str(snapshot),
                "--algorithm", "greedy",
                "--out", str(out),
            ]
        )
        assert code == 0
        after = load_json(out)
        before = load_json(snapshot)
        assert after.num_shards == before.num_shards
        assert after.peak_utilization() <= before.peak_utilization() + 1e-9

    def test_exchange_grows_saved_fleet(self, snapshot, tmp_path):
        out = tmp_path / "after.json"
        main(
            [
                "rebalance", str(snapshot),
                "--algorithm", "sra", "--iterations", "100",
                "--exchange", "2", "--out", str(out),
            ]
        )
        assert load_json(out).num_machines == 10  # 8 + 2 borrowed


class TestObservabilityFlags:
    def test_run_is_an_alias_of_rebalance(self, snapshot, capsys):
        assert main(["run", str(snapshot), "--iterations", "100"]) == 0
        assert "peak before" in capsys.readouterr().out

    def test_trace_and_metrics_artifacts(self, snapshot, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "run", str(snapshot),
                "--iterations", "100",
                "--trace", str(trace),
                "--metrics", str(metrics),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote trace" in out and "wrote metrics" in out

        records = [json.loads(line) for line in trace.read_text().splitlines()]
        span_names = {r["name"] for r in records if r.get("kind") == "span"}
        # Every episode phase appears in the trace.
        assert {
            "episode", "search", "alns.run", "sra.search",
            "migration.plan", "evaluate",
        } <= span_names
        assert any(r.get("kind") == "event" for r in records)

        doc = json.loads(metrics.read_text())
        assert doc["counters"]["episode.runs"] == 1.0
        assert doc["gauges"]["episode.peak_after"] is not None
        assert doc["histograms"]["episode.machine_utilization"]["count"] > 0

    def test_no_flags_means_no_artifacts(self, snapshot, capsys):
        from repro import obs

        assert main(["run", str(snapshot), "--iterations", "100"]) == 0
        assert obs.current() is obs.NULL_OBS
        assert "wrote trace" not in capsys.readouterr().out

    def test_experiment_trace(self, tmp_path, capsys):
        trace = tmp_path / "e1.jsonl"
        assert main(["experiment", "e1", "--trace", str(trace)]) == 0
        assert trace.exists()
        assert "wrote trace" in capsys.readouterr().out


class TestParallelFlags:
    def test_run_with_restarts_and_workers(self, snapshot, capsys):
        code = main(
            [
                "run", str(snapshot),
                "--iterations", "100",
                "--restarts", "2",
                "--workers", "2",
            ]
        )
        assert code == 0
        assert "peak after" in capsys.readouterr().out

    def test_restarts_match_any_worker_count(self, snapshot, capsys):
        outputs = []
        for workers in ("1", "2"):
            assert main(
                [
                    "run", str(snapshot),
                    "--iterations", "100",
                    "--restarts", "2",
                    "--workers", workers,
                ]
            ) == 0
            table = capsys.readouterr().out
            # Strip the wall-clock line; everything else must be identical.
            outputs.append(
                "\n".join(ln for ln in table.splitlines() if "runtime" not in ln)
            )
        assert outputs[0] == outputs[1]


class TestExperiment:
    def test_known_experiment_runs(self, capsys):
        assert main(["experiment", "e1"]) == 0
        out = capsys.readouterr().out
        assert "experiment e1" in out
        assert "instance" in out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["experiment", "e99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_experiment_lists_registry_in_numeric_order(self, capsys):
        assert main(["experiment", "e99"]) == 2
        err = capsys.readouterr().err
        # e2 must come before e10 — numeric registry order, not lexicographic.
        assert err.index("'e2'") < err.index("'e10'")

    def test_missing_id_without_all_errors(self, capsys):
        assert main(["experiment"]) == 2
        assert "--all" in capsys.readouterr().err

    def test_workers_and_out_dir(self, tmp_path, capsys):
        out_dir = tmp_path / "tables"
        code = main(
            ["experiment", "e1", "--workers", "2", "--out-dir", str(out_dir)]
        )
        assert code == 0
        assert "wrote 1 tables" in capsys.readouterr().out
        assert (out_dir / "e1.txt").exists()
        assert (out_dir / "e1.json").exists()
        index = json.loads((out_dir / "index.json").read_text())
        assert index["e1"]["ok"]


class TestRuntime:
    def test_serving_only_run(self, snapshot, capsys):
        code = main(
            [
                "runtime", str(snapshot),
                "--duration", "5", "--arrival-rate", "20", "--seed", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "queries" in out and "latency p99" in out and "peak busy" in out

    def test_diurnal_trace(self, snapshot, capsys):
        code = main(
            [
                "runtime", str(snapshot),
                "--duration", "5", "--arrival-rate", "20",
                "--arrival-trace", "diurnal", "--peak-ratio", "4.0", "--seed", "2",
            ]
        )
        assert code == 0
        assert "queries" in capsys.readouterr().out

    def test_mid_run_rebalance_with_trace(self, snapshot, tmp_path, capsys):
        trace = tmp_path / "rt.jsonl"
        code = main(
            [
                "runtime", str(snapshot),
                "--duration", "8", "--arrival-rate", "20", "--seed", "2",
                "--rebalance-at", "2", "--iterations", "80",
                "--bandwidth", "2e5",
                "--trace", str(trace),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "rebalance at t=2.00" in out
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        names = {r["name"] for r in records}
        assert "runtime.run" in names
        assert "runtime.wave.start" in names
        assert "runtime.migration.complete" in names

    def test_measured_profile_shard_mismatch_errors(self, snapshot, tmp_path, capsys):
        from repro.simulate import WorkProfile
        import numpy as np

        bad = tmp_path / "profile.json"
        WorkProfile(np.ones((3, 2))).save_json(bad)
        code = main(["runtime", str(snapshot), "--profile", str(bad)])
        assert code == 2
        assert "profile covers" in capsys.readouterr().err


class TestScenarios:
    def test_list_shows_all_families_with_schemas(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        for name in (
            "zipf-popularity",
            "correlated-demand",
            "capacity-headroom",
            "heterogeneous-generations",
            "multi-tenant",
            "failure-storm",
            "replicated-shards",
        ):
            assert name in out
        assert "num_machines" in out  # parameter schemas are printed

    def test_show_prints_parameter_ranges(self, capsys):
        assert main(["scenarios", "show", "failure-storm"]) == 0
        out = capsys.readouterr().out
        assert "waves" in out
        assert "loss_fraction" in out
        assert "seed" not in out.split()[0]  # header is the scenario name

    def test_show_unknown_scenario_errors(self, capsys):
        assert main(["scenarios", "show", "quantum-noise"]) == 2
        err = capsys.readouterr().err
        assert "quantum-noise" in err
        assert "zipf-popularity" in err  # alternatives listed

    def test_generate_writes_snapshot(self, tmp_path, capsys):
        out = tmp_path / "scn.json"
        code = main(
            [
                "scenarios", "generate", "zipf-popularity",
                "--param", "num_machines=6",
                "--param", "shards_per_machine=3",
                "--seed", "4",
                "--out", str(out),
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        assert "hash" in stdout
        state = load_json(out)
        state.validate()
        assert state.num_machines == 6
        assert state.num_shards == 18

    def test_generate_preserves_offline_machines(self, tmp_path):
        out = tmp_path / "storm.json"
        code = main(
            [
                "scenarios", "generate", "failure-storm",
                "--param", "num_machines=8",
                "--param", "shards_per_machine=3",
                "--param", "waves=1",
                "--out", str(out),
            ]
        )
        assert code == 0
        assert int(load_json(out).offline_mask.sum()) >= 1

    def test_generate_unknown_param_errors(self, tmp_path, capsys):
        code = main(
            [
                "scenarios", "generate", "zipf-popularity",
                "--param", "warp_factor=9",
                "--out", str(tmp_path / "x.json"),
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "warp_factor" in err
        assert "num_machines" in err  # declared parameters listed

    def test_generate_out_of_range_param_errors(self, tmp_path, capsys):
        code = main(
            [
                "scenarios", "generate", "zipf-popularity",
                "--param", "target_utilization=7.5",
                "--out", str(tmp_path / "x.json"),
            ]
        )
        assert code == 2
        assert "target_utilization" in capsys.readouterr().err

    def test_generate_malformed_param_errors(self, tmp_path, capsys):
        code = main(
            [
                "scenarios", "generate", "zipf-popularity",
                "--param", "num_machines",
                "--out", str(tmp_path / "x.json"),
            ]
        )
        assert code == 2
        assert "K=V" in capsys.readouterr().err

    def test_matrix_smoke_runs_and_writes_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "mat"
        code = main(
            [
                "scenarios", "matrix", "--smoke",
                "--algorithms", "greedy,noop",
                "--iterations", "10",
                "--out-dir", str(out_dir),
                "--verify-determinism",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "determinism verified" in out
        index = json.loads((out_dir / "index.json").read_text())
        assert len(index) == 8  # 4 smoke specs x 2 algorithms
        assert all(meta["ok"] for meta in index.values())

    def test_matrix_explicit_scenarios_with_params(self, capsys):
        code = main(
            [
                "scenarios", "matrix",
                "--scenario", "zipf-popularity",
                "--param", "zipf-popularity.num_machines=6",
                "--param", "zipf-popularity.shards_per_machine=3",
                "--algorithms", "noop",
                "--iterations", "5",
            ]
        )
        assert code == 0
        assert "matrix cell zipf-popularity-" in capsys.readouterr().out

    def test_matrix_unknown_algorithm_errors(self, capsys):
        code = main(
            [
                "scenarios", "matrix", "--smoke",
                "--algorithms", "greedy,annealing",
            ]
        )
        assert code == 2
        assert "annealing" in capsys.readouterr().err

    def test_matrix_without_smoke_or_scenario_errors(self, capsys):
        assert main(["scenarios", "matrix"]) == 2
        assert "--smoke" in capsys.readouterr().err

    def test_matrix_param_for_excluded_scenario_errors(self, capsys):
        code = main(
            [
                "scenarios", "matrix",
                "--scenario", "zipf-popularity",
                "--param", "failure-storm.waves=1",
                "--algorithms", "noop",
            ]
        )
        assert code == 2
        assert "failure-storm" in capsys.readouterr().err


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_generate_requires_out(self):
        with pytest.raises(SystemExit):
            main(["generate"])
