"""A self-contained branch-and-bound solver for the reassignment IP.

``scipy.optimize.milp`` (HiGHS) is the production backend; this module
provides an independent, pure-Python branch-and-bound over the same
:class:`~repro.model.formulation.BuiltModel` matrices:

* LP relaxations via ``scipy.optimize.linprog`` (HiGHS-LP) give node
  bounds;
* branching is most-fractional-binary, exploring the rounded value
  first (depth-first, so an incumbent appears early);
* every LP solution is also rounded into a candidate assignment and
  repaired to feasibility when possible, tightening the incumbent.

It exists for two reasons: as a fallback exact backend with zero
dependencies beyond LP, and as an executable specification of the model
(the tests cross-check it against HiGHS on small instances — two
independent solvers agreeing is strong evidence the matrices mean what
DESIGN.md says they mean).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro._validation import check_positive
from repro.cluster import ClusterState
from repro.model.formulation import BuiltModel, ModelConfig, build_model
from repro.model.solver import MilpResult

__all__ = ["BranchAndBoundSolver"]


@dataclass
class _Node:
    lower: np.ndarray
    upper: np.ndarray
    depth: int


class BranchAndBoundSolver:
    """Exact solver via LP-based branch and bound (see module docstring).

    Parameters
    ----------
    config:
        Model knobs (same as :class:`~repro.model.solver.MilpSolver`).
    time_limit:
        Wall-clock budget in seconds.
    node_limit:
        Maximum branch-and-bound nodes to expand.
    integrality_tol:
        Values within this of an integer count as integral.
    """

    def __init__(
        self,
        config: ModelConfig | None = None,
        *,
        time_limit: float = 30.0,
        node_limit: int = 20_000,
        integrality_tol: float = 1e-6,
    ) -> None:
        check_positive("time_limit", time_limit)
        check_positive("node_limit", node_limit)
        self.config = config or ModelConfig()
        self.time_limit = time_limit
        self.node_limit = node_limit
        self.tol = integrality_tol

    # ------------------------------------------------------------------ API
    def solve(self, state: ClusterState) -> MilpResult:
        """Solve the reassignment IP for *state* by branch and bound."""
        model = build_model(state, self.config)
        binaries = np.flatnonzero(model.integrality > 0)

        best_obj = np.inf
        best_x: np.ndarray | None = None
        started = time.perf_counter()  # repro: allow-wall-clock (solver time limit)
        nodes_expanded = 0
        proven = True

        stack = [_Node(model.lower.copy(), model.upper.copy(), 0)]
        while stack:
            # repro: allow-wall-clock (real-time solver budget)
            if time.perf_counter() - started > self.time_limit:
                proven = False
                break
            if nodes_expanded >= self.node_limit:
                proven = False
                break
            node = stack.pop()
            nodes_expanded += 1
            res = self._solve_lp(model, node)
            if res is None:  # infeasible subproblem
                continue
            bound, x = res
            if bound >= best_obj - 1e-9:
                continue  # cannot improve the incumbent

            frac_idx = self._most_fractional(x, binaries)
            if frac_idx is None:
                # Integral LP optimum: new incumbent.
                best_obj = bound
                best_x = x
                continue

            # Rounding heuristic: an early incumbent sharpens pruning.
            cand = self._round_candidate(model, x, node)
            if cand is not None:
                cand_obj = float(model.c @ cand)
                if cand_obj < best_obj - 1e-12:
                    best_obj = cand_obj
                    best_x = cand

            frac = x[frac_idx] - np.floor(x[frac_idx])
            first = 1.0 if frac >= 0.5 else 0.0
            for value in (1.0 - first, first):  # LIFO: `first` explored first
                lo = node.lower.copy()
                hi = node.upper.copy()
                lo[frac_idx] = value
                hi[frac_idx] = value
                stack.append(_Node(lo, hi, node.depth + 1))

        if best_x is None:
            return MilpResult(
                status="infeasible" if proven else "failed",
                assignment=None,
                objective=np.inf,
                peak_utilization=np.inf,
                vacant_machines=(),
            )
        assignment = model.extract_assignment(best_x)
        y = best_x[model.num_shards * model.num_machines : model.z_index]
        return MilpResult(
            status="optimal" if proven else "timeout",
            assignment=assignment,
            objective=float(best_obj) + model.objective_offset,
            peak_utilization=float(best_x[model.z_index]),
            vacant_machines=tuple(int(i) for i in np.flatnonzero(y > 0.5)),
        )

    # ------------------------------------------------------------- internal
    def _solve_lp(self, model: BuiltModel, node: _Node):
        res = optimize.linprog(
            c=model.c,
            A_ub=model.A_ub,
            b_ub=model.b_ub,
            A_eq=model.A_eq,
            b_eq=model.b_eq,
            bounds=np.stack([node.lower, node.upper], axis=1),
            method="highs",
        )
        if not res.success:
            return None
        return float(res.fun), np.asarray(res.x)

    def _most_fractional(self, x: np.ndarray, binaries: np.ndarray):
        vals = x[binaries]
        frac = np.abs(vals - np.round(vals))
        idx = int(np.argmax(frac))
        if frac[idx] <= self.tol:
            return None
        return int(binaries[idx])

    def _round_candidate(
        self, model: BuiltModel, x: np.ndarray, node: _Node
    ) -> np.ndarray | None:
        """Round the LP point to a full solution; None when infeasible.

        Each shard goes to its largest-x machine allowed by the node's
        bounds; y and z are derived; the result is checked against the
        model's constraints directly.
        """
        n, m = model.num_shards, model.num_machines
        xs = x[: n * m].reshape(n, m).copy()
        # Respect node fixings.
        lo = node.lower[: n * m].reshape(n, m)
        hi = node.upper[: n * m].reshape(n, m)
        xs = np.clip(xs, lo, hi)
        xs[hi <= 0] = -np.inf  # forbidden placements
        choice = np.argmax(xs, axis=1)

        cand = np.zeros(model.num_variables)
        cand[np.arange(n) * m + choice] = 1.0
        counts = np.bincount(choice, minlength=m)
        y = (counts == 0).astype(float)
        # y must also respect node bounds.
        y = np.clip(y, node.lower[n * m : n * m + m], node.upper[n * m : n * m + m])
        cand[n * m : n * m + m] = y

        # Derive z as the smallest feasible value, then verify constraints.
        cand[model.z_index] = 0.0
        lhs = model.A_ub @ cand
        # Rows with a z coefficient: lhs + coef*z <= b  ->  z >= (lhs-b)/(-coef)
        z_col = model.A_ub[:, model.z_index].toarray().ravel()
        need = z_col < 0
        z_req = 0.0
        if np.any(need):
            z_req = float(
                np.max((lhs[need] - model.b_ub[need]) / (-z_col[need]), initial=0.0)
            )
        if z_req > 1.0 + 1e-9:
            return None  # violates hard capacity somewhere
        cand[model.z_index] = min(max(z_req, 0.0), 1.0)

        lhs = model.A_ub @ cand
        if np.any(lhs > model.b_ub + 1e-7):
            return None
        eq = model.A_eq @ cand
        if np.any(np.abs(eq - model.b_eq) > 1e-7):
            return None
        return cand
