"""The public facade: borrow, rebalance, plan, settle — in one call.

:class:`ResourceExchangeRebalancer` is the API a downstream user touches:

    >>> from repro import ResourceExchangeRebalancer
    >>> from repro.workloads import generate_zipf
    >>> state = generate_zipf(seed=1)
    >>> report = ResourceExchangeRebalancer(exchange_machines=2).run(state)
    >>> print(report.format_table())          # doctest: +SKIP

It owns the full episode: augment the cluster with borrowed machines,
run the configured algorithm (SRA by default), plan the transient-safe
migration, settle the vacancy-return contract, and package metrics.
"""

from __future__ import annotations

from repro import obs
from repro.algorithms import Rebalancer, SRA, SRAConfig
from repro.cluster import ClusterState, ExchangeLedger
from repro.cluster.exchange import ReturnPolicy
from repro.core.report import RebalanceReport
from repro.metrics import imbalance_report, summarize_plan
from repro.migration import BandwidthModel
from repro.obs.metrics import UTILIZATION_EDGES
from repro.workloads import make_exchange_machines

__all__ = ["ResourceExchangeRebalancer"]


class ResourceExchangeRebalancer:
    """One-call rebalancing with resource exchange.

    Parameters
    ----------
    algorithm:
        A :class:`Rebalancer` instance; defaults to SRA with default
        configuration.
    exchange_machines:
        ``B`` — vacant machines to borrow (sized at the fleet's mean
        capacity; pass ``exchange_capacity_scale`` to change).
    required_returns:
        ``R`` — vacant machines owed back; defaults to ``B``.
    return_policy:
        ``"count"`` (default) or ``"capacity"`` — see
        :class:`repro.cluster.ExchangeLedger`.
    exchange_capacity_scale:
        Borrowed machine capacity relative to the fleet mean.
    bandwidth:
        Network model for makespan reporting.
    """

    def __init__(
        self,
        algorithm: Rebalancer | None = None,
        *,
        exchange_machines: int = 0,
        required_returns: int | None = None,
        return_policy: ReturnPolicy = "count",
        exchange_capacity_scale: float = 1.0,
        bandwidth: BandwidthModel | None = None,
    ) -> None:
        if exchange_machines < 0:
            raise ValueError(f"exchange_machines must be >= 0, got {exchange_machines}")
        if required_returns is not None and required_returns < 0:
            raise ValueError(f"required_returns must be >= 0, got {required_returns}")
        self.algorithm = algorithm or SRA(SRAConfig())
        self.exchange_machines = exchange_machines
        self.required_returns = (
            exchange_machines if required_returns is None else required_returns
        )
        self.return_policy = return_policy
        self.exchange_capacity_scale = exchange_capacity_scale
        self.bandwidth = bandwidth or BandwidthModel()

    def run(self, state: ClusterState) -> RebalanceReport:
        """Execute one full rebalancing episode on *state* (not mutated).

        When an observability bundle is active (``repro.obs``), the
        episode is traced phase by phase — borrow, search (algorithm
        internals included), evaluate — and the returned report carries
        the trace records and the metrics snapshot as attachments.
        """
        o = obs.current()
        with o.tracer.span(
            "episode",
            algorithm=self.algorithm.name,
            machines=state.num_machines,
            shards=state.num_shards,
            exchange_machines=self.exchange_machines,
            required_returns=self.required_returns,
        ) as episode:
            with o.tracer.span("exchange.borrow", requested=self.exchange_machines):
                loaners = make_exchange_machines(
                    state,
                    self.exchange_machines,
                    capacity_scale=self.exchange_capacity_scale,
                )
                grown, ledger = ExchangeLedger.borrow(
                    state,
                    loaners,
                    required_returns=self.required_returns,
                    policy=self.return_policy,
                )
            with o.tracer.span("search", algorithm=self.algorithm.name):
                result = self.algorithm.rebalance(grown, ledger)

            with o.tracer.span("evaluate"):
                final = grown.copy()
                final.apply_assignment(result.target_assignment)
                before = imbalance_report(grown)
                after = imbalance_report(final)
                migration = summarize_plan(
                    result.plan, grown.num_machines, self.bandwidth
                )
            exchanged = (
                len(result.settlement.retained_borrowed_ids)
                if result.settlement is not None
                else 0
            )
            returned = (
                len(result.settlement.returned_ids)
                if result.settlement is not None
                else 0
            )
            episode.set("feasible", result.feasible)
            episode.set("peak_before", before.peak_utilization)
            episode.set("peak_after", after.peak_utilization)

        if o.metrics.enabled:
            m = o.metrics
            m.counter("episode.runs").inc()
            m.counter("episode.moves").inc(migration.num_moves)
            m.counter("episode.bytes_moved").inc(migration.total_bytes)
            m.gauge("episode.peak_before").set(before.peak_utilization)
            m.gauge("episode.peak_after").set(after.peak_utilization)
            m.gauge("episode.makespan_seconds").set(migration.makespan_seconds)
            m.histogram("episode.machine_utilization", UTILIZATION_EDGES).observe_many(
                final.machine_peak_utilization().tolist()
            )
        return RebalanceReport(
            result=result,
            before=before,
            after=after,
            migration=migration,
            borrowed=len(loaners),
            returned=returned,
            exchanged=exchanged,
            trace=o.tracer.records() if o.tracer.enabled else None,
            metrics=o.metrics.to_dict() if o.metrics.enabled else None,
        )
