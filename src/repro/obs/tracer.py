"""Structured event tracer: nestable spans, events, JSONL export.

A :class:`Tracer` records the shape of one run as a tree of **spans**
(named intervals with wall-clock start/end, attributes and counters) and
point-in-time **events** attached to the innermost open span.  Records
are plain dicts, exported one-per-line as JSONL (:meth:`Tracer.export_jsonl`)
and re-loaded with :func:`read_jsonl` — the machine-readable trace of an
episode that EXPERIMENTS.md-style analyses can post-process.

Tracing is **off by default** everywhere in the library: instrumented
code paths obtain the ambient tracer from :func:`repro.obs.current`,
which hands out the :data:`NULL_TRACER` singleton unless a real tracer
was activated.  The null tracer's methods are no-ops and its
``enabled`` flag is False, so hot loops hoist the flag once and skip
even argument construction:

    tracer = obs.current().tracer
    trace_on = tracer.enabled
    for ...:
        if trace_on:
            tracer.event("alns.iter", it=it, objective=obj)

The overhead contract (a disabled tracer must not cost measurable
throughput in the ALNS inner loop) is bounded in CI by the tracer-on
bench smoke gate — see the "Observability" section of
docs/ARCHITECTURE.md.
"""

from __future__ import annotations

import json
import os
import time
from types import TracebackType
from typing import Any, Callable, Iterator

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "read_jsonl", "iter_spans"]


class Span:
    """One open (then closed) interval of a :class:`Tracer`.

    Returned by ``with tracer.span(...) as sp`` so instrumented code can
    attach attributes (:meth:`set`) and accumulate counters (:meth:`add`)
    while the span is live.
    """

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "start", "end",
                 "attrs", "counters")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = -1
        self.parent_id: int | None = None
        self.start = 0.0
        self.end = 0.0
        self.attrs = attrs
        self.counters: dict[str, float] = {}

    def set(self, key: str, value: Any) -> None:
        """Attach attribute *key* = *value* to the span."""
        self.attrs[key] = value

    def add(self, counter: str, value: float = 1.0) -> None:
        """Add *value* to the span-local counter *counter*."""
        self.counters[counter] = self.counters.get(counter, 0.0) + value

    # -------------------------------------------------------- context manager
    def __enter__(self) -> "Span":
        self._tracer._open(self)
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        if exc is not None:
            self.attrs["error"] = repr(exc)
        self._tracer._close(self)
        return False

    def to_record(self) -> dict[str, Any]:
        rec: dict[str, Any] = {
            "kind": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "t0": self.start,
            "t1": self.end,
        }
        if self.attrs:
            rec["attrs"] = self.attrs
        if self.counters:
            rec["counters"] = self.counters
        return rec


class Tracer:
    """Collects spans and events; see the module docstring.

    Parameters
    ----------
    clock:
        Monotonic time source (seconds); injectable for tests.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._records: list[dict[str, Any]] = []
        self._stack: list[Span] = []
        self._next_id = 0
        #: Counters accumulated outside any open span.
        self.root_counters: dict[str, float] = {}

    # ------------------------------------------------------------------- API
    def span(self, name: str, **attrs: Any) -> Span:
        """Context manager opening a span named *name* with *attrs*."""
        return Span(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Record a point-in-time event under the innermost open span."""
        rec: dict[str, Any] = {
            "kind": "event",
            "name": name,
            "t": self._clock(),
            "span": self._stack[-1].span_id if self._stack else None,
        }
        if attrs:
            rec["attrs"] = attrs
        self._records.append(rec)

    def add(self, counter: str, value: float = 1.0) -> None:
        """Add to the innermost open span's counter (or the root counters)."""
        if self._stack:
            self._stack[-1].add(counter, value)
        else:
            self.root_counters[counter] = self.root_counters.get(counter, 0.0) + value

    @property
    def current_span(self) -> Span | None:
        """Innermost open span, or None at top level."""
        return self._stack[-1] if self._stack else None

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    # ----------------------------------------------------------------- export
    def records(self) -> list[dict[str, Any]]:
        """All closed records (completion order), plus root counters."""
        out = list(self._records)
        if self.root_counters:
            out.append({"kind": "counters", "counters": dict(self.root_counters)})
        return out

    def export_jsonl(self, path: str | os.PathLike[str]) -> None:
        """Write one JSON record per line to *path*."""
        with open(path, "w", encoding="utf-8") as fh:
            for rec in self.records():
                fh.write(json.dumps(rec, default=_jsonable) + "\n")

    def ingest(self, records: list[dict[str, Any]]) -> None:
        """Merge *records* produced by another tracer (e.g. a worker process).

        Span/event ids are remapped onto this tracer's id space and the
        foreign trace's root spans are re-parented under the innermost
        open span, so a parent run can absorb per-worker traces into one
        tree.  Worker timestamps come from the worker's own monotonic
        clock and are only meaningful relative to each other, not to the
        parent's clock.
        """
        base = self._next_id
        parent_id = self._stack[-1].span_id if self._stack else None
        high = -1
        for rec in records:
            rec = dict(rec)
            kind = rec.get("kind")
            if kind == "span":
                rec["id"] = int(rec["id"]) + base
                high = max(high, int(rec["id"]))
                rec["parent"] = (
                    parent_id if rec.get("parent") is None else int(rec["parent"]) + base
                )
            elif kind == "event":
                rec["span"] = (
                    parent_id if rec.get("span") is None else int(rec["span"]) + base
                )
            elif kind == "counters":
                # Root counters fold into this tracer's root counters.
                for key, value in rec.get("counters", {}).items():
                    self.root_counters[key] = self.root_counters.get(key, 0.0) + value
                continue
            self._records.append(rec)
        if high >= 0:
            self._next_id = high + 1

    # --------------------------------------------------------------- internal
    def _open(self, span: Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        span.parent_id = self._stack[-1].span_id if self._stack else None
        self._stack.append(span)
        span.start = self._clock()

    def _close(self, span: Span) -> None:
        span.end = self._clock()
        # Tolerate mis-nested exits: unwind to (and including) this span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self._records.append(span.to_record())


class _NullSpan:
    """Shared do-nothing span; one instance serves every disabled call."""

    __slots__ = ()
    name = ""
    span_id = -1
    parent_id = None
    attrs: dict[str, Any] = {}
    counters: dict[str, float] = {}

    def set(self, key: str, value: Any) -> None:
        pass

    def add(self, counter: str, value: float = 1.0) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """Disabled tracer: every method is a no-op (see module docstring)."""

    enabled = False

    def __init__(self) -> None:  # no state at all
        self.root_counters = {}

    def span(self, name: str, **attrs: Any) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def add(self, counter: str, value: float = 1.0) -> None:
        pass

    @property
    def current_span(self) -> Span | None:
        return None

    @property
    def depth(self) -> int:
        return 0

    def records(self) -> list[dict[str, Any]]:
        return []

    def ingest(self, records: list[dict[str, Any]]) -> None:
        pass

    def export_jsonl(self, path: str | os.PathLike[str]) -> None:
        raise RuntimeError("cannot export the disabled NULL_TRACER; "
                           "activate a real Tracer first")


#: The process-wide disabled tracer (default ambient tracer).
NULL_TRACER = NullTracer()


def read_jsonl(path: str | os.PathLike[str]) -> list[dict[str, Any]]:
    """Load records written by :meth:`Tracer.export_jsonl`."""
    out: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def iter_spans(records: list[dict[str, Any]]) -> Iterator[dict[str, Any]]:
    """Yield just the span records of :meth:`Tracer.records` output."""
    return (r for r in records if r.get("kind") == "span")


def _jsonable(value: Any) -> Any:
    """Fallback serializer: numpy scalars/arrays and other oddballs."""
    if hasattr(value, "item"):
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    return str(value)
