"""E19 — what size spare machines should the pool hold? (extension)

Sweeps the borrowed machines' capacity relative to the fleet mean
(0.5×, 1×, 2×) at a fixed budget B = 1 on tight instances.  A bigger
loaner is a better staging host and packing target — but the contract
returns a *count* of machines, so lending big and getting back average
machines drains the pool's capacity over time.  Reported: balance
gained per episode and the capacity the pool nets back under the
``count`` vs ``capacity`` return policies.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import ExchangeLedger
from repro.experiments.common import make_sra
from repro.experiments.harness import register
from repro.workloads import make_exchange_machines, tight_suite


@register("e19")
def run(fast: bool = True) -> list[dict]:
    seeds = (0, 1) if fast else (0, 1, 2, 3)
    scales = (0.5, 1.0, 2.0)
    iterations = 600 if fast else 2000
    rows = []
    for name, state in tight_suite(seeds=seeds):
        for scale in scales:
            grown, ledger = ExchangeLedger.borrow(
                state, make_exchange_machines(state, 1, capacity_scale=scale)
            )
            result = make_sra(iterations, seed=1).rebalance(grown, ledger)
            returned_capacity = (
                float(np.sum(result.settlement.returned_capacity))
                if result.settlement is not None
                else 0.0
            )
            lent_capacity = float(np.sum(ledger.borrowed_capacity()))
            rows.append(
                {
                    "instance": name,
                    "loaner_scale": scale,
                    "peak_before": result.peak_before,
                    "peak_after": result.peak_after,
                    "feasible": result.feasible,
                    "lent_capacity": lent_capacity,
                    "returned_capacity": returned_capacity,
                    "pool_capacity_delta": returned_capacity - lent_capacity,
                }
            )
    return rows
