"""Episode report: everything an operator needs to review a rebalancing."""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any

from repro.algorithms import RebalanceResult
from repro.metrics import ImbalanceReport, MigrationSummary

__all__ = ["RebalanceReport"]


@dataclass(frozen=True)
class RebalanceReport:
    """Full outcome of one :class:`ResourceExchangeRebalancer` episode.

    Attributes
    ----------
    result:
        The raw algorithm result (target assignment, plan, settlement).
    before / after:
        Balance metrics of the initial and final cluster.
    migration:
        Migration cost summary (moves, bytes, makespan).
    borrowed / returned:
        Machine counts of the exchange contract as executed.
    exchanged:
        Number of borrowed machines *retained* in service (an equal
        number of drained in-service machines was returned instead) —
        the headline number of the resource-exchange idea.
    trace / metrics:
        Machine-readable run artifacts — the episode's trace records
        (``repro.obs.Tracer.records()`` format) and metrics snapshot
        (``MetricsRegistry.to_dict()`` format).  None unless an
        observability bundle was active during the episode.
    """

    result: RebalanceResult
    before: ImbalanceReport
    after: ImbalanceReport
    migration: MigrationSummary
    borrowed: int
    returned: int
    exchanged: int
    trace: list[dict[str, Any]] | None = None
    metrics: dict[str, Any] | None = None

    @property
    def feasible(self) -> bool:
        return self.result.feasible

    def save_trace_jsonl(self, path) -> None:
        """Persist the trace attachment as JSONL (requires a traced run)."""
        if self.trace is None:
            raise ValueError("report has no trace; run under repro.obs.observed()")
        with open(path, "w", encoding="utf-8") as fh:
            for rec in self.trace:
                fh.write(json.dumps(rec, default=str) + "\n")

    def save_metrics_json(self, path) -> None:
        """Persist the metrics attachment as JSON (requires a metered run)."""
        if self.metrics is None:
            raise ValueError("report has no metrics; run under repro.obs.observed()")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.metrics, fh, indent=2, sort_keys=True)
            fh.write("\n")

    @property
    def peak_improvement(self) -> float:
        return self.before.peak_utilization - self.after.peak_utilization

    def format_table(self) -> str:
        """Human-readable summary table."""
        rows = [
            ("algorithm", self.result.algorithm),
            ("feasible", str(self.feasible)),
            ("peak before", f"{self.before.peak_utilization:.4f}"),
            ("peak after", f"{self.after.peak_utilization:.4f}"),
            ("cv before", f"{self.before.cv:.4f}"),
            ("cv after", f"{self.after.cv:.4f}"),
            ("jain before", f"{self.before.jain:.4f}"),
            ("jain after", f"{self.after.jain:.4f}"),
            ("moves", str(self.migration.num_moves)),
            ("staging hops", str(self.migration.num_hops)),
            ("waves", str(self.migration.num_waves)),
            ("bytes moved", f"{self.migration.total_bytes:.3g}"),
            ("makespan (s)", f"{self.migration.makespan_seconds:.3g}"),
            (
                "wave seconds",
                " ".join(f"{s:.3g}" for s in self.migration.wave_seconds) or "-",
            ),
            ("borrowed", str(self.borrowed)),
            ("returned", str(self.returned)),
            ("exchanged", str(self.exchanged)),
            ("runtime (s)", f"{self.result.runtime_seconds:.2f}"),
            ("iterations", str(self.result.iterations)),
        ]
        width = max(len(k) for k, _ in rows)
        return "\n".join(f"{k.ljust(width)}  {v}" for k, v in rows)
