"""Per-round migration budgets for incremental rebalancing.

A cold SRA episode may rewrite the whole placement; a *continuous*
controller must not — each round is allowed a bounded amount of churn so
serving capacity is never saturated by index transfers.
:class:`MigrationBudget` declares that allowance.  It is enforced in two
places:

* the SRA best filter rejects any candidate whose placement delta from
  the episode's reference assignment exceeds the budget (and, under
  feasibility coupling, whose *scheduled* transfer volume — staging hops
  included — exceeds ``max_bytes``);
* the destroy portfolio is wrapped in a locality bias (see
  :class:`repro.algorithms.destroy.BudgetLocalityBias`) so that once the
  working state sits at the budget boundary, removal is redirected to
  already-moved shards — re-inserting a moved shard can only keep or
  shrink the move set, so the search walks the boundary instead of
  burning iterations on candidates the filter must veto.

Lives in its own module so both ``sra_config`` and ``destroy`` can
import it without a cycle (``sra_config`` → ``lns`` → ``destroy``).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MigrationBudget"]


@dataclass(frozen=True)
class MigrationBudget:
    """Per-round migration allowance.

    Attributes
    ----------
    max_moves:
        Cap on the number of shards whose machine may differ from the
        episode's reference assignment (``None`` = unbounded).
    max_bytes:
        Cap on the migrated volume.  Inside the search this is screened
        against the summed index sizes of the moved shards; when the
        feasibility coupling computes a staged plan, the *scheduled*
        bytes (staging hops included, ``Schedule.total_bytes()``) are
        held to the same cap, so the budget bounds what the executor
        will actually transfer.  ``None`` = unbounded.

    A budget with both fields ``None`` is the explicit "unbounded"
    marker used by the warm-start parity tests; :attr:`bounded` is
    False for it and SRA treats it exactly like ``migration_budget=None``.
    """

    max_moves: int | None = None
    max_bytes: float | None = None

    def __post_init__(self) -> None:
        if self.max_moves is not None and self.max_moves < 0:
            raise ValueError(f"max_moves must be >= 0, got {self.max_moves}")
        if self.max_bytes is not None and self.max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {self.max_bytes}")

    @property
    def bounded(self) -> bool:
        """True when at least one dimension is actually capped."""
        return self.max_moves is not None or self.max_bytes is not None

    def admits(self, moves: int, byte_volume: float) -> bool:
        """Whether a placement delta of *moves* shards / *byte_volume*
        bytes is within budget."""
        if self.max_moves is not None and moves > self.max_moves:
            return False
        if self.max_bytes is not None and byte_volume > self.max_bytes:
            return False
        return True

    def exhausted(self, moves: int, byte_volume: float) -> bool:
        """Whether the delta sits at (or beyond) the budget boundary —
        the point where the locality bias stops exploratory removal."""
        if self.max_moves is not None and moves >= self.max_moves:
            return True
        if self.max_bytes is not None and byte_volume >= self.max_bytes:
            return True
        return False
