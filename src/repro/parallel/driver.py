"""Parallel experiment driver: run the E1–E20 registry on a worker pool.

``run_experiments`` fans the ``repro.experiments.REGISTRY`` modules
across a :class:`~repro.parallel.runner.ParallelRunner` and aggregates
their row tables in registry order.  Each experiment is internally
deterministic (fixed seeds), so the only columns that vary between a
serial and a parallel run are wall-clock measurements
(``runtime_s``-style fields); everything else is identical — the
property the CI experiment-smoke job relies on.

``save_tables`` writes the aggregated tables as both aligned text and
JSON (plus an ``index.json`` manifest), which is what the CI smoke job
uploads as a build artifact.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from repro.parallel.runner import ParallelRunner, TaskSpec

__all__ = ["ExperimentResult", "registry_order", "run_experiments", "save_tables"]


@dataclass
class ExperimentResult:
    """One experiment's aggregated outcome."""

    key: str
    rows: list[dict[str, Any]]
    ok: bool
    error: str | None
    duration_s: float


def _experiment_task(key: str, fast: bool) -> list[dict[str, Any]]:
    # Imported in the worker so a fresh process builds its own registry.
    from repro.experiments import REGISTRY

    return REGISTRY[key](fast=fast)


def registry_order(key: str) -> tuple[int, str]:
    """Sort key putting experiment ids in numeric order (e2 before e10).

    Plain lexicographic sorting interleaves them (e1, e10, e11, …, e2),
    which is wrong everywhere experiments are listed — use this key for
    any user-facing enumeration of the registry.
    """
    match = re.fullmatch(r"e(\d+)", key)
    return (int(match.group(1)) if match else 10**9, key)


def run_experiments(
    keys: Sequence[str] | None = None,
    *,
    fast: bool = True,
    n_workers: int = 1,
    timeout_s: float | None = None,
) -> list[ExperimentResult]:
    """Run experiments (default: the whole registry) and aggregate rows.

    Results come back in registry order (e1, e2, …, e20) regardless of
    worker count or completion order.  A crashed or timed-out experiment
    yields an ``ok=False`` entry with an empty row table; it does not
    abort the other experiments.
    """
    from repro.experiments import REGISTRY

    selected = sorted(REGISTRY, key=registry_order) if keys is None else list(keys)
    unknown = [k for k in selected if k not in REGISTRY]
    if unknown:
        raise ValueError(
            f"unknown experiments {unknown!r}; "
            f"available: {sorted(REGISTRY, key=registry_order)}"
        )
    specs = [
        TaskSpec(fn=_experiment_task, args=(key, fast), name=f"experiment:{key}")
        for key in selected
    ]
    results = ParallelRunner(n_workers, timeout_s=timeout_s).run(specs)
    return [
        ExperimentResult(
            key=key,
            rows=list(row.value) if row.ok else [],
            ok=row.ok,
            error=row.error,
            duration_s=row.duration_s,
        )
        for key, row in zip(selected, results, strict=True)
    ]


def save_tables(results: Sequence[ExperimentResult], out_dir: str | Path) -> Path:
    """Write per-experiment tables (``.txt`` + ``.json``) and a manifest."""
    from repro.experiments import format_table

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    index: dict[str, Any] = {}
    for res in results:
        index[res.key] = {
            "ok": res.ok,
            "rows": len(res.rows),
            "duration_s": res.duration_s,
            "error": res.error,
        }
        (out / f"{res.key}.json").write_text(
            json.dumps(res.rows, indent=2, default=str) + "\n", encoding="utf-8"
        )
        (out / f"{res.key}.txt").write_text(
            format_table(res.rows, title=f"experiment {res.key}") + "\n",
            encoding="utf-8",
        )
    (out / "index.json").write_text(
        json.dumps(index, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return out
