"""Continuous rebalancing: drift detection + incremental episodes.

:class:`RebalanceController` (``repro.runtime.processes``) gates
episodes on the *instantaneous* peak — always / threshold / never.
This module grows that into a closed control loop:

:class:`EwmaDriftDetector`
    Smooths the per-machine peak utilizations with an EWMA and tracks
    the *trend* of the smoothed fleet peak (least-squares slope over a
    sliding window of observations).  A trigger fires when the smoothed
    peak is hot **or** rising fast — catching demand drift while it is
    still building, before the instantaneous threshold would.

:class:`IncrementalRebalanceController`
    A :class:`RebalanceController` whose policy is the detector and
    whose episodes are *incremental*: the SRA solve is warm-started
    from the live serving placement and bounded by the rebalancer's
    ``migration_budget``, so each round trims the hotspot with a capped
    amount of churn while serving continues (simulated execution runs
    the wave schedule on the shared clock).  With ``execution="instant"``
    it can additionally size the exchange pool: a
    :class:`~repro.cluster.exchange.PoolSizingPolicy` decides how many
    vacant machines to borrow/return per round, with hold-time
    hysteresis, replacing the fixed borrow-everything episode.

Every check publishes ``controller.ewma_peak`` / ``controller.slope``
gauges and (tracer on) a ``controller.observe`` event, so the detector
state is auditable from the obs stream it feeds on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, List, Optional, Tuple

import numpy as np

from repro import obs
from repro._validation import check_fraction, check_positive
from repro.cluster import (
    ClusterState,
    ExchangeLedger,
    ExchangePoolManager,
    PoolDecision,
    PoolSizingPolicy,
)
from repro.runtime.kernel import Runtime
from repro.runtime.processes import ClusterHandle, EpisodeOutcome, RebalanceController

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.machine import Machine
    from repro.pool import MachinePool

__all__ = [
    "DriftDetectorConfig",
    "EwmaDriftDetector",
    "IncrementalRebalanceController",
]


@dataclass(frozen=True)
class DriftDetectorConfig:
    """Knobs of :class:`EwmaDriftDetector`.

    Attributes
    ----------
    ewma_alpha:
        Smoothing factor of the per-machine utilization EWMA
        (1 = no smoothing, track the raw signal).
    hot_threshold:
        Smoothed fleet peak above which the detector fires regardless
        of trend.
    slope_threshold:
        Minimum rise of the smoothed peak per simulated second that
        counts as "drifting hot" (the early trigger).
    slope_window:
        Observations the trend is fit over (least squares).
    warmup_checks:
        Observations required before the detector may fire at all —
        one sample is not a trend.
    """

    ewma_alpha: float = 0.3
    hot_threshold: float = 0.9
    slope_threshold: float = 0.002
    slope_window: int = 5
    warmup_checks: int = 2

    def __post_init__(self) -> None:
        check_fraction("ewma_alpha", self.ewma_alpha)
        if self.ewma_alpha == 0.0:
            raise ValueError("ewma_alpha must be > 0 (0 would never observe)")
        check_positive("hot_threshold", self.hot_threshold)
        check_positive("slope_threshold", self.slope_threshold)
        if self.slope_window < 2:
            raise ValueError(f"slope_window must be >= 2, got {self.slope_window}")
        if self.warmup_checks < 1:
            raise ValueError(f"warmup_checks must be >= 1, got {self.warmup_checks}")


class EwmaDriftDetector:
    """EWMA-smoothed hotspot/drift detector over per-machine peaks.

    Feed it ``(now, machine_peak_utilizations)`` at every control check
    via :meth:`observe`; ask :meth:`should_trigger` afterwards.  The
    smoothed state resets automatically when the fleet size changes
    (instant pool borrowing grows/shrinks the machine vector).
    """

    def __init__(self, config: DriftDetectorConfig | None = None) -> None:
        self.config = config or DriftDetectorConfig()
        self._ewma: Optional[np.ndarray] = None
        self._trail: List[Tuple[float, float]] = []
        self._checks = 0

    # ------------------------------------------------------------ observation
    def observe(self, now: float, machine_peaks: np.ndarray) -> None:
        """Fold one sample of per-machine peak utilizations into the EWMA."""
        peaks = np.asarray(machine_peaks, dtype=np.float64)
        alpha = self.config.ewma_alpha
        if self._ewma is None or self._ewma.shape != peaks.shape:
            self._ewma = peaks.copy()
        else:
            self._ewma = alpha * peaks + (1.0 - alpha) * self._ewma
        self._trail.append((float(now), float(self._ewma.max())))
        if len(self._trail) > self.config.slope_window:
            del self._trail[0]
        self._checks += 1

    # ----------------------------------------------------------------- state
    @property
    def ewma_peak(self) -> float:
        """Smoothed fleet peak (0 before the first observation)."""
        return 0.0 if self._ewma is None else float(self._ewma.max())

    @property
    def slope(self) -> float:
        """Least-squares rise of the smoothed peak per simulated second."""
        if len(self._trail) < 2:
            return 0.0
        t = np.array([p[0] for p in self._trail])
        y = np.array([p[1] for p in self._trail])
        t = t - t.mean()
        var = float((t * t).sum())
        if var == 0.0:
            return 0.0
        return float((t * (y - y.mean())).sum() / var)

    def should_trigger(self) -> bool:
        """Hot now, or drifting hot — after the warmup."""
        if self._checks < self.config.warmup_checks:
            return False
        cfg = self.config
        return self.ewma_peak > cfg.hot_threshold or self.slope > cfg.slope_threshold


class IncrementalRebalanceController(RebalanceController):
    """Detector-gated, warm-started, budget-bounded rebalancing rounds.

    A drop-in :class:`RebalanceController` with ``policy="incremental"``:

    * the trigger verdict comes from an :class:`EwmaDriftDetector` fed
      at every check (the always/threshold verdicts are replaced);
    * episodes call ``rebalancer.rebalance(grown, ledger,
      warm_start=...)`` seeded from the live serving placement
      (``location`` when simulated, the current assignment otherwise),
      so the rebalancer must accept the warm-start keyword —
      :class:`repro.algorithms.SRA` does.  Bound the per-round churn by
      configuring that SRA with a ``migration_budget``;
    * with ``execution="instant"`` and a ``pool``, episode borrowing is
      sized by a :class:`~repro.cluster.exchange.PoolSizingPolicy`
      through an :class:`~repro.cluster.exchange.ExchangePoolManager`:
      loans persist across rounds (``required_returns=0``) and are
      released — possibly as drained in-service machines — once the
      pressure subsides.

    The in-flight guard and ``cooldown`` hysteresis of the base class
    apply unchanged, so incremental rounds cannot thrash either.
    """

    def __init__(
        self,
        handle: ClusterHandle,
        rebalancer: Any,
        *,
        detector: Optional[EwmaDriftDetector] = None,
        detector_config: Optional[DriftDetectorConfig] = None,
        pool: "Optional[MachinePool]" = None,
        pool_policy: Optional[PoolSizingPolicy] = None,
        **kwargs: Any,
    ) -> None:
        if detector is not None and detector_config is not None:
            raise ValueError("pass detector or detector_config, not both")
        # The base class validates everything else; the policy gate is
        # replaced by the detector below.
        super().__init__(handle, rebalancer, policy="always", **kwargs)
        self.policy = "incremental"
        self.detector = detector or EwmaDriftDetector(detector_config)
        if pool is not None and self.execution != "instant":
            raise ValueError(
                "pool sizing requires instant execution: the serving fleet "
                "cannot grow mid-run under simulated execution"
            )
        self.pool = pool
        self.pool_manager = (
            ExchangePoolManager(pool_policy) if pool is not None else None
        )
        self._lent: List["Machine"] = []
        self._decision: Optional[PoolDecision] = None

    # ----------------------------------------------------------------- policy
    def maybe_rebalance(self, rt: Runtime) -> EpisodeOutcome:
        """Observe the detector, publish its state, then gate as usual."""
        self.detector.observe(
            rt.now, self.handle.state.machine_peak_utilization_view()
        )
        o = obs.current()
        o.metrics.gauge("controller.ewma_peak").set(self.detector.ewma_peak)
        o.metrics.gauge("controller.slope").set(self.detector.slope)
        if o.tracer.enabled:
            o.tracer.event(
                "controller.observe",
                time=rt.now,
                ewma_peak=self.detector.ewma_peak,
                slope=self.detector.slope,
                in_flight=self._in_flight,
            )
        return super().maybe_rebalance(rt)

    def _policy_fires(self, peak: float) -> bool:
        fire = self.detector.should_trigger()
        if self.pool is not None and self.pool_manager is not None:
            # The pool policy is a second trigger: a round must also run
            # when the loan should grow (overload) or shrink (release) —
            # releases in particular happen when the detector is quiet.
            self._decision = self.pool_manager.check(
                peak=peak, available=self.pool.size
            )
            fire = fire or self._decision.borrow > 0 or self._decision.release > 0
            if not fire:
                self._decision = None  # round not taken; don't reuse it later
        return fire

    # ---------------------------------------------------------------- episode
    def _open_episode(self, current: ClusterState) -> tuple[ClusterState, ExchangeLedger]:
        if self.pool is None or self.pool_manager is None:
            return super()._open_episode(current)
        if self._decision is None:
            # Direct rebalance_now call (no gated check preceded it).
            self._decision = self.pool_manager.check(
                peak=current.peak_utilization(), available=self.pool.size
            )
        decision = self._decision
        self._lent = self.pool.lend(decision.borrow) if decision.borrow else []
        # Borrowed machines become ordinary fleet members until the
        # policy releases them: nothing is owed at this settlement.
        # A release round borrows nothing and owes `release` vacancies,
        # which settle_fleet hands back to the pool via _on_settled.
        return ExchangeLedger.borrow(
            current, self._lent, required_returns=decision.release
        )

    def _solve(self, grown: ClusterState, ledger: ExchangeLedger) -> Any:
        if self.location is not None and self.execution == "simulated":
            warm = np.asarray(self.location, dtype=np.int64).copy()
        else:
            warm = grown.assignment
        return self.rebalancer.rebalance(grown, ledger, warm_start=warm)

    def _on_infeasible(self, ledger: ExchangeLedger) -> None:
        if self.pool is None or self.pool_manager is None:
            return
        # The loan never joined the fleet: hand it straight back.
        if self._lent:
            self.pool.accept(self._lent)
        assert self._decision is not None
        self.pool_manager.note(self._decision, borrowed=0, released=0)
        self._lent = []
        self._decision = None

    def _on_settled(self, settlement: Any, returned: List[Any]) -> None:
        if self.pool is None or self.pool_manager is None:
            return
        if returned:
            self.pool.accept(returned)
        assert self._decision is not None
        self.pool_manager.note(
            self._decision, borrowed=len(self._lent), released=len(returned)
        )
        self._lent = []
        self._decision = None
