#!/usr/bin/env python3
"""The transient-constraint deadlock, in miniature.

Two machines, each 60% full with a single big shard, must swap shards —
but during a shard move its resources are held on BOTH machines, so
neither move can ever start: a capacity deadlock.  One vacant exchange
machine breaks it by hosting one shard in transit.

This is the smallest instance of the phenomenon the paper's "resource
exchange" exists to solve; experiment E7 measures it at cluster scale.

Run:  python examples/transient_deadlock.py
"""

import numpy as np

from repro.cluster import ClusterState, Machine, Shard
from repro.migration import StagingPlanner, WaveScheduler, deadlock_cycles, diff_moves


def show_plan(title: str, state: ClusterState, target: np.ndarray) -> None:
    print(f"--- {title}")
    moves = diff_moves(state, target)
    direct = WaveScheduler().schedule(state, moves)
    print(f"direct scheduling: {'feasible' if direct.feasible else 'DEADLOCK'}"
          f" ({len(direct.stranded)} moves stranded)")
    cycles = deadlock_cycles(state, moves)
    if cycles:
        print(f"dependency cycles among machines: {cycles}")
    plan = StagingPlanner().plan(state, target)
    if plan.feasible:
        print(f"staged plan: feasible with {plan.num_hops} staging hop(s), "
              f"{plan.schedule.num_waves} wave(s):")
        for w, wave in enumerate(plan.schedule.waves):
            steps = ", ".join(
                f"shard{mv.shard_id}: m{mv.src}->m{mv.dst}"
                + (" (staging)" if mv.is_staged_hop else "")
                for mv in wave
            )
            print(f"  wave {w}: {steps}")
    else:
        print("staged plan: INFEASIBLE — no machine has headroom to stage through")
    print()


def main() -> None:
    shards = Shard.uniform(2, 6.0)  # two shards, demand 6 of 10
    target = np.array([1, 0])  # swap them

    # Without a spare machine: deadlock, unfixable.
    state = ClusterState(Machine.homogeneous(2, 10.0), shards, [0, 1])
    show_plan("two machines, no spare", state, target)

    # With one vacant exchange machine: the swap becomes a 3-step dance.
    machines = Machine.homogeneous(2, 10.0) + [
        Machine(id=2, capacity=np.full(3, 10.0), exchange=True)
    ]
    state2 = ClusterState(machines, shards, [0, 1])
    show_plan("two machines + one vacant exchange machine", state2, target)


if __name__ == "__main__":
    main()
