"""Process-parallel task runner with crash isolation and obs merge.

:class:`ParallelRunner` executes a list of :class:`TaskSpec` on up to
``n_workers`` worker processes (one process per task, bounded
concurrency) and returns one :class:`TaskResult` per task **in task
order**, regardless of completion order.  Three properties distinguish
it from a bare ``ProcessPoolExecutor``:

* **crash isolation** — a worker that dies (segfault, ``os._exit``,
  OOM-kill) yields a recorded failure row for its task; the run
  continues and every other task still completes;
* **per-task timeouts** — a task exceeding ``timeout_s`` is terminated
  and recorded as timed out instead of hanging the run;
* **observability merge** — when the parent has an active ``repro.obs``
  bundle, each worker runs under a fresh tracer + registry and ships
  its records back; the parent re-parents every worker trace under a
  ``parallel.task`` span and folds worker metrics into its registry, in
  task order, so merged artifacts are deterministic.

``n_workers=1`` is the serial path: tasks run in-process (no
``multiprocessing`` at all) under the ambient obs bundle, which is
bitwise-identical to what the same tasks produce on a pool — the
determinism contract tested by ``tests/test_parallel.py``.

Task functions must be module-level callables and their arguments and
results picklable (everything in this library is: states carry plain
NumPy arrays and frozen dataclasses).
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait
from typing import Any, Callable, Mapping, Sequence

from repro import obs
from repro._validation import check_positive

__all__ = ["TaskSpec", "TaskResult", "ParallelRunner"]


@dataclass(frozen=True)
class TaskSpec:
    """One unit of work: a picklable callable plus its arguments."""

    fn: Callable[..., Any]
    args: tuple[Any, ...] = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    #: Label used in failure rows, spans and progress lines.
    name: str = ""
    #: The task's spawned seed, recorded on the result for provenance
    #: (the runner does not interpret it; see ``repro.parallel.seeds``).
    seed: int | None = None


@dataclass
class TaskResult:
    """Outcome of one task, failure rows included."""

    index: int
    name: str
    ok: bool
    value: Any = None
    error: str | None = None
    duration_s: float = 0.0
    seed: int | None = None
    timed_out: bool = False


@dataclass
class _Slot:
    """Parent-side bookkeeping for one finished task (pre-merge)."""

    ok: bool
    value: Any = None
    error: str | None = None
    duration_s: float = 0.0
    timed_out: bool = False
    trace: list[dict[str, Any]] = field(default_factory=list)
    metrics: Mapping[str, Any] = field(default_factory=dict)


@dataclass
class _Running:
    """Parent-side bookkeeping for one in-flight worker process."""

    index: int
    spec: TaskSpec
    process: Any
    started: float


def _format_error(exc: BaseException) -> str:
    return "".join(traceback.format_exception_only(exc)).strip()


def _worker_entry(spec: TaskSpec, capture_obs: bool, conn: Any) -> None:
    """Worker process body: run the task under a fresh obs bundle.

    The payload sent back is a plain dict so the parent can interpret it
    even when the worker's exception types are not importable there.
    """
    bundle = (
        obs.Obs(obs.Tracer(), obs.MetricsRegistry()) if capture_obs else obs.NULL_OBS
    )
    obs.activate(bundle)
    started = time.perf_counter()
    try:
        value = spec.fn(*spec.args, **dict(spec.kwargs))
        payload: dict[str, Any] = {"ok": True, "value": value, "error": None}
    except BaseException as exc:  # noqa: BLE001 - isolation is the point
        payload = {"ok": False, "value": None, "error": _format_error(exc)}
    payload["duration_s"] = time.perf_counter() - started
    if capture_obs:
        payload["trace"] = bundle.tracer.records()
        payload["metrics"] = bundle.metrics.to_dict()
    try:
        conn.send(payload)
    except Exception as exc:  # unpicklable result: report, don't vanish
        conn.send(
            {
                "ok": False,
                "value": None,
                "error": f"task result not picklable: {_format_error(exc)}",
                "duration_s": payload["duration_s"],
            }
        )
    conn.close()


class ParallelRunner:
    """Bounded-concurrency process runner (see module docstring).

    Parameters
    ----------
    n_workers:
        Maximum concurrent worker processes.  ``1`` (the default) runs
        every task serially in-process — exactly today's single-core
        path, with no multiprocessing machinery involved.
    timeout_s:
        Optional per-task wall-clock limit.  Only enforced on the pool
        path (``n_workers > 1``); the serial path cannot preempt a
        running task.
    start_method:
        ``multiprocessing`` start method (None = platform default,
        ``fork`` on Linux).  Tasks must tolerate ``spawn`` to be
        portable.
    """

    def __init__(
        self,
        n_workers: int = 1,
        *,
        timeout_s: float | None = None,
        start_method: str | None = None,
    ) -> None:
        check_positive("n_workers", n_workers)
        if timeout_s is not None:
            check_positive("timeout_s", timeout_s)
        self.n_workers = int(n_workers)
        self.timeout_s = timeout_s
        self._ctx = mp.get_context(start_method)

    # ------------------------------------------------------------------ API
    def run(self, tasks: Sequence[TaskSpec]) -> list[TaskResult]:
        """Execute *tasks*; return one result per task, in task order."""
        specs = list(tasks)
        if not specs:
            return []
        if self.n_workers == 1:
            return [self._run_inline(i, spec) for i, spec in enumerate(specs)]
        slots = self._run_pool(specs)
        return self._merge(specs, slots)

    # --------------------------------------------------------- serial path
    def _run_inline(self, index: int, spec: TaskSpec) -> TaskResult:
        tracer = obs.current().tracer
        started = time.perf_counter()
        with tracer.span(
            "parallel.task", index=index, task=spec.name, seed=spec.seed
        ) as span:
            try:
                value = spec.fn(*spec.args, **dict(spec.kwargs))
                ok, error = True, None
            except Exception as exc:
                value, ok, error = None, False, _format_error(exc)
            duration = time.perf_counter() - started
            span.set("ok", ok)
            span.set("duration_s", duration)
        return TaskResult(
            index=index,
            name=spec.name,
            ok=ok,
            value=value,
            error=error,
            duration_s=duration,
            seed=spec.seed,
        )

    # ----------------------------------------------------------- pool path
    def _run_pool(self, specs: list[TaskSpec]) -> list[_Slot]:
        capture = obs.current().enabled
        slots: list[_Slot | None] = [None] * len(specs)
        pending: deque[tuple[int, TaskSpec]] = deque(enumerate(specs))
        running: dict[Any, _Running] = {}
        try:
            while pending or running:
                while pending and len(running) < self.n_workers:
                    index, spec = pending.popleft()
                    recv, send = self._ctx.Pipe(duplex=False)
                    process = self._ctx.Process(
                        target=_worker_entry, args=(spec, capture, send)
                    )
                    process.start()
                    send.close()  # parent's copy; EOF now tracks the worker
                    running[recv] = _Running(index, spec, process, time.perf_counter())
                tick = 0.05 if self.timeout_s is not None else None
                ready = wait(list(running.keys()), timeout=tick)
                for conn in ready:
                    run = running.pop(conn)
                    slots[run.index] = self._collect(run, conn)
                if self.timeout_s is not None:
                    now = time.perf_counter()
                    for conn, run in list(running.items()):
                        if now - run.started >= self.timeout_s:
                            running.pop(conn)
                            self._kill(run.process)
                            conn.close()
                            slots[run.index] = _Slot(
                                ok=False,
                                error=f"timed out after {self.timeout_s:g}s",
                                duration_s=now - run.started,
                                timed_out=True,
                            )
        finally:
            for conn, run in running.items():
                self._kill(run.process)
                conn.close()
        return [slot if slot is not None else _Slot(ok=False, error="not run")
                for slot in slots]

    def _collect(self, run: _Running, conn: Any) -> _Slot:
        """Read one finished worker's payload (or record its crash)."""
        payload: Mapping[str, Any] | None
        try:
            payload = conn.recv()
        except (EOFError, OSError):
            payload = None
        conn.close()
        run.process.join()
        if payload is None:
            code = run.process.exitcode
            return _Slot(
                ok=False,
                error=f"worker crashed before reporting (exitcode {code})",
                duration_s=time.perf_counter() - run.started,
            )
        return _Slot(
            ok=bool(payload["ok"]),
            value=payload.get("value"),
            error=payload.get("error"),
            duration_s=float(payload.get("duration_s", 0.0)),
            trace=list(payload.get("trace", [])),
            metrics=payload.get("metrics", {}),
        )

    @staticmethod
    def _kill(process: Any) -> None:
        process.terminate()
        process.join(1.0)
        if process.is_alive():
            process.kill()
            process.join()

    def _merge(self, specs: list[TaskSpec], slots: list[_Slot]) -> list[TaskResult]:
        """Fold worker obs payloads into the parent bundle, in task order."""
        bundle = obs.current()
        results: list[TaskResult] = []
        for index, (spec, slot) in enumerate(zip(specs, slots, strict=True)):
            with bundle.tracer.span(
                "parallel.task", index=index, task=spec.name, seed=spec.seed
            ) as span:
                span.set("ok", slot.ok)
                span.set("duration_s", slot.duration_s)
                if slot.timed_out:
                    span.set("timed_out", True)
                if slot.trace:
                    bundle.tracer.ingest(slot.trace)
            if slot.metrics:
                bundle.metrics.merge_dict(slot.metrics)
            results.append(
                TaskResult(
                    index=index,
                    name=spec.name,
                    ok=slot.ok,
                    value=slot.value,
                    error=slot.error,
                    duration_s=slot.duration_s,
                    seed=spec.seed,
                    timed_out=slot.timed_out,
                )
            )
        return results
