"""E2 — balance vs exchange budget (paper analogue: the exchange-budget figure).

Sweeps the number of borrowed machines ``B`` (with ``R = B`` returned)
on tight instances and reports the peak utilization SRA achieves.  The
paper's claim: more exchangeable machines → better balance, with the
largest marginal gain at small B.
"""

from __future__ import annotations

from repro.experiments.common import run_sra_with_exchange
from repro.experiments.harness import register
from repro.workloads import tight_suite


@register("e2")
def run(fast: bool = True) -> list[dict]:
    seeds = (0,) if fast else (0, 1, 2)
    budgets = (0, 1, 2, 4) if fast else (0, 1, 2, 3, 4, 6, 8)
    iterations = 800 if fast else 2500
    rows = []
    for name, state in tight_suite(seeds=seeds):
        for b in budgets:
            result, grown, _ = run_sra_with_exchange(
                state, b, iterations=iterations, seed=1
            )
            rows.append(
                {
                    "instance": name,
                    "budget_B": b,
                    "peak_before": result.peak_before,
                    "peak_after": result.peak_after,
                    "feasible": result.feasible,
                    "moves": result.num_moves,
                    "staging_hops": result.plan.num_hops if result.plan else 0,
                }
            )
    return rows
