"""E9 — SRA vs the exact IP optimum (paper analogue: the optimality-gap
table; backs the claim that SRA "approximates the optimal solution").

On instances small enough for HiGHS to solve the IP exactly, report the
peak utilization of the MILP optimum, SRA's answer, and the gap.
"""

from __future__ import annotations

from repro.experiments.common import make_sra
from repro.experiments.harness import register
from repro.model import MilpSolver, ModelConfig
from repro.workloads import small_suite


@register("e9")
def run(fast: bool = True) -> list[dict]:
    seeds = (0,) if fast else (0, 1, 2)
    iterations = 600 if fast else 2000
    time_limit = 20.0 if fast else 120.0
    rows = []
    for name, state in small_suite(seeds=seeds):
        exact = MilpSolver(
            ModelConfig(move_penalty=0.0), time_limit=time_limit
        ).solve(state)
        sra = make_sra(iterations, seed=1).rebalance(state)
        gap = (
            (sra.peak_after - exact.peak_utilization) / exact.peak_utilization
            if exact.ok and exact.peak_utilization > 0
            else float("nan")
        )
        rows.append(
            {
                "instance": name,
                "milp_status": exact.status,
                "milp_peak": exact.peak_utilization,
                "sra_peak": sra.peak_after,
                "gap_pct": 100.0 * gap,
                "sra_runtime_s": sra.runtime_seconds,
            }
        )
    return rows
