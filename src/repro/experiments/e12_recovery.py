"""E12 — machine-failure recovery (extension; no paper analogue).

Fails the most-loaded machine of tight instances and attempts recovery
with varying exchange budgets (the pool acting as spare capacity).

Claims: at high tightness the surviving fleet cannot absorb the failed
machine's load (recovery infeasible at B=0); borrowed machines restore
feasibility; a follow-up SRA rebalance flattens the recovery hotspot.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms import AlnsConfig, SRAConfig
from repro.cluster import ExchangeLedger
from repro.experiments.common import scenario_instance
from repro.experiments.harness import register
from repro.recovery import RecoveryPlanner, fail_machine
from repro.workloads import make_exchange_machines


@register("e12")
def run(fast: bool = True) -> list[dict]:
    seeds = (0, 1) if fast else (0, 1, 2, 3)
    budgets = (0, 1, 2) if fast else (0, 1, 2, 4)
    iterations = 400 if fast else 1500
    rows = []
    for seed in seeds:
        state = scenario_instance(
            "zipf-popularity",
            {
                "num_machines": 16,
                "shards_per_machine": 6,
                "target_utilization": 0.85,
                "placement_skew": 0.3,
                "max_shard_fraction": 0.35,
            },
            seed=seed,
        )
        victim = int(np.argmax(state.machine_peak_utilization()))
        for b in budgets:
            grown, ledger = ExchangeLedger.borrow(
                state, make_exchange_machines(state, b), required_returns=0
            )
            degraded, orphans = fail_machine(grown, victim)
            planner = RecoveryPlanner(
                rebalance_after=True,
                sra_config=SRAConfig(alns=AlnsConfig(iterations=iterations, seed=1)),
            )
            result = planner.recover(degraded, orphans, ledger)
            rows.append(
                {
                    "instance": f"fail-s{seed}",
                    "budget_B": b,
                    "orphans": len(orphans),
                    "feasible": result.feasible,
                    "peak_after": result.peak_after,
                    "rebuild_bytes": result.rebuild_bytes,
                    "rebalance_moves": (
                        result.rebalance.num_moves if result.rebalance else 0
                    ),
                }
            )
    return rows
