"""Tests for machine blocking and offline semantics in ClusterState."""

import pytest

from repro.cluster import ClusterState, Machine, Shard


def state3():
    machines = Machine.homogeneous(3, 10.0)
    shards = Shard.uniform(3, 1.0)
    return ClusterState(machines, shards, [0, 1, 2])


class TestBlocking:
    def test_block_vacant_machine(self):
        st = state3()
        st.move(2, 0)
        st.block_machine(2)
        assert st.blocked_mask[2]
        assert not st.blocked_mask[0]

    def test_block_occupied_machine_rejected(self):
        st = state3()
        with pytest.raises(ValueError, match="hosts shards"):
            st.block_machine(1)

    def test_assign_to_blocked_rejected(self):
        st = state3()
        st.move(2, 0)
        st.block_machine(2)
        with pytest.raises(ValueError, match="blocked"):
            st.move(0, 2)

    def test_unblock_restores_placement(self):
        st = state3()
        st.move(2, 0)
        st.block_machine(2)
        st.unblock_machine(2)
        st.move(0, 2)  # now fine
        assert st.machine_of(0) == 2

    def test_unknown_ids_rejected(self):
        st = state3()
        with pytest.raises(ValueError, match="unknown machine"):
            st.block_machine(9)
        with pytest.raises(ValueError, match="unknown machine"):
            st.unblock_machine(9)
        with pytest.raises(ValueError, match="unknown machine"):
            st.set_offline(9)

    def test_copy_preserves_blocking(self):
        st = state3()
        st.move(2, 0)
        st.block_machine(2)
        dup = st.copy()
        assert dup.blocked_mask[2]
        dup.unblock_machine(2)
        assert st.blocked_mask[2]  # independent


class TestOffline:
    def test_offline_implies_blocked(self):
        st = state3()
        st.move(2, 0)
        st.set_offline(2)
        assert st.offline_mask[2]
        assert st.blocked_mask[2]

    def test_offline_occupied_rejected(self):
        st = state3()
        with pytest.raises(ValueError, match="hosts shards"):
            st.set_offline(0)

    def test_offline_cannot_be_unblocked(self):
        st = state3()
        st.move(2, 0)
        st.set_offline(2)
        with pytest.raises(ValueError, match="offline"):
            st.unblock_machine(2)

    def test_copy_preserves_offline(self):
        st = state3()
        st.move(2, 0)
        st.set_offline(2)
        assert st.copy().offline_mask[2]


class TestMiscStateApi:
    def test_assignment_view_is_live(self):
        st = state3()
        view = st.assignment_view()
        st.move(0, 1)
        assert view[0] == 1  # same underlying array

    def test_repr_mentions_sizes(self):
        text = repr(state3())
        assert "m=3" in text and "n=3" in text


class TestValidate:
    def test_clean_state_passes(self):
        st = state3()
        st.validate()

    def test_corrupted_loads_detected(self):
        st = state3()
        st.loads[0, 0] += 1.0  # simulate external corruption
        with pytest.raises(ValueError, match="diverged"):
            st.validate()

    def test_blocked_with_shards_detected(self):
        st = state3()
        st.move(2, 0)
        st.block_machine(2)
        # Force a shard onto the blocked machine behind the API's back.
        st.unblock_machine(2)
        st.move(0, 2)
        st.blocked_mask[2] = True
        with pytest.raises(ValueError, match="blocked machines host"):
            st.validate()

    def test_offline_without_block_detected(self):
        st = state3()
        st.move(2, 0)
        st.set_offline(2)
        st.blocked_mask[2] = False  # corrupt
        with pytest.raises(ValueError, match="offline"):
            st.validate()

    def test_survives_mutation_sequence(self):
        st = state3()
        st.move(0, 1)
        st.unassign(1)
        st.assign_shard(1, 2)
        st.validate()
