"""E10 — SRA design ablations (design-choices table analogue).

Shape claims: every variant stays feasible (the contract is enforced
structurally, not by luck), and the full configuration is never beaten
by a large margin — i.e. no single design choice is carrying negative
value.
"""

from collections import defaultdict

from repro.experiments import REGISTRY, is_full_run


def test_e10_ablation(benchmark, save_table):
    rows = benchmark.pedantic(
        REGISTRY["e10"], kwargs={"fast": not is_full_run()}, rounds=1, iterations=1
    )
    save_table("e10", rows, "E10 — SRA ablations on the tight suite")

    by_instance = defaultdict(dict)
    for r in rows:
        by_instance[r["instance"]][r["variant"]] = r
    for instance, variants in by_instance.items():
        assert "full" in variants
        for name, r in variants.items():
            assert r["feasible"], f"{instance}/{name}"
        full = variants["full"]["peak_after"]
        for name, r in variants.items():
            assert full <= r["peak_after"] + 0.02, (
                f"{instance}: '{name}' beat 'full' by "
                f"{full - r['peak_after']:.4f}"
            )
