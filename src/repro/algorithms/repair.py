"""Repair operators for the LNS.

A repair operator reinserts the shards a destroy operator removed.  Both
operators share the placement scoring: inserting shard *j* on machine *i*
is scored by the machine's peak utilization after insertion, with a large
penalty when the insertion overflows capacity (so overflow is used only
when nothing fits, and the objective's overload penalty then drives the
search away from it).  Blocked machines (SRA's designated-return
machines) score ``inf`` and are never chosen.

* :func:`greedy_best_fit` — insert largest-demand first, each on its
  best-scoring machine.
* :func:`regret2_insertion` — classic regret-2: repeatedly insert the
  shard whose best option beats its second-best by the most (the shard
  that will suffer most if postponed).

Both operators run on a shared :class:`_ScoreTable`: the full (q, m)
score matrix is built once, vectorized, and after each insertion only the
changed machine's column is recomputed — O(q·m·d) total per repair
instead of the naive O(q²·m·d).
"""

from __future__ import annotations

from typing import Protocol, Sequence

import numpy as np

from repro.cluster import ClusterState

__all__ = [
    "RepairOperator",
    "greedy_best_fit",
    "regret2_insertion",
    "DEFAULT_REPAIR_OPS",
]

#: Score penalty for a placement that overflows capacity.
_OVERFLOW_PENALTY = 1e3


class RepairOperator(Protocol):
    """Signature of a repair operator."""

    __name__: str

    def __call__(
        self,
        state: ClusterState,
        rng: np.random.Generator,
        removed: Sequence[int],
    ) -> None: ...


class _ScoreTable:
    """Incrementally maintained (q, m) placement-score matrix.

    ``scores[r, i]`` is the peak utilization of machine ``i`` after
    inserting removed shard ``r`` there (+ overflow penalty, inf when
    blocked).  After an insertion, only the receiving machine's column
    changes.
    """

    def __init__(self, state: ClusterState, removed: Sequence[int]) -> None:
        self.state = state
        self.shards = np.asarray(removed, dtype=np.int64)
        demand = state.demand[self.shards]  # (q, d)
        after = state.loads[None, :, :] + demand[:, None, :]  # (q, m, d)
        util = after / state.capacity[None, :, :]
        self.scores = util.max(axis=2)
        overflow = np.any(after > state.capacity[None, :, :] + 1e-12, axis=2)
        self.scores += _OVERFLOW_PENALTY * overflow
        self.scores[:, state.blocked_mask] = np.inf
        self.active = np.ones(len(self.shards), dtype=bool)
        # Replica anti-affinity: machines already hosting a sibling score
        # inf; when a sibling from this batch lands somewhere, that
        # machine is struck for the remaining members of the group.
        self._group_rows: dict[int, list[int]] = {}
        for row, j in enumerate(self.shards):
            sh = state.shards[int(j)]
            if sh.replica_of >= 0:
                self._group_rows.setdefault(sh.replica_of, []).append(row)
            hosts = state.replica_peer_machines(int(j))
            if hosts.size:
                self.scores[row, hosts] = np.inf

    def insert(self, row: int, machine: int) -> None:
        """Assign row's shard to *machine* and refresh that column."""
        state = self.state
        shard_id = int(self.shards[row])
        state.assign_shard(shard_id, machine)
        self.active[row] = False
        group = state.shards[shard_id].replica_of
        if group >= 0:
            for sibling_row in self._group_rows.get(group, ()):
                if self.active[sibling_row]:
                    self.scores[sibling_row, machine] = np.inf
        if not np.any(self.active):
            return
        rows = np.flatnonzero(self.active)
        demand = state.demand[self.shards[rows]]
        after = state.loads[machine][None, :] + demand  # (k, d)
        col = (after / state.capacity[machine][None, :]).max(axis=1)
        col += _OVERFLOW_PENALTY * np.any(
            after > state.capacity[machine][None, :] + 1e-12, axis=1
        )
        if state.blocked_mask[machine]:
            col[:] = np.inf
        keep_inf = ~np.isfinite(self.scores[rows, machine])
        col[keep_inf] = np.inf
        self.scores[rows, machine] = col

    def best_machine(self, row: int) -> int:
        choice = int(np.argmin(self.scores[row]))
        if np.isfinite(self.scores[row, choice]):
            return choice
        # Every machine is blocked or anti-affine (replication factor near
        # the machine count): fall back to the least-loaded open machine
        # and let the objective's replica penalty drive repair next round.
        state = self.state
        extra = state.demand[self.shards[row]]
        peak = ((state.loads + extra) / state.capacity).max(axis=1)
        peak[state.blocked_mask] = np.inf
        return int(np.argmin(peak))

    def regrets(self) -> tuple[np.ndarray, np.ndarray]:
        """(active_rows, regret values) — regret = 2nd best − best score."""
        rows = np.flatnonzero(self.active)
        sub = self.scores[rows]
        if sub.shape[1] == 1:
            return rows, np.full(rows.size, np.inf)
        part = np.partition(sub, 1, axis=1)
        reg = part[:, 1] - part[:, 0]
        return rows, reg


def greedy_best_fit(
    state: ClusterState, rng: np.random.Generator, removed: Sequence[int]
) -> None:
    """Insert removed shards, largest demand first, on best-scoring machines."""
    if not removed:
        return
    order = sorted(removed, key=lambda j: -float(state.demand[j].sum()))
    table = _ScoreTable(state, order)
    for row in range(len(order)):
        table.insert(row, table.best_machine(row))


def regret2_insertion(
    state: ClusterState, rng: np.random.Generator, removed: Sequence[int]
) -> None:
    """Regret-2 insertion: place the shard with the largest regret first.

    Incremental score maintenance makes this O(q·(q + m·d)) per repair.
    """
    if not removed:
        return
    table = _ScoreTable(state, list(removed))
    demand_mass = state.demand[np.asarray(removed, dtype=np.int64)].sum(axis=1)
    for _ in range(len(removed)):
        rows, reg = table.regrets()
        # Tie-break regret by demand so big shards go early.
        key = reg + 1e-9 * demand_mass[rows]
        row = int(rows[np.argmax(key)])
        table.insert(row, table.best_machine(row))


#: Default operator portfolio of SRA.
DEFAULT_REPAIR_OPS: tuple[RepairOperator, ...] = (greedy_best_fit, regret2_insertion)
