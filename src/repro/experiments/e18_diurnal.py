"""E18 — tail latency across the day (extension).

Search traffic is diurnal; capacity is sized for the peak.  This
experiment drives the engine-derived cluster with a non-homogeneous
Poisson trace (3× peak-to-trough) and buckets latency by time of day,
before and after SRA rebalancing.

Claims: the imbalanced placement's p99 explodes specifically in the
peak-hour buckets (off-peak it has headroom everywhere); the rebalanced
placement flattens the curve across the day.

The ``live-sra`` placement is the operationally honest variant: it
starts the day on the imbalanced placement and *executes* the SRA
migration on the event runtime starting 30% into the day (just before
the peak), so early buckets show before-latency, the migration window
shows transfer derating, and late buckets show the rebalanced fleet.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import ClusterState, Machine
from repro.engine import CorpusConfig, ShardedIndex, generate_corpus, generate_queries
from repro.experiments.e8_latency import _biased_feasible_placement
from repro.experiments.harness import register
from repro.experiments.common import run_sra_with_exchange
from repro.migration import BandwidthModel
from repro.simulate import (
    ServingConfig,
    WorkProfile,
    diurnal_rate,
    nonhomogeneous_arrivals,
    simulate_migration_timeline,
    simulate_serving,
)

_PPCS = 2e5
_DAY = 240.0  # compressed "day" in simulated seconds
_BUCKETS = 6


@register("e18")
def run(fast: bool = True, *, placement_seed: int = 7) -> list[dict]:
    num_docs = 4000 if fast else 20000
    num_shards = 24 if fast else 48
    num_machines = 6 if fast else 12
    iterations = 500 if fast else 2000
    base_rate = 25.0  # mean; peak touches ~75 qps

    cfg = CorpusConfig(num_docs=num_docs, vocab_size=4000, seed=3)
    docs = generate_corpus(cfg)
    index = ShardedIndex.build(docs, num_shards)
    queries = generate_queries(cfg, 150 if fast else 500)
    profile = WorkProfile.measure(index, queries)
    # Size the fleet for the *peak* rate at 85% mean utilization — the
    # standard provisioning rule; off-peak the cluster has ample headroom.
    shards = index.to_cluster_shards(
        queries, queries_per_second=base_rate * 3.0, postings_per_cpu_second=_PPCS
    )
    demand = np.stack([s.demand for s in shards])
    capacity = demand.sum(axis=0) / (num_machines * 0.7)
    machines = Machine.homogeneous(
        num_machines, {n: float(c) for n, c in zip(shards[0].schema.names, capacity, strict=True)}
    )
    rng = np.random.default_rng(placement_seed)
    weights = rng.dirichlet(np.full(num_machines, 0.8))
    assign = _biased_feasible_placement(demand, capacity, weights, rng)
    state = ClusterState(machines, shards, assign)

    result, grown, _ = run_sra_with_exchange(state, 2, iterations=iterations, seed=1)
    after = grown.copy()
    after.apply_assignment(result.target_assignment)

    rate = diurnal_rate(base_rate, peak_ratio=3.0, period=_DAY, peak_at=0.5)
    times = nonhomogeneous_arrivals(rate, _DAY, seed=11)
    serving = ServingConfig(duration=_DAY, postings_per_cpu_second=_PPCS, seed=11)
    mapping = list(range(num_shards))

    def bucket_rows(label: str, arrivals: np.ndarray, latencies: np.ndarray) -> list[dict]:
        out = []
        edges = np.linspace(0.0, _DAY, _BUCKETS + 1)
        for b in range(_BUCKETS):
            mask = (arrivals >= edges[b]) & (arrivals < edges[b + 1])
            lat = latencies[mask]
            if lat.size == 0:
                continue
            out.append(
                {
                    "placement": label,
                    "bucket": b,
                    "window": f"[{edges[b]:.0f},{edges[b+1]:.0f})s",
                    "queries": int(lat.size),
                    "qps": float(lat.size / (edges[b + 1] - edges[b])),
                    "p50_ms": 1e3 * float(np.percentile(lat, 50)),
                    "p99_ms": 1e3 * float(np.percentile(lat, 99)),
                }
            )
        return out

    rows = []
    for label, st in (("before", grown), ("after-sra", after)):
        report = simulate_serving(
            st, profile, mapping, serving, arrival_times=times, capture_raw=True
        )
        rows.extend(bucket_rows(label, report.raw_arrivals, report.raw_latencies))

    # Live execution: start the day imbalanced, migrate just before the
    # peak; a slow replication NIC keeps the window non-trivial.
    if result.plan is not None and result.plan.feasible:
        live = simulate_migration_timeline(
            grown,
            result.target_assignment,
            result.plan,
            profile,
            serving,
            bandwidth=BandwidthModel(bandwidth=5e5),
            transfer_overhead=0.3,
            migration_start=0.3 * _DAY,
            shard_to_engine_shard=mapping,
            arrival_times=times,
        )
        live_rows = bucket_rows(
            "live-sra", live.serving.raw_arrivals, live.serving.raw_latencies
        )
        for row in live_rows:
            row["migrating"] = (
                "yes"
                if any(
                    lo < (row["bucket"] + 1) * (_DAY / _BUCKETS)
                    and hi > row["bucket"] * (_DAY / _BUCKETS)
                    for lo, hi in live.wave_intervals
                )
                else ""
            )
        rows.extend(live_rows)
    return rows
