"""Experiment harness: row tables, fast/full switching, registry.

Every experiment module exposes ``run(fast=True) -> list[dict]`` and a
module docstring naming the paper analogue.  ``fast`` mode (the default,
used by CI and the benchmark suite) shrinks instance counts and search
budgets so the whole suite finishes in minutes; ``REPRO_FULL=1`` in the
environment switches every benchmark to full scale.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Mapping, Sequence

__all__ = ["is_full_run", "format_table", "print_table", "REGISTRY", "register"]

#: name -> run callable; populated by the e*_ modules at import.
REGISTRY: dict[str, Callable[..., list[dict[str, Any]]]] = {}


def register(name: str):
    """Decorator registering an experiment's ``run`` under *name*."""

    def deco(fn):
        REGISTRY[name] = fn
        return fn

    return deco


def is_full_run() -> bool:
    """True when the environment requests full-scale experiments."""
    return os.environ.get("REPRO_FULL", "") not in ("", "0", "false")


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(rows: Sequence[Mapping[str, Any]], *, title: str | None = None) -> str:
    """Render rows as an aligned console table (all rows share columns)."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols: list[str] = []
    for row in rows:  # union of keys, first-seen order
        for key in row:
            if key not in cols:
                cols.append(key)
    cells = [[_fmt(r.get(c, "")) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[k]) for row in cells)) for k, c in enumerate(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths, strict=True))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths, strict=True)))
    return "\n".join(lines)


def print_table(rows: Sequence[Mapping[str, Any]], *, title: str | None = None) -> None:
    """Print :func:`format_table` output."""
    print()
    print(format_table(rows, title=title))
