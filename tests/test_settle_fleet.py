"""Direct tests for settle_fleet (fleet projection after an episode)."""

import numpy as np
import pytest

from repro.cluster import ClusterState, ExchangeLedger, Machine, Shard, settle_fleet
from repro.workloads import make_exchange_machines


def base():
    machines = Machine.homogeneous(3, 10.0)
    shards = Shard.uniform(6, 1.0)
    return ClusterState(machines, shards, [j % 3 for j in range(6)])


class TestSettleFleet:
    def test_untouched_loaners_go_back(self):
        state = base()
        grown, ledger = ExchangeLedger.borrow(state, make_exchange_machines(state, 2))
        slim, settlement, returned = settle_fleet(grown, ledger)
        assert settlement.returned_ids == (3, 4)
        assert len(returned) == 2
        assert slim.num_machines == 3
        np.testing.assert_array_equal(slim.assignment, state.assignment)
        slim.validate()

    def test_exchange_projects_assignment_correctly(self):
        state = base()
        grown, ledger = ExchangeLedger.borrow(state, make_exchange_machines(state, 1))
        # Empty machine 2 onto the borrowed machine 3 -> machine 2 returned.
        for j in list(grown.machine_shards(2)):
            grown.move(int(j), 3)
        slim, settlement, returned = settle_fleet(grown, ledger)
        assert settlement.returned_ids == (2,)
        assert settlement.retained_borrowed_ids == (3,)
        assert slim.num_machines == 3
        # Machine 3 (borrowed) became machine 2 after re-indexing.
        assert {int(j) for j in slim.machine_shards(2)} == {2, 5}
        np.testing.assert_allclose(
            slim.loads.sum(axis=0), grown.loads.sum(axis=0)
        )
        slim.validate()

    def test_returned_machines_carry_capacity(self):
        state = base()
        grown, ledger = ExchangeLedger.borrow(
            state, make_exchange_machines(state, 1, capacity_scale=2.0)
        )
        _, settlement, returned = settle_fleet(grown, ledger)
        np.testing.assert_allclose(
            returned[0].capacity, 2.0 * state.capacity.mean(axis=0)
        )

    def test_zero_borrow_roundtrip(self):
        state = base()
        grown, ledger = ExchangeLedger.borrow(state, [])
        slim, settlement, returned = settle_fleet(grown, ledger)
        assert returned == []
        assert slim.num_machines == 3

    def test_unsatisfiable_contract_raises(self):
        state = base()
        grown, ledger = ExchangeLedger.borrow(state, make_exchange_machines(state, 1))
        grown.move(0, 3)  # no vacant machine anywhere
        with pytest.raises(Exception, match="vacant"):
            settle_fleet(grown, ledger)
